// Shared test scaffolding: terse tuple builders and a linear-plan
// harness that wires source → ops… → sink and runs it under any
// executor.

#ifndef NSTREAM_TESTS_TESTING_TEST_UTIL_H_
#define NSTREAM_TESTS_TESTING_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/query_plan.h"
#include "exec/scheduler.h"
#include "exec/sim_executor.h"
#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "punct/pattern_parser.h"

namespace nstream {
namespace testing_util {

/// Parse-or-die pattern helper: P("[*,>=50]").
inline PunctPattern P(std::string_view text) {
  Result<PunctPattern> r = ParsePattern(text);
  if (!r.ok()) {
    ADD_FAILURE() << "bad pattern '" << text
                  << "': " << r.status().ToString();
    return PunctPattern();
  }
  return r.MoveValue();
}

/// Parse-or-die feedback helper: FB("~[*,>=50]").
inline FeedbackPunctuation FB(std::string_view text) {
  Result<FeedbackPunctuation> r = ParseFeedback(text);
  if (!r.ok()) {
    ADD_FAILURE() << "bad feedback '" << text
                  << "': " << r.status().ToString();
    return FeedbackPunctuation();
  }
  return r.MoveValue();
}

/// Timed tuples at 1ms spacing from a list of builders.
inline std::vector<TimedElement> AtMillis(std::vector<Tuple> tuples,
                                          TimeMs start = 0,
                                          TimeMs step = 1) {
  std::vector<TimedElement> out;
  TimeMs at = start;
  for (Tuple& t : tuples) {
    out.push_back(TimedElement::OfTuple(at, std::move(t)));
    at += step;
  }
  return out;
}

/// Linear source → ops… → sink plan.
class LinearPlan {
 public:
  LinearPlan(SchemaPtr schema, std::vector<TimedElement> elements) {
    source_ = plan_.AddOp(std::make_unique<VectorSource>(
        "source", std::move(schema), std::move(elements)));
    last_ = source_;
  }

  template <typename T>
  T* Add(std::unique_ptr<T> op) {
    T* raw = plan_.AddOp(std::move(op));
    Status st = plan_.Connect(*last_, *raw);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
    last_ = raw;
    return raw;
  }

  CollectorSink* Finish(CollectorSinkOptions options = {},
                        CollectorSink::FeedbackDriver driver = nullptr) {
    sink_ = plan_.AddOp(std::make_unique<CollectorSink>(
        "sink", options, std::move(driver)));
    Status st = plan_.Connect(*last_, *sink_);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
    return sink_;
  }

  Status RunSync(SyncExecutorOptions options = {}) {
    SyncExecutor exec(options);
    return exec.Run(&plan_);
  }
  Status RunSim(SimExecutorOptions options = {}) {
    SimExecutor exec(options);
    Status st = exec.Run(&plan_);
    sim_end_ms_ = exec.now_ms();
    return st;
  }
  Status RunThreaded(ThreadedExecutorOptions options = {}) {
    ThreadedExecutor exec(options);
    return exec.Run(&plan_);
  }
  Status RunPooled(PooledExecutorOptions options = {}) {
    PooledExecutor exec(options);
    return exec.Run(&plan_);
  }

  QueryPlan* plan() { return &plan_; }
  VectorSource* source() { return source_; }
  CollectorSink* sink() { return sink_; }
  double sim_end_ms() const { return sim_end_ms_; }

 private:
  QueryPlan plan_;
  VectorSource* source_ = nullptr;
  Operator* last_ = nullptr;
  CollectorSink* sink_ = nullptr;
  double sim_end_ms_ = 0;
};

/// Values of one attribute across collected tuples, as int64.
inline std::vector<int64_t> Int64Column(
    const std::vector<CollectedTuple>& rows, int attr) {
  std::vector<int64_t> out;
  out.reserve(rows.size());
  for (const CollectedTuple& r : rows) {
    Result<int64_t> v = r.tuple.value(attr).AsInt64();
    out.push_back(v.ok() ? v.value() : INT64_MIN);
  }
  return out;
}

inline std::vector<Tuple> TuplesOf(
    const std::vector<CollectedTuple>& rows) {
  std::vector<Tuple> out;
  out.reserve(rows.size());
  for (const CollectedTuple& r : rows) out.push_back(r.tuple);
  return out;
}

}  // namespace testing_util
}  // namespace nstream

#endif  // NSTREAM_TESTS_TESTING_TEST_UTIL_H_
