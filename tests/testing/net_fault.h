// Seeded network fault injection for the TCP serving edge. FaultyNetIo
// sits in the TcpAcceptor's NetIo seam and misbehaves the way real
// networks do — partial reads, partial writes, EINTR, connection
// resets, scheduling delays — but DETERMINISTICALLY per seed, so a
// soak failure replays exactly from its seed number.
//
// Faults are injected on the engine side of the socket; producer-side
// failures (disconnects, mid-frame closes, crash-and-resume) are the
// tests' own job, driven by closing their fds at seeded points.

#ifndef NSTREAM_TESTS_TESTING_NET_FAULT_H_
#define NSTREAM_TESTS_TESTING_NET_FAULT_H_

#include <atomic>
#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "ingest/tcp_acceptor.h"

namespace nstream {

struct NetFaultOptions {
  uint64_t seed = 1;
  /// Probability a Read/Send call fails with EINTR (retried by the
  /// acceptor — proves no byte is lost or doubled across retries).
  double p_eintr = 0.05;
  /// Probability a read is truncated to a random prefix (frames then
  /// straddle read boundaries, exercising per-connection assembly).
  double p_short_read = 0.25;
  /// Probability a send accepts only a random prefix (feedback and
  /// error frames then straddle send boundaries).
  double p_short_write = 0.25;
  /// Probability a Read fails with ECONNRESET — the acceptor drops
  /// the connection; the producer must reconnect and resume.
  double p_reset = 0.0;
  /// Probability of a busy-wait delay before the syscall (reorders
  /// thread interleavings; keep small, it is real time).
  double p_delay = 0.05;
  int max_delay_us = 200;
};

class FaultyNetIo final : public NetIo {
 public:
  explicit FaultyNetIo(NetFaultOptions opts = {})
      : opts_(opts), rng_(opts.seed) {}

  ssize_t Read(int fd, char* buf, size_t n) override {
    const Plan p = NextPlan(n);
    if (p.delay_us > 0) SpinFor(p.delay_us);
    if (p.eintr) {
      ++eintr_injected_;
      errno = EINTR;
      return -1;
    }
    if (p.reset) {
      ++resets_injected_;
      errno = ECONNRESET;
      return -1;
    }
    ssize_t r = NetIo::Read(fd, buf, p.truncated_n);
    if (r > 0 && p.truncated_n < n) ++short_reads_;
    return r;
  }

  ssize_t Send(int fd, const char* p_, size_t n) override {
    const Plan p = NextPlan(n);
    if (p.delay_us > 0) SpinFor(p.delay_us);
    if (p.eintr) {
      ++eintr_injected_;
      errno = EINTR;
      return -1;
    }
    ssize_t r = NetIo::Send(fd, p_, p.truncated_n);
    if (r > 0 && p.truncated_n < n) ++short_writes_;
    return r;
  }

  uint64_t eintr_injected() const { return eintr_injected_.load(); }
  uint64_t resets_injected() const { return resets_injected_.load(); }
  uint64_t short_reads() const { return short_reads_.load(); }
  uint64_t short_writes() const { return short_writes_.load(); }

 private:
  struct Plan {
    bool eintr = false;
    bool reset = false;
    size_t truncated_n = 0;
    int delay_us = 0;
  };

  // The rng is shared across whatever threads drive I/O; a mutex keeps
  // the draw sequence itself deterministic per seed (the interleaving
  // of READS across threads still varies — that is the point).
  Plan NextPlan(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    Plan p;
    p.truncated_n = n;
    if (rng_.NextBernoulli(opts_.p_delay)) {
      p.delay_us = 1 + static_cast<int>(rng_.NextBounded(
                           static_cast<uint64_t>(opts_.max_delay_us)));
    }
    if (rng_.NextBernoulli(opts_.p_eintr)) {
      p.eintr = true;
      return p;
    }
    if (rng_.NextBernoulli(opts_.p_reset)) {
      p.reset = true;
      return p;
    }
    const double p_trunc =
        opts_.p_short_read > opts_.p_short_write ? opts_.p_short_read
                                                 : opts_.p_short_write;
    // One truncation draw serves both directions (callers pass their
    // own n); distinct read/write rates just gate how often it bites.
    if (n > 1 && rng_.NextBernoulli(p_trunc)) {
      p.truncated_n = 1 + rng_.NextBounded(n - 1);
    }
    return p;
  }

  static void SpinFor(int us) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::yield();
    }
  }

  NetFaultOptions opts_;
  std::mutex mu_;
  Rng rng_;
  std::atomic<uint64_t> eintr_injected_{0};
  std::atomic<uint64_t> resets_injected_{0};
  std::atomic<uint64_t> short_reads_{0};
  std::atomic<uint64_t> short_writes_{0};
};

}  // namespace nstream

#endif  // NSTREAM_TESTS_TESTING_NET_FAULT_H_
