// SchedHarness: deterministic, seeded, virtual-time driver for the
// pooled scheduler's manual mode. The harness owns a VirtualClock and
// an Rng; each step it
//
//   1. releases paced sources whose due time has arrived,
//   2. maybe re-injects wakes it previously deferred (wake_defer_prob
//      intercepts wakes via Scheduler::SetWakeHook — the injectable
//      wake-reordering knob),
//   3. picks a ready task UNIFORMLY AT RANDOM from the seeded Rng and
//      runs one slice of it,
//   4. when nothing is ready, flushes deferred wakes, then advances
//      the virtual clock to the next paced due time.
//
// Same seed → same pick sequence → same interleaving, element orders,
// stats — reproducible on any box at any speed. On stall or step
// overrun the error message carries the seed so a failing interleaving
// can be replayed exactly. ChargeMs advances the virtual clock
// (Scheduler wires that when given a virtual_clock), so cost-model
// dynamics like PACE/IMPUTE divergence run in virtual time too.

#ifndef NSTREAM_TESTS_TESTING_SCHED_HARNESS_H_
#define NSTREAM_TESTS_TESTING_SCHED_HARNESS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/scheduler.h"

namespace nstream {
namespace testing_util {

struct SchedHarnessOptions {
  uint64_t seed = 1;
  /// Probability a wake is swallowed and re-injected later (0 = wakes
  /// deliver immediately; determinism holds either way).
  double wake_defer_prob = 0.0;
  /// Per-step probability of releasing one deferred wake early.
  double wake_release_prob = 0.25;
  /// Abort the drive (with the seed in the message) past this many
  /// slices — runaway-loop backstop, not a tuning knob.
  uint64_t max_steps = 2'000'000;
  /// Scheduler knobs; manual and virtual_clock are overridden.
  SchedulerOptions sched;
};

class SchedHarness {
 public:
  explicit SchedHarness(SchedHarnessOptions options = {})
      : options_(options), rng_(options.seed) {
    options_.sched.manual = true;
    options_.sched.virtual_clock = &clock_;
    sched_ = std::make_unique<Scheduler>(options_.sched);
    if (options_.wake_defer_prob > 0.0) {
      sched_->SetWakeHook([this](QueryId q, int64_t op) {
        if (!rng_.NextBernoulli(options_.wake_defer_prob)) return false;
        deferred_.push_back({q, op});
        return true;  // swallowed; re-injected by the drive loop
      });
    }
  }

  Result<QueryId> Submit(QueryPlan* plan) {
    return sched_->Submit(plan);
  }

  /// Drive every submitted query to completion (or a seed-stamped
  /// error). Query-level failures are NOT errors here — they surface
  /// from Wait(), exactly like the pool.
  Status Drive() {
    // The internal max_steps backstop bounds this before the loop cap.
    NSTREAM_ASSIGN_OR_RETURN(bool done, DriveFor(UINT64_MAX));
    if (!done) return Status::Internal(SeedMsg("step budget exhausted"));
    return Status::OK();
  }

  /// Drive at most `slices` slices. Returns true when every query
  /// completed, false when the budget ran out with work left — the
  /// crash-injection tests use that cut to "kill" the engine at a
  /// seeded slice count. Stalls (nothing ready, deferred, or due) are
  /// errors carrying the seed and the scheduler's stall report.
  Result<bool> DriveFor(uint64_t slices) {
    for (uint64_t i = 0; i < slices; ++i) {
      if (sched_->AllDone()) return true;
      if (++steps_ > options_.max_steps) {
        return Status::Internal(SeedMsg("step budget exhausted"));
      }
      sched_->ReleaseDue(clock_.NowMs());
      while (!deferred_.empty() &&
             rng_.NextBernoulli(options_.wake_release_prob)) {
        ReleaseOneDeferred();
      }
      const size_t n = sched_->ReadyCount();
      if (n == 0) {
        if (!deferred_.empty()) {
          ReleaseOneDeferred();
          continue;
        }
        if (std::optional<TimeMs> due = sched_->NextDueMs()) {
          clock_.AdvanceTo(*due);
          continue;
        }
        return Status::Internal(
            SeedMsg("stalled: no ready tasks, no deferred wakes, no "
                    "due times") +
            "\n" + sched_->StallReport());
      }
      const size_t pick = static_cast<size_t>(
          rng_.NextBounded(static_cast<uint64_t>(n)));
      NSTREAM_RETURN_NOT_OK(sched_->StepReadyAt(pick));
    }
    return sched_->AllDone();
  }

  /// Submit + Drive + Wait: one plan, start to finish.
  Status Run(QueryPlan* plan) {
    NSTREAM_ASSIGN_OR_RETURN(QueryId id, Submit(plan));
    NSTREAM_RETURN_NOT_OK(Drive());
    return sched_->Wait(id);
  }

  Status Wait(QueryId id) { return sched_->Wait(id); }

  Scheduler* scheduler() { return sched_.get(); }
  VirtualClock* clock() { return &clock_; }
  uint64_t steps() const { return steps_; }
  uint64_t seed() const { return options_.seed; }
  size_t deferred_wakes() const { return deferred_.size(); }

 private:
  void ReleaseOneDeferred() {
    // Random pick, not FIFO: deferral order is part of the explored
    // reordering space.
    const size_t i = static_cast<size_t>(
        rng_.NextBounded(static_cast<uint64_t>(deferred_.size())));
    auto [q, op] = deferred_[i];
    deferred_[i] = deferred_.back();
    deferred_.pop_back();
    sched_->InjectWake(q, op);
  }

  std::string SeedMsg(const std::string& what) const {
    return "sched harness " + what +
           " (reproduce with seed=" + std::to_string(options_.seed) +
           ", steps=" + std::to_string(steps_) + ")";
  }

  SchedHarnessOptions options_;
  Rng rng_;
  VirtualClock clock_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::pair<QueryId, int64_t>> deferred_;
  uint64_t steps_ = 0;
};

}  // namespace testing_util
}  // namespace nstream

#endif  // NSTREAM_TESTS_TESTING_SCHED_HARNESS_H_
