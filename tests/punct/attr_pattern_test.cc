#include "punct/attr_pattern.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace nstream {
namespace {

TEST(AttrPatternTest, AnyMatchesEverything) {
  AttrPattern p = AttrPattern::Any();
  EXPECT_TRUE(p.Matches(Value::Int64(1)));
  EXPECT_TRUE(p.Matches(Value::Null()));
  EXPECT_TRUE(p.Matches(Value::String("x")));
}

TEST(AttrPatternTest, ComparisonNeverMatchesNull) {
  EXPECT_FALSE(AttrPattern::Eq(Value::Int64(1)).Matches(Value::Null()));
  EXPECT_FALSE(AttrPattern::Le(Value::Int64(1)).Matches(Value::Null()));
  EXPECT_FALSE(AttrPattern::Ne(Value::Int64(1)).Matches(Value::Null()));
}

TEST(AttrPatternTest, NullTests) {
  EXPECT_TRUE(AttrPattern::IsNull().Matches(Value::Null()));
  EXPECT_FALSE(AttrPattern::IsNull().Matches(Value::Int64(0)));
  EXPECT_TRUE(AttrPattern::NotNull().Matches(Value::Int64(0)));
  EXPECT_FALSE(AttrPattern::NotNull().Matches(Value::Null()));
}

TEST(AttrPatternTest, ComparisonMatches) {
  EXPECT_TRUE(AttrPattern::Eq(Value::Int64(5)).Matches(Value::Int64(5)));
  EXPECT_TRUE(
      AttrPattern::Eq(Value::Int64(5)).Matches(Value::Double(5.0)));
  EXPECT_TRUE(AttrPattern::Lt(Value::Int64(5)).Matches(Value::Int64(4)));
  EXPECT_FALSE(AttrPattern::Lt(Value::Int64(5)).Matches(Value::Int64(5)));
  EXPECT_TRUE(AttrPattern::Le(Value::Int64(5)).Matches(Value::Int64(5)));
  EXPECT_TRUE(AttrPattern::Gt(Value::Int64(5)).Matches(Value::Int64(6)));
  EXPECT_TRUE(AttrPattern::Ge(Value::Int64(5)).Matches(Value::Int64(5)));
  EXPECT_TRUE(AttrPattern::Ne(Value::Int64(5)).Matches(Value::Int64(4)));
  EXPECT_FALSE(AttrPattern::Ne(Value::Int64(5)).Matches(Value::Int64(5)));
}

TEST(AttrPatternTest, RangeMatches) {
  AttrPattern p = AttrPattern::Range(Value::Int64(3), Value::Int64(9));
  EXPECT_TRUE(p.Matches(Value::Int64(3)));
  EXPECT_TRUE(p.Matches(Value::Int64(9)));
  EXPECT_FALSE(p.Matches(Value::Int64(2)));
  EXPECT_FALSE(p.Matches(Value::Int64(10)));
}

TEST(AttrPatternTest, IncomparableNeverMatches) {
  EXPECT_FALSE(
      AttrPattern::Eq(Value::String("5")).Matches(Value::Int64(5)));
  EXPECT_FALSE(
      AttrPattern::Ne(Value::String("5")).Matches(Value::Int64(5)));
}

TEST(AttrPatternTest, SubsumesBasics) {
  EXPECT_TRUE(AttrPattern::Any().Subsumes(AttrPattern::Eq(Value::Int64(1))));
  EXPECT_FALSE(
      AttrPattern::Eq(Value::Int64(1)).Subsumes(AttrPattern::Any()));
  EXPECT_TRUE(AttrPattern::Le(Value::Int64(10))
                  .Subsumes(AttrPattern::Le(Value::Int64(5))));
  EXPECT_FALSE(AttrPattern::Le(Value::Int64(5))
                   .Subsumes(AttrPattern::Le(Value::Int64(10))));
  EXPECT_TRUE(AttrPattern::Ge(Value::Int64(5))
                  .Subsumes(AttrPattern::Gt(Value::Int64(5))));
  EXPECT_TRUE(AttrPattern::NotNull().Subsumes(
      AttrPattern::Eq(Value::Int64(1))));
  EXPECT_FALSE(AttrPattern::NotNull().Subsumes(AttrPattern::IsNull()));
}

TEST(AttrPatternTest, SubsumesRange) {
  AttrPattern wide = AttrPattern::Range(Value::Int64(0), Value::Int64(100));
  AttrPattern narrow = AttrPattern::Range(Value::Int64(10), Value::Int64(20));
  EXPECT_TRUE(wide.Subsumes(narrow));
  EXPECT_FALSE(narrow.Subsumes(wide));
  EXPECT_TRUE(wide.Subsumes(AttrPattern::Eq(Value::Int64(50))));
  EXPECT_FALSE(wide.Subsumes(AttrPattern::Eq(Value::Int64(101))));
  EXPECT_TRUE(AttrPattern::Le(Value::Int64(100)).Subsumes(wide));
}

TEST(AttrPatternTest, SubsumesNe) {
  AttrPattern ne5 = AttrPattern::Ne(Value::Int64(5));
  EXPECT_TRUE(ne5.Subsumes(AttrPattern::Eq(Value::Int64(4))));
  EXPECT_FALSE(ne5.Subsumes(AttrPattern::Eq(Value::Int64(5))));
  EXPECT_TRUE(ne5.Subsumes(AttrPattern::Lt(Value::Int64(5))));
  EXPECT_TRUE(ne5.Subsumes(AttrPattern::Gt(Value::Int64(5))));
  EXPECT_FALSE(ne5.Subsumes(AttrPattern::Le(Value::Int64(5))));
  EXPECT_TRUE(
      ne5.Subsumes(AttrPattern::Range(Value::Int64(6), Value::Int64(9))));
  EXPECT_FALSE(
      ne5.Subsumes(AttrPattern::Range(Value::Int64(4), Value::Int64(6))));
}

TEST(AttrPatternTest, ToStringPaperStyle) {
  EXPECT_EQ(AttrPattern::Any().ToString(), "*");
  EXPECT_EQ(AttrPattern::Eq(Value::Int64(7)).ToString(), "7");
  EXPECT_EQ(AttrPattern::Ge(Value::Int64(50)).ToString(),
            "\xE2\x89\xA5"
            "50");
  EXPECT_EQ(AttrPattern::IsNull().ToString(), "null");
}

// ---- Property test: Subsumes soundness ------------------------------
// If A.Subsumes(B), then every value matching B must match A. We fuzz
// random pattern pairs and random probe values; any counterexample is
// a soundness bug in the feedback machinery (guards would over-drop).

struct SubsumeCase {
  uint64_t seed;
};

class SubsumeSoundness : public ::testing::TestWithParam<int> {};

AttrPattern RandomPattern(Rng* rng) {
  int64_t a = rng->NextInt(-8, 8);
  int64_t b = rng->NextInt(-8, 8);
  switch (rng->NextBounded(9)) {
    case 0:
      return AttrPattern::Any();
    case 1:
      return AttrPattern::Eq(Value::Int64(a));
    case 2:
      return AttrPattern::Ne(Value::Int64(a));
    case 3:
      return AttrPattern::Lt(Value::Int64(a));
    case 4:
      return AttrPattern::Le(Value::Int64(a));
    case 5:
      return AttrPattern::Gt(Value::Int64(a));
    case 6:
      return AttrPattern::Ge(Value::Int64(a));
    case 7:
      return AttrPattern::Range(Value::Int64(std::min(a, b)),
                                Value::Int64(std::max(a, b)));
    default:
      return rng->NextBernoulli(0.5) ? AttrPattern::IsNull()
                                     : AttrPattern::NotNull();
  }
}

TEST_P(SubsumeSoundness, NoFalsePositives) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 500; ++iter) {
    AttrPattern a = RandomPattern(&rng);
    AttrPattern b = RandomPattern(&rng);
    if (!a.Subsumes(b)) continue;
    // Probe the integer lattice plus null.
    for (int64_t v = -10; v <= 10; ++v) {
      if (b.Matches(Value::Int64(v))) {
        EXPECT_TRUE(a.Matches(Value::Int64(v)))
            << a.ToString() << " claimed to subsume " << b.ToString()
            << " but misses value " << v;
      }
    }
    if (b.Matches(Value::Null())) {
      EXPECT_TRUE(a.Matches(Value::Null()))
          << a.ToString() << " claimed to subsume " << b.ToString()
          << " but misses NULL";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsumeSoundness,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace nstream
