#include <gtest/gtest.h>

#include "punct/pattern_parser.h"
#include "punct/scheme.h"

namespace nstream {
namespace {

TEST(ParserTest, Wildcards) {
  PunctPattern p = ParsePattern("[*,*,*]").value();
  EXPECT_EQ(p.arity(), 3);
  EXPECT_TRUE(p.IsAllWildcard());
}

TEST(ParserTest, ComparisonOps) {
  PunctPattern p =
      ParsePattern("[=5, !=6, <7, <=8, >9, >=10]").value();
  EXPECT_EQ(p.attr(0), AttrPattern::Eq(Value::Int64(5)));
  EXPECT_EQ(p.attr(1), AttrPattern::Ne(Value::Int64(6)));
  EXPECT_EQ(p.attr(2), AttrPattern::Lt(Value::Int64(7)));
  EXPECT_EQ(p.attr(3), AttrPattern::Le(Value::Int64(8)));
  EXPECT_EQ(p.attr(4), AttrPattern::Gt(Value::Int64(9)));
  EXPECT_EQ(p.attr(5), AttrPattern::Ge(Value::Int64(10)));
}

TEST(ParserTest, Utf8Glyphs) {
  PunctPattern p =
      ParsePattern("[\xE2\x89\xA4""5,\xE2\x89\xA5""6,\xE2\x89\xA0""7]")
          .value();
  EXPECT_EQ(p.attr(0), AttrPattern::Le(Value::Int64(5)));
  EXPECT_EQ(p.attr(1), AttrPattern::Ge(Value::Int64(6)));
  EXPECT_EQ(p.attr(2), AttrPattern::Ne(Value::Int64(7)));
}

TEST(ParserTest, ValueKinds) {
  PunctPattern p =
      ParsePattern("[3.5, 'abc', t:9000, true, null, !null]").value();
  EXPECT_EQ(p.attr(0), AttrPattern::Eq(Value::Double(3.5)));
  EXPECT_EQ(p.attr(1), AttrPattern::Eq(Value::String("abc")));
  EXPECT_EQ(p.attr(2), AttrPattern::Eq(Value::Timestamp(9000)));
  EXPECT_EQ(p.attr(3), AttrPattern::Eq(Value::Bool(true)));
  EXPECT_EQ(p.attr(4), AttrPattern::IsNull());
  EXPECT_EQ(p.attr(5), AttrPattern::NotNull());
}

TEST(ParserTest, Ranges) {
  PunctPattern p = ParsePattern("[[3..9],*]").value();
  EXPECT_EQ(p.attr(0),
            AttrPattern::Range(Value::Int64(3), Value::Int64(9)));
}

TEST(ParserTest, NegativeAndScientific) {
  PunctPattern p = ParsePattern("[<-5, 1e3]").value();
  EXPECT_EQ(p.attr(0), AttrPattern::Lt(Value::Int64(-5)));
  EXPECT_EQ(p.attr(1), AttrPattern::Eq(Value::Double(1000.0)));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("[").ok());
  EXPECT_FALSE(ParsePattern("[*,]").ok());
  EXPECT_FALSE(ParsePattern("[*] trailing").ok());
  EXPECT_FALSE(ParsePattern("[3..]").ok());
  EXPECT_FALSE(ParsePattern("['unterminated]").ok());
}

TEST(ParserTest, FeedbackIntents) {
  EXPECT_TRUE(ParseFeedback("~[*,>=50]").value().is_assumed());
  EXPECT_TRUE(ParseFeedback("\xC2\xAC[*,>=50]").value().is_assumed());
  EXPECT_TRUE(ParseFeedback("?[7,3,*]").value().is_desired());
  EXPECT_TRUE(ParseFeedback("![<=t:5000,*]").value().is_demanded());
  EXPECT_FALSE(ParseFeedback("[*,*]").ok());  // missing intent
}

TEST(ParserTest, PaperExamples) {
  // §4.2's JOIN feedback examples parse as written (ASCII form).
  FeedbackPunctuation f = ParseFeedback("~[*,3,4,*]").value();
  EXPECT_EQ(f.pattern().ConstrainedIndices(),
            (std::vector<int>{1, 2}));
  FeedbackPunctuation g = ParseFeedback("~[50,*,*,50]").value();
  EXPECT_EQ(g.pattern().ConstrainedIndices(),
            (std::vector<int>{0, 3}));
}

TEST(SchemeTest, SupportabilityOnDelimitedAttrs) {
  // Auction stream (§4.4): timestamp progressing, auction finite,
  // bidder/amount undelimited.
  PunctScheme scheme = PunctScheme::Undelimited(4)
                           .With(0, Delimitation::kFinite)
                           .With(3, Delimitation::kProgressing);

  // "Do not show bids prior to 1:00 pm" — timestamp only: supportable.
  PunctPattern by_time = ParsePattern("[*,*,*,<=t:46800000]").value();
  EXPECT_TRUE(CheckSupportability(by_time, scheme).supportable);

  // "No results for bidder #2 in auction #4" — auction delimited but
  // bidder not: unsupportable, flagging attr 1.
  PunctPattern bidder = ParsePattern("[4,2,*,*]").value();
  SupportabilityReport r = CheckSupportability(bidder, scheme);
  EXPECT_FALSE(r.supportable);
  EXPECT_EQ(r.undelimited_attrs, std::vector<int>{1});

  // "Don't show bids more than $1.00" — amounts never punctuated.
  PunctPattern amount = ParsePattern("[*,*,>1.0,*]").value();
  EXPECT_FALSE(CheckSupportability(amount, scheme).supportable);
}

TEST(SchemeTest, WildcardAlwaysSupportable) {
  PunctScheme scheme = PunctScheme::Undelimited(3);
  EXPECT_TRUE(
      CheckSupportability(PunctPattern::AllWildcard(3), scheme)
          .supportable);
}

TEST(FeedbackTest, ToStringGlyphs) {
  FeedbackPunctuation fb = ParseFeedback("~[*,>=50]").value();
  EXPECT_EQ(fb.ToString(), "\xC2\xAC[*,\xE2\x89\xA5""50]");
  EXPECT_EQ(ParseFeedback("?[*]").value().ToString(), "?[*]");
  EXPECT_EQ(ParseFeedback("![*]").value().ToString(), "![*]");
}

TEST(FeedbackTest, ProvenanceFields) {
  FeedbackPunctuation fb =
      FeedbackPunctuation::Assumed(PunctPattern::AllWildcard(1));
  fb.set_origin_op(7);
  fb.set_hop_count(2);
  fb.set_issued_at_ms(123);
  fb.set_deadline_ms(456);
  EXPECT_EQ(fb.origin_op(), 7);
  EXPECT_EQ(fb.hop_count(), 2);
  EXPECT_EQ(fb.issued_at_ms(), 123);
  EXPECT_EQ(fb.deadline_ms(), 456);
  EXPECT_TRUE(fb.EquivalentTo(
      FeedbackPunctuation::Assumed(PunctPattern::AllWildcard(1))));
}

}  // namespace
}  // namespace nstream
