// CompiledPattern must be observationally identical to the interpreted
// PunctPattern::Matches — same semantics for every op, operand type,
// and value type, including NULLs and incomparable pairs.

#include "punct/compiled_pattern.h"

#include <gtest/gtest.h>

#include <vector>

#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {
namespace {

std::vector<AttrPattern> AllAttrPatterns() {
  std::vector<AttrPattern> out;
  out.push_back(AttrPattern::Any());
  out.push_back(AttrPattern::IsNull());
  out.push_back(AttrPattern::NotNull());
  std::vector<Value> operands = {
      Value::Int64(5),        Value::Int64(-3),
      Value::Timestamp(5),    Value::Double(5.0),
      Value::Double(4.5),     Value::String("m"),
      Value::Bool(true),
  };
  for (const Value& v : operands) {
    out.push_back(AttrPattern::Eq(v));
    out.push_back(AttrPattern::Ne(v));
    out.push_back(AttrPattern::Lt(v));
    out.push_back(AttrPattern::Le(v));
    out.push_back(AttrPattern::Gt(v));
    out.push_back(AttrPattern::Ge(v));
  }
  out.push_back(AttrPattern::Range(Value::Int64(2), Value::Int64(8)));
  out.push_back(
      AttrPattern::Range(Value::Double(2.5), Value::Double(7.5)));
  out.push_back(AttrPattern::Range(Value::Int64(2), Value::Double(7.5)));
  out.push_back(
      AttrPattern::Range(Value::Timestamp(0), Value::Timestamp(10)));
  out.push_back(AttrPattern::Range(Value::String("b"), Value::String("x")));
  // Mixed int/double range with an int64 bound above 2^53: must not be
  // lowered to double (the interpreted matcher compares it exactly).
  out.push_back(AttrPattern::Range(
      Value::Int64((int64_t{1} << 62) + 1), Value::Double(1e30)));
  return out;
}

std::vector<Value> AllValues() {
  return {
      Value::Null(),       Value::Bool(false),   Value::Bool(true),
      Value::Int64(-3),    Value::Int64(0),      Value::Int64(5),
      Value::Int64(8),     Value::Int64(100),    Value::Timestamp(5),
      Value::Timestamp(11), Value::Double(-2.5), Value::Double(4.5),
      Value::Double(5.0),  Value::Double(7.5),   Value::String(""),
      Value::String("a"),  Value::String("m"),   Value::String("z"),
      Value::Int64(int64_t{1} << 62),
      Value::Int64((int64_t{1} << 62) + 1),
      Value::Double(4611686018427387904.0),  // 2^62
  };
}

TEST(CompiledPattern, MatchesAgreesWithInterpretedSweep) {
  // Every (attr pattern, value) pair, tested through a 1-ary pattern.
  for (const AttrPattern& ap : AllAttrPatterns()) {
    PunctPattern p({ap});
    CompiledPattern compiled(p);
    for (const Value& v : AllValues()) {
      Tuple t(std::vector<Value>{v});
      EXPECT_EQ(compiled.Matches(t), p.Matches(t))
          << "pattern " << p.ToString() << " value " << v.ToString();
    }
  }
}

TEST(CompiledPattern, MultiAttributeAndArity) {
  PunctPattern p = PunctPattern::AllWildcard(3)
                       .With(0, AttrPattern::Ne(Value::Int64(2)))
                       .With(2, AttrPattern::Range(Value::Timestamp(10),
                                                   Value::Timestamp(20)));
  CompiledPattern compiled(p);
  Tuple hit = TupleBuilder().I64(1).S("x").Ts(15).Build();
  Tuple miss_first = TupleBuilder().I64(2).S("x").Ts(15).Build();
  Tuple miss_last = TupleBuilder().I64(1).S("x").Ts(25).Build();
  Tuple wrong_arity = TupleBuilder().I64(1).S("x").Build();
  EXPECT_TRUE(compiled.Matches(hit));
  EXPECT_FALSE(compiled.Matches(miss_first));
  EXPECT_FALSE(compiled.Matches(miss_last));
  EXPECT_FALSE(compiled.Matches(wrong_arity));
  EXPECT_EQ(compiled.Matches(hit), p.Matches(hit));
  EXPECT_EQ(compiled.Matches(wrong_arity), p.Matches(wrong_arity));
}

TEST(CompiledPattern, AlwaysTrueAndEmpty) {
  CompiledPattern wildcard(PunctPattern::AllWildcard(2));
  EXPECT_TRUE(wildcard.always_true());
  EXPECT_TRUE(wildcard.Matches(TupleBuilder().I64(1).I64(2).Build()));
  EXPECT_FALSE(wildcard.Matches(TupleBuilder().I64(1).Build()));

  CompiledPattern empty;
  EXPECT_TRUE(empty.always_true());
  EXPECT_EQ(empty.arity(), 0);
  EXPECT_TRUE(empty.Matches(Tuple()));
}

TEST(CompiledPattern, MixedNumericWidening) {
  // Int operand vs double value and vice versa must widen exactly as
  // Value::Compare does.
  PunctPattern int_op = PunctPattern::AllWildcard(1).With(
      0, AttrPattern::Gt(Value::Int64(5)));
  CompiledPattern compiled(int_op);
  Tuple just_above = Tuple(std::vector<Value>{Value::Double(5.5)});
  Tuple at = Tuple(std::vector<Value>{Value::Double(5.0)});
  EXPECT_TRUE(compiled.Matches(just_above));
  EXPECT_FALSE(compiled.Matches(at));
  EXPECT_EQ(compiled.Matches(just_above), int_op.Matches(just_above));
  EXPECT_EQ(compiled.Matches(at), int_op.Matches(at));
}

TEST(CompiledPattern, KeepsPatternAccessible) {
  PunctPattern p = PunctPattern::AllWildcard(2).With(
      1, AttrPattern::Le(Value::Timestamp(99)));
  CompiledPattern compiled(p);
  EXPECT_EQ(compiled.pattern(), p);
  EXPECT_EQ(compiled.arity(), 2);
  EXPECT_FALSE(compiled.always_true());
}

// ---- CompiledPatternCache ----

PunctPattern WmPattern(int64_t bound) {
  return PunctPattern::AllWildcard(3).With(
      1, AttrPattern::Le(Value::Timestamp(bound)));
}

TEST(CompiledPatternCache, HashIsValueCompatible) {
  PunctPattern a = WmPattern(50);
  PunctPattern b = WmPattern(50);  // equal, distinct objects
  PunctPattern c = WmPattern(51);
  EXPECT_EQ(HashPunctPattern(a), HashPunctPattern(b));
  EXPECT_NE(HashPunctPattern(a), HashPunctPattern(c));
  // Constrained position matters, not just the operand.
  PunctPattern d = PunctPattern::AllWildcard(3).With(
      2, AttrPattern::Le(Value::Timestamp(50)));
  EXPECT_NE(HashPunctPattern(a), HashPunctPattern(d));
}

TEST(CompiledPatternCache, EqualPatternsShareOneCompilation) {
  CompiledPatternCache cache(8);
  auto c1 = cache.Get(WmPattern(10));
  auto c2 = cache.Get(WmPattern(10));  // different object, same value
  EXPECT_EQ(c1.get(), c2.get());  // identical compilation shared
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  auto c3 = cache.Get(WmPattern(11));
  EXPECT_NE(c1.get(), c3.get());
  EXPECT_EQ(cache.misses(), 2u);
  // The cached compilation matches exactly like a fresh one.
  Tuple t = TupleBuilder().I64(0).Ts(10).I64(0).Build();
  EXPECT_TRUE(c1->Matches(t));
  EXPECT_FALSE(CompiledPattern(WmPattern(9)).Matches(t));
}

TEST(CompiledPatternCache, EvictionKeepsHandedOutCompilationsAlive) {
  CompiledPatternCache cache(2);
  auto c1 = cache.Get(WmPattern(1));
  auto c2 = cache.Get(WmPattern(2));
  // Touch 1 so 2 is the LRU victim when 3 arrives.
  (void)cache.Get(WmPattern(1));
  auto c3 = cache.Get(WmPattern(3));
  EXPECT_EQ(cache.size(), 2u);
  // Evicted entry's shared_ptr still works for its holder.
  Tuple t = TupleBuilder().I64(0).Ts(2).I64(0).Build();
  EXPECT_TRUE(c2->Matches(t));
  // Re-requesting the evicted pattern recompiles (a miss, not a hit).
  uint64_t misses_before = cache.misses();
  (void)cache.Get(WmPattern(2));
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(CompiledPatternCache, ClearResetsEntriesAndCounters) {
  CompiledPatternCache cache(4);
  (void)cache.Get(WmPattern(1));
  (void)cache.Get(WmPattern(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(CompiledPatternCache, GlobalInstanceCollapsesRepeatExploits) {
  // The engine's exploit sites (queue purge/promote, join table
  // sweeps, guard installs) all route through Global(): a pattern
  // exploited at N relay hops compiles once.
  CompiledPatternCache& g = CompiledPatternCache::Global();
  PunctPattern p = PunctPattern::AllWildcard(4).With(
      3, AttrPattern::Ge(Value::Int64(123456789)));
  (void)g.Get(p);  // may hit or miss depending on prior tests
  uint64_t hits_before = g.hits();
  auto a = g.Get(p);
  auto b = g.Get(p);
  EXPECT_EQ(g.hits(), hits_before + 2);
  EXPECT_EQ(a.get(), b.get());
}

}  // namespace
}  // namespace nstream
