#include "punct/punct_pattern.h"

#include <gtest/gtest.h>

#include "punct/pattern_parser.h"

namespace nstream {
namespace {

Tuple T(int64_t a, double b) {
  return TupleBuilder().I64(a).D(b).Build();
}

TEST(PunctPatternTest, MatchesConjunction) {
  PunctPattern p{AttrPattern::Eq(Value::Int64(3)),
                 AttrPattern::Ge(Value::Double(50))};
  EXPECT_TRUE(p.Matches(T(3, 51)));
  EXPECT_FALSE(p.Matches(T(3, 49)));
  EXPECT_FALSE(p.Matches(T(4, 51)));
}

TEST(PunctPatternTest, ArityMismatchNeverMatches) {
  PunctPattern p{AttrPattern::Any()};
  EXPECT_FALSE(p.Matches(T(1, 2)));
}

TEST(PunctPatternTest, AllWildcard) {
  PunctPattern p = PunctPattern::AllWildcard(2);
  EXPECT_TRUE(p.IsAllWildcard());
  EXPECT_TRUE(p.Matches(T(1, 2)));
  EXPECT_TRUE(p.ConstrainedIndices().empty());
}

TEST(PunctPatternTest, ConstrainedIndices) {
  PunctPattern p{AttrPattern::Any(), AttrPattern::Ge(Value::Double(50))};
  EXPECT_EQ(p.ConstrainedIndices(), std::vector<int>{1});
}

TEST(PunctPatternTest, SubsumesAttrwise) {
  PunctPattern wide{AttrPattern::Any(), AttrPattern::Ge(Value::Double(50))};
  PunctPattern narrow{AttrPattern::Eq(Value::Int64(3)),
                      AttrPattern::Ge(Value::Double(60))};
  EXPECT_TRUE(wide.Subsumes(narrow));
  EXPECT_FALSE(narrow.Subsumes(wide));
}

TEST(PunctPatternTest, ProjectReorders) {
  PunctPattern p{AttrPattern::Eq(Value::Int64(1)),
                 AttrPattern::Eq(Value::Int64(2)),
                 AttrPattern::Any()};
  PunctPattern q = p.Project({2, 0}).value();
  EXPECT_EQ(q.arity(), 2);
  EXPECT_TRUE(q.attr(0).is_wildcard());
  EXPECT_EQ(q.attr(1), AttrPattern::Eq(Value::Int64(1)));
  EXPECT_FALSE(p.Project({7}).ok());
}

TEST(PunctPatternTest, ValidateAgainstSchema) {
  SchemaPtr s = Schema::Make({{"seg", ValueType::kInt64},
                              {"speed", ValueType::kDouble}});
  PunctPattern ok{AttrPattern::Eq(Value::Int64(1)),
                  AttrPattern::Ge(Value::Double(50))};
  EXPECT_TRUE(ok.Validate(*s).ok());
  PunctPattern bad_arity{AttrPattern::Any()};
  EXPECT_TRUE(bad_arity.Validate(*s).IsSchemaMismatch());
  PunctPattern bad_type{AttrPattern::Eq(Value::String("x")),
                        AttrPattern::Any()};
  EXPECT_TRUE(bad_type.Validate(*s).IsSchemaMismatch());
}

TEST(PunctuationTest, CoversUsesSubsumption) {
  Punctuation punct(PunctPattern{
      AttrPattern::Any(), AttrPattern::Le(Value::Timestamp(1000))});
  PunctPattern guard{AttrPattern::Any(),
                     AttrPattern::Le(Value::Timestamp(500))};
  EXPECT_TRUE(punct.Covers(guard));
  PunctPattern live{AttrPattern::Any(),
                    AttrPattern::Le(Value::Timestamp(2000))};
  EXPECT_FALSE(punct.Covers(live));
}

TEST(PunctPatternTest, PaperNotationRoundTrip) {
  // The paper's [*, ≥50] example renders and reparses identically.
  PunctPattern p{AttrPattern::Any(), AttrPattern::Ge(Value::Int64(50))};
  std::string text = p.ToString();
  EXPECT_EQ(text, "[*,\xE2\x89\xA5""50]");
  PunctPattern q = ParsePattern(text).value();
  EXPECT_EQ(p, q);
}

}  // namespace
}  // namespace nstream
