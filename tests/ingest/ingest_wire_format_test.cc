// Wire-format unit tests: frame codecs round-trip, incremental
// scanning, zero-copy vs owned batch-decode equivalence, admission
// pool accounting + backpressure, and trace record/replay identity.

#include "ingest/wire_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ingest/frame_pool.h"
#include "ingest/trace.h"
#include "ingest_test_util.h"
#include "stream/columnar.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

using testing_util::FB;
using testing_util::P;
using testing_util::RandomIngestTuples;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

TEST(WireFormat, HelloRoundTrip) {
  std::string bytes;
  AppendHelloFrame(&bytes, 7);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  ASSERT_EQ(consumed, bytes.size());
  ASSERT_EQ(f.type, FrameType::kHello);
  uint32_t version = 0, arity = 0;
  ASSERT_TRUE(DecodeHello(f.payload, &version, &arity).ok());
  EXPECT_EQ(version, kWireVersion);
  EXPECT_EQ(arity, 7u);
}

TEST(WireFormat, PunctuationRoundTrip) {
  Punctuation p(P("[*,>=50,7]"));
  std::string bytes;
  AppendPunctuationFrame(&bytes, p);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  ASSERT_EQ(f.type, FrameType::kPunctuation);
  Punctuation back;
  ASSERT_TRUE(DecodePunctuation(f.payload, &back).ok());
  EXPECT_EQ(back.pattern().ToString(), p.pattern().ToString());
}

TEST(WireFormat, FeedbackRoundTripWithProvenance) {
  FeedbackPunctuation fb = FB("~[*,>=50]");
  fb.set_origin_op(42);
  fb.set_hop_count(3);
  fb.set_issued_at_ms(12345);
  fb.set_deadline_ms(99999);
  std::string bytes;
  AppendFeedbackFrame(&bytes, fb);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  ASSERT_EQ(f.type, FrameType::kFeedback);
  FeedbackPunctuation back;
  ASSERT_TRUE(DecodeFeedback(f.payload, &back).ok());
  EXPECT_TRUE(back.EquivalentTo(fb));
  EXPECT_EQ(back.origin_op(), 42);
  EXPECT_EQ(back.hop_count(), 3);
  EXPECT_EQ(back.issued_at_ms(), 12345);
  EXPECT_EQ(back.deadline_ms(), 99999);
}

TEST(WireFormat, EosFrameIsEmpty) {
  std::string bytes;
  AppendEosFrame(&bytes);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  EXPECT_EQ(f.type, FrameType::kEos);
  EXPECT_TRUE(f.payload.empty());
}

TEST(WireFormat, IncrementalScanNeedsWholeFrame) {
  std::vector<Tuple> tuples = RandomIngestTuples(5, 11);
  std::string bytes;
  AppendTupleBatchFrame(&bytes, tuples);
  // Every strict prefix is "need more", never an error, never a frame.
  for (size_t len = 0; len < bytes.size(); ++len) {
    FrameView f;
    size_t consumed = 1;
    Status s = ScanFrame(std::string_view(bytes.data(), len), &f,
                         &consumed);
    ASSERT_TRUE(s.ok()) << "prefix len " << len << ": " << s.ToString();
    ASSERT_EQ(consumed, 0u) << "prefix len " << len;
  }
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
}

TEST(WireFormat, ScanLeavesTrailingBytesAlone) {
  std::string bytes;
  AppendEosFrame(&bytes);
  const size_t first = bytes.size();
  AppendHelloFrame(&bytes, 3);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  EXPECT_EQ(consumed, first);  // exactly one frame consumed
  EXPECT_EQ(f.type, FrameType::kEos);
}

// Zero-copy and owned decodes agree, under every storage regime, and
// id assignment matches the VectorSource rule.
TEST(WireFormat, BatchDecodeZeroCopyMatchesOwned) {
  std::vector<Tuple> tuples = RandomIngestTuples(64, 23);
  std::string bytes;
  AppendTupleBatchFrame(&bytes, tuples);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());

  std::vector<Tuple> owned;
  uint32_t arity = 3;
  ASSERT_TRUE(DecodeTupleBatchOwned(f.payload, arity, &owned).ok());
  ASSERT_EQ(owned.size(), tuples.size());

  for (bool arenas : {false, true}) {
    for (bool columnar : {false, true}) {
      SCOPED_TRACE("arenas=" + std::to_string(arenas) +
                   " columnar=" + std::to_string(columnar));
      ScopedTupleArenasEnabled a(arenas);
      ScopedPageColumnarEnabled c(columnar);
      Page page;
      int64_t next_id = 1;
      ASSERT_TRUE(DecodeTupleBatchInto(f.payload, arity, &page,
                                       /*allow_columnar=*/true, &next_id)
                      .ok());
      ASSERT_EQ(page.size(), tuples.size());
      EXPECT_EQ(page.is_columnar(), arenas && columnar);
      page.EnsureRowLayout();
      for (size_t i = 0; i < tuples.size(); ++i) {
        const Tuple& got = page.elements()[i].tuple();
        EXPECT_EQ(got.ToString(), owned[i].ToString()) << "row " << i;
        EXPECT_EQ(got.id(), static_cast<int64_t>(i) + 1)
            << "id assignment must match VectorSource";
      }
      EXPECT_EQ(next_id, static_cast<int64_t>(tuples.size()) + 1);
    }
  }
}

TEST(WireFormat, BatchDecodePreservesExplicitIdsAndArrivals) {
  std::vector<Tuple> tuples = RandomIngestTuples(4, 31);
  tuples[1].set_id(500);
  tuples[1].set_arrival_ms(777);
  std::string bytes;
  AppendTupleBatchFrame(&bytes, tuples);
  FrameView f;
  size_t consumed = 0;
  ASSERT_TRUE(ScanFrame(bytes, &f, &consumed).ok());
  Page page;
  int64_t next_id = 1;
  ASSERT_TRUE(DecodeTupleBatchInto(f.payload, 3, &page, true, &next_id)
                  .ok());
  page.EnsureRowLayout();
  EXPECT_EQ(page.elements()[1].tuple().id(), 500);
  EXPECT_EQ(page.elements()[1].tuple().arrival_ms(), 777);
  // 0-id tuples got 1,2,3 (the explicit id does not advance next_id).
  EXPECT_EQ(page.elements()[0].tuple().id(), 1);
  EXPECT_EQ(page.elements()[3].tuple().id(), 3);
}

// ---------------------------------------------------------------------------
// Admission pool
// ---------------------------------------------------------------------------

TEST(FramePool, AccountingAndBackpressure) {
  FrameBufferPool pool(64, 2);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  char* a = pool.TryAcquire();
  char* b = pool.TryAcquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.TryAcquire(), nullptr);  // dry
  EXPECT_EQ(pool.dry_acquires(), 1u);
  pool.Release(a);
  EXPECT_EQ(pool.available(), 1u);
  char* c = pool.TryAcquire();
  EXPECT_EQ(c, a);  // reuse, not allocation
  pool.Release(b);
  pool.Release(c);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.acquires(), 3u);
}

TEST(FrameConduitTest, OfferBytesStopsAtDryPool) {
  FrameConduitOptions opts;
  opts.buffer_bytes = 8;
  opts.num_buffers = 2;
  FrameConduit conduit(opts);
  std::string big(100, 'x');
  EXPECT_EQ(conduit.OfferBytes(big.data(), big.size()), 16u);
  EXPECT_FALSE(conduit.WriteAll("more"));
  // Consumer recycles → producer can continue.
  auto c1 = conduit.TryPopChunk();
  ASSERT_TRUE(c1.has_value());
  conduit.Recycle(*c1);
  EXPECT_EQ(conduit.OfferBytes(big.data(), big.size()), 8u);
}

TEST(FrameConduitTest, ChunksPreserveByteOrder) {
  FrameConduitOptions opts;
  opts.buffer_bytes = 4;
  opts.num_buffers = 64;
  FrameConduit conduit(opts);
  std::string in = "the quick brown fox jumps over the lazy dog";
  ASSERT_TRUE(conduit.WriteAll(in));
  conduit.CloseWrite();
  std::string out;
  while (auto c = conduit.TryPopChunk()) {
    out.append(c->data, c->len);
    conduit.Recycle(*c);
  }
  EXPECT_EQ(out, in);
  EXPECT_TRUE(conduit.write_closed());
}

TEST(FrameConduitTest, FeedbackQueueIsBoundedDropOldest) {
  FrameConduitOptions opts;
  opts.max_feedback_frames = 3;
  FrameConduit conduit(opts);
  for (int i = 0; i < 10; ++i) {
    conduit.PushFeedbackFrame("fb" + std::to_string(i));
  }
  // With no drainer attached, only the newest max_feedback_frames
  // survive; the rest were dropped oldest-first.
  EXPECT_EQ(conduit.feedback_dropped(), 7u);
  std::vector<std::string> got;
  while (auto f = conduit.TryPopFeedbackFrame()) {
    got.push_back(*f);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"fb7", "fb8", "fb9"}));
}

// ---------------------------------------------------------------------------
// Trace record / replay
// ---------------------------------------------------------------------------

TEST(Trace, RecordThenReplayIsByteIdentical) {
  std::vector<Tuple> tuples = RandomIngestTuples(20, 47);
  const std::string stream =
      testing_util::EncodeIngestStream(tuples, 6, 12);
  const std::string path = TempPath("trace_rt.bin");

  {
    FrameTraceWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    // Append frame-by-frame, as IngestSource does on admission.
    std::string_view rest = stream;
    while (!rest.empty()) {
      FrameView f;
      size_t consumed = 0;
      ASSERT_TRUE(ScanFrame(rest, &f, &consumed).ok());
      ASSERT_GT(consumed, 0u);
      ASSERT_TRUE(w.Append(rest.substr(0, consumed)).ok());
      rest.remove_prefix(consumed);
    }
    ASSERT_TRUE(w.Close().ok());
  }

  Result<std::string> back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), stream);

  // Replay through a conduit reproduces the byte stream exactly.
  FrameConduitOptions opts;
  opts.buffer_bytes = 512;
  opts.num_buffers = stream.size() / 512 + 2;
  FrameConduit conduit(opts);
  ASSERT_TRUE(ReplayTraceIntoConduit(path, &conduit).ok());
  std::string replayed;
  while (auto c = conduit.TryPopChunk()) {
    replayed.append(c->data, c->len);
    conduit.Recycle(*c);
  }
  EXPECT_EQ(replayed, stream);
  EXPECT_TRUE(conduit.write_closed());
  std::remove(path.c_str());
}

TEST(Trace, MissingFileAndUnopenedWriterFailCleanly) {
  EXPECT_FALSE(ReadTraceFile(TempPath("nope.bin")).ok());
  FrameTraceWriter w;
  EXPECT_FALSE(w.Append("x").ok());
  EXPECT_TRUE(w.Close().ok());  // closing a never-opened writer is OK
  FrameConduit conduit;
  EXPECT_FALSE(
      ReplayTraceIntoConduit(TempPath("nope.bin"), &conduit).ok());
}

}  // namespace
}  // namespace nstream
