// Randomized wire ↔ VectorSource equivalence: the same tuples pushed
// through the network front-end (encode → conduit → IngestSource) and
// through the in-process VectorSource must reach the sink as identical
// multisets, under sync + pooled executors × arenas on/off × columnar
// on/off. Also covers feedback exploitation/relay at the edge and the
// executor-idle path (bytes arriving while the pooled source is
// parked).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_client.h"
#include "ingest/ingest_source.h"
#include "ingest_test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::EncodeIngestStream;
using testing_util::FB;
using testing_util::IngestSchema;
using testing_util::MakeIngestPlan;
using testing_util::PrefilledConduit;
using testing_util::RandomIngestTuples;
using testing_util::TupleStrings;

TEST(IngestEquivalence, WireMatchesVectorSourceAcrossConfigs) {
  const int kN = 200;
  for (uint64_t seed : {3u, 17u, 88u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<Tuple> tuples = RandomIngestTuples(kN, seed);

    // Reference: the same tuples through VectorSource, sync.
    std::multiset<std::string> expect;
    {
      testing_util::LinearPlan ref(IngestSchema(), AtMillis(tuples));
      ref.Finish();
      ASSERT_TRUE(ref.RunSync().ok());
      expect = TupleStrings(ref.sink()->collected());
    }
    ASSERT_EQ(expect.size(), static_cast<size_t>(kN));
    EXPECT_EQ(expect, TupleStrings(tuples));

    const std::string stream = EncodeIngestStream(
        tuples, /*batch_size=*/7, /*punct_every=*/49);

    for (bool pooled : {false, true}) {
      for (bool arenas : {false, true}) {
        for (bool columnar : {false, true}) {
          SCOPED_TRACE("pooled=" + std::to_string(pooled) +
                       " arenas=" + std::to_string(arenas) +
                       " columnar=" + std::to_string(columnar));
          ScopedTupleArenasEnabled a(arenas);
          ScopedPageColumnarEnabled c(columnar);
          auto conduit = PrefilledConduit(stream);
          auto p = MakeIngestPlan(conduit.get());
          Status st;
          if (pooled) {
            PooledExecutorOptions opts;
            opts.pool_size = 2;
            PooledExecutor exec(opts);
            Result<QueryId> id = exec.Submit(p.plan.get());
            ASSERT_TRUE(id.ok()) << id.status().ToString();
            st = exec.Wait(id.value());
          } else {
            SyncExecutor exec;
            st = exec.Run(p.plan.get());
          }
          ASSERT_TRUE(st.ok()) << st.ToString();
          EXPECT_EQ(TupleStrings(p.sink->collected()), expect);
          EXPECT_EQ(p.source->admitted_frames(),
                    // hello + ceil(200/7) batches + 4 puncts + eos
                    1u + (kN + 6) / 7 + 4u + 1u);
          EXPECT_GT(p.sink->stats().puncts_in, 0u);
        }
      }
    }
  }
}

// Bytes trickle in from a producer thread while the pooled source
// parks idle between them: the wake-notifier path, not just the
// pre-filled fast case.
TEST(IngestEquivalence, PooledLiveFeedWithIdleSource) {
  const int kN = 120;
  std::vector<Tuple> tuples = RandomIngestTuples(kN, 5);
  const std::string stream = EncodeIngestStream(tuples, 5);

  FrameConduitOptions copts;
  copts.buffer_bytes = 64;  // many small chunks: frames straddle
  copts.num_buffers = 16;   // a small pool: producer hits backpressure
  FrameConduit conduit(copts);
  auto p = MakeIngestPlan(&conduit);

  PooledExecutorOptions opts;
  opts.pool_size = 2;
  PooledExecutor exec(opts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  std::thread producer([&] {
    size_t off = 0;
    while (off < stream.size()) {
      // Dribble in odd-sized pieces; retry when the pool is dry.
      const size_t n = std::min<size_t>(97, stream.size() - off);
      off += conduit.OfferBytes(stream.data() + off, n);
      std::this_thread::yield();
    }
    conduit.CloseWrite();
  });
  Status st = exec.Wait(id.value());
  producer.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(TupleStrings(p.sink->collected()), TupleStrings(tuples));
}

// ---------------------------------------------------------------------------
// Feedback at the edge
// ---------------------------------------------------------------------------

// Unit-level: ProcessFeedback installs an admission guard (assumed)
// and relays EVERY intent to the producer as a feedback frame.
TEST(IngestFeedback, ExploitsAssumedAndRelaysToProducer) {
  FrameConduit conduit;
  IngestSource src("ingest", IngestSchema(), &conduit);
  ConduitClient client(&conduit);

  FeedbackPunctuation assumed = FB("~[*,*,>=500]");
  assumed.set_origin_op(9);
  ASSERT_TRUE(src.ProcessFeedback(0, assumed).ok());
  EXPECT_EQ(src.admission_guards().size(), 1);

  FeedbackPunctuation desired = FB("?[<=10,*,*]");
  ASSERT_TRUE(src.ProcessFeedback(0, desired).ok());
  EXPECT_EQ(src.admission_guards().size(), 1);  // desired installs none

  Result<std::optional<FeedbackPunctuation>> f1 = client.PollFeedback();
  ASSERT_TRUE(f1.ok()) << f1.status().ToString();
  ASSERT_TRUE(f1.value().has_value());
  EXPECT_TRUE(f1.value()->EquivalentTo(assumed));
  EXPECT_EQ(f1.value()->origin_op(), 9);
  Result<std::optional<FeedbackPunctuation>> f2 = client.PollFeedback();
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f2.value().has_value());
  EXPECT_TRUE(f2.value()->EquivalentTo(desired));
  EXPECT_EQ(src.stats().feedback_propagated, 2u);
}

// End-to-end: a pre-installed admission guard drops matching tuples at
// parse time, on both row and columnar paths, and expires when covered
// by embedded punctuation.
TEST(IngestFeedback, AdmissionGuardDropsAtParseTime) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) {
    tuples.push_back(
        TupleBuilder().I64(i).S("v" + std::to_string(i)).I64(i * 10).Build());
  }
  std::string stream;
  AppendHelloFrame(&stream, 3);
  AppendTupleBatchFrame(&stream, tuples.data(), 20);
  // Covering punctuation: "no more tuples with b <= 1000 ever" — the
  // guard below (b >= 200 is assumed-unwanted) is NOT covered by it,
  // but a second guard on the low range is.
  AppendPunctuationFrame(&stream, Punctuation(testing_util::P(
                                      "[*,*,<=100]")));
  AppendTupleBatchFrame(&stream, tuples.data() + 20, 20);
  AppendEosFrame(&stream);

  for (bool columnar : {false, true}) {
    SCOPED_TRACE("columnar=" + std::to_string(columnar));
    ScopedTupleArenasEnabled a(true);
    ScopedPageColumnarEnabled c(columnar);
    auto conduit = PrefilledConduit(stream);
    auto p = MakeIngestPlan(conduit.get());
    // Install guards before the run (as if feedback arrived earlier):
    // drop b >= 200, and a low-range guard the punctuation will expire.
    ASSERT_TRUE(p.source->ProcessFeedback(0, FB("~[*,*,>=200]")).ok());
    ASSERT_TRUE(p.source->ProcessFeedback(0, FB("~[*,*,<=50]")).ok());
    ASSERT_EQ(p.source->admission_guards().size(), 2);
    SyncExecutor exec;
    Status st = exec.Run(p.plan.get());
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Survivors: b in {60..190} = i in {6..19} from batch 1; batch 2
    // (i >= 20 → b >= 200) is fully dropped.
    EXPECT_EQ(p.sink->consumed(), 14u);
    EXPECT_EQ(p.source->stats().input_guard_drops, 26u);
    // The covered low-range guard expired at the punctuation.
    EXPECT_EQ(p.source->admission_guards().size(), 1);
  }
}

}  // namespace
}  // namespace nstream
