// End-to-end over a real byte-stream fd: a client process-half writes
// wire frames into a socketpair, the FdListener pumps them into the
// admission pool, the plan runs on the pooled executor, and feedback
// punctuation issued by the sink travels BACK across the socket to the
// client — the full producer ↔ engine loop of the paper's §3.2, over
// an actual kernel transport.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ingest/fd_listener.h"
#include "ingest/ingest_source.h"
#include "ingest_test_util.h"

namespace nstream {
namespace {

using testing_util::EncodeIngestStream;
using testing_util::MakeIngestPlan;
using testing_util::RandomIngestTuples;
using testing_util::TupleStrings;

void WriteAllFd(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0) << "socket write failed";
    off += static_cast<size_t>(n);
  }
}

TEST(FdListenerTest, SocketpairStreamMatchesInput) {
  const int kN = 150;
  std::vector<Tuple> tuples = RandomIngestTuples(kN, 21);
  const std::string stream = EncodeIngestStream(tuples, 9, 45);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int client_fd = fds[0];

  // A deliberately tiny pool: the listener must exercise backpressure
  // (pause reads, let the kernel buffer absorb the producer).
  FrameConduitOptions copts;
  copts.buffer_bytes = 128;
  copts.num_buffers = 4;
  FrameConduit conduit(copts);
  FdListener listener(fds[1], &conduit);

  auto p = MakeIngestPlan(&conduit);
  PooledExecutorOptions opts;
  opts.pool_size = 2;
  PooledExecutor exec(opts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  WriteAllFd(client_fd, stream);
  ::shutdown(client_fd, SHUT_WR);  // EOF for the listener

  Status st = exec.Wait(id.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The query completes on the EOS *frame*; the listener sees the
  // socket EOF slightly later. Give it a moment.
  const auto eof_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!listener.eof() &&
         std::chrono::steady_clock::now() < eof_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(listener.eof());
  EXPECT_EQ(TupleStrings(p.sink->collected()), TupleStrings(tuples));
  // The tiny pool forced reuse: more acquires than buffers exist.
  EXPECT_GT(conduit.pool().acquires(), copts.num_buffers);
  ::close(client_fd);
}

TEST(FdListenerTest, FeedbackReachesTheClientSocket) {
  const int kN = 80;
  std::vector<Tuple> tuples = RandomIngestTuples(kN, 33);
  const std::string stream = EncodeIngestStream(tuples, 8);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int client_fd = fds[0];

  FrameConduit conduit;
  FdListener listener(fds[1], &conduit);

  // The sink plays the interactive application: after the 10th result
  // it declares the high-b subset unwanted.
  int seen = 0;
  auto driver = [&seen](const Tuple&,
                        TimeMs) -> std::vector<FeedbackPunctuation> {
    if (++seen == 10) {
      return {testing_util::FB("~[*,*,>=990]")};
    }
    return {};
  };
  auto p = MakeIngestPlan(&conduit, IngestSourceOptions{}, driver);
  PooledExecutorOptions opts;
  opts.pool_size = 2;
  PooledExecutor exec(opts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Send enough to trip the sink's trigger, but keep the stream OPEN:
  // the source parks idle, the sink's feedback wakes it on the control
  // path, and the frame crosses the socket while the query runs.
  std::string head = stream.substr(0, stream.size() / 2);
  std::string tail = stream.substr(stream.size() / 2);
  WriteAllFd(client_fd, head);

  std::string buf;
  FrameView f;
  size_t consumed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "feedback never reached the client socket";
    char tmp[256];
    ssize_t n = ::read(client_fd, tmp, sizeof(tmp));
    if (n > 0) buf.append(tmp, static_cast<size_t>(n));
    ASSERT_TRUE(ScanFrame(buf, &f, &consumed).ok());
    if (consumed > 0) break;
  }
  EXPECT_EQ(f.type, FrameType::kFeedback);
  FeedbackPunctuation fb;
  ASSERT_TRUE(DecodeFeedback(f.payload, &fb).ok());
  EXPECT_TRUE(fb.is_assumed());
  EXPECT_EQ(fb.pattern().ToString(),
            testing_util::FB("~[*,*,>=990]").pattern().ToString());

  // Now finish the stream and drain the query.
  WriteAllFd(client_fd, tail);
  ::shutdown(client_fd, SHUT_WR);
  Status st = exec.Wait(id.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The source exploited the feedback too: the guard sits at the edge
  // and dropped any post-feedback tuple it matched.
  EXPECT_EQ(p.source->admission_guards().size(), 1);
  EXPECT_EQ(p.sink->consumed() + p.source->stats().input_guard_drops,
            static_cast<uint64_t>(kN));
  EXPECT_GE(p.sink->consumed(), 10u);

  listener.Stop();
  ::close(client_fd);
}

TEST(FdListenerTest, StopDoesNotHangWhenPeerStopsReadingFeedback) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int client_fd = fds[0];
  // Minimize the engine-side send buffer so queued feedback overflows
  // the transport quickly (the kernel clamps to its floor, a few KiB).
  int sz = 1;
  ASSERT_EQ(
      ::setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz)), 0);

  FrameConduit conduit;
  FdListener listener(fds[1], &conduit);

  // Queue far more feedback bytes than the socket can absorb, with a
  // client that never reads the feedback direction. The write pump
  // must park on POLLOUT instead of blocking in write(2).
  for (int i = 0; i < 200; ++i) {
    std::string frame;
    AppendFeedbackFrame(&frame, testing_util::FB("~[*,*,>=1]"));
    conduit.PushFeedbackFrame(std::move(frame));
  }
  // Let the pump wedge against the full buffer, then Stop(): with a
  // blocking write this join()ed forever; now it must return promptly.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.Stop();
  ::close(client_fd);
}

}  // namespace
}  // namespace nstream
