// Seeded multi-producer soak against the TCP serving edge with
// network faults injected on the engine side (tests/testing/net_fault.h)
// and producer crashes injected on the client side: every producer
// repeatedly disconnects — sometimes mid-frame — reconnects with
// ReconnectBackoff pacing, and resumes from the engine-acknowledged
// offset. The contract under all of it, for every seed:
//
//   - the query completes (no hangs, no quarantines),
//   - the collected output is EXACTLY the union of the producers'
//     streams (at-least-once delivery + engine-side dedup = exactly
//     the multiset),
//   - per-producer arrival order survives.
//
// A failure replays from its seed number alone.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_client.h"
#include "ingest/ingest_source.h"
#include "ingest/tcp_acceptor.h"
#include "ingest_test_util.h"
#include "testing/net_fault.h"

namespace nstream {
namespace {

using testing_util::MakeIngestPlan;
using testing_util::MakeProducerStream;
using testing_util::ProducerStream;
using testing_util::TupleStrings;

using SteadyTime = std::chrono::steady_clock::time_point;

/// Best-effort full send: false the moment the socket breaks (the
/// soak EXPECTS broken sockets — the producer just reconnects).
bool TrySendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Read whole frames until one of type `want` arrives (heartbeats,
/// sheds, stale feedback are consumed), the deadline passes, or the
/// peer closes.
bool ReadFrame(int fd, FrameType want, std::string* payload,
               SteadyTime deadline, std::string* buf) {
  for (;;) {
    FrameView f;
    size_t consumed = 0;
    if (ScanFrame(*buf, &f, &consumed).ok() && consumed > 0) {
      const FrameType t = f.type;
      std::string p(f.payload);
      buf->erase(0, consumed);
      if (t == want) {
        *payload = std::move(p);
        return true;
      }
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    char tmp[4096];
    ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n > 0) {
      buf->append(tmp, static_cast<size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      return false;
    }
  }
}

/// Graceful half-close + drain (an abrupt close() is a simulated
/// crash: the RST may discard data the acceptor has not read yet).
void FinishAndClose(int fd, SteadyTime deadline) {
  ::shutdown(fd, SHUT_WR);
  char tmp[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n == 0) break;
    if (n < 0 && errno != EINTR) break;
  }
  ::close(fd);
}

/// One producer's life: connect → hello(resume = last acknowledged) →
/// read the fresh ack → send frames FROM THE RESUME OFFSET (the wire
/// contract: the ack informs the NEXT session's resume, the current
/// session must cover everything it declared) → crash at seeded
/// points, sometimes mid-frame → reconnect with backoff. After a
/// session survives to the end of the stream, a confirm hello on the
/// SAME connection asks for the engine's word; the producer is done
/// only once an ack covers every frame.
void RunProducer(const ProducerStream& s, int port, uint64_t seed,
                 SteadyTime deadline, bool* completed) {
  Rng rng(seed);
  ReconnectBackoffOptions bopts;
  bopts.base_delay_ms = 1;
  bopts.max_delay_ms = 20;
  bopts.seed = seed ^ 0x9e3779b97f4a7c15ull;
  ReconnectBackoff backoff(bopts);
  uint64_t last_ack = 0;

  while (std::chrono::steady_clock::now() < deadline) {
    Result<int> fd = TcpConnectLoopback(port);
    if (!fd.ok()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff.NextDelayMs()));
      continue;
    }
    const uint64_t resume = last_ack;
    std::string hello;
    AppendHelloFrame(&hello, 3, s.producer, resume);
    std::string rbuf;
    std::string payload;
    uint64_t ack = 0;
    if (!TrySendAll(fd.value(), hello) ||
        !ReadFrame(fd.value(), FrameType::kHelloAck, &payload,
                   std::chrono::steady_clock::now() +
                       std::chrono::seconds(2),
                   &rbuf) ||
        !DecodeHelloAck(payload, &ack).ok()) {
      ::close(fd.value());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff.NextDelayMs()));
      continue;
    }
    backoff.Reset();
    last_ack = ack;  // the engine's word beats our local cursor
    if (ack >= s.frames.size()) {
      FinishAndClose(fd.value(), deadline);
      *completed = true;
      return;
    }
    bool crashed = false;
    for (size_t i = resume; i < s.frames.size(); ++i) {
      const std::string& f = s.frames[i];
      if (rng.NextBernoulli(0.05)) {
        // Simulated crash; half the time mid-frame, so the acceptor
        // sees a torn prefix it must discard on disconnect.
        if (f.size() > 1 && rng.NextBernoulli(0.5)) {
          (void)TrySendAll(fd.value(),
                           std::string_view(f).substr(
                               0, 1 + rng.NextBounded(f.size() - 1)));
        }
        ::close(fd.value());
        crashed = true;
        break;
      }
      if (!TrySendAll(fd.value(), f)) {
        ::close(fd.value());
        crashed = true;
        break;
      }
    }
    if (!crashed) {
      // Confirm in-session: the hello rides the same ordered byte
      // stream as the frames before it, so its ack is proof they all
      // landed — no reconnect round-trip in the fault-free case.
      std::string confirm;
      AppendHelloFrame(&confirm, 3, s.producer,
                       static_cast<uint64_t>(s.frames.size()));
      rbuf.clear();
      if (TrySendAll(fd.value(), confirm) &&
          ReadFrame(fd.value(), FrameType::kHelloAck, &payload,
                    std::chrono::steady_clock::now() +
                        std::chrono::seconds(2),
                    &rbuf) &&
          DecodeHelloAck(payload, &ack).ok() && ack >= s.frames.size()) {
        FinishAndClose(fd.value(), deadline);
        *completed = true;
        return;
      }
      ::close(fd.value());
    }
    // Either way: reconnect and let the next ack say where we stand.
  }
}

TEST(IngestNetSoakTest, SeededFaultySoakDeliversExactlyOnce) {
  constexpr int kSeeds = 8;
  constexpr int kProducers = 3;
  uint64_t faults_total = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SteadyTime deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);

    FrameConduit conduit;
    NetFaultOptions fopts;
    fopts.seed = seed;
    fopts.p_reset = 0.02;  // engine-side resets force live resumes
    FaultyNetIo io(fopts);
    TcpAcceptorOptions aopts;
    aopts.io = &io;
    aopts.heartbeat_interval_ms = 10;  // noise the producers must skip
    TcpAcceptor acceptor(&conduit, aopts);
    ASSERT_TRUE(acceptor.Listen().ok());

    // No expected-EOS count: the soak ends the stream by stopping the
    // acceptor once every producer has CONFIRMED its stream landed, so
    // the source stays alive to ack however many reconnects the
    // faults force. (Exhaust-on-EOS-count is the other tests' job.)
    IngestSourceOptions sopts;
    sopts.multi_producer = true;
    auto p = MakeIngestPlan(&conduit, sopts);
    PooledExecutorOptions eopts;
    eopts.pool_size = 2;
    PooledExecutor exec(eopts);
    Result<QueryId> id = exec.Submit(p.plan.get());
    ASSERT_TRUE(id.ok()) << id.status().ToString();

    std::vector<ProducerStream> streams;
    std::multiset<std::string> expect;
    for (uint64_t producer = 1; producer <= kProducers; ++producer) {
      streams.push_back(MakeProducerStream(
          producer, 80, seed * 100 + producer, 5));
      for (const Tuple& t : streams.back().tuples) {
        expect.insert(t.ToString());
      }
    }
    bool completed[kProducers] = {false, false, false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kProducers; ++i) {
      threads.emplace_back([&, i] {
        RunProducer(streams[static_cast<size_t>(i)], acceptor.port(),
                    seed * 7919 + static_cast<uint64_t>(i), deadline,
                    &completed[i]);
      });
    }
    for (std::thread& t : threads) t.join();
    for (int i = 0; i < kProducers; ++i) {
      ASSERT_TRUE(completed[i])
          << "producer " << (i + 1) << " never finished its stream";
    }

    acceptor.Stop();  // every stream confirmed: end the edge
    Status st = exec.Wait(id.value());
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Exactly the union: resume covers every lost frame (at least
    // once), the acknowledged-offset skip removes every duplicate.
    EXPECT_EQ(TupleStrings(p.sink->collected()), expect);
    testing_util::ExpectPerProducerOrder(p.sink->collected());
    EXPECT_EQ(p.source->quarantined_producers(), 0u);

    AcceptorStats stats = acceptor.StatsReport();
    EXPECT_GE(stats.accepted, static_cast<uint64_t>(kProducers));
    faults_total += io.eintr_injected() + io.resets_injected() +
                    io.short_reads() + io.short_writes();
  }
  // The harness must actually have misbehaved, or the soak proved
  // nothing about fault tolerance.
  EXPECT_GT(faults_total, 0u);
}

}  // namespace
}  // namespace nstream
