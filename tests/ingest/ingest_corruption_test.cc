// Hostile-input suite for the ingest edge: every named corruption mode
// (bad magic, truncated header, truncated payload, oversized size
// field, mid-frame close, garbage after a valid stream, protocol-order
// violations) must surface as a clean Status from the run — never a
// crash, leak, or arena corruption (this suite runs under ASan/UBSan
// in CI). A seeded randomized sweep then flips/truncates/injects bytes
// at random positions: any Status outcome is acceptable, crashing is
// not.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "ingest/ingest_source.h"
#include "ingest_test_util.h"

namespace nstream {
namespace {

using testing_util::EncodeIngestStream;
using testing_util::MakeIngestPlan;
using testing_util::PrefilledConduit;
using testing_util::RandomIngestTuples;

/// Run `bytes` through an ingest → sink plan on the sync executor and
/// return the run's Status (conduit pre-filled, write side closed).
Status RunBytes(std::string_view bytes, uint64_t* tuples_out = nullptr) {
  auto conduit = PrefilledConduit(bytes);
  auto p = MakeIngestPlan(conduit.get());
  SyncExecutor exec;
  Status st = exec.Run(p.plan.get());
  if (tuples_out != nullptr) *tuples_out = p.sink->consumed();
  return st;
}

std::string ValidStream(int n = 30, uint64_t seed = 7) {
  return EncodeIngestStream(RandomIngestTuples(n, seed), 8, 16);
}

TEST(IngestCorruption, ValidStreamIsAccepted) {
  uint64_t consumed = 0;
  Status st = RunBytes(ValidStream(), &consumed);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(consumed, 30u);
}

TEST(IngestCorruption, BadMagicRejectsStream) {
  std::string bytes = ValidStream();
  bytes[0] ^= 0x5A;  // first frame's magic
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("magic"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, BadMagicMidStreamRejects) {
  std::string hello;
  AppendHelloFrame(&hello, 3);
  std::string bytes = ValidStream();
  bytes[hello.size()] ^= 0xFF;  // second frame's magic
  EXPECT_FALSE(RunBytes(bytes).ok());
}

TEST(IngestCorruption, TruncatedHeaderIsMidFrameClose) {
  std::string bytes = ValidStream();
  bytes.resize(bytes.size() - kFrameHeaderBytes + 3);  // tear last header
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mid-frame"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, TruncatedPayloadIsMidFrameClose) {
  std::vector<Tuple> tuples = RandomIngestTuples(10, 9);
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  AppendTupleBatchFrame(&bytes, tuples);
  bytes.resize(bytes.size() - 5);  // batch payload torn mid-tuple
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mid-frame"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, OversizedSizeFieldRejectsWithoutAllocating) {
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  const uint32_t huge = kMaxFramePayload + 1;
  std::string frame;
  const uint32_t magic = kFrameMagic;
  frame.append(reinterpret_cast<const char*>(&magic), 4);
  frame.append(reinterpret_cast<const char*>(&huge), 4);
  frame.push_back(static_cast<char>(FrameType::kTupleBatch));
  bytes += frame;  // header only: the size alone must kill the stream
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds limit"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, ForgedBatchCountRejectsBeforeReserve) {
  // A 4-byte payload claiming 2^30 tuples: the count/size plausibility
  // check must fire before any reservation.
  ByteWriter w;
  w.WriteU32(1u << 30);
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  const uint32_t magic = kFrameMagic;
  const uint32_t size = static_cast<uint32_t>(w.buffer().size());
  bytes.append(reinterpret_cast<const char*>(&magic), 4);
  bytes.append(reinterpret_cast<const char*>(&size), 4);
  bytes.push_back(static_cast<char>(FrameType::kTupleBatch));
  bytes += w.buffer();
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("impossible"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, ForgedPatternCountRejectsBeforeAllocating) {
  // A punctuation frame whose pattern claims 2^32-1 attrs in a 4-byte
  // payload: the count/remaining-bytes guard must fire before the
  // attrs vector is allocated (under ASan an actual multi-GB
  // allocation attempt would abort the run).
  ByteWriter w;
  w.WriteU32(0xFFFFFFFFu);
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  const uint32_t magic = kFrameMagic;
  const uint32_t size = static_cast<uint32_t>(w.buffer().size());
  bytes.append(reinterpret_cast<const char*>(&magic), 4);
  bytes.append(reinterpret_cast<const char*>(&size), 4);
  bytes.push_back(static_cast<char>(FrameType::kPunctuation));
  bytes += w.buffer();
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("impossible"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, UnknownFrameTypeRejects) {
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  const uint32_t magic = kFrameMagic;
  const uint32_t size = 0;
  bytes.append(reinterpret_cast<const char*>(&magic), 4);
  bytes.append(reinterpret_cast<const char*>(&size), 4);
  bytes.push_back(static_cast<char>(250));
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unknown frame type"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, GarbageAfterValidStreamRejects) {
  std::string bytes = ValidStream();
  bytes += "garbage bytes after a perfectly good stream";
  // The EOS frame was admitted; whatever follows (here: bad magic) is
  // an error, not silently ignored.
  EXPECT_FALSE(RunBytes(bytes).ok());
}

TEST(IngestCorruption, ValidFrameAfterEosRejects) {
  std::vector<Tuple> tuples = RandomIngestTuples(5, 13);
  std::string bytes = EncodeIngestStream(tuples, 5);
  AppendTupleBatchFrame(&bytes, tuples);  // well-formed, but after EOS
  Status st = RunBytes(bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("after EOS"), std::string::npos)
      << st.ToString();
}

TEST(IngestCorruption, ProtocolOrderViolations) {
  // No hello.
  {
    std::string bytes;
    AppendTupleBatchFrame(&bytes, RandomIngestTuples(3, 1));
    Status st = RunBytes(bytes);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("hello"), std::string::npos);
  }
  // Duplicate hello.
  {
    std::string bytes;
    AppendHelloFrame(&bytes, 3);
    AppendHelloFrame(&bytes, 3);
    Status st = RunBytes(bytes);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("duplicate hello"), std::string::npos);
  }
  // Wrong arity in hello.
  {
    std::string bytes;
    AppendHelloFrame(&bytes, 5);
    Status st = RunBytes(bytes);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("arity"), std::string::npos);
  }
  // Wrong arity in a tuple (hello says 3, tuples have 2).
  {
    std::string bytes;
    AppendHelloFrame(&bytes, 3);
    std::vector<Tuple> bad = {TupleBuilder().I64(1).I64(2).Build()};
    AppendTupleBatchFrame(&bytes, bad);
    Status st = RunBytes(bytes);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("arity"), std::string::npos);
  }
  // Feedback frame in the producer → engine direction.
  {
    std::string bytes;
    AppendHelloFrame(&bytes, 3);
    AppendFeedbackFrame(&bytes, testing_util::FB("~[*,*,>=5]"));
    Status st = RunBytes(bytes);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("engine-direction"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Seeded randomized sweep
// ---------------------------------------------------------------------------

TEST(IngestCorruption, RandomizedDamageNeverCrashes) {
  const std::string valid = ValidStream(40, 99);
  int rejected = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 0x9E3779B9u);
    std::string bytes = valid;
    switch (seed % 4) {
      case 0: {  // flip 1-4 random bytes
        const int flips = 1 + static_cast<int>(rng.NextBounded(4));
        for (int i = 0; i < flips; ++i) {
          bytes[rng.NextBounded(bytes.size())] ^=
              static_cast<char>(1 + rng.NextBounded(255));
        }
        break;
      }
      case 1:  // truncate at a random offset (mid-frame close)
        bytes.resize(1 + rng.NextBounded(bytes.size() - 1));
        break;
      case 2: {  // insert random garbage at a random offset
        std::string junk(1 + rng.NextBounded(24), '\0');
        for (char& c : junk) {
          c = static_cast<char>(rng.NextBounded(256));
        }
        bytes.insert(rng.NextBounded(bytes.size()), junk);
        break;
      }
      case 3: {  // delete a random span (desync)
        const size_t at = rng.NextBounded(bytes.size() - 2);
        const size_t len =
            1 + rng.NextBounded(std::min<size_t>(bytes.size() - at - 1, 32));
        bytes.erase(at, len);
        break;
      }
    }
    // Any Status outcome is fine (damage can land in tuple data and
    // still parse); crashing, hanging, or tripping a sanitizer is not.
    Status st = RunBytes(bytes);
    if (!st.ok()) ++rejected;
  }
  // The sweep must actually be exercising the error paths (most
  // damage desynchronizes the stream; flips inside tuple data and
  // truncation at an exact frame boundary legitimately pass).
  EXPECT_GE(rejected, 20);
}

}  // namespace
}  // namespace nstream
