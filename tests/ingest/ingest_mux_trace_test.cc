// Checkpoint/recovery across the MULTI-producer ingest edge: three
// producers' tagged frames interleave through one conduit with trace
// recording on, a checkpoint lands mid-stream under the deterministic
// scheduling harness, the plan crashes, and recovery replays the
// tagged trace (ReplayMuxTraceIntoConduit) into a rebuilt plan. The
// invariants the single-stream recovery test proves must survive the
// fan-in: the replay skips exactly the per-producer checkpointed
// prefixes, the re-recorded trace regains the prefix byte-for-byte,
// the combined output is at-least-once, and per-producer arrival
// order holds. A truncated replay still fails loudly, and a snapshot
// taken in one producer mode refuses to restore in the other.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "ingest/ingest_source.h"
#include "ingest/trace.h"
#include "ingest_test_util.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "testing/sched_harness.h"

namespace nstream {
namespace {

using testing_util::MakeIngestPlan;
using testing_util::MakeProducerStream;
using testing_util::ProducerStream;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;
using testing_util::TupleStrings;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

/// Hellos first (frames before a hello are a protocol violation), then
/// one frame per producer round-robin — the densest interleaving the
/// acceptor could produce, forced past the mux budget the way the
/// trace replayer does.
void InterleaveIntoConduit(const std::vector<ProducerStream>& streams,
                           FrameConduit* conduit) {
  for (const ProducerStream& s : streams) {
    conduit->ForceMuxFrame(s.producer, s.hello);
  }
  for (size_t i = 0;; ++i) {
    bool any = false;
    for (const ProducerStream& s : streams) {
      if (i < s.frames.size()) {
        conduit->ForceMuxFrame(s.producer, s.frames[i]);
        any = true;
      }
    }
    if (!any) break;
  }
  conduit->CloseWrite();
}

void ExpectAtLeastOnce(const std::multiset<std::string>& crash_free,
                       std::multiset<std::string> combined,
                       const std::string& label) {
  for (const std::string& s : crash_free) {
    auto it = combined.find(s);
    ASSERT_NE(it, combined.end())
        << label << ": result tuple LOST across recovery: " << s;
    combined.erase(it);
  }
  for (const std::string& s : combined) {
    EXPECT_GE(crash_free.count(s), 1u)
        << label << ": foreign tuple fabricated by recovery: " << s;
  }
}

// A snapshot records which producer mode wrote it; restoring it into a
// plan built in the OTHER mode must fail up front — the two layouts
// are not interchangeable, and a silent misparse would corrupt the
// acknowledged offsets at-least-once depends on.
TEST(IngestMuxTrace, SnapshotModeMismatchRejects) {
  FrameConduit conduit;
  IngestSource single("ingest", testing_util::IngestSchema(), &conduit);
  SnapshotWriter w;
  ASSERT_TRUE(single.SnapshotState(&w).ok());

  FrameConduit conduit2;
  IngestSourceOptions mopts;
  mopts.multi_producer = true;
  IngestSource multi("ingest", testing_util::IngestSchema(), &conduit2,
                     mopts);
  SnapshotReader r(w.buffer());
  Status st = multi.RestoreState(&r);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("producer mode"), std::string::npos);

  // And the other direction.
  SnapshotWriter mw;
  ASSERT_TRUE(multi.SnapshotState(&mw).ok());
  FrameConduit conduit3;
  IngestSource back("ingest", testing_util::IngestSchema(), &conduit3);
  SnapshotReader mr(mw.buffer());
  Status st2 = back.RestoreState(&mr);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.message().find("producer mode"), std::string::npos);
}

TEST(IngestMuxTrace, MultiModeSnapshotRoundTrip) {
  FrameConduit conduit;
  IngestSourceOptions opts;
  opts.multi_producer = true;
  IngestSource src("ingest", testing_util::IngestSchema(), &conduit, opts);
  ASSERT_TRUE(
      src.ProcessFeedback(0, testing_util::FB("~[*,*,>=900]")).ok());

  SnapshotWriter w;
  ASSERT_TRUE(src.SnapshotState(&w).ok());
  const std::string bytes = w.buffer();

  FrameConduit conduit2;
  IngestSource back("ingest", testing_util::IngestSchema(), &conduit2,
                    opts);
  SnapshotReader r(bytes);
  ASSERT_TRUE(back.RestoreState(&r).ok());
  ASSERT_TRUE(r.AtEnd());

  // Determinism: snapshot(restore(snapshot)) == snapshot.
  SnapshotWriter w2;
  ASSERT_TRUE(back.SnapshotState(&w2).ok());
  EXPECT_EQ(w2.buffer(), bytes);
}

TEST(IngestMuxTrace, CheckpointCrashReplayInterleavedProducers) {
  constexpr int kProducers = 3;
  constexpr int kTuplesEach = 90;

  std::vector<ProducerStream> streams;
  std::multiset<std::string> expect;
  for (uint64_t producer = 1; producer <= kProducers; ++producer) {
    streams.push_back(
        MakeProducerStream(producer, kTuplesEach, 400 + producer, 3));
    for (const Tuple& t : streams.back().tuples) {
      expect.insert(t.ToString());
    }
  }

  uint64_t acked_sum_all_seeds = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string ckpt =
        TempPath("mux_ckpt_" + std::to_string(seed) + ".nsp");
    const std::string trace =
        TempPath("mux_trace_" + std::to_string(seed) + ".bin");

    std::multiset<std::string> prefix;
    uint64_t acked_sum_at_ckpt = 0;
    {
      FrameConduit conduit;
      InterleaveIntoConduit(streams, &conduit);
      IngestSourceOptions opts;
      opts.multi_producer = true;
      opts.expected_eos_producers = kProducers;
      opts.trace_path = trace;
      opts.max_frames_per_produce = 2;  // stretch ingest across slices
      auto p = MakeIngestPlan(&conduit, opts);
      SchedHarnessOptions hopts;
      hopts.seed = seed;
      SchedHarness h(hopts);
      Result<QueryId> id = h.Submit(p.plan.get());
      ASSERT_TRUE(id.ok()) << id.status().ToString();

      ASSERT_TRUE(h.DriveFor(6 + seed * 3).ok());
      ASSERT_TRUE(h.scheduler()
                      ->StartCheckpoint(id.value(), CheckpointOptions{ckpt})
                      .ok());
      for (int guard = 0;; ++guard) {
        ASSERT_LT(guard, 1'000'000) << "checkpoint never finished";
        if (auto res = h.scheduler()->CheckpointResult(id.value())) {
          ASSERT_TRUE(res->ok()) << res->ToString();
          break;
        }
        Result<bool> stepped = h.DriveFor(1);
        ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
      }
      for (uint64_t producer = 1; producer <= kProducers; ++producer) {
        acked_sum_at_ckpt += p.source->acknowledged_offset(producer);
      }

      // Run on until the whole interleaved stream is admitted (the
      // trace is then complete), then crash mid-plan.
      while (!p.source->finished() && !h.scheduler()->AllDone()) {
        Result<bool> stepped = h.DriveFor(1);
        ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
        if (stepped.value()) break;
      }
      prefix = TupleStrings(p.sink->collected());
    }  // harness + plan destroyed mid-flight: the crash (the trace
       // writer flushes on destruction)

    Result<std::string> pre_crash = ReadTraceFile(trace);
    ASSERT_TRUE(pre_crash.ok()) << pre_crash.status().ToString();
    {
      FrameConduit conduit;
      ASSERT_TRUE(ReplayMuxTraceIntoConduit(trace, &conduit).ok());
      IngestSourceOptions opts;
      opts.multi_producer = true;
      opts.expected_eos_producers = kProducers;
      opts.trace_path = trace;  // re-record over the replayed file
      opts.max_frames_per_produce = 2;
      auto rebuilt = MakeIngestPlan(&conduit, opts);
      SchedHarnessOptions hopts;
      hopts.seed = seed + 100;
      SchedHarness h(hopts);
      Result<QueryId> id =
          h.scheduler()->SubmitRecovered(rebuilt.plan.get(), ckpt);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(h.Drive().ok());
      ASSERT_TRUE(h.Wait(id.value()).ok());

      // The replay skipped exactly the frames the checkpoint had
      // acknowledged, summed across producers; nothing was mistaken
      // for a live reconnect.
      EXPECT_EQ(rebuilt.source->replayed_skips(), acked_sum_at_ckpt);
      EXPECT_EQ(rebuilt.source->resume_skips(), 0u);
      EXPECT_EQ(rebuilt.source->quarantined_producers(), 0u);

      // The re-recorded trace regained the checkpointed prefix
      // byte-for-byte — tagged records, interleaving and all — so a
      // SECOND crash could recover from this file.
      Result<std::string> rerecorded = ReadTraceFile(trace);
      ASSERT_TRUE(rerecorded.ok()) << rerecorded.status().ToString();
      EXPECT_EQ(rerecorded.value(), pre_crash.value());

      std::multiset<std::string> combined = prefix;
      const std::multiset<std::string> recovered =
          TupleStrings(rebuilt.sink->collected());
      combined.insert(recovered.begin(), recovered.end());
      ExpectAtLeastOnce(expect, combined, "seed " + std::to_string(seed));
      testing_util::ExpectPerProducerOrder(rebuilt.sink->collected());
    }
    acked_sum_all_seeds += acked_sum_at_ckpt;
    std::remove(ckpt.c_str());
    std::remove(trace.c_str());
  }
  // At least one seed's checkpoint must land mid-stream, or the
  // replay-skip assertions above were all trivially 0 == 0.
  EXPECT_GT(acked_sum_all_seeds, 0u);
}

// A recovered multi-producer plan whose replay ends before covering
// the checkpointed per-producer offsets has lost admitted frames: the
// query must fail loudly, not close cleanly with the loss swallowed —
// and a producer whose hello never replays at all counts as the same
// loss.
TEST(IngestMuxTrace, TruncatedMuxReplayFailsCleanly) {
  constexpr int kProducers = 2;
  std::vector<ProducerStream> streams;
  for (uint64_t producer = 1; producer <= kProducers; ++producer) {
    streams.push_back(MakeProducerStream(producer, 40, 70 + producer, 4));
  }
  const std::string ckpt = TempPath("mux_ckpt_trunc.nsp");

  {
    FrameConduit conduit;
    InterleaveIntoConduit(streams, &conduit);
    IngestSourceOptions opts;
    opts.multi_producer = true;
    opts.expected_eos_producers = kProducers;
    opts.max_frames_per_produce = 2;
    auto p = MakeIngestPlan(&conduit, opts);
    SchedHarnessOptions hopts;
    hopts.seed = 3;
    SchedHarness h(hopts);
    Result<QueryId> id = h.Submit(p.plan.get());
    ASSERT_TRUE(id.ok());
    // Both producers must have acknowledged frames, or the truncation
    // below would lose nothing.
    for (int guard = 0;; ++guard) {
      ASSERT_LT(guard, 1'000'000) << "producers never made progress";
      if (p.source->acknowledged_offset(1) > 0 &&
          p.source->acknowledged_offset(2) > 0) {
        break;
      }
      ASSERT_TRUE(h.DriveFor(1).ok());
    }
    ASSERT_TRUE(h.scheduler()
                    ->StartCheckpoint(id.value(), CheckpointOptions{ckpt})
                    .ok());
    for (int guard = 0; guard < 1'000'000; ++guard) {
      if (auto res = h.scheduler()->CheckpointResult(id.value())) {
        ASSERT_TRUE(res->ok()) << res->ToString();
        break;
      }
      ASSERT_TRUE(h.DriveFor(1).ok());
    }
  }

  // Replay only producer 1's hello: its frames are missing (a short
  // replay) and producer 2 never shows up at all (a missing session).
  FrameConduit conduit;
  conduit.ForceMuxFrame(1, streams[0].hello);
  conduit.CloseWrite();
  IngestSourceOptions opts;
  opts.multi_producer = true;
  opts.expected_eos_producers = kProducers;
  auto rebuilt = MakeIngestPlan(&conduit, opts);
  SchedHarness h;
  Result<QueryId> id =
      h.scheduler()->SubmitRecovered(rebuilt.plan.get(), ckpt);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(h.Drive().ok());
  Status st = h.Wait(id.value());
  ASSERT_FALSE(st.ok()) << "truncated mux replay resolved OK";
  EXPECT_NE(st.message().find("short of the checkpointed offset"),
            std::string::npos)
      << st.ToString();
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace nstream
