// The fault-tolerant TCP serving edge, end to end: a real listening
// socket, N producer connections fanning into one conduit/source, and
// the robustness contracts — per-connection quarantine (a corrupt
// producer dies ALONE), session resume with engine-acknowledged
// offsets, heartbeats + idle reclaim, shedding under pressure, and
// the ReconnectBackoff policy producers pace retries with.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest_client.h"
#include "ingest/ingest_source.h"
#include "ingest/tcp_acceptor.h"
#include "ingest_test_util.h"

namespace nstream {
namespace {

using testing_util::MakeIngestPlan;
using testing_util::MakeProducerStream;
using testing_util::ProducerStream;
using testing_util::TupleStrings;

void WriteAllFd(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << "socket write failed: " << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
}

/// Graceful producer exit: half-close the write side, then drain
/// engine → producer frames (acks, heartbeats) until the acceptor
/// closes. An abrupt close() instead would RST the connection, and the
/// RST discards whatever the acceptor had not read yet — which is a
/// producer CRASH, not a clean end of stream.
void FinishAndClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  char tmp[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) continue;
    ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n == 0) break;
    if (n < 0 && errno != EINTR) break;
  }
  ::close(fd);
}

/// Read whole frames off `fd` until one of `want` arrives (others —
/// heartbeats, feedback — are consumed and counted), or `deadline`.
/// Returns the payload of the matched frame via out params.
bool ReadFrameOfType(int fd, std::initializer_list<FrameType> want,
                     FrameType* got, std::string* payload,
                     std::chrono::steady_clock::time_point deadline,
                     std::string* buf) {
  for (;;) {
    FrameView f;
    size_t consumed = 0;
    if (ScanFrame(*buf, &f, &consumed).ok() && consumed > 0) {
      const FrameType t = f.type;
      std::string p(f.payload);
      buf->erase(0, consumed);
      for (FrameType w : want) {
        if (t == w) {
          *got = t;
          *payload = std::move(p);
          return true;
        }
      }
      continue;  // not the one we want (heartbeat etc.): keep reading
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 50) <= 0) continue;
    char tmp[4096];
    ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n > 0) {
      buf->append(tmp, static_cast<size_t>(n));
    } else if (n == 0 || errno != EINTR) {
      return false;  // peer closed
    }
  }
}

// ---- Satellite: the reconnect backoff policy, standalone ----

TEST(ReconnectBackoffTest, ExactExponentialWithoutJitter) {
  ReconnectBackoffOptions opts;
  opts.base_delay_ms = 10;
  opts.max_delay_ms = 200;
  opts.multiplier = 2.0;
  opts.jitter = 0.0;
  ReconnectBackoff b(opts);
  EXPECT_EQ(b.NextDelayMs(), 10);
  EXPECT_EQ(b.NextDelayMs(), 20);
  EXPECT_EQ(b.NextDelayMs(), 40);
  EXPECT_EQ(b.NextDelayMs(), 80);
  EXPECT_EQ(b.NextDelayMs(), 160);
  EXPECT_EQ(b.NextDelayMs(), 200);  // capped
  EXPECT_EQ(b.NextDelayMs(), 200);
  EXPECT_EQ(b.attempts(), 7);
  b.Reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_EQ(b.NextDelayMs(), 10);  // schedule restarts from base
}

TEST(ReconnectBackoffTest, JitterIsBoundedAndSeeded) {
  ReconnectBackoffOptions opts;
  opts.base_delay_ms = 100;
  opts.max_delay_ms = 10'000;
  opts.multiplier = 2.0;
  opts.jitter = 0.25;
  opts.seed = 7;
  ReconnectBackoff a(opts);
  ReconnectBackoff same(opts);
  opts.seed = 8;
  ReconnectBackoff other(opts);
  bool any_diff = false;
  int64_t expected_base = 100;
  for (int i = 0; i < 8; ++i) {
    const int64_t d = a.NextDelayMs();
    // Within ±25% of the un-jittered step, and never above max+25%.
    EXPECT_GE(d, expected_base * 3 / 4);
    EXPECT_LE(d, expected_base * 5 / 4);
    EXPECT_EQ(d, same.NextDelayMs()) << "same seed must replay exactly";
    if (d != other.NextDelayMs()) any_diff = true;
    expected_base = std::min<int64_t>(expected_base * 2, 10'000);
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical jitter";
}

// ---- The serving edge proper ----

TEST(TcpAcceptorTest, MultiProducerFanInMatchesUnion) {
  FrameConduit conduit;
  TcpAcceptor acceptor(&conduit);
  ASSERT_TRUE(acceptor.Listen().ok());

  IngestSourceOptions sopts;
  sopts.multi_producer = true;
  sopts.expected_eos_producers = 3;
  auto p = MakeIngestPlan(&conduit, sopts);
  PooledExecutorOptions eopts;
  eopts.pool_size = 2;
  PooledExecutor exec(eopts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  std::vector<ProducerStream> streams;
  std::multiset<std::string> expect;
  for (uint64_t producer = 1; producer <= 3; ++producer) {
    streams.push_back(MakeProducerStream(producer, 120, producer * 11, 7));
    for (const Tuple& t : streams.back().tuples) {
      expect.insert(t.ToString());
    }
  }
  std::vector<std::thread> threads;
  for (const ProducerStream& s : streams) {
    threads.emplace_back([&s, &acceptor] {
      Result<int> fd = TcpConnectLoopback(acceptor.port());
      ASSERT_TRUE(fd.ok()) << fd.status().ToString();
      WriteAllFd(fd.value(), s.hello);
      for (const std::string& f : s.frames) WriteAllFd(fd.value(), f);
      FinishAndClose(fd.value());
    });
  }
  for (std::thread& t : threads) t.join();

  Status st = exec.Wait(id.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(TupleStrings(p.sink->collected()), expect);
  testing_util::ExpectPerProducerOrder(p.sink->collected());
  EXPECT_EQ(p.source->quarantined_producers(), 0u);

  AcceptorStats stats = acceptor.StatsReport();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.quarantined, 0u);
  // hello + batches + EOS per producer, all forwarded.
  uint64_t frames_expected = 0;
  for (const ProducerStream& s : streams) {
    frames_expected += 1 + s.frames.size();
  }
  EXPECT_EQ(stats.frames_forwarded, frames_expected);
  acceptor.Stop();
}

// The ISSUE's quarantine regression: one producer turns to garbage
// mid-stream; it must be cut off, counted, and told why — while a
// concurrent healthy producer finishes and the query completes with
// exactly the healthy data.
TEST(TcpAcceptorTest, QuarantineIsolatesCorruptProducer) {
  FrameConduit conduit;
  TcpAcceptor acceptor(&conduit);
  ASSERT_TRUE(acceptor.Listen().ok());

  IngestSourceOptions sopts;
  sopts.multi_producer = true;
  sopts.expected_eos_producers = 2;  // quarantine must count as done
  auto p = MakeIngestPlan(&conduit, sopts);
  PooledExecutorOptions eopts;
  eopts.pool_size = 2;
  PooledExecutor exec(eopts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  ProducerStream healthy = MakeProducerStream(1, 150, 5, 6);
  ProducerStream sick = MakeProducerStream(2, 40, 6, 6);

  std::thread healthy_thread([&] {
    Result<int> fd = TcpConnectLoopback(acceptor.port());
    ASSERT_TRUE(fd.ok());
    WriteAllFd(fd.value(), healthy.hello);
    for (const std::string& f : healthy.frames) {
      WriteAllFd(fd.value(), f);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    FinishAndClose(fd.value());
  });

  // The sick producer sends a valid hello + one valid batch, then raw
  // garbage that cannot be a frame header.
  Result<int> sick_fd = TcpConnectLoopback(acceptor.port());
  ASSERT_TRUE(sick_fd.ok());
  WriteAllFd(sick_fd.value(), sick.hello);
  WriteAllFd(sick_fd.value(), sick.frames[0]);
  WriteAllFd(sick_fd.value(), "\xff\xff\xff\xffgarbage-not-a-frame");

  // The acceptor must answer with a kError frame, then close.
  FrameType got = FrameType::kEos;
  std::string payload;
  std::string rbuf;
  ASSERT_TRUE(ReadFrameOfType(
      sick_fd.value(), {FrameType::kError}, &got, &payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(10), &rbuf))
      << "quarantined producer never received its error frame";
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &message).ok());
  EXPECT_NE(message.find("acceptor"), std::string::npos) << message;
  // ... and the socket reaches EOF (connection closed server-side).
  const auto eof_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    char tmp[256];
    ssize_t n = ::read(sick_fd.value(), tmp, sizeof(tmp));
    if (n == 0) break;
    if (n < 0 && errno != EINTR && errno != EAGAIN) break;
    ASSERT_LT(std::chrono::steady_clock::now(), eof_deadline)
        << "quarantined connection never closed";
  }
  ::close(sick_fd.value());
  healthy_thread.join();

  // The query survived and completed: healthy data intact, the sick
  // producer contributed exactly its pre-corruption frames.
  Status st = exec.Wait(id.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::multiset<std::string> collected = TupleStrings(p.sink->collected());
  std::multiset<std::string> expect = TupleStrings(healthy.tuples);
  for (size_t i = 0; i < 6; ++i) {  // sick batch 0 was admitted pre-garbage
    expect.insert(sick.tuples[i].ToString());
  }
  EXPECT_EQ(collected, expect);
  EXPECT_EQ(p.source->quarantined_producers(), 1u);

  AcceptorStats stats = acceptor.StatsReport();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  acceptor.Stop();
}

TEST(TcpAcceptorTest, HeartbeatsFlowAndIdleConnectionsClose) {
  FrameConduit conduit;
  TcpAcceptorOptions aopts;
  aopts.heartbeat_interval_ms = 5;
  aopts.idle_timeout_ms = 80;
  TcpAcceptor acceptor(&conduit, aopts);
  ASSERT_TRUE(acceptor.Listen().ok());

  IngestSourceOptions sopts;
  sopts.multi_producer = true;  // ends when the acceptor stops
  auto p = MakeIngestPlan(&conduit, sopts);
  PooledExecutorOptions eopts;
  eopts.pool_size = 2;
  PooledExecutor exec(eopts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok());

  Result<int> fd = TcpConnectLoopback(acceptor.port());
  ASSERT_TRUE(fd.ok());
  std::string hello;
  AppendHelloFrame(&hello, 3, /*producer_id=*/4, 0);
  WriteAllFd(fd.value(), hello);

  // Liveness: heartbeats arrive while we stay silent...
  FrameType got = FrameType::kEos;
  std::string payload;
  std::string rbuf;
  ASSERT_TRUE(ReadFrameOfType(
      fd.value(), {FrameType::kHeartbeat}, &got, &payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(10), &rbuf));

  // ...until the idle timeout reclaims the connection: EOF, not error.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool eof = false;
  while (std::chrono::steady_clock::now() < deadline) {
    char tmp[256];
    ssize_t n = ::read(fd.value(), tmp, sizeof(tmp));
    if (n == 0) {
      eof = true;
      break;
    }
    if (n < 0 && errno != EINTR) break;
  }
  EXPECT_TRUE(eof) << "idle connection was never closed";
  ::close(fd.value());

  AcceptorStats stats = acceptor.StatsReport();
  EXPECT_GE(stats.heartbeats_sent, 1u);
  EXPECT_EQ(stats.idle_closes, 1u);
  EXPECT_EQ(stats.quarantined, 0u);  // idle is reclaim, not punishment
  acceptor.Stop();
  ASSERT_TRUE(exec.Wait(id.value()).ok());
}

// Disconnect mid-stream, reconnect, resume: the hello-ack handshake
// tells the producer where the engine stands; duplicates the producer
// re-sends are skipped engine-side. Union of both sessions' output is
// exactly the stream — at-least-once with engine-side dedup.
TEST(TcpAcceptorTest, SessionResumeSkipsDuplicates) {
  FrameConduit conduit;
  TcpAcceptor acceptor(&conduit);
  ASSERT_TRUE(acceptor.Listen().ok());

  IngestSourceOptions sopts;
  sopts.multi_producer = true;
  sopts.expected_eos_producers = 1;
  auto p = MakeIngestPlan(&conduit, sopts);
  PooledExecutorOptions eopts;
  eopts.pool_size = 2;
  PooledExecutor exec(eopts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok());

  ProducerStream s = MakeProducerStream(9, 200, 17, 8);
  const size_t cut = s.frames.size() / 2;

  // Session 1: half the frames, then the connection dies.
  {
    Result<int> fd = TcpConnectLoopback(acceptor.port());
    ASSERT_TRUE(fd.ok());
    WriteAllFd(fd.value(), s.hello);
    for (size_t i = 0; i < cut; ++i) WriteAllFd(fd.value(), s.frames[i]);
    ::close(fd.value());
  }

  // Session 2: reconnect, declare a full rewind (resume 0), learn the
  // engine's acknowledged offset from the hello-ack, resend all.
  Result<int> fd = TcpConnectLoopback(acceptor.port());
  ASSERT_TRUE(fd.ok());
  WriteAllFd(fd.value(), s.hello);  // resume offset 0 again
  FrameType got = FrameType::kEos;
  std::string payload;
  std::string rbuf;
  ASSERT_TRUE(ReadFrameOfType(
      fd.value(), {FrameType::kHelloAck}, &got, &payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(10), &rbuf));
  uint64_t acknowledged = 0;
  ASSERT_TRUE(DecodeHelloAck(payload, &acknowledged).ok());
  // The engine admitted at most the frames session 1 sent; whatever
  // the count, resending everything must not duplicate output.
  EXPECT_LE(acknowledged, cut);
  for (const std::string& f : s.frames) WriteAllFd(fd.value(), f);
  FinishAndClose(fd.value());

  Status st = exec.Wait(id.value());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(TupleStrings(p.sink->collected()), TupleStrings(s.tuples));
  testing_util::ExpectPerProducerOrder(p.sink->collected());
  EXPECT_EQ(p.source->resume_skips(), acknowledged);
  EXPECT_EQ(p.source->quarantined_producers(), 0u);
  EXPECT_EQ(acceptor.StatsReport().reconnects, 1u);
  acceptor.Stop();
}

// A resume offset PAST the acknowledged one declares a gap: frames
// the engine never saw would vanish. That is a protocol violation —
// quarantined, never silently accepted.
TEST(TcpAcceptorTest, ResumeBeyondAcknowledgedIsQuarantined) {
  FrameConduit conduit;
  TcpAcceptor acceptor(&conduit);
  ASSERT_TRUE(acceptor.Listen().ok());

  IngestSourceOptions sopts;
  sopts.multi_producer = true;
  sopts.expected_eos_producers = 1;
  auto p = MakeIngestPlan(&conduit, sopts);
  PooledExecutorOptions eopts;
  eopts.pool_size = 2;
  PooledExecutor exec(eopts);
  Result<QueryId> id = exec.Submit(p.plan.get());
  ASSERT_TRUE(id.ok());

  Result<int> fd = TcpConnectLoopback(acceptor.port());
  ASSERT_TRUE(fd.ok());
  std::string hello;
  AppendHelloFrame(&hello, 3, /*producer_id=*/5, /*resume_offset=*/12);
  WriteAllFd(fd.value(), hello);

  FrameType got = FrameType::kEos;
  std::string payload;
  std::string rbuf;
  ASSERT_TRUE(ReadFrameOfType(
      fd.value(), {FrameType::kError}, &got, &payload,
      std::chrono::steady_clock::now() + std::chrono::seconds(10), &rbuf));
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &message).ok());
  EXPECT_NE(message.find("resume offset"), std::string::npos) << message;
  ::close(fd.value());

  ASSERT_TRUE(exec.Wait(id.value()).ok());
  EXPECT_EQ(p.sink->consumed(), 0u);
  EXPECT_EQ(p.source->quarantined_producers(), 1u);
  acceptor.Stop();
}

// Sustained conduit pressure (tiny budget, nobody draining) must turn
// into kShed advice on the wire — pace yourself, then thin — instead
// of unbounded queueing or silent stalls.
TEST(TcpAcceptorTest, ShedAdviceReachesProducersUnderPressure) {
  FrameConduitOptions copts;
  copts.buffer_bytes = 128;
  copts.num_buffers = 2;  // mux budget: 256 bytes
  FrameConduit conduit(copts);
  TcpAcceptorOptions aopts;
  aopts.shed_cooldown_ms = 5;
  TcpAcceptor acceptor(&conduit, aopts);
  ASSERT_TRUE(acceptor.Listen().ok());
  // No executor: the source never drains, pressure is guaranteed.

  Result<int> fd = TcpConnectLoopback(acceptor.port());
  ASSERT_TRUE(fd.ok());
  std::string hello;
  AppendHelloFrame(&hello, 3, /*producer_id=*/2, 0);
  WriteAllFd(fd.value(), hello);
  std::vector<Tuple> tuples = testing_util::SequencedTuples(2, 40, 3);
  std::string batch;
  AppendTupleBatchFrame(&batch, tuples);

  // Flood (non-blocking) while watching for the shed frame.
  FrameType got = FrameType::kEos;
  std::string payload;
  std::string rbuf;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool shed_seen = false;
  size_t wr_off = 0;
  while (!shed_seen && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::send(fd.value(), batch.data() + wr_off,
                       batch.size() - wr_off, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) wr_off = (wr_off + static_cast<size_t>(n)) % batch.size();
    shed_seen = ReadFrameOfType(
        fd.value(), {FrameType::kShed}, &got, &payload,
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20),
        &rbuf);
  }
  ASSERT_TRUE(shed_seen) << "no shed advice under sustained pressure";
  ShedIntent intent = ShedIntent::kSlowDown;
  uint32_t level = 0;
  ASSERT_TRUE(DecodeShed(payload, &intent, &level).ok());
  EXPECT_GT(level, 0u);

  AcceptorStats stats = acceptor.StatsReport();
  EXPECT_GE(stats.sheds_sent, 1u);
  EXPECT_GE(stats.backpressure_pauses, 1u);
  ::close(fd.value());
  acceptor.Stop();
}

}  // namespace
}  // namespace nstream
