// Shared scaffolding for the ingest test suite: a randomized workload
// generator, a wire-stream encoder, and a tiny ingest → sink plan
// runner usable under every executor.

#ifndef NSTREAM_TESTS_INGEST_INGEST_TEST_UTIL_H_
#define NSTREAM_TESTS_INGEST_INGEST_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/query_plan.h"
#include "exec/scheduler.h"
#include "exec/sync_executor.h"
#include "ingest/ingest_client.h"
#include "ingest/ingest_source.h"
#include "ops/sink.h"
#include "testing/test_util.h"

namespace nstream {
namespace testing_util {

/// The ingest test schema: <a: i64, s: string, b: i64>. The string in
/// the middle exercises inline (≤15 B), arena-spilled, and owned
/// storage on the zero-copy path.
inline SchemaPtr IngestSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"s", ValueType::kString},
                       {"b", ValueType::kInt64}});
}

/// Random tuples over IngestSchema: string lengths 0..24 straddle the
/// 15-byte inline boundary; ids are left 0 so both VectorSource and
/// IngestSource assign 1..n in arrival order.
inline std::vector<Tuple> RandomIngestTuples(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string s(rng.NextBounded(25), ' ');
    for (char& c : s) {
      c = static_cast<char>('a' + rng.NextBounded(26));
    }
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>(rng.NextBounded(100)))
                      .S(std::move(s))
                      .I64(static_cast<int64_t>(rng.NextBounded(1000)))
                      .Build());
  }
  return out;
}

/// Encode `tuples` as a full wire stream: hello, batches of
/// `batch_size`, a grouped punctuation every `punct_every` tuples
/// (0 = none), then EOS.
inline std::string EncodeIngestStream(const std::vector<Tuple>& tuples,
                                      size_t batch_size,
                                      size_t punct_every = 0) {
  std::string bytes;
  AppendHelloFrame(&bytes, 3);
  size_t sent = 0;
  while (sent < tuples.size()) {
    const size_t n = std::min(batch_size, tuples.size() - sent);
    AppendTupleBatchFrame(&bytes, tuples.data() + sent, n);
    sent += n;
    if (punct_every != 0 && sent % punct_every == 0) {
      AppendPunctuationFrame(
          &bytes, Punctuation(P("[<=" + std::to_string(sent) + ",*,*]")));
    }
  }
  AppendEosFrame(&bytes);
  return bytes;
}

/// IngestSource → CollectorSink over a caller-owned conduit.
struct IngestPlan {
  std::unique_ptr<QueryPlan> plan;
  IngestSource* source = nullptr;
  CollectorSink* sink = nullptr;
};

inline IngestPlan MakeIngestPlan(FrameConduit* conduit,
                                 IngestSourceOptions opts = {},
                                 CollectorSink::FeedbackDriver driver =
                                     nullptr) {
  IngestPlan out;
  out.plan = std::make_unique<QueryPlan>();
  out.source = out.plan->AddOp(std::make_unique<IngestSource>(
      "ingest", IngestSchema(), conduit, std::move(opts)));
  out.sink = out.plan->AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{}, std::move(driver)));
  EXPECT_TRUE(out.plan->Connect(*out.source, *out.sink).ok());
  return out;
}

/// Pre-fill a conduit with `bytes` (whole stream buffered, write side
/// closed) — the deterministic mode the sync/sim runs rely on. The
/// pool is sized to hold everything.
inline std::unique_ptr<FrameConduit> PrefilledConduit(
    std::string_view bytes) {
  FrameConduitOptions copts;
  copts.buffer_bytes = 1024;
  copts.num_buffers = bytes.size() / copts.buffer_bytes + 2;
  auto conduit = std::make_unique<FrameConduit>(copts);
  EXPECT_TRUE(conduit->WriteAll(bytes));
  conduit->CloseWrite();
  return conduit;
}

/// Tuples whose fields witness their origin: a = producer id, b =
/// per-producer sequence number. Lets multi-producer tests attribute
/// every collected row to its producer and assert per-producer order.
inline std::vector<Tuple> SequencedTuples(uint64_t producer, int n,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string s(rng.NextBounded(25), ' ');
    for (char& c : s) {
      c = static_cast<char>('a' + rng.NextBounded(26));
    }
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>(producer))
                      .S(std::move(s))
                      .I64(i)
                      .Build());
  }
  return out;
}

/// One producer's session against the multi-producer serving edge:
/// the hello (resume 0) plus the resumable frame list — batches then
/// EOS, indexed exactly as the wire protocol's per-producer frame
/// offsets, so tests can cut, resend, and resume at any index.
struct ProducerStream {
  uint64_t producer = 0;
  std::vector<Tuple> tuples;
  std::string hello;                // resume offset 0
  std::vector<std::string> frames;  // batches then EOS
};

inline ProducerStream MakeProducerStream(uint64_t producer, int n,
                                         uint64_t seed,
                                         size_t batch_size) {
  ProducerStream out;
  out.producer = producer;
  out.tuples = SequencedTuples(producer, n, seed);
  AppendHelloFrame(&out.hello, 3, producer, 0);
  size_t sent = 0;
  while (sent < out.tuples.size()) {
    const size_t k = std::min(batch_size, out.tuples.size() - sent);
    std::string f;
    AppendTupleBatchFrame(&f, out.tuples.data() + sent, k);
    out.frames.push_back(std::move(f));
    sent += k;
  }
  std::string eos;
  AppendEosFrame(&eos);
  out.frames.push_back(std::move(eos));
  return out;
}

/// Per-producer order check: rows attributed by field a (producer id)
/// must carry non-decreasing b (sequence). Cross-producer interleave
/// is free; within one producer the edge must preserve arrival order.
inline void ExpectPerProducerOrder(
    const std::vector<CollectedTuple>& rows) {
  std::map<int64_t, int64_t> last;
  for (const CollectedTuple& c : rows) {
    const int64_t producer = c.tuple.value(0).int64_value();
    const int64_t seq = c.tuple.value(2).int64_value();
    auto it = last.find(producer);
    if (it != last.end()) {
      EXPECT_GE(seq, it->second)
          << "producer " << producer << " rows reordered";
    }
    last[producer] = seq;
  }
}

inline std::multiset<std::string> TupleStrings(
    const std::vector<CollectedTuple>& rows) {
  std::multiset<std::string> out;
  for (const CollectedTuple& c : rows) out.insert(c.tuple.ToString());
  return out;
}

inline std::multiset<std::string> TupleStrings(
    const std::vector<Tuple>& tuples) {
  std::multiset<std::string> out;
  for (const Tuple& t : tuples) out.insert(t.ToString());
  return out;
}

}  // namespace testing_util
}  // namespace nstream

#endif  // NSTREAM_TESTS_INGEST_INGEST_TEST_UTIL_H_
