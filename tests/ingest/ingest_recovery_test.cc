// Checkpoint/recovery across the ingest edge: run a wire stream
// through IngestSource with trace recording on, checkpoint mid-stream
// under the deterministic scheduling harness, crash, then rebuild the
// plan and SubmitRecovered over the REPLAYED trace. The restored
// acknowledged-frame offset makes the source skip exactly the frames
// it had admitted at the barrier; PR 8's at-least-once invariant must
// hold: union(pre-crash output, recovered output) ⊇ the crash-free
// multiset, with any surplus being duplicates.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "ingest/ingest_source.h"
#include "ingest_test_util.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "testing/sched_harness.h"

namespace nstream {
namespace {

using testing_util::EncodeIngestStream;
using testing_util::MakeIngestPlan;
using testing_util::PrefilledConduit;
using testing_util::RandomIngestTuples;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;
using testing_util::TupleStrings;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

void ExpectAtLeastOnce(const std::multiset<std::string>& crash_free,
                       std::multiset<std::string> combined,
                       const std::string& label) {
  for (const std::string& s : crash_free) {
    auto it = combined.find(s);
    ASSERT_NE(it, combined.end())
        << label << ": result tuple LOST across recovery: " << s;
    combined.erase(it);
  }
  for (const std::string& s : combined) {
    EXPECT_GE(crash_free.count(s), 1u)
        << label << ": foreign tuple fabricated by recovery: " << s;
  }
}

// Snapshot round-trip of the IngestSource's own state, standalone.
TEST(IngestRecovery, SnapshotRestoreRoundTrip) {
  FrameConduit conduit;
  IngestSource src("ingest", testing_util::IngestSchema(), &conduit);
  ASSERT_TRUE(
      src.ProcessFeedback(0, testing_util::FB("~[*,*,>=900]")).ok());

  SnapshotWriter w;
  ASSERT_TRUE(src.SnapshotState(&w).ok());
  const std::string bytes = w.buffer();

  FrameConduit conduit2;
  IngestSource back("ingest", testing_util::IngestSchema(), &conduit2);
  SnapshotReader r(bytes);
  ASSERT_TRUE(back.RestoreState(&r).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(back.admitted_frames(), src.admitted_frames());
  EXPECT_EQ(back.admission_guards().size(), 1);
  EXPECT_EQ(back.admission_guards().patterns()[0].ToString(),
            src.admission_guards().patterns()[0].ToString());

  // Determinism: snapshot(restore(snapshot)) == snapshot.
  SnapshotWriter w2;
  ASSERT_TRUE(back.SnapshotState(&w2).ok());
  EXPECT_EQ(w2.buffer(), bytes);
}

TEST(IngestRecovery, CheckpointCrashReplayFromTrace) {
  const int kN = 400;
  std::vector<Tuple> tuples = RandomIngestTuples(kN, 71);
  const std::string stream = EncodeIngestStream(tuples, 4, 40);
  const std::multiset<std::string> expect = TupleStrings(tuples);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string ckpt =
        TempPath("ingest_ckpt_" + std::to_string(seed) + ".nsp");
    const std::string trace =
        TempPath("ingest_trace_" + std::to_string(seed) + ".bin");

    std::multiset<std::string> prefix;
    uint64_t admitted_at_ckpt = 0;
    uint64_t admitted_at_crash = 0;
    {
      auto conduit = PrefilledConduit(stream);
      IngestSourceOptions opts;
      opts.trace_path = trace;
      opts.max_frames_per_produce = 2;  // stretch ingest across slices
      auto p = MakeIngestPlan(conduit.get(), opts);
      SchedHarnessOptions hopts;
      hopts.seed = seed;
      SchedHarness h(hopts);
      Result<QueryId> id = h.Submit(p.plan.get());
      ASSERT_TRUE(id.ok()) << id.status().ToString();

      // Drive partway in, checkpoint mid-ingestion.
      ASSERT_TRUE(h.DriveFor(6 + seed * 3).ok());
      ASSERT_TRUE(h.scheduler()
                      ->StartCheckpoint(id.value(), CheckpointOptions{ckpt})
                      .ok());
      for (int guard = 0;; ++guard) {
        ASSERT_LT(guard, 1'000'000) << "checkpoint never finished";
        if (auto res = h.scheduler()->CheckpointResult(id.value())) {
          ASSERT_TRUE(res->ok()) << res->ToString();
          break;
        }
        Result<bool> stepped = h.DriveFor(1);
        ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
      }
      admitted_at_ckpt = p.source->admitted_frames();

      // Keep running until the source has admitted the WHOLE stream
      // (the trace is then complete), then crash mid-plan.
      while (!p.source->finished() && !h.scheduler()->AllDone()) {
        Result<bool> stepped = h.DriveFor(1);
        ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
        if (stepped.value()) break;
      }
      admitted_at_crash = p.source->admitted_frames();
      ASSERT_GE(admitted_at_crash, admitted_at_ckpt);
      prefix = TupleStrings(p.sink->collected());
    }  // harness + plan destroyed mid-flight: the crash (the trace
       // writer flushes on destruction)

    // Recovery: identical plan, the recorded trace replayed through a
    // fresh conduit, state restored from the checkpoint. The rebuilt
    // source records to the SAME trace path it is replaying from (the
    // natural durable setup): the replay reads the whole file into
    // the conduit before the plan opens (and truncates) it, and the
    // skip path re-appends the checkpointed prefix.
    Result<std::string> pre_crash_trace = ReadTraceFile(trace);
    ASSERT_TRUE(pre_crash_trace.ok()) << pre_crash_trace.status().ToString();
    {
      auto conduit = std::make_unique<FrameConduit>([&] {
        FrameConduitOptions copts;
        copts.buffer_bytes = 1024;
        copts.num_buffers = stream.size() / copts.buffer_bytes + 2;
        return copts;
      }());
      ASSERT_TRUE(ReplayTraceIntoConduit(trace, conduit.get()).ok());
      auto rebuilt = MakeIngestPlan(conduit.get(),
                                    IngestSourceOptions{2, true, trace});
      SchedHarnessOptions hopts;
      hopts.seed = seed + 100;
      SchedHarness h(hopts);
      Result<QueryId> id =
          h.scheduler()->SubmitRecovered(rebuilt.plan.get(), ckpt);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(h.Drive().ok());
      ASSERT_TRUE(h.Wait(id.value()).ok());

      // The replay skipped exactly the checkpointed frame prefix and
      // re-admitted every post-checkpoint frame in the trace.
      EXPECT_EQ(rebuilt.source->replayed_skips(), admitted_at_ckpt);
      EXPECT_EQ(rebuilt.source->admitted_frames(), admitted_at_crash);

      // The re-recorded trace regained the checkpointed prefix
      // byte-for-byte: a SECOND crash could recover from this file.
      Result<std::string> rerecorded = ReadTraceFile(trace);
      ASSERT_TRUE(rerecorded.ok()) << rerecorded.status().ToString();
      EXPECT_EQ(rerecorded.value(), pre_crash_trace.value());

      std::multiset<std::string> combined = prefix;
      const std::multiset<std::string> recovered =
          TupleStrings(rebuilt.sink->collected());
      combined.insert(recovered.begin(), recovered.end());
      ExpectAtLeastOnce(expect, combined, "seed " + std::to_string(seed));
    }
    std::remove(ckpt.c_str());
    std::remove(trace.c_str());
  }
}

// A recovered source whose replay stream is SHORTER than the
// acknowledged offset (truncated trace) has lost admitted frames: it
// must fail LOUDLY — a clean close mid-skip would silently violate
// at-least-once — and must not hang.
TEST(IngestRecovery, TruncatedReplayFailsCleanly) {
  const int kN = 60;
  std::vector<Tuple> tuples = RandomIngestTuples(kN, 5);
  const std::string stream = EncodeIngestStream(tuples, 6);
  const std::string ckpt = TempPath("ingest_ckpt_trunc.nsp");

  {
    auto conduit = PrefilledConduit(stream);
    IngestSourceOptions opts;
    opts.max_frames_per_produce = 2;
    auto p = MakeIngestPlan(conduit.get(), opts);
    SchedHarnessOptions hopts;
    hopts.seed = 3;
    SchedHarness h(hopts);
    Result<QueryId> id = h.Submit(p.plan.get());
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(h.DriveFor(8).ok());
    ASSERT_TRUE(h.scheduler()
                    ->StartCheckpoint(id.value(), CheckpointOptions{ckpt})
                    .ok());
    for (int guard = 0; guard < 1'000'000; ++guard) {
      if (auto res = h.scheduler()->CheckpointResult(id.value())) {
        ASSERT_TRUE(res->ok()) << res->ToString();
        break;
      }
      ASSERT_TRUE(h.DriveFor(1).ok());
    }
    ASSERT_GT(p.source->admitted_frames(), 2u);
  }

  // Replay only the hello frame: fewer frames than the acknowledged
  // offset → the source runs out mid-skip and fails the query, not
  // hangs and not resolves OK with the lost frames swallowed.
  std::string short_stream;
  AppendHelloFrame(&short_stream, 3);
  auto conduit = PrefilledConduit(short_stream);
  auto rebuilt = MakeIngestPlan(conduit.get());
  SchedHarness h;
  Result<QueryId> id =
      h.scheduler()->SubmitRecovered(rebuilt.plan.get(), ckpt);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(h.Drive().ok());
  Status st = h.Wait(id.value());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("short of the checkpointed offset"),
            std::string::npos)
      << st.ToString();
  // Nothing was emitted: every frame that did arrive was skipped.
  EXPECT_EQ(rebuilt.sink->consumed(), 0u);
  EXPECT_GT(rebuilt.source->replayed_skips(), 0u);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace nstream
