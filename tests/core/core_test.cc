#include <gtest/gtest.h>

#include "core/aggregate_feedback.h"
#include "core/characterization.h"
#include "core/correctness.h"
#include "core/guards.h"
#include "core/propagation.h"
#include "core/schema_map.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::P;

// ---------------------------------------------------------------- Guards

TEST(GuardSetTest, BlocksMatchingTuples) {
  GuardSet g;
  EXPECT_TRUE(g.Add(P("[*,>=50]")));
  EXPECT_TRUE(g.Blocks(TupleBuilder().I64(1).D(55).Build()));
  EXPECT_FALSE(g.Blocks(TupleBuilder().I64(1).D(45).Build()));
}

TEST(GuardSetTest, AddDedupsSubsumedPatterns) {
  GuardSet g;
  EXPECT_TRUE(g.Add(P("[*,>=50]")));
  EXPECT_FALSE(g.Add(P("[*,>=60]")));  // already covered
  EXPECT_EQ(g.size(), 1);
  // A wider pattern replaces the narrower one.
  EXPECT_TRUE(g.Add(P("[*,>=40]")));
  EXPECT_EQ(g.size(), 1);
  EXPECT_TRUE(g.Blocks(TupleBuilder().I64(0).D(41).Build()));
}

TEST(GuardSetTest, ExpireCoveredRemovesDeadGuards) {
  GuardSet g;
  g.Add(P("[<=t:1000,*]"));  // time-bounded: will be covered
  g.Add(P("[*,>=50]"));      // value-bounded: never covered by time
  // Punctuation: no more tuples with ts <= 5000 — only the first guard
  // is fully covered (can never block again).
  Punctuation punct(P("[<=t:5000,*]"));
  EXPECT_EQ(g.ExpireCovered(punct), 1);
  EXPECT_EQ(g.size(), 1);
  EXPECT_EQ(g.total_expired(), 1u);
}

TEST(GuardSetTest, CountersTrackLifetime) {
  GuardSet g;
  g.Add(P("[1,*]"));
  g.Blocks(TupleBuilder().I64(1).D(0).Build());
  g.Blocks(TupleBuilder().I64(2).D(0).Build());
  EXPECT_EQ(g.total_installed(), 1u);
  EXPECT_EQ(g.total_blocked(), 1u);
}

// ------------------------------------------------------------- SchemaMap

TEST(SchemaMapTest, IdentityMapsEveryAttr) {
  SchemaMap m = SchemaMap::Identity(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.InputIndex(i, 0), std::optional<int>(i));
    EXPECT_TRUE(m.IsMapped(i));
  }
}

TEST(SchemaMapTest, ProjectionMarksComputedAttrs) {
  SchemaMap m = SchemaMap::Projection({2, -1, 0});
  EXPECT_EQ(m.InputIndex(0, 0), std::optional<int>(2));
  EXPECT_FALSE(m.IsMapped(1));
  EXPECT_EQ(m.InputIndex(2, 0), std::optional<int>(0));
}

TEST(SchemaMapTest, MapValidatesRanges) {
  SchemaMap m(2, 3);
  EXPECT_TRUE(m.Map(0, 0, 5).ok());
  EXPECT_FALSE(m.Map(3, 0, 0).ok());
  EXPECT_FALSE(m.Map(0, 2, 0).ok());
  EXPECT_FALSE(m.Map(0, 0, -1).ok());
}

// --------------------------------------------------- Safe propagation §4.2

SchemaMap JoinMapATIdB() {
  // A(a,t,id) ⋈ B(t,id,b) → C(a,t,id,b)
  SchemaMap m(2, 4);
  EXPECT_TRUE(m.Map(0, 0, 0).ok());
  EXPECT_TRUE(m.Map(1, 0, 1).ok());
  EXPECT_TRUE(m.Map(1, 1, 0).ok());
  EXPECT_TRUE(m.Map(2, 0, 2).ok());
  EXPECT_TRUE(m.Map(2, 1, 1).ok());
  EXPECT_TRUE(m.Map(3, 1, 2).ok());
  return m;
}

TEST(PropagationTest, JoinAttrsPropagateToBothInputs) {
  SchemaMap m = JoinMapATIdB();
  PunctPattern f = P("[*,3,4,*]");
  Result<PunctPattern> to_a = DeriveForInput(f, m, 0, 3);
  Result<PunctPattern> to_b = DeriveForInput(f, m, 1, 3);
  ASSERT_TRUE(to_a.ok());
  ASSERT_TRUE(to_b.ok());
  EXPECT_EQ(to_a.value(), P("[*,3,4]"));  // ¬[*,3,4] to A
  EXPECT_EQ(to_b.value(), P("[3,4,*]"));  // ¬[3,4,*] to B
}

TEST(PropagationTest, LeftOnlyAttrPropagatesToLeftOnly) {
  SchemaMap m = JoinMapATIdB();
  PunctPattern f = P("[50,*,*,*]");
  Result<PunctPattern> to_a = DeriveForInput(f, m, 0, 3);
  ASSERT_TRUE(to_a.ok());
  EXPECT_EQ(to_a.value(), P("[50,*,*]"));
  EXPECT_TRUE(DeriveForInput(f, m, 1, 3).status().IsUnsafe());
}

TEST(PropagationTest, SplitConstraintsHaveNoSafePropagation) {
  // The paper's counterexample: ¬[50,*,*,50] must not be pushed to
  // either input — it would suppress <49,2,3,50>.
  SchemaMap m = JoinMapATIdB();
  PunctPattern f = P("[50,*,*,50]");
  EXPECT_FALSE(CanPropagate(f, m, 0));
  EXPECT_FALSE(CanPropagate(f, m, 1));
}

TEST(PropagationTest, AllWildcardPropagatesNowhere) {
  SchemaMap m = JoinMapATIdB();
  EXPECT_FALSE(CanPropagate(PunctPattern::AllWildcard(4), m, 0));
}

TEST(PropagationTest, DeriveAllMatchesPerInputResults) {
  SchemaMap m = JoinMapATIdB();
  auto all = DeriveAll(P("[*,3,4,*]"), m, {3, 3});
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(all[0].has_value());
  EXPECT_TRUE(all[1].has_value());
  auto split = DeriveAll(P("[50,*,*,50]"), m, {3, 3});
  EXPECT_FALSE(split[0].has_value());
  EXPECT_FALSE(split[1].has_value());
}

TEST(PropagationTest, SuppressionSoundness) {
  // Any tuple suppressed upstream must only remove covered outputs:
  // probe a grid of joined tuples; if the derived input pattern drops
  // the input tuple, every join output it could produce must match f.
  SchemaMap m = JoinMapATIdB();
  PunctPattern f = P("[*,3,4,*]");
  Result<PunctPattern> to_a = DeriveForInput(f, m, 0, 3);
  ASSERT_TRUE(to_a.ok());
  for (int64_t a = 0; a < 5; ++a) {
    for (int64_t t = 0; t < 5; ++t) {
      for (int64_t id = 0; id < 5; ++id) {
        Tuple left = TupleBuilder().I64(a).I64(t).I64(id).Build();
        if (!to_a.value().Matches(left)) continue;
        for (int64_t b = 0; b < 5; ++b) {
          Tuple joined =
              TupleBuilder().I64(a).I64(t).I64(id).I64(b).Build();
          EXPECT_TRUE(f.Matches(joined))
              << "suppressing " << left.ToString()
              << " would lose uncovered output " << joined.ToString();
        }
      }
    }
  }
}

// ------------------------------------------- Aggregate feedback decisions

struct DecisionCase {
  const char* pattern;
  AggMonotonicity mono;
  bool purge_groups;
  bool purge_by_partial;
  bool guard_output;
};

class DecideAggFeedbackTest
    : public ::testing::TestWithParam<DecisionCase> {};

TEST_P(DecideAggFeedbackTest, MatchesExpectedActions) {
  const DecisionCase& c = GetParam();
  AggFeedbackDecision d =
      DecideAggFeedback(P(c.pattern), {0, 1}, {2}, c.mono);
  EXPECT_EQ(d.purge_groups, c.purge_groups) << c.pattern;
  EXPECT_EQ(d.purge_by_partial, c.purge_by_partial) << c.pattern;
  EXPECT_EQ(d.guard_output, c.guard_output) << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Table1AndSection35, DecideAggFeedbackTest,
    ::testing::Values(
        // COUNT-like (non-decreasing): the four Table 1 rows.
        DecisionCase{"[*,3,*]", AggMonotonicity::kNonDecreasing, true,
                     false, false},
        DecisionCase{"[*,*,7]", AggMonotonicity::kNonDecreasing, false,
                     false, true},
        DecisionCase{"[*,*,>=7]", AggMonotonicity::kNonDecreasing,
                     false, true, true},
        DecisionCase{"[*,*,<=7]", AggMonotonicity::kNonDecreasing,
                     false, false, true},
        // AVERAGE (§3.5): never purge on a value bound.
        DecisionCase{"[*,*,>=50]", AggMonotonicity::kNone, false, false,
                     true},
        DecisionCase{"[*,*,<=50]", AggMonotonicity::kNone, false, false,
                     true},
        // MIN (non-increasing): the mirror-image bound is purgeable.
        DecisionCase{"[*,*,<=7]", AggMonotonicity::kNonIncreasing,
                     false, true, true},
        DecisionCase{"[*,*,>=7]", AggMonotonicity::kNonIncreasing,
                     false, false, true},
        // Mixed group + monotone-valid bound: purge by partial.
        DecisionCase{"[*,3,>=7]", AggMonotonicity::kNonDecreasing,
                     false, true, true},
        // Group-only works for any monotonicity.
        DecisionCase{"[<=t:5000,*,*]", AggMonotonicity::kNone, true,
                     false, false}));

TEST(DecideAggFeedbackTest, AllWildcardIsNullResponse) {
  AggFeedbackDecision d = DecideAggFeedback(
      P("[*,*,*]"), {0, 1}, {2}, AggMonotonicity::kNonDecreasing);
  EXPECT_TRUE(d.null_response);
}

TEST(DecideAggFeedbackTest, UnknownAttrIsOutputGuardOnly) {
  // Constraint on an attribute that is neither group nor aggregate.
  AggFeedbackDecision d = DecideAggFeedback(
      P("[*,*,5]"), {0}, {1}, AggMonotonicity::kNonDecreasing);
  EXPECT_TRUE(d.guard_output);
  EXPECT_FALSE(d.purge_groups);
}

TEST(PartialImpliesFinalTest, ShapeByMonotonicity) {
  AttrPattern ge = AttrPattern::Ge(Value::Int64(5));
  AttrPattern le = AttrPattern::Le(Value::Int64(5));
  AttrPattern eq = AttrPattern::Eq(Value::Int64(5));
  EXPECT_TRUE(PartialImpliesFinal(ge, AggMonotonicity::kNonDecreasing));
  EXPECT_FALSE(PartialImpliesFinal(le, AggMonotonicity::kNonDecreasing));
  EXPECT_FALSE(PartialImpliesFinal(eq, AggMonotonicity::kNonDecreasing));
  EXPECT_TRUE(PartialImpliesFinal(le, AggMonotonicity::kNonIncreasing));
  EXPECT_FALSE(PartialImpliesFinal(ge, AggMonotonicity::kNone));
}

// -------------------------------------------------- Correctness (Def. 1)

std::vector<Tuple> Tuples(std::initializer_list<int64_t> keys) {
  std::vector<Tuple> out;
  for (int64_t k : keys) out.push_back(TupleBuilder().I64(k).Build());
  return out;
}

TEST(CorrectnessTest, NullResponseIsCorrect) {
  auto base = Tuples({1, 2, 3, 4});
  ExploitationCheck c =
      CheckCorrectExploitation(base, base, P("[>=3]"));
  EXPECT_TRUE(c.correct);
  EXPECT_EQ(c.suppressed, 0);
  EXPECT_EQ(c.covered_in_baseline, 2);
}

TEST(CorrectnessTest, MaximumExploitationIsCorrect) {
  auto base = Tuples({1, 2, 3, 4});
  auto exploited = Tuples({1, 2});
  ExploitationCheck c =
      CheckCorrectExploitation(base, exploited, P("[>=3]"));
  EXPECT_TRUE(c.correct);
  EXPECT_EQ(c.suppressed, 2);
}

TEST(CorrectnessTest, LosingUncoveredTupleIsViolation) {
  auto base = Tuples({1, 2, 3});
  auto exploited = Tuples({1});  // lost "2", which f does not cover
  ExploitationCheck c =
      CheckCorrectExploitation(base, exploited, P("[>=3]"));
  EXPECT_FALSE(c.correct);
  EXPECT_EQ(c.missing_uncovered, 1);
}

TEST(CorrectnessTest, InventedTupleIsViolation) {
  auto base = Tuples({1, 2});
  auto exploited = Tuples({1, 2, 9});
  ExploitationCheck c =
      CheckCorrectExploitation(base, exploited, P("[>=3]"));
  EXPECT_FALSE(c.correct);
  EXPECT_EQ(c.extra, 1);
}

TEST(CorrectnessTest, MultisetSemantics) {
  auto base = Tuples({5, 5, 5});
  auto exploited = Tuples({5});  // two copies suppressed
  ExploitationCheck c =
      CheckCorrectExploitation(base, exploited, P("[>=3]"));
  EXPECT_TRUE(c.correct);
  EXPECT_EQ(c.suppressed, 2);
}

TEST(CorrectnessTest, OrderInsensitive) {
  auto base = Tuples({1, 2, 3});
  auto exploited = Tuples({3, 1, 2});
  EXPECT_TRUE(
      CheckCorrectExploitation(base, exploited, P("[>=9]")).correct);
}

// --------------------------------------------------- Characterizations

TEST(CharacterizationTest, TablesHaveThePaperRowCounts) {
  EXPECT_EQ(Table1Count().size(), 4u);
  EXPECT_EQ(Table2Join().size(), 4u);
  std::string rendered =
      RenderCharacterization("Table 1", Table1Count());
  EXPECT_NE(rendered.find("guard output"), std::string::npos);
}

}  // namespace
}  // namespace nstream
