// ColumnarBlock / Page layout unit tests: SoA storage semantics
// (Set's string re-homing, per-column class tracking), selection
// vectors as index edits (KeepIf composition, stable
// PartitionSelection), in-place projection, row materialization
// (scratch FillRow, aliased and owned gathers, EnsureRowLayout), the
// arena-ownership invariant behind the wholesale page free, and the
// compiled-pattern purge over columnar pages — including the hoisted
// all-int64 path.

#include "stream/columnar.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "punct/compiled_pattern.h"
#include "punct/punct_pattern.h"
#include "stream/page.h"
#include "types/tuple.h"
#include "types/tuple_arena.h"
#include "types/value.h"

namespace nstream {
namespace {

// A 3-column block: [int64 key, timestamp, string payload], n rows.
// Payloads alternate inline-short and past-inline lengths so Set's
// string re-homing is exercised both ways.
ColumnarBlock* FillBlock(Page* page, int n) {
  ColumnarBlock* b = page->BeginColumnar(3, static_cast<uint32_t>(n));
  EXPECT_NE(b, nullptr);
  for (int i = 0; i < n; ++i) {
    uint32_t r = b->AddRow(/*id=*/1000 + i, /*arrival=*/10 * i);
    b->Set(0, r, Value::Int64(i));
    b->Set(1, r, Value::Timestamp(100 + i));
    std::string payload = "p-" + std::to_string(i);
    if (i % 2 == 0) payload += "-well-past-the-inline-cap";
    b->Set(2, r, Value::String(payload));
  }
  return b;
}

TEST(ColumnarBlockTest, AddRowSetAndColumnAccess) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 8);
  EXPECT_EQ(b->cols(), 3u);
  EXPECT_EQ(b->rows(), 8u);
  EXPECT_EQ(b->size(), 8u);
  EXPECT_TRUE(b->full());
  EXPECT_EQ(page.size(), 8u);
  EXPECT_FALSE(page.empty());
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(b->row_at(i), i);  // no selection yet: identity
    EXPECT_EQ(b->ids()[i], 1000 + static_cast<int64_t>(i));
    EXPECT_EQ(b->arrivals()[i], static_cast<TimeMs>(10 * i));
    EXPECT_EQ(b->column(0)[i].int64_value(), static_cast<int64_t>(i));
    EXPECT_EQ(b->column(1)[i].int64_value(), 100 + static_cast<int64_t>(i));
  }
  // Column classes: int64-imaged (kInt64 and kTimestamp both), string.
  EXPECT_EQ(b->column_class(0), ColumnClass::kInt64);
  EXPECT_EQ(b->column_class(1), ColumnClass::kInt64);
  EXPECT_EQ(b->column_class(2), ColumnClass::kMixed);
}

TEST(ColumnarBlockTest, ColumnClassLattice) {
  Page page;
  ColumnarBlock* b = page.BeginColumnar(4, 4);
  ASSERT_NE(b, nullptr);
  uint32_t r0 = b->AddRow(0, 0);
  b->Set(0, r0, Value::Int64(1));
  b->Set(1, r0, Value::Double(1.5));
  b->Set(2, r0, Value::Int64(7));
  b->Set(3, r0, Value::Null());
  EXPECT_EQ(b->column_class(0), ColumnClass::kInt64);
  EXPECT_EQ(b->column_class(1), ColumnClass::kDouble);
  EXPECT_EQ(b->column_class(3), ColumnClass::kMixed);
  uint32_t r1 = b->AddRow(1, 0);
  b->Set(0, r1, Value::Timestamp(2));  // int64-imaged: stays kInt64
  b->Set(1, r1, Value::Double(2.5));
  b->Set(2, r1, Value::Double(0.5));   // int64 column sees a double
  b->Set(3, r1, Value::Int64(3));
  EXPECT_EQ(b->column_class(0), ColumnClass::kInt64);
  EXPECT_EQ(b->column_class(1), ColumnClass::kDouble);
  EXPECT_EQ(b->column_class(2), ColumnClass::kMixed);
  EXPECT_EQ(b->column_class(3), ColumnClass::kMixed);
}

TEST(ColumnarBlockTest, SetRehomesStringsIntoTheBlockArena) {
  Page page;
  ColumnarBlock* b = page.BeginColumnar(1, 4);
  ASSERT_NE(b, nullptr);
  TupleArena* arena = b->arena();

  // An owned string past the inline cap is copied into the arena and
  // stored borrowed (trivially destructible).
  std::string long_text(40, 'x');
  uint32_t r0 = b->AddRow(0, 0);
  b->Set(0, r0, Value::String(long_text));
  const Value& v0 = b->column(0)[r0];
  EXPECT_TRUE(v0.is_borrowed_string());
  EXPECT_TRUE(arena->Owns(v0.string_view().data()));
  EXPECT_EQ(v0.string_view(), long_text);

  // A string already borrowed from THIS arena stays a borrow of the
  // same bytes — no second copy.
  Value same_arena = Value::StringIn(arena, long_text + "-2");
  uint32_t r1 = b->AddRow(1, 0);
  b->Set(0, r1, same_arena);
  EXPECT_EQ(b->column(0)[r1].string_view().data(),
            same_arena.string_view().data());

  // A borrow of FOREIGN bytes is re-homed (copied into this arena).
  TupleArena other;
  Value foreign = Value::StringIn(&other, long_text + "-3");
  uint32_t r2 = b->AddRow(2, 0);
  b->Set(0, r2, foreign);
  EXPECT_NE(b->column(0)[r2].string_view().data(),
            foreign.string_view().data());
  EXPECT_TRUE(arena->Owns(b->column(0)[r2].string_view().data()));
  EXPECT_EQ(b->column(0)[r2].string_view(), long_text + "-3");

  // Inline strings are flat field copies — self-contained.
  uint32_t r3 = b->AddRow(3, 0);
  b->Set(0, r3, Value::String("short"));
  EXPECT_TRUE(b->column(0)[r3].is_inline_string());

  EXPECT_TRUE(b->ArenaInvariantHolds(page.arena_if_created()));
}

TEST(ColumnarBlockTest, KeepIfIsAnIndexEditAndComposes) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 10);
  const Value* col0_before = b->column(0);

  b->KeepIf([&](uint32_t r) { return r % 2 == 0; });  // keep evens
  EXPECT_EQ(b->size(), 5u);
  EXPECT_EQ(b->rows(), 10u);  // physical rows untouched
  EXPECT_EQ(b->column(0), col0_before);  // no data movement
  for (uint32_t i = 0; i < b->size(); ++i) {
    EXPECT_EQ(b->row_at(i), 2 * i);
  }

  // A second filter sees only the surviving rows.
  int visited = 0;
  b->KeepIf([&](uint32_t r) {
    ++visited;
    return r >= 4;
  });
  EXPECT_EQ(visited, 5);
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(b->row_at(0), 4u);
  EXPECT_EQ(b->row_at(2), 8u);

  // Keep-none empties the page without touching the columns.
  b->KeepIf([](uint32_t) { return false; });
  EXPECT_EQ(b->size(), 0u);
  EXPECT_TRUE(page.empty());
}

TEST(ColumnarBlockTest, PartitionSelectionIsStable) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 8);
  // Match rows 1, 4, 6 → they move ahead of rows 0, 2, 3, 5, 7 with
  // relative order preserved on both sides.
  auto match = [](uint32_t r) { return r == 1 || r == 4 || r == 6; };
  int moved = b->PartitionSelection(match);
  EXPECT_EQ(moved, 3);
  std::vector<uint32_t> order;
  for (uint32_t i = 0; i < b->size(); ++i) order.push_back(b->row_at(i));
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 4, 6, 0, 2, 3, 5, 7}));

  // Already partitioned: nothing jumps.
  EXPECT_EQ(b->PartitionSelection(match), 3);  // same stable result
  std::vector<uint32_t> again;
  for (uint32_t i = 0; i < b->size(); ++i) again.push_back(b->row_at(i));
  EXPECT_EQ(again, order);

  // All-match and none-match are no-ops.
  EXPECT_EQ(b->PartitionSelection([](uint32_t) { return true; }), 0);
  EXPECT_EQ(b->PartitionSelection([](uint32_t) { return false; }), 0);
}

TEST(ColumnarBlockTest, ProjectColumnsRepointsInPlace) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 6);
  const Value* key_col = b->column(0);
  const Value* str_col = b->column(2);
  b->ProjectColumns({2, 0, 0});  // reorder + duplicate
  EXPECT_EQ(b->cols(), 3u);
  EXPECT_EQ(b->column(0), str_col);
  EXPECT_EQ(b->column(1), key_col);
  EXPECT_EQ(b->column(2), key_col);
  EXPECT_EQ(b->column_class(1), ColumnClass::kInt64);
  EXPECT_EQ(b->rows(), 6u);
  EXPECT_EQ(b->ids()[3], 1003);
}

TEST(ColumnarBlockTest, ScratchFillRowAndGathers) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 4);
  Tuple scratch = b->MakeRowScratch();
  ASSERT_EQ(scratch.size(), 3);
  for (uint32_t r = 0; r < 4; ++r) {
    b->FillRow(r, &scratch);
    EXPECT_EQ(scratch.id(), 1000 + static_cast<int64_t>(r));
    EXPECT_EQ(scratch.arrival_ms(), static_cast<TimeMs>(10 * r));
    EXPECT_EQ(scratch.value(0).int64_value(), static_cast<int64_t>(r));

    Tuple aliased = b->GatherRowAliased(r);
    EXPECT_TRUE(aliased.arena_backed());
    EXPECT_EQ(aliased.ToString(), scratch.ToString());
    // Aliased gathers share the arena string bytes (no clone).
    if (!b->column(2)[r].is_inline_string()) {
      EXPECT_EQ(aliased.value(2).string_view().data(),
                b->column(2)[r].string_view().data());
    }
  }
  // Owned gathers are self-contained: they survive the page.
  Tuple owned;
  std::string expect_payload;
  {
    Page scoped;
    ColumnarBlock* sb = FillBlock(&scoped, 4);
    owned = sb->GatherRowOwned(2);
    expect_payload = std::string(sb->column(2)[2].string_view());
  }  // page + arena destroyed
  EXPECT_FALSE(owned.arena_backed());
  EXPECT_EQ(owned.value(2).string_view(), expect_payload);
  EXPECT_EQ(owned.id(), 1002);
}

TEST(ColumnarPageTest, EnsureRowLayoutMaterializesSelectedRowsInOrder) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 10);
  b->KeepIf([](uint32_t r) { return r % 3 == 0; });  // rows 0,3,6,9
  ASSERT_TRUE(page.is_columnar());
  page.EnsureRowLayout();
  EXPECT_FALSE(page.is_columnar());
  ASSERT_EQ(page.size(), 4u);
  const std::vector<StreamElement>& elems = page.elements();
  std::vector<int64_t> keys;
  for (const StreamElement& e : elems) {
    ASSERT_TRUE(e.is_tuple());
    EXPECT_TRUE(page.ElementArenaInvariantHolds(e));
    keys.push_back(e.tuple().value(0).int64_value());
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{0, 3, 6, 9}));
  EXPECT_EQ(elems[1].tuple().id(), 1003);
  // Idempotent / no-op on row pages.
  page.EnsureRowLayout();
  EXPECT_EQ(page.size(), 4u);
}

TEST(ColumnarPageTest, BeginColumnarDeclinesWithoutArenas) {
  ScopedTupleArenasEnabled off(false);
  Page page;
  EXPECT_EQ(page.BeginColumnar(3, 8), nullptr);
  EXPECT_FALSE(page.is_columnar());
  // The page still works as a row page.
  page.AddTuple(TupleBuilder().I64(1).Build());
  EXPECT_EQ(page.size(), 1u);
}

TEST(ColumnarPageTest, ArenaInvariantDetectsForeignArena) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 3);
  EXPECT_TRUE(b->ArenaInvariantHolds(page.arena_if_created()));
  TupleArena other;
  EXPECT_FALSE(b->ArenaInvariantHolds(&other));
  EXPECT_FALSE(b->ArenaInvariantHolds(nullptr));
}

TEST(ColumnarPageTest, PageColumnarToggle) {
  EXPECT_TRUE(PageColumnar::enabled());  // engine default: on
  {
    ScopedPageColumnarEnabled off(false);
    EXPECT_FALSE(PageColumnar::enabled());
    {
      ScopedPageColumnarEnabled on(true);
      EXPECT_TRUE(PageColumnar::enabled());
    }
    EXPECT_FALSE(PageColumnar::enabled());
  }
  EXPECT_TRUE(PageColumnar::enabled());
}

// ---------------------------------------------------------------------------
// Compiled-pattern exploits over columnar pages.
// ---------------------------------------------------------------------------

TEST(ColumnarPurgeTest, HoistedInt64RangePurge) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 10);  // ts column 1: 100..109
  // Purge ts in [102, 105] — all-int checks over a kInt64 column take
  // the hoisted unchecked_int64 path.
  PunctPattern p = PunctPattern::AllWildcard(3).With(
      1, AttrPattern::Range(Value::Timestamp(102), Value::Timestamp(105)));
  CompiledPattern compiled(p);
  int removed = compiled.FilterColumnarPurge(b);
  EXPECT_EQ(removed, 4);
  EXPECT_EQ(b->size(), 6u);
  for (uint32_t i = 0; i < b->size(); ++i) {
    int64_t ts = b->column(1)[b->row_at(i)].int64_value();
    EXPECT_TRUE(ts < 102 || ts > 105) << ts;
  }
  // Purge composes with an existing selection: drop keys >= 8 next.
  PunctPattern p2 = PunctPattern::AllWildcard(3).With(
      0, AttrPattern::Ge(Value::Int64(8)));
  EXPECT_EQ(CompiledPattern(p2).FilterColumnarPurge(b), 2);
  EXPECT_EQ(b->size(), 4u);
}

TEST(ColumnarPurgeTest, RowWisePurgeOnMixedColumns) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 10);
  // A string-operand check cannot hoist; it must fall back to the
  // row-wise MatchesRow walk and still agree with the interpreter.
  PunctPattern p = PunctPattern::AllWildcard(3).With(
      2, AttrPattern::Eq(Value::String("p-3")));
  CompiledPattern compiled(p);
  EXPECT_EQ(compiled.FilterColumnarPurge(b), 1);
  EXPECT_EQ(b->size(), 9u);
  for (uint32_t i = 0; i < b->size(); ++i) {
    EXPECT_TRUE(!compiled.MatchesRow(*b, b->row_at(i)));
  }
}

TEST(ColumnarPurgeTest, AlwaysTrueAndArityMismatch) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 5);
  // Arity mismatch: no rows match, nothing removed.
  CompiledPattern wrong(PunctPattern::AllWildcard(2));
  EXPECT_EQ(wrong.FilterColumnarPurge(b), 0);
  EXPECT_EQ(b->size(), 5u);
  EXPECT_FALSE(wrong.MatchesRow(*b, 0));
  // All-wildcard at the right arity purges everything.
  CompiledPattern all(PunctPattern::AllWildcard(3));
  EXPECT_TRUE(all.MatchesRow(*b, 0));
  EXPECT_EQ(all.FilterColumnarPurge(b), 5);
  EXPECT_TRUE(page.empty());
}

TEST(ColumnarPurgeTest, MatchesRowAgreesWithGatheredTuple) {
  Page page;
  ColumnarBlock* b = FillBlock(&page, 10);
  std::vector<CompiledPattern> patterns;
  patterns.emplace_back(PunctPattern::AllWildcard(3).With(
      0, AttrPattern::Lt(Value::Int64(4))));
  patterns.emplace_back(PunctPattern::AllWildcard(3).With(
      1, AttrPattern::Range(Value::Timestamp(101), Value::Timestamp(107))));
  patterns.emplace_back(PunctPattern::AllWildcard(3).With(
      2, AttrPattern::NotNull()));
  for (const CompiledPattern& cp : patterns) {
    for (uint32_t r = 0; r < b->rows(); ++r) {
      EXPECT_EQ(cp.MatchesRow(*b, r), cp.Matches(b->GatherRowAliased(r)))
          << cp.pattern().ToString() << " row " << r;
    }
  }
}

}  // namespace
}  // namespace nstream
