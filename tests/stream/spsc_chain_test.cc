// SpscChain (growable lock-free SPSC) and the DataQueue kSpscChain
// transport: unbounded pushes across segment boundaries, FIFO order,
// two-thread stress, purge/promote surgery (including the
// single-thread open-page reach the SyncExecutor relies on), and
// arena-backed pages surviving queue hops and surgery.

#include "stream/spsc_chain.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "punct/pattern_parser.h"
#include "stream/data_queue.h"

namespace nstream {
namespace {

PunctPattern P(const std::string& text) {
  Result<PunctPattern> r = ParsePattern(text);
  EXPECT_TRUE(r.ok()) << text;
  return r.MoveValue();
}

TEST(SpscChainTest, FifoAcrossManySegments) {
  SpscChain<int> chain(/*segment_capacity=*/4);
  for (int i = 0; i < 1000; ++i) chain.Push(int(i));
  EXPECT_EQ(chain.ApproxSize(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::optional<int> v = chain.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(chain.TryPop().has_value());
  EXPECT_TRUE(chain.ApproxEmpty());
}

TEST(SpscChainTest, InterleavedPushPopRetiresSegments) {
  SpscChain<int> chain(2);
  int next_pop = 0;
  for (int i = 0; i < 500; ++i) {
    chain.Push(int(i));
    if (i % 3 == 0) {
      std::optional<int> v = chain.TryPop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
  }
  while (std::optional<int> v = chain.TryPop()) {
    EXPECT_EQ(*v, next_pop++);
  }
  EXPECT_EQ(next_pop, 500);
}

TEST(SpscChainTest, DropsUnconsumedItemsOnDestruction) {
  // Destruction with items still queued (possibly spanning segments)
  // must release everything — LSan is the referee.
  SpscChain<std::string> chain(2);
  for (int i = 0; i < 100; ++i) {
    chain.Push("item-" + std::to_string(i) +
               "-with-a-heap-allocated-payload");
  }
  std::optional<std::string> v = chain.TryPop();
  ASSERT_TRUE(v.has_value());
}

TEST(SpscChainTest, TwoThreadStressPreservesOrder) {
  SpscChain<int> chain(8);
  constexpr int kN = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) chain.Push(int(i));
  });
  int expected = 0;
  while (expected < kN) {
    if (std::optional<int> v = chain.TryPop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(chain.ApproxEmpty());
}

DataQueueOptions ChainOptions(int page_size = 4,
                              bool single_thread = true) {
  DataQueueOptions opts;
  opts.page_size = page_size;
  opts.transport = DataQueueTransport::kSpscChain;
  opts.chain_segment_pages = 2;  // force frequent segment turnover
  opts.assume_single_thread = single_thread;
  return opts;
}

Tuple T1(int64_t v) { return TupleBuilder().I64(v).Build(); }

TEST(DataQueueChainTest, UnboundedPushAndOrderedDrain) {
  DataQueue q(ChainOptions());
  for (int i = 0; i < 1000; ++i) q.PushTuple(T1(i));
  q.PushEos();
  int64_t next = 0;
  size_t pages = 0;
  while (auto page = q.TryPopPage()) {
    ++pages;
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        EXPECT_EQ(e.tuple().value(0).int64_value(), next++);
      } else {
        EXPECT_TRUE(e.is_eos());
      }
    }
  }
  EXPECT_EQ(next, 1000);
  EXPECT_GT(pages, 100u);  // far beyond one segment's worth
  EXPECT_TRUE(q.Drained());
  DataQueueStats st = q.stats();
  EXPECT_EQ(st.tuples_pushed, 1000u);
  EXPECT_EQ(st.pages_popped, st.pages_flushed_total());
}

TEST(DataQueueChainTest, PunctuationStillFlushesImmediately) {
  DataQueue q(ChainOptions(/*page_size=*/64));
  q.PushTuple(T1(1));
  q.PushPunctuation(Punctuation(P("[<=5]")));
  auto page = q.TryPopPage();
  ASSERT_TRUE(page.has_value());
  ASSERT_EQ(page->size(), 2u);
  EXPECT_TRUE(page->elements()[1].is_punct());
  EXPECT_EQ(page->flush_reason(), FlushReason::kPunctuation);
}

TEST(DataQueueChainTest, SingleThreadPurgeReachesOpenPage) {
  // SyncExecutor semantics: with assume_single_thread the purge must
  // cover published pages AND the producer-side open page, exactly
  // like the mutex deque.
  DataQueue q(ChainOptions(/*page_size=*/4));
  for (int i = 0; i < 10; ++i) q.PushTuple(T1(i % 2));  // 2 full pages + open
  int removed = q.PurgeMatching(P("[1]"));
  EXPECT_EQ(removed, 5);
  q.PushEos();
  int ones = 0, total = 0;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (!e.is_tuple()) continue;
      ++total;
      if (e.tuple().value(0).int64_value() == 1) ++ones;
    }
  }
  EXPECT_EQ(ones, 0);
  EXPECT_EQ(total, 5);
}

TEST(DataQueueChainTest, SpscContractPurgeLeavesOpenPageAlone) {
  DataQueue q(ChainOptions(/*page_size=*/4, /*single_thread=*/false));
  for (int i = 0; i < 10; ++i) q.PushTuple(T1(1));  // 8 published, 2 open
  int removed = q.PurgeMatching(P("[1]"));
  EXPECT_EQ(removed, 8);  // the open page is the producer's
  q.Flush();
  auto page = q.TryPopPage();
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(page->size(), 2u);
}

TEST(DataQueueChainTest, PromoteReordersWithinPagesFifoFirst) {
  DataQueue q(ChainOptions(/*page_size=*/4));
  for (int i = 0; i < 8; ++i) q.PushTuple(T1(i % 4));
  int moved = q.PromoteMatching(P("[3]"));
  EXPECT_GT(moved, 0);
  // Surgery staged the pages; later pushes go behind them.
  q.PushTuple(T1(99));
  q.PushEos();
  std::vector<int64_t> order;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) order.push_back(e.tuple().value(0).int64_value());
    }
  }
  ASSERT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], 3);            // promoted ahead within page 1
  EXPECT_EQ(order.back(), 99);       // post-surgery push stays last
}

TEST(DataQueueChainTest, ArenaTuplesSurviveHopAndSurgery) {
  DataQueue q(ChainOptions(/*page_size=*/4));
  // Build tuples in the queue's own open-page arena, the zero-copy
  // emit path, across several page flushes and a purge in between.
  for (int i = 0; i < 10; ++i) {
    TupleArena* arena = q.OpenPageArena();
    ASSERT_NE(arena, nullptr);
    Tuple t(arena, 2);
    t.Append(Value::StringIn(arena, "payload-" + std::to_string(i)));
    t.Append(Value::Int64(i));
    q.PushTuple(std::move(t));
    if (i == 5) {
      EXPECT_EQ(q.PurgeMatching(P("[*,<=1]")), 2);
    }
  }
  q.PushEos();
  std::vector<std::string> seen;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        seen.push_back(std::string(e.tuple().value(0).string_view()));
      }
    }
  }
  ASSERT_EQ(seen.size(), 8u);  // 10 pushed - 2 purged
  EXPECT_EQ(seen.front(), "payload-2");
  EXPECT_EQ(seen.back(), "payload-9");
}

TEST(DataQueueRingTest, ArenaTuplesSurviveRingSurgery) {
  // Same surgery soundness on the bounded SPSC ring: published pages
  // holding arena-backed tuples are drained into the staging deque,
  // operated on, and served FIFO-first with payloads intact.
  DataQueueOptions opts;
  opts.page_size = 4;
  opts.transport = DataQueueTransport::kSpscRing;
  opts.spsc_default_capacity = 8;
  DataQueue q(opts);
  for (int i = 0; i < 8; ++i) {
    TupleArena* arena = q.OpenPageArena();
    ASSERT_NE(arena, nullptr);
    Tuple t(arena, 2);
    t.Append(Value::StringIn(arena, "ring-" + std::to_string(i)));
    t.Append(Value::Int64(i));
    q.PushTuple(std::move(t));
  }
  EXPECT_EQ(q.PurgeMatching(P("[*,4]")), 1);
  EXPECT_GT(q.PromoteMatching(P("[*,3]")), 0);
  q.PushEos();
  std::vector<std::string> seen;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        seen.push_back(std::string(e.tuple().value(0).string_view()));
      }
    }
  }
  ASSERT_EQ(seen.size(), 7u);
  EXPECT_EQ(seen[0], "ring-3");  // promoted within its page
}

TEST(DataQueueChainTest, TwoThreadProducerConsumer) {
  DataQueueOptions opts = ChainOptions(/*page_size=*/8,
                                       /*single_thread=*/false);
  DataQueue q(opts);
  constexpr int kN = 50000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) q.PushTuple(T1(i));
    q.PushEos();
  });
  int64_t next = 0;
  bool eos = false;
  while (!eos) {
    auto page = q.PopPageBlocking(nullptr);
    if (!page.has_value()) break;
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        ASSERT_EQ(e.tuple().value(0).int64_value(), next++);
      } else if (e.is_eos()) {
        eos = true;
      }
    }
  }
  producer.join();
  EXPECT_EQ(next, kN);
  EXPECT_TRUE(q.Drained());
}

}  // namespace
}  // namespace nstream
