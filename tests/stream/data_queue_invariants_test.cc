// DataQueue surgery invariants: PurgeMatching and PromoteMatching must
// never move a tuple across a punctuation, must keep punctuation and
// EOS markers intact, and the stats counters must stay accurate.

#include <gtest/gtest.h>

#include <vector>

#include "stream/data_queue.h"
#include "types/tuple.h"

namespace nstream {
namespace {

Tuple T(int64_t id, int64_t v) {
  return TupleBuilder().I64(id).I64(v).Build();
}

Punctuation PunctLe(int64_t bound) {
  return Punctuation(PunctPattern::AllWildcard(2).With(
      0, AttrPattern::Le(Value::Int64(bound))));
}

PunctPattern MatchSecondGe(int64_t bound) {
  return PunctPattern::AllWildcard(2).With(
      1, AttrPattern::Ge(Value::Int64(bound)));
}

// Flatten all queued pages (in order) for inspection.
std::vector<StreamElement> Drain(DataQueue* q) {
  std::vector<StreamElement> out;
  while (auto page = q->TryPopPage()) {
    for (StreamElement& e : page->mutable_elements()) {
      out.push_back(std::move(e));
    }
  }
  return out;
}

TEST(DataQueueInvariants, PurgePreservesPunctuationAndOrder) {
  DataQueue q(DataQueueOptions{4, 0});
  // Page 1: ids 0..2 + punct (flushes). Page 2: ids 3..5 (page full at
  // 4 would split; keep 3 then flush via EOS).
  for (int i = 0; i < 3; ++i) q.PushTuple(T(i, i % 2));
  q.PushPunctuation(PunctLe(2));
  for (int i = 3; i < 6; ++i) q.PushTuple(T(i, i % 2));
  q.PushEos();

  // Purge all tuples with odd second attribute (ids 1, 3, 5).
  int removed = q.PurgeMatching(MatchSecondGe(1));
  EXPECT_EQ(removed, 3);

  std::vector<StreamElement> left = Drain(&q);
  // Remaining: t0, t2, punct, t4, EOS — original relative order.
  ASSERT_EQ(left.size(), 5u);
  EXPECT_TRUE(left[0].is_tuple());
  EXPECT_EQ(left[0].tuple().value(0).int64_value(), 0);
  EXPECT_TRUE(left[1].is_tuple());
  EXPECT_EQ(left[1].tuple().value(0).int64_value(), 2);
  EXPECT_TRUE(left[2].is_punct());
  EXPECT_TRUE(left[3].is_tuple());
  EXPECT_EQ(left[3].tuple().value(0).int64_value(), 4);
  EXPECT_TRUE(left[4].is_eos());
}

TEST(DataQueueInvariants, PurgeDropsEmptiedPagesAndCountsAccurately) {
  DataQueue q(DataQueueOptions{2, 0});
  for (int i = 0; i < 6; ++i) q.PushTuple(T(i, 1));  // 3 full pages
  EXPECT_EQ(q.stats().pages_flushed_full, 3u);

  int removed = q.PurgeMatching(MatchSecondGe(1));  // everything
  EXPECT_EQ(removed, 6);
  // All pages were emptied and must have been dropped: nothing to pop.
  EXPECT_FALSE(q.HasPage());
  q.PushEos();
  EXPECT_TRUE(q.TryPopPage().has_value());
  EXPECT_TRUE(q.Drained());
}

TEST(DataQueueInvariants, PurgeReachesTheOpenPage) {
  DataQueue q(DataQueueOptions{100, 0});
  for (int i = 0; i < 5; ++i) q.PushTuple(T(i, 1));  // all in open page
  EXPECT_EQ(q.PurgeMatching(MatchSecondGe(1)), 5);
  q.PushEos();
  std::vector<StreamElement> left = Drain(&q);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_TRUE(left[0].is_eos());
}

TEST(DataQueueInvariants, PromoteNeverCrossesPunctuation) {
  DataQueue q(DataQueueOptions{8, 0});
  // Page 1 (punct-flushed): t0(v=0), t1(v=9), punct.
  q.PushTuple(T(0, 0));
  q.PushTuple(T(1, 9));
  q.PushPunctuation(PunctLe(1));
  // Page 2: t2(v=0), t3(v=9), t4(v=0) — flushed by EOS.
  q.PushTuple(T(2, 0));
  q.PushTuple(T(3, 9));
  q.PushTuple(T(4, 0));
  q.PushEos();

  int moved = q.PromoteMatching(MatchSecondGe(5));  // v==9 tuples
  EXPECT_EQ(moved, 2);  // t1 within page 1, t3 within page 2

  std::vector<StreamElement> order = Drain(&q);
  ASSERT_EQ(order.size(), 7u);
  // Page 1 reordered to t1, t0, punct: the punctuation is still after
  // every tuple of its page, and no page-2 tuple jumped before it.
  EXPECT_EQ(order[0].tuple().value(0).int64_value(), 1);
  EXPECT_EQ(order[1].tuple().value(0).int64_value(), 0);
  EXPECT_TRUE(order[2].is_punct());
  // Page 2 reordered to t3, t2, t4 (stable among non-matching).
  EXPECT_EQ(order[3].tuple().value(0).int64_value(), 3);
  EXPECT_EQ(order[4].tuple().value(0).int64_value(), 2);
  EXPECT_EQ(order[5].tuple().value(0).int64_value(), 4);
  EXPECT_TRUE(order[6].is_eos());
}

TEST(DataQueueInvariants, PromoteCountsOnlyRealMoves) {
  DataQueue q(DataQueueOptions{4, 0});
  q.PushTuple(T(0, 9));
  q.PushTuple(T(1, 9));
  q.Flush();
  // All tuples match: nothing actually jumps ahead of a non-match.
  EXPECT_EQ(q.PromoteMatching(MatchSecondGe(5)), 0);
  // None match: also no moves.
  EXPECT_EQ(q.PromoteMatching(MatchSecondGe(100)), 0);
}

TEST(DataQueueInvariants, StatsCountersAccurate) {
  DataQueue q(DataQueueOptions{2, 0});
  q.PushTuple(T(0, 0));
  q.PushTuple(T(1, 0));       // full flush
  q.PushTuple(T(2, 0));
  q.PushPunctuation(PunctLe(2));  // punct flush
  q.PushTuple(T(3, 0));
  q.Flush();                  // explicit flush
  q.PushEos();                // EOS flush

  DataQueueStats s = q.stats();
  EXPECT_EQ(s.tuples_pushed, 4u);
  EXPECT_EQ(s.puncts_pushed, 1u);
  EXPECT_EQ(s.pages_flushed_full, 1u);
  EXPECT_EQ(s.pages_flushed_punct, 1u);
  EXPECT_EQ(s.pages_flushed_explicit, 1u);
  EXPECT_EQ(s.pages_flushed_eos, 1u);
  EXPECT_EQ(s.pages_flushed_total(), 4u);

  int pops = 0;
  while (q.TryPopPage()) ++pops;
  EXPECT_EQ(pops, 4);
  EXPECT_EQ(q.stats().pages_popped, 4u);
  EXPECT_TRUE(q.Drained());
}

TEST(DataQueueInvariants, PushPageFlushesOpenPageFirst) {
  // The page-granular fast path (Exchange/ShardMerge) must never let a
  // whole page overtake tuples staged element-wise before it.
  DataQueue q(DataQueueOptions{128, 0});
  q.PushTuple(T(1, 0));
  q.PushTuple(T(2, 0));  // both sit in the open page (128 > 2)

  Page whole;
  whole.Add(StreamElement::OfTuple(T(3, 0)));
  whole.Add(StreamElement::OfTuple(T(4, 0)));
  q.PushPage(std::move(whole));
  q.PushPunctuation(PunctLe(4));

  std::vector<StreamElement> all = Drain(&q);
  ASSERT_EQ(all.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(all[static_cast<size_t>(i)].is_tuple());
    EXPECT_EQ(all[static_cast<size_t>(i)].tuple().value(0),
              Value::Int64(i + 1));
  }
  EXPECT_TRUE(all[4].is_punct());

  DataQueueStats s = q.stats();
  EXPECT_EQ(s.tuples_pushed, 4u);
  EXPECT_EQ(s.pages_pushed_whole, 1u);
  // Empty pages are dropped, not enqueued.
  q.PushPage(Page());
  EXPECT_EQ(q.stats().pages_pushed_whole, 1u);
}

}  // namespace
}  // namespace nstream
