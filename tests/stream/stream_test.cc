#include <gtest/gtest.h>

#include "stream/connection.h"
#include "stream/control_channel.h"
#include "stream/data_queue.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::P;

Tuple T(int64_t v) { return TupleBuilder().I64(v).Build(); }

TEST(DataQueueTest, PageFlushesWhenFull) {
  DataQueue q(DataQueueOptions{/*page_size=*/3, 0});
  q.PushTuple(T(1));
  q.PushTuple(T(2));
  EXPECT_FALSE(q.HasPage());
  q.PushTuple(T(3));
  ASSERT_TRUE(q.HasPage());
  Page page = *q.TryPopPage();
  EXPECT_EQ(page.size(), 3u);
  EXPECT_EQ(page.flush_reason(), FlushReason::kPageFull);
}

TEST(DataQueueTest, PunctuationFlushesImmediately) {
  // §5: a slow stream must not strand punctuation behind an unfilled
  // page.
  DataQueue q(DataQueueOptions{/*page_size=*/100, 0});
  q.PushTuple(T(1));
  q.PushPunctuation(Punctuation(P("[<=5]")));
  ASSERT_TRUE(q.HasPage());
  Page page = *q.TryPopPage();
  EXPECT_EQ(page.size(), 2u);
  EXPECT_EQ(page.flush_reason(), FlushReason::kPunctuation);
  EXPECT_TRUE(page.elements().back().is_punct());
}

TEST(DataQueueTest, EosFlushesAndDrains) {
  DataQueue q;
  q.PushTuple(T(1));
  EXPECT_FALSE(q.Drained());
  q.PushEos();
  EXPECT_FALSE(q.Drained());  // page still queued
  Page page = *q.TryPopPage();
  EXPECT_TRUE(page.elements().back().is_eos());
  EXPECT_TRUE(q.Drained());
}

TEST(DataQueueTest, ExplicitFlush) {
  DataQueue q;
  q.PushTuple(T(1));
  q.Flush();
  ASSERT_TRUE(q.HasPage());
  EXPECT_EQ(q.TryPopPage()->flush_reason(), FlushReason::kExplicit);
  q.Flush();  // empty open page: no-op
  EXPECT_FALSE(q.HasPage());
}

TEST(DataQueueTest, StatsCountFlushReasons) {
  DataQueue q(DataQueueOptions{2, 0});
  q.PushTuple(T(1));
  q.PushTuple(T(2));  // full
  q.PushPunctuation(Punctuation(P("[*]")));
  q.PushEos();
  DataQueueStats s = q.stats();
  EXPECT_EQ(s.tuples_pushed, 2u);
  EXPECT_EQ(s.puncts_pushed, 1u);
  EXPECT_EQ(s.pages_flushed_full, 1u);
  EXPECT_EQ(s.pages_flushed_punct, 1u);
  EXPECT_EQ(s.pages_flushed_eos, 1u);
}

TEST(DataQueueTest, PurgeMatchingRemovesOnlyMatchingTuples) {
  DataQueue q(DataQueueOptions{2, 0});
  for (int i = 0; i < 6; ++i) q.PushTuple(T(i));
  q.PushPunctuation(Punctuation(P("[<=5]")));
  int removed = q.PurgeMatching(P("[<=2]"));
  EXPECT_EQ(removed, 3);  // 0,1,2
  // Remaining content preserves order and the punctuation.
  std::vector<int64_t> seen;
  bool saw_punct = false;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        seen.push_back(e.tuple().value(0).int64_value());
      } else if (e.is_punct()) {
        saw_punct = true;
      }
    }
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 4, 5}));
  EXPECT_TRUE(saw_punct);
}

TEST(DataQueueTest, PurgeDropsEmptiedPages) {
  DataQueue q(DataQueueOptions{2, 0});
  for (int i = 0; i < 4; ++i) q.PushTuple(T(1));
  EXPECT_EQ(q.PurgeMatching(P("[1]")), 4);
  EXPECT_FALSE(q.HasPage());
}

TEST(DataQueueTest, PromoteMatchingReordersWithinPages) {
  DataQueue q(DataQueueOptions{4, 0});
  q.PushTuple(T(1));
  q.PushTuple(T(9));
  q.PushTuple(T(2));
  q.PushTuple(T(8));  // page flushes
  int moved = q.PromoteMatching(P("[>=8]"));
  EXPECT_GT(moved, 0);
  Page page = *q.TryPopPage();
  std::vector<int64_t> order;
  for (const StreamElement& e : page.elements()) {
    order.push_back(e.tuple().value(0).int64_value());
  }
  EXPECT_EQ(order, (std::vector<int64_t>{9, 8, 1, 2}));
}

TEST(DataQueueTest, PromoteNeverCrossesPunctuation) {
  DataQueue q(DataQueueOptions{100, 0});
  q.PushTuple(T(1));
  q.PushPunctuation(Punctuation(P("[<=1]")));  // flushes page 1
  q.PushTuple(T(9));
  q.Flush();
  q.PromoteMatching(P("[9]"));
  // Tuple 9 is in a later page than the punctuation: it must not move
  // ahead of it.
  Page first = *q.TryPopPage();
  EXPECT_TRUE(first.elements().back().is_punct());
  Page second = *q.TryPopPage();
  EXPECT_EQ(second.elements().front().tuple().value(0).int64_value(), 9);
}

TEST(DataQueueTest, ConsumerNotifierFires) {
  DataQueue q(DataQueueOptions{1, 0});
  int notified = 0;
  q.SetConsumerNotifier([&] { ++notified; });
  q.PushTuple(T(1));  // page full -> flush -> notify
  EXPECT_EQ(notified, 1);
  q.PushEos();
  EXPECT_EQ(notified, 2);
}

TEST(ControlChannelTest, FifoAndStats) {
  ControlChannel ch;
  ch.Push(ControlMessage::Feedback(
      FeedbackPunctuation::Assumed(P("[*]"))));
  ch.Push(ControlMessage::Shutdown());
  EXPECT_TRUE(ch.HasMessage());
  auto m1 = ch.TryPop();
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->type, ControlType::kFeedback);
  auto m2 = ch.TryPop();
  EXPECT_EQ(m2->type, ControlType::kShutdown);
  EXPECT_FALSE(ch.TryPop().has_value());
  EXPECT_EQ(ch.stats().messages_pushed, 2u);
  EXPECT_EQ(ch.stats().messages_popped, 2u);
}

TEST(ControlChannelTest, NotifierFiresOnPush) {
  ControlChannel ch;
  int notified = 0;
  ch.SetNotifier([&] { ++notified; });
  ch.Push(ControlMessage::RequestResult());
  EXPECT_EQ(notified, 1);
}

TEST(ConnectionTest, BundlesBothChannels) {
  Connection conn;
  conn.data->PushTuple(T(1));
  conn.control->Push(ControlMessage::Shutdown());
  EXPECT_TRUE(conn.control->HasMessage());
  conn.data->Flush();
  EXPECT_TRUE(conn.data->HasPage());
}

TEST(ElementTest, KindsAndAccessors) {
  StreamElement t = StreamElement::OfTuple(T(5));
  StreamElement p =
      StreamElement::OfPunct(Punctuation(P("[<=5]")));
  StreamElement e = StreamElement::Eos();
  EXPECT_TRUE(t.is_tuple());
  EXPECT_TRUE(p.is_punct());
  EXPECT_TRUE(e.is_eos());
  EXPECT_EQ(t.tuple().value(0).int64_value(), 5);
  EXPECT_NE(p.ToString().find("punct"), std::string::npos);
  EXPECT_EQ(e.ToString(), "<EOS>");
}

}  // namespace
}  // namespace nstream
