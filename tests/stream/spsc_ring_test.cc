// SPSC transport coverage: the raw lock-free ring (wraparound,
// full/empty discipline) and the DataQueue façade running over it —
// flush semantics, capacity-full backpressure, EOS-and-drain,
// cancellation, notifier-installed-after-first-push ordering, the
// consumer-side purge/promote slow path, and a randomized
// producer/consumer stress run. The whole file runs under the TSan CI
// job, which is where the acquire/release choreography is actually
// proven.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "punct/compiled_pattern.h"
#include "stream/data_queue.h"
#include "stream/spsc_ring.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::P;

Tuple T(int64_t v) { return TupleBuilder().I64(v).Build(); }

DataQueueOptions SpscOptions(int page_size, int max_pages) {
  DataQueueOptions opts;
  opts.page_size = page_size;
  opts.max_pages = max_pages;
  opts.transport = DataQueueTransport::kSpscRing;
  return opts;
}

Page PageOf(std::initializer_list<int64_t> vals) {
  Page p;
  for (int64_t v : vals) p.Add(StreamElement::OfTuple(T(v)));
  return p;
}

// ---- Raw ring ----

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, WraparoundManyTimesOverSmallCapacity) {
  // 1000 items through a 4-slot ring: the indices wrap 250 times and
  // every item must come out exactly once, in order.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  while (next_pop < 1000) {
    // Fill as far as possible, then drain a few — exercises both the
    // full and the partially-full wrap paths.
    while (next_push < 1000) {
      int v = next_push;
      if (!ring.TryPush(std::move(v))) break;
      ++next_push;
    }
    for (int k = 0; k < 3 && next_pop < next_push; ++k) {
      std::optional<int> out = ring.TryPop();
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_FALSE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.ApproxEmpty());
}

TEST(SpscRing, TryPushOnFullRingLeavesItemIntact) {
  SpscRing<std::vector<int>> ring(2);
  EXPECT_TRUE(ring.TryPush({1}));
  EXPECT_TRUE(ring.TryPush({2}));
  std::vector<int> spare = {3, 4, 5};
  EXPECT_FALSE(ring.TryPush(std::move(spare)));
  // Not moved-from: a failed push must not consume the page.
  EXPECT_EQ(spare.size(), 3u);
  EXPECT_EQ(ring.ApproxSize(), 2u);
}

// ---- DataQueue over the ring: core semantics parity ----

TEST(SpscQueue, PageFlushReasonsAndStats) {
  DataQueue q(SpscOptions(/*page_size=*/2, 0));
  EXPECT_EQ(q.transport(), DataQueueTransport::kSpscRing);
  q.PushTuple(T(1));
  EXPECT_FALSE(q.HasPage());
  q.PushTuple(T(2));  // full
  ASSERT_TRUE(q.HasPage());
  q.PushPunctuation(Punctuation(P("[*]")));
  q.PushEos();
  DataQueueStats s = q.stats();
  EXPECT_EQ(s.tuples_pushed, 2u);
  EXPECT_EQ(s.puncts_pushed, 1u);
  EXPECT_EQ(s.pages_flushed_full, 1u);
  EXPECT_EQ(s.pages_flushed_punct, 1u);
  EXPECT_EQ(s.pages_flushed_eos, 1u);

  EXPECT_EQ(q.TryPopPage()->flush_reason(), FlushReason::kPageFull);
  EXPECT_EQ(q.TryPopPage()->flush_reason(), FlushReason::kPunctuation);
  Page last = *q.TryPopPage();
  EXPECT_TRUE(last.elements().back().is_eos());
  EXPECT_TRUE(q.Drained());
  EXPECT_EQ(q.stats().pages_popped, 3u);
}

TEST(SpscQueue, PushPageFlushesOpenPageFirst) {
  DataQueue q(SpscOptions(/*page_size=*/100, 0));
  q.PushTuple(T(1));  // staged tuple-at-a-time
  q.PushPage(PageOf({2, 3}));
  // Order preserved: the open page (tuple 1) precedes the whole page.
  Page first = *q.TryPopPage();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.elements()[0].tuple().value(0).int64_value(), 1);
  Page second = *q.TryPopPage();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(q.stats().pages_pushed_whole, 1u);
  EXPECT_EQ(q.stats().tuples_pushed, 3u);
}

// ---- Backpressure ----

TEST(SpscQueue, CapacityFullBlocksProducerUntilPop) {
  // max_pages=2 -> ring capacity 2. Two one-tuple pages fill it; the
  // third push must block until the consumer frees a slot.
  DataQueue q(SpscOptions(/*page_size=*/1, /*max_pages=*/2));
  q.PushTuple(T(1));
  q.PushTuple(T(2));
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    q.PushTuple(T(3));  // blocks on the full ring
    third_done.store(true);
  });
  // Give the producer ample chance to (incorrectly) complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_done.load());
  ASSERT_TRUE(q.TryPopPage().has_value());  // frees one slot
  producer.join();
  EXPECT_TRUE(third_done.load());
  // Everything still drains in order.
  EXPECT_EQ(q.TryPopPage()->elements()[0].tuple().value(0).int64_value(),
            2);
  EXPECT_EQ(q.TryPopPage()->elements()[0].tuple().value(0).int64_value(),
            3);
}

// ---- Blocking pop: EOS, drain, cancellation ----

TEST(SpscQueue, PopPageBlockingDrainsThroughEos) {
  DataQueue q(SpscOptions(/*page_size=*/2, /*max_pages=*/4));
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) q.PushTuple(T(i));
    q.PushEos();
  });
  std::vector<int64_t> seen;
  bool saw_eos = false;
  while (auto page = q.PopPageBlocking(nullptr)) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) seen.push_back(e.tuple().value(0).int64_value());
      if (e.is_eos()) saw_eos = true;
    }
  }
  producer.join();
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  EXPECT_TRUE(saw_eos);
  EXPECT_TRUE(q.Drained());
}

TEST(SpscQueue, PopPageBlockingHonorsCancel) {
  DataQueue q(SpscOptions(2, 0));
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  // No data, no EOS: only the cancel flag can end this call.
  std::optional<Page> page =
      q.PopPageBlocking([&] { return cancel.load(); });
  canceller.join();
  EXPECT_FALSE(page.has_value());
  EXPECT_FALSE(q.Drained());  // cancelled, not finished
}

// ---- Notifier ordering ----

TEST(SpscQueue, NotifierInstalledAfterFirstPushStillSeesEverything) {
  DataQueue q(SpscOptions(/*page_size=*/1, 0));
  q.PushTuple(T(1));  // page published before any notifier exists
  int notified = 0;
  q.SetConsumerNotifier([&] { ++notified; });
  EXPECT_EQ(notified, 0);
  // The pre-notifier page is discoverable by polling — the threaded
  // executor's install-then-poll startup relies on this.
  ASSERT_TRUE(q.HasPage());
  q.PushTuple(T(2));
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(q.TryPopPage()->elements()[0].tuple().value(0).int64_value(),
            1);
  EXPECT_EQ(q.TryPopPage()->elements()[0].tuple().value(0).int64_value(),
            2);
}

// ---- Consumer-side purge/promote slow path ----

TEST(SpscQueue, PurgeMatchingPreservesPunctuationAndOrder) {
  DataQueue q(SpscOptions(/*page_size=*/4, 0));
  for (int i = 0; i < 3; ++i) q.PushTuple(T(i));
  q.PushPunctuation(Punctuation(P("[<=2]")));
  for (int i = 3; i < 6; ++i) q.PushTuple(T(i));
  q.Flush();

  int removed = q.PurgeMatching(P("[<=1]"));  // drops 0, 1
  EXPECT_EQ(removed, 2);
  std::vector<int64_t> tuples;
  int punct_at = -1;
  int idx = 0;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      if (e.is_tuple()) {
        tuples.push_back(e.tuple().value(0).int64_value());
        ++idx;
      } else if (e.is_punct()) {
        punct_at = idx;
      }
    }
  }
  EXPECT_EQ(tuples, (std::vector<int64_t>{2, 3, 4, 5}));
  EXPECT_EQ(punct_at, 1);  // still between tuple 2 and tuple 3
}

TEST(SpscQueue, PurgeDropsEmptiedPagesAndPopsServeSideFirst) {
  DataQueue q(SpscOptions(/*page_size=*/2, 0));
  for (int i = 0; i < 4; ++i) q.PushTuple(T(1));  // two pages of 1s
  EXPECT_EQ(q.PurgeMatching(P("[1]")), 4);
  EXPECT_FALSE(q.HasPage());
  // New pages pushed AFTER the purge flow through normally.
  q.PushTuple(T(7));
  q.PushTuple(T(8));
  Page page = *q.TryPopPage();
  EXPECT_EQ(page.elements()[0].tuple().value(0).int64_value(), 7);
}

TEST(SpscQueue, PurgeThenPushKeepsFifoAcrossSideAndRing) {
  DataQueue q(SpscOptions(/*page_size=*/2, 0));
  for (int i = 0; i < 4; ++i) q.PushTuple(T(i));  // pages {0,1} {2,3}
  // Purge something that empties nothing: pages land in the side deque.
  EXPECT_EQ(q.PurgeMatching(P("[>=100]")), 0);
  // Newer pages go to the ring behind them.
  q.PushTuple(T(4));
  q.PushTuple(T(5));
  std::vector<int64_t> order;
  while (auto page = q.TryPopPage()) {
    for (const StreamElement& e : page->elements()) {
      order.push_back(e.tuple().value(0).int64_value());
    }
  }
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(SpscQueue, PromoteMatchingReordersWithinPagesOnly) {
  DataQueue q(SpscOptions(/*page_size=*/4, 0));
  q.PushTuple(T(1));
  q.PushTuple(T(9));
  q.PushTuple(T(2));
  q.PushTuple(T(8));  // page flushes
  int moved = q.PromoteMatching(P("[>=8]"));
  EXPECT_GT(moved, 0);
  Page page = *q.TryPopPage();
  std::vector<int64_t> order;
  for (const StreamElement& e : page.elements()) {
    order.push_back(e.tuple().value(0).int64_value());
  }
  EXPECT_EQ(order, (std::vector<int64_t>{9, 8, 1, 2}));
}

TEST(SpscQueue, PromoteNeverCrossesPunctuation) {
  DataQueue q(SpscOptions(/*page_size=*/100, 0));
  q.PushTuple(T(1));
  q.PushPunctuation(Punctuation(P("[<=1]")));  // flushes page 1
  q.PushTuple(T(9));
  q.Flush();
  q.PromoteMatching(P("[9]"));
  Page first = *q.TryPopPage();
  EXPECT_TRUE(first.elements().back().is_punct());
  Page second = *q.TryPopPage();
  EXPECT_EQ(second.elements().front().tuple().value(0).int64_value(), 9);
}

TEST(SpscQueue, PurgeRoutesThroughGlobalPatternCache) {
  // Feedback exploited at many hops purges with the same pattern at
  // every hop; the queue must fetch the compilation from the global
  // cache instead of recompiling.
  DataQueue q(SpscOptions(2, 0));
  for (int i = 0; i < 4; ++i) q.PushTuple(T(i));
  PunctPattern pattern = P("[>=900]");
  (void)q.PurgeMatching(pattern);  // primes the cache if needed
  uint64_t hits_before = CompiledPatternCache::Global().hits();
  (void)q.PurgeMatching(pattern);
  (void)q.PromoteMatching(pattern);
  EXPECT_GE(CompiledPatternCache::Global().hits(), hits_before + 2);
}

// ---- Randomized producer/consumer stress (TSan target) ----

TEST(SpscQueueStress, RandomizedProducerConsumerPreservesStream) {
  // A real two-thread run over a small bounded ring: backpressure,
  // punctuation flushes, wraparound, and the EOS handshake all under
  // load. Sequence integrity: tuple ids strictly increasing, every
  // punctuation bound matches the last id before it, exactly one EOS
  // at the very end.
  const int kTuples = 20000;
  DataQueue q(SpscOptions(/*page_size=*/8, /*max_pages=*/4));
  std::thread producer([&] {
    std::mt19937 rng(42);
    for (int i = 0; i < kTuples; ++i) {
      q.PushTuple(T(i));
      if (rng() % 64 == 0) {
        q.PushPunctuation(Punctuation(
            PunctPattern::AllWildcard(1).With(
                0, AttrPattern::Le(Value::Int64(i)))));
      }
    }
    q.PushEos();
  });

  int64_t last_id = -1;
  int tuple_count = 0;
  int eos_count = 0;
  bool done = false;
  while (!done) {
    std::optional<Page> page = q.PopPageBlocking(nullptr);
    if (!page.has_value()) {
      done = true;
      break;
    }
    for (const StreamElement& e : page->elements()) {
      switch (e.kind()) {
        case ElementKind::kTuple: {
          int64_t id = e.tuple().value(0).int64_value();
          EXPECT_EQ(id, last_id + 1);
          last_id = id;
          ++tuple_count;
          break;
        }
        case ElementKind::kPunctuation: {
          Result<int64_t> bound =
              e.punct().pattern().attr(0).operand().AsInt64();
          ASSERT_TRUE(bound.ok());
          EXPECT_EQ(bound.value(), last_id);
          break;
        }
        case ElementKind::kEndOfStream:
          ++eos_count;
          break;
      }
    }
  }
  producer.join();
  EXPECT_EQ(tuple_count, kTuples);
  EXPECT_EQ(eos_count, 1);
  EXPECT_TRUE(q.Drained());
}

TEST(SpscQueueStress, ConcurrentStatsReadsAreRaceFree) {
  // A third thread hammering stats()/Drained()/HasPage() while the
  // stream flows — the introspection calls the executors and tests
  // make from outside the producer/consumer pair.
  const int kTuples = 5000;
  DataQueue q(SpscOptions(/*page_size=*/4, /*max_pages=*/8));
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    uint64_t sink = 0;
    while (!stop.load()) {
      DataQueueStats s = q.stats();
      sink += s.tuples_pushed + s.pages_popped +
              static_cast<uint64_t>(q.HasPage()) +
              static_cast<uint64_t>(q.Drained());
    }
    EXPECT_GE(sink, 0u);
  });
  std::thread producer([&] {
    for (int i = 0; i < kTuples; ++i) q.PushTuple(T(i));
    q.PushEos();
  });
  size_t popped = 0;
  while (auto page = q.PopPageBlocking(nullptr)) popped += page->size();
  producer.join();
  stop.store(true);
  observer.join();
  EXPECT_EQ(q.stats().tuples_pushed, static_cast<uint64_t>(kTuples));
  EXPECT_TRUE(q.Drained());
}

}  // namespace
}  // namespace nstream
