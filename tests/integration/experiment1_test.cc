// Integration: the Experiment 1 imputation plan (Figs. 5/6) under the
// discrete-event executor. Checks the paper's qualitative result — an
// overloaded imputation branch diverges without feedback; PACE's
// assumed feedback bounds the lag at the cost of dropping a fraction
// of imputed tuples — plus Definition-1 correctness of the feedback
// run against the baseline.

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "exec/sim_executor.h"
#include "metrics/timeliness.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

ImputationPlanConfig SmallConfig(bool feedback) {
  ImputationPlanConfig config;
  config.stream.num_tuples = 1'000;
  config.stream.inter_arrival_ms = 40;
  config.stream.punct_every_ms = 1'000;
  config.impute_cost_ms = 112.0;
  config.tolerance_ms = 5'000;
  config.feedback_enabled = feedback;
  return config;
}

TimelinessReport RunPlan(const ImputationPlanConfig& config,
                     ImputationPlan* out_plan = nullptr) {
  ImputationPlan built = BuildImputationPlan(config);
  SimExecutorOptions sim;
  sim.cost.SetDefaultTupleCostMs(0.05);
  SimExecutor exec(sim);
  Status st = exec.Run(built.plan.get());
  EXPECT_TRUE(st.ok()) << st.ToString();

  TimelinessOptions topt;
  topt.ts_attr = kImpTimestamp;
  topt.flag_attr = kImpFlag;
  topt.tolerance_ms = config.tolerance_ms;
  topt.total_expected_imputed = built.expected_dirty;
  TimelinessReport report =
      AnalyzeTimeliness(built.sink->collected(), topt);
  if (out_plan != nullptr) *out_plan = std::move(built);
  return report;
}

TEST(Experiment1, WithoutFeedbackImputedTuplesDiverge) {
  TimelinessReport report = RunPlan(SmallConfig(/*feedback=*/false));
  // All clean and all imputed tuples are delivered (plain UNION).
  EXPECT_EQ(report.clean_delivered, 500u);
  EXPECT_EQ(report.imputed_delivered, 500u);
  // The vast majority of imputed tuples arrive beyond tolerance
  // (the paper reports 97%).
  EXPECT_GT(report.imputed_dropped_or_late_fraction(), 0.60);
  // Divergence grows over time: the last imputed tuple lags far more
  // than the first.
  ASSERT_GE(report.imputed.size(), 2u);
  EXPECT_GT(report.imputed.back().lag_ms,
            report.imputed.front().lag_ms + 10'000);
}

TEST(Experiment1, WithFeedbackLagIsBoundedAndDropsModerate) {
  ImputationPlan built;
  TimelinessReport report = RunPlan(SmallConfig(/*feedback=*/true), &built);
  EXPECT_EQ(report.clean_delivered, 500u);
  // Feedback was actually produced and exploited.
  EXPECT_GT(built.pace->stats().feedback_sent, 0u);
  EXPECT_GT(built.impute->stats().work_avoided, 0u);
  // Dropped fraction is moderate (the paper reports 29%), not ~97%.
  double dropped = report.imputed_dropped_or_late_fraction();
  EXPECT_LT(dropped, 0.60);
  EXPECT_GT(dropped, 0.05);
  // Delivered imputed tuples are timely: lag stays near the tolerance
  // rather than growing without bound.
  for (const SeriesPoint& p : report.imputed) {
    EXPECT_LE(p.lag_ms, 3 * 5'000) << "unbounded lag at tuple "
                                   << p.tuple_id;
  }
}

TEST(Experiment1, FeedbackBeatsBaselineOnTimeliness) {
  TimelinessReport without = RunPlan(SmallConfig(false));
  TimelinessReport with = RunPlan(SmallConfig(true));
  EXPECT_GT(with.imputed_timely * 2, without.imputed_timely)
      << "feedback should deliver strictly more timely imputed tuples";
  EXPECT_LT(with.imputed_dropped_or_late_fraction(),
            without.imputed_dropped_or_late_fraction());
}

TEST(Experiment1, Definition1CorrectnessAgainstBaseline) {
  // Definition 1: the feedback run may only suppress tuples covered by
  // the issued feedback (tuples with old timestamps); it must not
  // invent tuples nor lose uncovered ones. Compare sink multisets,
  // using the weakest pattern PACE ever issued (matching every
  // feedback pattern it sent): timestamps at or below the final bound.
  ImputationPlan base_built;
  ImputationPlan fb_built;
  RunPlan(SmallConfig(false), &base_built);
  TimelinessReport with = RunPlan(SmallConfig(true), &fb_built);
  (void)with;

  // PACE (not upstream exploitation) also drops late tuples in the
  // feedback run; both effects are covered by a timestamp-bound
  // pattern. Use the high watermark: anything PACE/IMPUTE suppressed
  // had ts <= hwm - tolerance at some point, hence ts strictly below
  // the final watermark.
  PunctPattern covered = PunctPattern::AllWildcard(4).With(
      kImpTimestamp,
      AttrPattern::Le(Value::Timestamp(fb_built.pace->high_watermark())));

  std::vector<Tuple> baseline;
  for (const auto& c : base_built.sink->collected()) {
    baseline.push_back(c.tuple);
  }
  std::vector<Tuple> exploited;
  for (const auto& c : fb_built.sink->collected()) {
    exploited.push_back(c.tuple);
  }
  ExploitationCheck check =
      CheckCorrectExploitation(baseline, exploited, covered);
  EXPECT_TRUE(check.correct) << check.ToString();
  EXPECT_GT(check.suppressed, 0) << "feedback should suppress something";
}

TEST(Experiment1, CleanBranchUnaffectedByFeedback) {
  ImputationPlan built;
  TimelinessReport report = RunPlan(SmallConfig(true), &built);
  // Every clean tuple arrives, and arrives timely.
  EXPECT_EQ(report.clean_delivered, 500u);
  for (const SeriesPoint& p : report.clean) {
    EXPECT_LE(p.lag_ms, 5'000);
  }
}

}  // namespace
}  // namespace nstream
