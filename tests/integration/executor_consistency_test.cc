// Cross-executor consistency: the same plan over the same workload
// must produce the same result multiset under the synchronous,
// discrete-event, and thread-per-operator executors (order may vary).

#include <gtest/gtest.h>

#include <algorithm>

#include "ops/select.h"
#include "ops/window_aggregate.h"
#include "testing/test_util.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

using testing_util::LinearPlan;
using testing_util::P;

SchemaPtr GVSchema() {
  return Schema::Make({{"g", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kDouble}});
}

std::vector<TimedElement> Workload() {
  std::vector<TimedElement> out;
  Rng rng(77);
  TimeMs last_punct = 0;
  for (int i = 0; i < 400; ++i) {
    TimeMs ts = i * 25;
    out.push_back(TimedElement::OfTuple(
        ts, TupleBuilder()
                .I64(rng.NextInt(0, 4))
                .Ts(ts)
                .D(rng.NextDouble(0, 80))
                .Build()));
    if (ts - last_punct >= 1'000) {
      out.push_back(TimedElement::OfPunct(
          ts, Punctuation(PunctPattern::AllWildcard(3).With(
                  1, AttrPattern::Le(Value::Timestamp(ts))))));
      last_punct = ts;
    }
  }
  return out;
}

std::multiset<std::string> RunUnder(int executor) {
  LinearPlan lp(GVSchema(), Workload());
  lp.Add(Select::FromPattern("sel", P("[*,*,>=10.0]")));
  WindowAggregateOptions opt;
  opt.ts_attr = 1;
  opt.group_attrs = {0};
  opt.agg_attr = 2;
  opt.kind = AggKind::kAvg;
  opt.window = {1'000, 1'000};
  lp.Add(std::make_unique<WindowAggregate>("avg", opt));
  CollectorSink* sink = lp.Finish();
  Status st;
  switch (executor) {
    case 0:
      st = lp.RunSync();
      break;
    case 1:
      st = lp.RunSim();
      break;
    default:
      st = lp.RunThreaded();
      break;
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

TEST(ExecutorConsistency, SyncVsSim) {
  EXPECT_EQ(RunUnder(0), RunUnder(1));
}

TEST(ExecutorConsistency, SyncVsThreaded) {
  EXPECT_EQ(RunUnder(0), RunUnder(2));
}

TEST(ExecutorConsistency, ThreadedIsStableAcrossRuns) {
  EXPECT_EQ(RunUnder(2), RunUnder(2));
}

// The Experiment 1 plan under the threaded executor with real sleeps:
// the architecture demo — PACE feedback must flow through the real
// control channels and reach IMPUTE.
TEST(ThreadedFeedback, ImputationPlanExerciseControlChannel) {
  ImputationPlanConfig config;
  config.stream.num_tuples = 300;
  config.stream.inter_arrival_ms = 1;  // dense stream
  // Dirty tuples arrive every ~2ms; a 4ms lookup makes the impute
  // branch fall behind by ~2ms per dirty tuple, so divergence crosses
  // the 50ms tolerance deterministically (2ms would only match the
  // arrival rate and leave the test at the mercy of sleep jitter).
  config.impute_cost_ms = 4.0;
  config.tolerance_ms = 50;
  config.feedback_enabled = true;

  ImputationPlan built = BuildImputationPlan(config);
  ThreadedExecutorOptions opts;
  opts.charge_policy = ChargePolicy::kSleep;
  opts.pace_sources = true;  // real-time arrival pacing
  opts.queue.page_size = 8;
  ThreadedExecutor exec(opts);
  Status st = exec.Run(built.plan.get());
  ASSERT_TRUE(st.ok()) << st.ToString();

  // All clean tuples arrive; feedback was produced and exploited.
  EXPECT_EQ(built.clean_filter->stats().tuples_out, 150u);
  EXPECT_GT(built.pace->stats().feedback_sent, 0u);
  EXPECT_GT(built.impute->stats().feedback_received, 0u);
  // Work was genuinely avoided (purged backlog or guarded arrivals).
  EXPECT_LT(built.impute->imputations(), 150u);
}

}  // namespace
}  // namespace nstream
