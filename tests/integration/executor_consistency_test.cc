// Cross-executor consistency: the same plan over the same workload
// must produce the same result multiset under the synchronous,
// discrete-event, thread-per-operator, and pooled executors (order
// may vary).

#include <gtest/gtest.h>

#include <algorithm>

#include "ops/select.h"
#include "ops/window_aggregate.h"
#include "testing/sched_harness.h"
#include "testing/test_util.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

using testing_util::LinearPlan;
using testing_util::P;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;

SchemaPtr GVSchema() {
  return Schema::Make({{"g", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kDouble}});
}

std::vector<TimedElement> Workload() {
  std::vector<TimedElement> out;
  Rng rng(77);
  TimeMs last_punct = 0;
  for (int i = 0; i < 400; ++i) {
    TimeMs ts = i * 25;
    out.push_back(TimedElement::OfTuple(
        ts, TupleBuilder()
                .I64(rng.NextInt(0, 4))
                .Ts(ts)
                .D(rng.NextDouble(0, 80))
                .Build()));
    if (ts - last_punct >= 1'000) {
      out.push_back(TimedElement::OfPunct(
          ts, Punctuation(PunctPattern::AllWildcard(3).With(
                  1, AttrPattern::Le(Value::Timestamp(ts))))));
      last_punct = ts;
    }
  }
  return out;
}

std::multiset<std::string> RunUnder(int executor) {
  LinearPlan lp(GVSchema(), Workload());
  lp.Add(Select::FromPattern("sel", P("[*,*,>=10.0]")));
  WindowAggregateOptions opt;
  opt.ts_attr = 1;
  opt.group_attrs = {0};
  opt.agg_attr = 2;
  opt.kind = AggKind::kAvg;
  opt.window = {1'000, 1'000};
  lp.Add(std::make_unique<WindowAggregate>("avg", opt));
  CollectorSink* sink = lp.Finish();
  Status st;
  switch (executor) {
    case 0:
      st = lp.RunSync();
      break;
    case 1:
      st = lp.RunSim();
      break;
    case 2:
      st = lp.RunThreaded();
      break;
    case 3: {
      PooledExecutorOptions opts;
      opts.pool_size = 2;
      st = lp.RunPooled(opts);
      break;
    }
    default: {
      // Seeded manual-mode harness with wake deferral: the adversarial
      // scheduling variant of the same consistency claim.
      SchedHarnessOptions hopts;
      hopts.seed = 97;
      hopts.wake_defer_prob = 0.25;
      SchedHarness harness(hopts);
      st = harness.Run(lp.plan());
      break;
    }
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

TEST(ExecutorConsistency, SyncVsSim) {
  EXPECT_EQ(RunUnder(0), RunUnder(1));
}

TEST(ExecutorConsistency, SyncVsThreaded) {
  EXPECT_EQ(RunUnder(0), RunUnder(2));
}

TEST(ExecutorConsistency, ThreadedIsStableAcrossRuns) {
  EXPECT_EQ(RunUnder(2), RunUnder(2));
}

TEST(ExecutorConsistency, SyncVsPooled) {
  EXPECT_EQ(RunUnder(0), RunUnder(3));
}

TEST(ExecutorConsistency, SyncVsSchedHarness) {
  EXPECT_EQ(RunUnder(0), RunUnder(4));
}

// The Experiment 1 plan with live PACE feedback — the architecture
// demo. Formerly ran under ThreadedExecutor with real sleeps
// (ChargePolicy::kSleep + wall-clock pacing), which made the timing
// dynamics hostage to box speed and sleep jitter. Now it runs on the
// scheduling harness in VIRTUAL time: arrivals release on a
// VirtualClock and each ChargeMs busy-parks the charged operator for
// that long, so IMPUTE genuinely falls behind its free neighbors and
// the divergence dynamics are exact arithmetic — reproducible from
// the harness seed.
TEST(ThreadedFeedback, ImputationPlanExerciseControlChannel) {
  ImputationPlanConfig config;
  config.stream.num_tuples = 300;
  config.stream.inter_arrival_ms = 1;  // dense stream
  // Dirty tuples arrive every ~2ms (virtual); a 4ms lookup makes the
  // impute branch fall behind by ~2ms per dirty tuple, so divergence
  // crosses the 50ms tolerance after ~26 dirty tuples — deterministic
  // arithmetic on the virtual clock, not a race against wall time.
  config.impute_cost_ms = 4.0;
  config.tolerance_ms = 50;
  config.feedback_enabled = true;

  ImputationPlan built = BuildImputationPlan(config);
  SchedHarnessOptions hopts;
  hopts.seed = 9;
  hopts.sched.pace_sources = true;  // virtual-time arrival pacing
  hopts.sched.queue.page_size = 8;
  SchedHarness harness(hopts);
  Status st = harness.Run(built.plan.get());
  ASSERT_TRUE(st.ok()) << st.ToString();

  // All clean tuples arrive; feedback was produced and exploited.
  EXPECT_EQ(built.clean_filter->stats().tuples_out, 150u);
  EXPECT_GT(built.pace->stats().feedback_sent, 0u);
  EXPECT_GT(built.impute->stats().feedback_received, 0u);
  // Work was genuinely avoided (purged backlog or guarded arrivals).
  EXPECT_LT(built.impute->imputations(), 150u);
  // The run consumed virtual, not wall, time: the last of 300 arrivals
  // at 1ms spacing lands at >= 299ms on the harness clock.
  EXPECT_GE(harness.clock()->NowMs(), 299);
}

}  // namespace
}  // namespace nstream
