// Integration: the Experiment 2 speed-map plan (Fig. 7) — viewer
// feedback with schemes F0-F3. Checks the paper's qualitative result:
// work done shrinks monotonically from F0 through F3, invisible
// segments' results are suppressed, and visible segments' results are
// identical to the baseline (Definition 1).

#include <gtest/gtest.h>

#include <map>

#include "core/correctness.h"
#include "exec/sync_executor.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

SpeedmapPlanConfig SmallConfig(FeedbackPolicy scheme) {
  SpeedmapPlanConfig config;
  config.traffic.num_segments = 4;
  config.traffic.detectors_per_segment = 6;
  config.traffic.tick_ms = 20'000;
  config.traffic.duration_ms = 40 * 60'000;  // 40 minutes
  config.traffic.punct_every_ms = 60'000;
  config.scheme = scheme;
  config.switch_every_ms = 240'000;  // 4-minute zoom cadence
  config.record_sink_tuples = true;
  return config;
}

struct RunResult {
  SpeedmapPlan built;
  Status status;
};

RunResult RunPlan(FeedbackPolicy scheme) {
  RunResult out{BuildSpeedmapPlan(SmallConfig(scheme)), Status::OK()};
  SyncExecutor exec;
  out.status = exec.Run(out.built.plan.get());
  return out;
}

TEST(Experiment2, BaselineProducesAllSegments) {
  RunResult r = RunPlan(FeedbackPolicy::kIgnore);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  // 40 windows x 4 segments (last window closes at EOS).
  std::map<int64_t, int> per_segment;
  for (const auto& c : r.built.sink->collected()) {
    per_segment[c.tuple.value(1).int64_value()]++;
  }
  ASSERT_EQ(per_segment.size(), 4u);
  for (const auto& [seg, n] : per_segment) {
    EXPECT_GE(n, 39) << "segment " << seg;
  }
  EXPECT_EQ(r.built.average->stats().feedback_received, 0u);
}

TEST(Experiment2, F1SuppressesInvisibleResultsAtOutput) {
  RunResult r = RunPlan(FeedbackPolicy::kOutputGuardOnly);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(r.built.average->stats().feedback_received, 0u);
  EXPECT_GT(r.built.average->stats().output_guard_drops, 0u);
  // F1 still does all the aggregation work.
  RunResult f0 = RunPlan(FeedbackPolicy::kIgnore);
  EXPECT_EQ(r.built.average->updates_applied(),
            f0.built.average->updates_applied());
  // But emits far fewer results.
  EXPECT_LT(r.built.sink->consumed(), f0.built.sink->consumed());
}

TEST(Experiment2, F2AvoidsAggregationWork) {
  RunResult f0 = RunPlan(FeedbackPolicy::kIgnore);
  RunResult f2 = RunPlan(FeedbackPolicy::kExploit);
  ASSERT_TRUE(f2.status.ok()) << f2.status.ToString();
  EXPECT_LT(f2.built.average->updates_applied(),
            f0.built.average->updates_applied() * 3 / 4);
  EXPECT_GT(f2.built.average->stats().input_guard_drops, 0u);
  // No propagation under F2: σQ never hears about it.
  EXPECT_EQ(f2.built.quality_filter->stats().feedback_received, 0u);
}

TEST(Experiment2, F3PropagatesToQualityFilter) {
  RunResult f3 = RunPlan(FeedbackPolicy::kExploitAndPropagate);
  ASSERT_TRUE(f3.status.ok()) << f3.status.ToString();
  EXPECT_GT(f3.built.quality_filter->stats().feedback_received, 0u);
  EXPECT_GT(f3.built.quality_filter->stats().input_guard_drops, 0u);
  EXPECT_GT(f3.built.average->stats().feedback_propagated, 0u);
  // The filter dropping inputs means the aggregate sees fewer tuples.
  RunResult f2 = RunPlan(FeedbackPolicy::kExploit);
  EXPECT_LT(f3.built.average->stats().tuples_in,
            f2.built.average->stats().tuples_in);
}

TEST(Experiment2, MonotoneWorkReductionF0ThroughF3) {
  RunResult f0 = RunPlan(FeedbackPolicy::kIgnore);
  RunResult f1 = RunPlan(FeedbackPolicy::kOutputGuardOnly);
  RunResult f2 = RunPlan(FeedbackPolicy::kExploit);
  RunResult f3 = RunPlan(FeedbackPolicy::kExploitAndPropagate);
  // "Work" = tuples delivered to sink + aggregate updates + filter
  // evaluations (a machine-independent proxy for Fig. 7's runtime).
  auto work = [](const RunResult& r) {
    return r.built.sink->consumed() +
           r.built.average->updates_applied() +
           r.built.quality_filter->stats().tuples_out;
  };
  EXPECT_GT(work(f0), work(f1));
  EXPECT_GT(work(f1), work(f2));
  EXPECT_GT(work(f2), work(f3));
}

TEST(Experiment2, VisibleSegmentResultsMatchBaseline) {
  // Definition 1 on the full run: the feedback run's output must be a
  // subset of the baseline's, and anything missing must be covered by
  // some issued feedback (invisible (interval, segment) pairs).
  RunResult f0 = RunPlan(FeedbackPolicy::kIgnore);
  RunResult f3 = RunPlan(FeedbackPolicy::kExploitAndPropagate);
  ViewerConfig viewer;
  viewer.num_segments = 4;
  viewer.switch_every_ms = 240'000;

  std::multiset<std::string> f3_set;
  for (const auto& c : f3.built.sink->collected()) {
    f3_set.insert(c.tuple.ToString());
  }
  int missing_visible = 0;
  int extra = static_cast<int>(f3_set.size());
  for (const auto& c : f0.built.sink->collected()) {
    std::string key = c.tuple.ToString();
    auto it = f3_set.find(key);
    bool present = it != f3_set.end();
    if (present) {
      f3_set.erase(it);
      --extra;  // consumed: it was a legitimate baseline tuple
      continue;
    }
    // Missing from F3: must be an invisible (interval, segment).
    TimeMs we = c.tuple.value(0).timestamp_value();
    int64_t seg = c.tuple.value(1).int64_value();
    // The window ending at `we` covers [we-60s, we); it belongs to the
    // viewer interval of its start.
    int visible = VisibleSegmentAt(viewer, we - 60'000);
    if (seg == visible) ++missing_visible;
  }
  EXPECT_EQ(missing_visible, 0)
      << "feedback suppressed results the viewer wanted";
  // Everything left in f3_set would be tuples F3 invented.
  EXPECT_EQ(f3_set.size(), 0u) << "feedback run invented tuples";
  (void)extra;
}

TEST(Experiment2, GuardsExpireAsWindowsClose) {
  RunResult f2 = RunPlan(FeedbackPolicy::kExploit);
  ASSERT_TRUE(f2.status.ok());
  // §4.4: guard state must not accumulate — patterns are time-bounded
  // and expire once punctuation covers them. After the run, (almost)
  // everything installed has been reclaimed.
  const GuardSet& guards = f2.built.average->group_guards();
  EXPECT_GT(guards.total_installed(), 0u);
  EXPECT_GE(guards.total_expired() + 2, guards.total_installed())
      << "guards leaked: " << guards.ToString();
}

}  // namespace
}  // namespace nstream
