#include <gtest/gtest.h>

#include "workload/archive.h"
#include "workload/auction.h"
#include "workload/imputation.h"
#include "workload/traffic.h"
#include "workload/viewer.h"

namespace nstream {
namespace {

// Every workload must satisfy the punctuation contract: once a
// punctuation is emitted, no later element may match it. Violations
// here would silently corrupt every downstream experiment.
void CheckPunctuationValidity(const std::vector<TimedElement>& stream) {
  std::vector<Punctuation> puncts;
  TimeMs last_arrival = INT64_MIN;
  for (const TimedElement& te : stream) {
    EXPECT_GE(te.arrival_ms, last_arrival) << "arrival order violated";
    last_arrival = te.arrival_ms;
    if (te.element.is_punct()) {
      puncts.push_back(te.element.punct());
    } else if (te.element.is_tuple()) {
      for (const Punctuation& p : puncts) {
        EXPECT_FALSE(p.pattern().Matches(te.element.tuple()))
            << "tuple " << te.element.tuple().ToString()
            << " violates earlier punctuation " << p.ToString();
      }
    }
  }
  EXPECT_FALSE(puncts.empty()) << "stream carries no punctuation";
}

TEST(TrafficGenTest, DeterministicGivenSeed) {
  TrafficConfig c;
  c.num_segments = 3;
  c.detectors_per_segment = 2;
  c.duration_ms = 5 * 60'000;
  std::vector<TimedElement> a = GenerateTraffic(c);
  std::vector<TimedElement> b = GenerateTraffic(c);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].element.is_tuple(), b[i].element.is_tuple());
    if (a[i].element.is_tuple()) {
      EXPECT_EQ(a[i].element.tuple(), b[i].element.tuple());
    }
  }
}

TEST(TrafficGenTest, VolumeMatchesConfiguration) {
  TrafficConfig c;
  c.num_segments = 9;
  c.detectors_per_segment = 40;
  c.tick_ms = 20'000;
  c.duration_ms = 10 * 60'000;  // 10 minutes: 30 ticks
  TrafficGen gen(c);
  uint64_t tuples = 0;
  while (auto e = gen.Next()) {
    if (e->element.is_tuple()) ++tuples;
  }
  EXPECT_EQ(tuples, 9u * 40u * 30u);
}

TEST(TrafficGenTest, PunctuationContractHolds) {
  TrafficConfig c;
  c.num_segments = 2;
  c.detectors_per_segment = 3;
  c.duration_ms = 6 * 60'000;
  c.ooo_jitter_ms = 15'000;  // even with disorder
  CheckPunctuationValidity(GenerateTraffic(c));
}

TEST(TrafficGenTest, CongestionVariesAcrossSegmentsAndTime) {
  TrafficConfig c;
  TrafficGen gen(c);
  int congested = 0;
  int total = 0;
  for (int s = 0; s < c.num_segments; ++s) {
    for (TimeMs t = 0; t < 86'400'000; t += 3'600'000) {
      ++total;
      if (gen.IsCongested(s, t)) ++congested;
    }
  }
  EXPECT_GT(congested, 0);
  EXPECT_LT(congested, total);
}

TEST(TrafficGenTest, DropoutsAndGarbageAppearAtConfiguredRates) {
  TrafficConfig c;
  c.num_segments = 4;
  c.detectors_per_segment = 10;
  c.duration_ms = 20 * 60'000;
  c.null_prob = 0.2;
  c.bad_prob = 0.1;
  int nulls = 0;
  int bad = 0;
  int total = 0;
  for (const TimedElement& te : GenerateTraffic(c)) {
    if (!te.element.is_tuple()) continue;
    ++total;
    const Value& v = te.element.tuple().value(kDetSpeed);
    if (v.is_null()) {
      ++nulls;
    } else if (v.double_value() < 0) {
      ++bad;
    }
  }
  EXPECT_NEAR(static_cast<double>(nulls) / total, 0.2, 0.05);
  EXPECT_NEAR(static_cast<double>(bad) / total, 0.08, 0.05);
}

TEST(ProbeGenTest, OutagesProduceEmptyMinutes) {
  ProbeConfig c;
  c.num_segments = 3;
  c.num_vehicles = 10;
  c.duration_ms = 14 * 60'000;
  c.coverage = 1.0;
  c.outage_period_min = 7;
  c.outage_len_min = 2;
  std::vector<int> per_minute(14, 0);
  for (const TimedElement& te : GenerateProbes(c)) {
    if (!te.element.is_tuple()) continue;
    per_minute[static_cast<size_t>(
        te.element.tuple().value(kProbeTimestamp).timestamp_value() /
        60'000)]++;
  }
  // Minutes 0,1 and 7,8 are dark; others are not.
  EXPECT_EQ(per_minute[0], 0);
  EXPECT_EQ(per_minute[1], 0);
  EXPECT_GT(per_minute[2], 0);
  EXPECT_EQ(per_minute[7], 0);
  EXPECT_GT(per_minute[9], 0);
}

TEST(ImputationStreamTest, AlternatesCleanAndDirty) {
  ImputationConfig c;
  c.num_tuples = 100;
  int dirty = 0;
  for (const TimedElement& te : GenerateImputationStream(c)) {
    if (te.element.is_tuple() &&
        te.element.tuple().value(kImpSpeed).is_null()) {
      ++dirty;
    }
  }
  EXPECT_EQ(dirty, 50);
}

TEST(ImputationStreamTest, PunctuationContractHolds) {
  ImputationConfig c;
  c.num_tuples = 500;
  CheckPunctuationValidity(GenerateImputationStream(c));
}

TEST(AuctionStreamTest, ClosePunctuationsRespectAuctionLifetimes) {
  AuctionConfig c;
  c.num_auctions = 5;
  c.bids_per_auction = 20;
  CheckPunctuationValidity(GenerateAuctionStream(c));
}

TEST(AuctionStreamTest, BidsMonotonePerAuction) {
  AuctionConfig c;
  c.num_auctions = 3;
  std::vector<TimedElement> stream = GenerateAuctionStream(c);
  // Count bids; the stream must carry all of them.
  int bids = 0;
  for (const TimedElement& te : stream) {
    if (te.element.is_tuple()) ++bids;
  }
  EXPECT_EQ(bids, 3 * c.bids_per_auction);
}

TEST(ArchiveStoreTest, DeterministicAndQueryCounted) {
  ArchiveStore a;
  ArchiveStore b;
  double x = a.Estimate(17, 3'600'000);
  double y = b.Estimate(17, 3'600'000);
  EXPECT_DOUBLE_EQ(x, y);
  EXPECT_EQ(a.queries(), 1u);
  // Estimates stay in a sane speed range.
  for (int d = 0; d < 20; ++d) {
    double v = a.Estimate(d, d * 997'000);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 90.0);
  }
}

TEST(ArchiveStoreTest, TimeOfDayStructure) {
  // Rush-hour buckets should differ from free-flow buckets.
  ArchiveStore a;
  double night = a.Estimate(3, 0);
  double rush = a.Estimate(3, 6 * 3'600'000);
  EXPECT_NE(night, rush);
}

TEST(ViewerTest, SwitchesSegmentsOnSchedule) {
  ViewerConfig v;
  v.num_segments = 4;
  v.switch_every_ms = 120'000;
  EXPECT_EQ(VisibleSegmentAt(v, 0), 0);
  EXPECT_EQ(VisibleSegmentAt(v, 119'999), 0);
  EXPECT_EQ(VisibleSegmentAt(v, 120'000), 1);
  EXPECT_EQ(VisibleSegmentAt(v, 4 * 120'000), 0);  // wraps
}

TEST(ViewerTest, DriverEmitsBoundedAssumedFeedback) {
  ViewerConfig v;
  v.num_segments = 4;
  v.switch_every_ms = 120'000;
  auto driver = MakeViewerDriver(v);
  Tuple first_result =
      TupleBuilder().Ts(60'000).I64(2).D(50).Build();
  std::vector<FeedbackPunctuation> out = driver(first_result, 0);
  ASSERT_EQ(out.size(), 2u);  // current + prefetched next interval
  for (const FeedbackPunctuation& fb : out) {
    EXPECT_TRUE(fb.is_assumed());
    // Time-bounded (supportable) and segment-constrained.
    EXPECT_EQ(fb.pattern().ConstrainedIndices(),
              (std::vector<int>{0, 1}));
  }
  // Same interval again: no duplicate feedback.
  EXPECT_TRUE(driver(first_result, 0).empty());
}

}  // namespace
}  // namespace nstream
