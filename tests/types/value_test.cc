#include "types/value.h"

#include <gtest/gtest.h>

namespace nstream {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, FactoryTypes) {
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int64(3).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Timestamp(9).type(), ValueType::kTimestamp);
}

TEST(ValueTest, Accessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(-7).int64_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.25).double_value(), 2.25);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_EQ(Value::Timestamp(123).timestamp_value(), 123);
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value::Int64(5).AsDouble().value(), 5.0);
  EXPECT_DOUBLE_EQ(Value::Timestamp(9).AsDouble().value(), 9.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, AsInt64) {
  EXPECT_EQ(Value::Int64(5).AsInt64().value(), 5);
  EXPECT_EQ(Value::Timestamp(9).AsInt64().value(), 9);
  EXPECT_FALSE(Value::Double(2.5).AsInt64().ok());
  EXPECT_FALSE(Value::Null().AsInt64().ok());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)).value(), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)).value(), 0);
  EXPECT_GT(Value::Timestamp(10).Compare(Value::Int64(9)).value(), 0);
}

TEST(ValueTest, CompareNullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)).value(), 0);
  EXPECT_GT(Value::Int64(-100).Compare(Value::Null()).value(), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")).value(),
            0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")).value(), 0);
}

TEST(ValueTest, IncomparableTypesError) {
  EXPECT_FALSE(Value::String("1").Compare(Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Bool(true).Compare(Value::Int64(1)).ok());
}

TEST(ValueTest, EqualityAcrossNumericTypes) {
  EXPECT_EQ(Value::Int64(42), Value::Double(42.0));
  EXPECT_NE(Value::Int64(42), Value::Double(42.5));
  EXPECT_NE(Value::String("42"), Value::Int64(42));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Timestamp(7).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(5).ToString(), "5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Timestamp(12).ToString(), "t:12");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, LargeIntegerExactCompare) {
  int64_t big = (1LL << 60) + 1;
  EXPECT_EQ(Value::Int64(big).Compare(Value::Int64(big)).value(), 0);
  EXPECT_LT(Value::Int64(big).Compare(Value::Int64(big + 1)).value(), 0);
}

}  // namespace
}  // namespace nstream
