#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/tuple.h"

namespace nstream {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"segment", ValueType::kInt64},
                       {"timestamp", ValueType::kTimestamp},
                       {"speed", ValueType::kDouble}});
}

TEST(SchemaTest, IndexOf) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->IndexOf("segment").value(), 0);
  EXPECT_EQ(s->IndexOf("speed").value(), 2);
  EXPECT_TRUE(s->IndexOf("nope").status().IsNotFound());
}

TEST(SchemaTest, Project) {
  SchemaPtr s = TestSchema();
  SchemaPtr p = s->Project({2, 0}).value();
  ASSERT_EQ(p->num_fields(), 2);
  EXPECT_EQ(p->field(0).name, "speed");
  EXPECT_EQ(p->field(1).name, "segment");
  EXPECT_FALSE(s->Project({5}).ok());
}

TEST(SchemaTest, Concat) {
  SchemaPtr s = TestSchema();
  SchemaPtr c = s->Concat(*s);
  EXPECT_EQ(c->num_fields(), 6);
  EXPECT_EQ(c->field(4).name, "timestamp");
}

TEST(SchemaTest, EqualsAndToString) {
  EXPECT_TRUE(TestSchema()->Equals(*TestSchema()));
  EXPECT_EQ(TestSchema()->ToString(),
            "(segment:int64, timestamp:timestamp, speed:double)");
}

TEST(TupleTest, BuilderAndAccess) {
  Tuple t = TupleBuilder().I64(3).Ts(9000).D(51.5).Build();
  ASSERT_EQ(t.size(), 3);
  EXPECT_EQ(t.value(0).int64_value(), 3);
  EXPECT_EQ(t.value(1).timestamp_value(), 9000);
  EXPECT_DOUBLE_EQ(t.value(2).double_value(), 51.5);
}

TEST(TupleTest, Metadata) {
  Tuple t = TupleBuilder().I64(1).Build();
  EXPECT_EQ(t.id(), 0);
  EXPECT_EQ(t.arrival_ms(), -1);
  t.set_id(42);
  t.set_arrival_ms(100);
  EXPECT_EQ(t.id(), 42);
  EXPECT_EQ(t.arrival_ms(), 100);
}

TEST(TupleTest, EqualityIgnoresMetadata) {
  Tuple a = TupleBuilder().I64(1).D(2.0).Build();
  Tuple b = TupleBuilder().I64(1).D(2.0).Build();
  b.set_id(99);
  EXPECT_EQ(a, b);
}

TEST(TupleTest, HashSubsetMatchesEqualSubsets) {
  Tuple a = TupleBuilder().I64(7).I64(3).D(1.0).Build();
  Tuple b = TupleBuilder().I64(7).I64(3).D(9.9).Build();
  EXPECT_EQ(a.HashSubset({0, 1}), b.HashSubset({0, 1}));
  EXPECT_TRUE(a.EqualsSubset(b, {0, 1}, {0, 1}));
  EXPECT_FALSE(a.EqualsSubset(b, {2}, {2}));
}

TEST(TupleTest, EqualsSubsetCrossPositions) {
  Tuple a = TupleBuilder().I64(5).S("x").Build();
  Tuple b = TupleBuilder().S("x").I64(5).Build();
  EXPECT_TRUE(a.EqualsSubset(b, {0, 1}, {1, 0}));
}

TEST(TupleTest, ToString) {
  Tuple t = TupleBuilder().I64(1).Null().S("hi").Build();
  EXPECT_EQ(t.ToString(), "<1, null, 'hi'>");
}

}  // namespace
}  // namespace nstream
