// Value representation invariants introduced by the hot-path overhaul:
// the tag/variant pair stays consistent, Hash is == -compatible with
// int64 as the canonical numeric domain (no double-boxing), and
// TryCompare agrees with Compare everywhere.

#include <gtest/gtest.h>

#include <vector>

#include "types/value.h"

namespace nstream {
namespace {

std::vector<Value> SampleValues() {
  return {
      Value::Null(),          Value::Bool(false),
      Value::Bool(true),      Value::Int64(0),
      Value::Int64(42),       Value::Int64(-7),
      Value::Int64(INT64_MAX), Value::Timestamp(0),
      Value::Timestamp(42),   Value::Double(0.0),
      Value::Double(-0.0),    Value::Double(42.0),
      Value::Double(0.5),     Value::Double(-7.0),
      Value::Double(1e30),    Value::String(""),
      Value::String("abc"),
      // The >2^53 region, where mixed int64/double equality is decided
      // in double precision and the hash must follow suit.
      Value::Int64((int64_t{1} << 62) + 1),
      Value::Int64(int64_t{1} << 62),
      Value::Double(4611686018427387904.0),  // 2^62
      Value::Int64((int64_t{1} << 53) + 1),
      Value::Int64(int64_t{1} << 53),
      Value::Double(9007199254740992.0),  // 2^53
  };
}

TEST(ValueInvariants, TagSurvivesFactoriesAndCopies) {
  for (const Value& v : SampleValues()) {
    Value copy = v;
    EXPECT_EQ(copy.type(), v.type());
    EXPECT_TRUE(copy == v) << v.ToString();
    // A moved-into value keeps the source's tag.
    Value moved = std::move(copy);
    EXPECT_EQ(moved.type(), v.type());
  }
}

TEST(ValueInvariants, EqualityImpliesEqualHash) {
  std::vector<Value> values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " == " << b.ToString()
            << " but hashes differ";
      }
    }
  }
}

TEST(ValueInvariants, NumericHashCanonicalizesToInt64) {
  // 42, t:42 and 42.0 are all == and must share one hash; the integer
  // forms hash directly (no boxing through a double image).
  size_t h = Value::Int64(42).Hash();
  EXPECT_EQ(Value::Timestamp(42).Hash(), h);
  EXPECT_EQ(Value::Double(42.0).Hash(), h);
  EXPECT_EQ(h, std::hash<int64_t>{}(42));
  // Non-integral doubles can never equal an int64 and keep their own
  // hash domain.
  EXPECT_EQ(Value::Double(0.5).Hash(), std::hash<double>{}(0.5));
}

TEST(ValueInvariants, HashFollowsWideningEqualityAbove2Pow53) {
  // 2^62+1 == Double(2^62) under the widening comparison (both round
  // to 2^62 in double), so their hashes must agree too.
  Value big_int = Value::Int64((int64_t{1} << 62) + 1);
  Value big_dbl = Value::Double(4611686018427387904.0);
  ASSERT_TRUE(big_int == big_dbl);
  EXPECT_EQ(big_int.Hash(), big_dbl.Hash());
}

TEST(ValueInvariants, TryCompareAgreesWithCompare) {
  std::vector<Value> values = SampleValues();
  for (const Value& a : values) {
    for (const Value& b : values) {
      Result<int> slow = a.Compare(b);
      int c = 99;
      bool ok = a.TryCompare(b, &c);
      EXPECT_EQ(ok, slow.ok())
          << a.ToString() << " vs " << b.ToString();
      if (ok) {
        EXPECT_EQ(c, slow.value())
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace nstream
