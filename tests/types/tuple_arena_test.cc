// TupleArena / arena-backed Tuple/Value invariants: bump allocation,
// borrowed-string semantics (copy promotes, equality/hash agree with
// owned strings), ownership-mode transitions (Append conversion,
// Promote, Rehome), and the page-level ownership invariant behind the
// wholesale arena free.

#include "types/tuple_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stream/page.h"
#include "types/tuple.h"
#include "types/value.h"

namespace nstream {
namespace {

TEST(TupleArenaTest, BumpAllocationAlignmentAndGrowth) {
  TupleArena arena;
  EXPECT_EQ(arena.chunk_count(), 0u);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(arena.chunk_count(), 1u);
  // Exceed the first chunk: a new chunk appears; old pointers stay
  // valid (chunks are never reallocated).
  std::memset(a, 0xAB, 3);
  for (int i = 0; i < 64; ++i) arena.Allocate(1024, 8);
  EXPECT_GE(arena.chunk_count(), 2u);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xAB);
  EXPECT_GE(arena.bytes_used(), 64u * 1024u);
}

TEST(TupleArenaTest, OversizedAllocationGetsDedicatedChunk) {
  TupleArena arena;
  void* big = arena.Allocate(2 * TupleArena::kChunkBytes, 8);
  EXPECT_NE(big, nullptr);
  // Small allocations continue to work afterwards.
  void* small = arena.Allocate(16, 8);
  EXPECT_NE(small, nullptr);
}

TEST(TupleArenaTest, CopyStringBorrowsArenaBytes) {
  TupleArena arena;
  std::string src = "hello arena";
  std::string_view sv = arena.CopyString(src);
  src[0] = 'X';  // the arena copy is independent of the source
  EXPECT_EQ(sv, "hello arena");
  EXPECT_EQ(arena.CopyString("").size(), 0u);
}

TEST(BorrowedValueTest, EqualityHashAndCompareAgreeWithOwned) {
  TupleArena arena;
  // Longer than Value::kInlineCap so the arena copy actually borrows.
  Value owned = Value::String("stream-attribute");
  Value borrowed = Value::StringIn(&arena, "stream-attribute");
  EXPECT_TRUE(borrowed.is_borrowed_string());
  EXPECT_FALSE(owned.is_borrowed_string());
  EXPECT_EQ(owned.type(), ValueType::kString);
  EXPECT_EQ(borrowed.type(), ValueType::kString);
  EXPECT_TRUE(owned == borrowed);
  EXPECT_TRUE(borrowed == owned);
  EXPECT_EQ(owned.Hash(), borrowed.Hash());
  int c = 99;
  ASSERT_TRUE(borrowed.TryCompare(Value::String("stream-attribute!"), &c));
  EXPECT_LT(c, 0);
  EXPECT_EQ(borrowed.ToString(), owned.ToString());
  EXPECT_EQ(borrowed.string_view(), owned.string_view());
  // Short strings skip the arena entirely: inline representation,
  // equal to and hash-compatible with both other representations.
  Value inlined = Value::StringIn(&arena, "stream");
  EXPECT_TRUE(inlined.is_inline_string());
  EXPECT_FALSE(inlined.is_borrowed_string());
  EXPECT_TRUE(inlined.is_trivially_destructible_rep());
  EXPECT_TRUE(inlined == Value::String("stream"));
  EXPECT_EQ(inlined.Hash(), Value::String("stream").Hash());
  EXPECT_EQ(inlined.Hash(),
            Value::BorrowedString(arena.CopyString("stream")).Hash());
}

TEST(BorrowedValueTest, CopyPromotesMovePreserves) {
  TupleArena arena;
  // Past the inline cap, so StringIn actually borrows arena bytes.
  Value borrowed = Value::StringIn(&arena, "escape-safe-arena-bytes");
  ASSERT_TRUE(borrowed.is_borrowed_string());
  Value copy = borrowed;  // deep copy: owned
  EXPECT_FALSE(copy.is_borrowed_string());
  EXPECT_TRUE(copy == borrowed);
  Value assigned;
  assigned = borrowed;
  EXPECT_FALSE(assigned.is_borrowed_string());
  Value moved = std::move(borrowed);  // move: still borrowing
  EXPECT_TRUE(moved.is_borrowed_string());
  EXPECT_EQ(moved.string_view(), "escape-safe-arena-bytes");
}

TEST(BorrowedValueTest, StringInNullArenaFallsBackToSelfContained) {
  // No arena: a short string inlines, a long one owns heap bytes —
  // either way the value is self-contained (never borrowing).
  Value short_v = Value::StringIn(nullptr, "fallback");
  EXPECT_FALSE(short_v.is_borrowed_string());
  EXPECT_TRUE(short_v.is_inline_string());
  EXPECT_EQ(short_v.string_value(), "fallback");
  EXPECT_TRUE(short_v.is_trivially_destructible_rep());
  Value long_v = Value::StringIn(nullptr, "fallback-beyond-inline");
  EXPECT_FALSE(long_v.is_borrowed_string());
  EXPECT_FALSE(long_v.is_inline_string());
  EXPECT_EQ(long_v.string_value(), "fallback-beyond-inline");
  EXPECT_FALSE(long_v.is_trivially_destructible_rep());
}

TEST(ArenaTupleTest, AppendKeepsArenaValuesTriviallyDestructible) {
  TupleArena arena;
  Tuple t(&arena, 3);
  ASSERT_TRUE(t.arena_backed());
  t.Append(Value::Int64(7));
  t.Append(Value::String("an owning string"));  // re-homed into arena
  t.Append(Value::Timestamp(42));
  EXPECT_EQ(t.size(), 3);
  EXPECT_TRUE(t.value(1).is_borrowed_string());
  EXPECT_EQ(t.value(1).string_view(), "an owning string");
  EXPECT_TRUE(t.ArenaInvariantHolds(&arena));
}

TEST(ArenaTupleTest, GrowthPastReservedCapacityStaysInArena) {
  TupleArena arena;
  Tuple t(&arena, 2);
  for (int i = 0; i < 40; ++i) t.Append(Value::Int64(i));
  EXPECT_EQ(t.size(), 40);
  EXPECT_TRUE(t.arena_backed());
  for (int i = 0; i < 40; ++i) EXPECT_EQ(t.value(i).int64_value(), i);
}

TEST(ArenaTupleTest, CopyIsOwnedAndOutlivesArena) {
  Tuple copy;
  {
    TupleArena arena;
    Tuple t(&arena, 2);
    t.Append(Value::String("must survive"));
    t.Append(Value::Int64(5));
    t.set_id(17);
    copy = t;  // deep copy promotes the borrowed string
  }  // arena gone
  EXPECT_FALSE(copy.arena_backed());
  EXPECT_FALSE(copy.value(0).is_borrowed_string());
  EXPECT_EQ(copy.value(0).string_view(), "must survive");
  EXPECT_EQ(copy.id(), 17);
  EXPECT_TRUE(copy.ArenaInvariantHolds(nullptr));
}

TEST(ArenaTupleTest, PromoteDetachesFromArena) {
  Tuple t;
  {
    TupleArena arena;
    Tuple in(&arena, 2);
    in.Append(Value::String("promoted"));
    in.Append(Value::Double(2.5));
    in.set_arrival_ms(123);
    t = std::move(in);       // move keeps the arena backing
    ASSERT_TRUE(t.arena_backed());
    t.Promote();             // the join-table insert path
    EXPECT_FALSE(t.arena_backed());
  }
  EXPECT_EQ(t.value(0).string_view(), "promoted");
  EXPECT_EQ(t.value(1).double_value(), 2.5);
  EXPECT_EQ(t.arrival_ms(), 123);
  t.Promote();  // idempotent on owned tuples
  EXPECT_EQ(t.size(), 2);
}

TEST(ArenaTupleTest, RehomeMovesPayloadBetweenArenas) {
  TupleArena dst;
  Tuple t;
  {
    TupleArena src;
    Tuple in(&src, 2);
    in.Append(Value::String("migrant"));
    in.Append(Value::Int64(9));
    in.Rehome(&dst);  // the page-to-page staging path
    EXPECT_EQ(in.arena(), &dst);
    t = std::move(in);
  }  // src arena gone; payload lives in dst now
  EXPECT_EQ(t.value(0).string_view(), "migrant");
  EXPECT_EQ(t.value(1).int64_value(), 9);
  EXPECT_TRUE(t.ArenaInvariantHolds(&dst));

  // Rehome to null promotes.
  t.Rehome(nullptr);
  EXPECT_FALSE(t.arena_backed());
  EXPECT_EQ(t.value(0).string_view(), "migrant");
}

TEST(ArenaTupleTest, HashAndSubsetEqualityAgreeAcrossModes) {
  TupleArena arena;
  Tuple a(&arena, 2);
  a.Append(Value::String("key"));
  a.Append(Value::Int64(3));
  Tuple b = TupleBuilder().S("key").I64(3).Build();
  std::vector<int> idx = {0, 1};
  EXPECT_EQ(a.HashSubset(idx), b.HashSubset(idx));
  EXPECT_TRUE(a.EqualsSubset(b, idx, idx));
  EXPECT_TRUE(a == b);
}

TEST(ArenaTupleTest, SameArenaBorrowAppendsWithoutRecopy) {
  TupleArena arena;
  // The documented construction pattern: StringIn copies the bytes
  // into the arena once; Append must recognise the same-arena borrow
  // and not copy them a second time.
  Value v = Value::StringIn(&arena, "a-string-long-enough-to-matter");
  Tuple t(&arena, 2);
  size_t before = arena.bytes_used();
  t.Append(std::move(v));
  EXPECT_EQ(arena.bytes_used(), before);
  EXPECT_TRUE(t.value(0).is_borrowed_string());

  // A FOREIGN borrow must still be re-copied (its arena may die
  // first).
  TupleArena other;
  Value foreign = Value::StringIn(&other, "foreign-arena-bytes");
  before = arena.bytes_used();
  t.Append(std::move(foreign));
  EXPECT_GT(arena.bytes_used(), before);
  EXPECT_TRUE(arena.Owns(t.value(1).string_view().data()));
}

TEST(ArenaTupleTest, OwnedAppendPromotesBorrowedValues) {
  TupleArena arena;
  Value borrowed = Value::StringIn(&arena, "loose");
  Tuple t;  // owned mode
  t.Append(std::move(borrowed));
  EXPECT_FALSE(t.value(0).is_borrowed_string());
  EXPECT_TRUE(t.ArenaInvariantHolds(nullptr));
}

TEST(PageArenaTest, AddTupleRehomesForeignArenaTuples) {
  Page source;
  TupleArena* src_arena = source.arena();
  ASSERT_NE(src_arena, nullptr);
  Tuple t(src_arena, 1);
  t.Append(Value::String("hop"));

  Page dest;
  dest.AddTuple(std::move(t));
  ASSERT_EQ(dest.size(), 1u);
  const Tuple& landed = dest.elements()[0].tuple();
  EXPECT_TRUE(landed.ArenaInvariantHolds(dest.arena_if_created()));
  // Destroy the source page: the landed tuple must not reference it.
  source = Page();
  EXPECT_EQ(landed.value(0).string_view(), "hop");
}

TEST(PageArenaTest, GlobalDisableFallsBackToOwned) {
  ScopedTupleArenasEnabled off(false);
  Page page;
  EXPECT_EQ(page.arena(), nullptr);
  Tuple t(page.arena(), 2);  // null arena → owned fallback
  t.Append(Value::String("owned"));
  EXPECT_FALSE(t.arena_backed());
  page.AddTuple(std::move(t));
  EXPECT_EQ(page.elements()[0].tuple().value(0).string_view(), "owned");
}

TEST(PageArenaTest, ArenaFreedWholesaleWithPage) {
  // A page full of arena tuples (with strings) destructs cleanly and
  // releases everything — ASan/LSan in CI is the real referee here.
  auto page = std::make_unique<Page>();
  TupleArena* arena = page->arena();
  ASSERT_NE(arena, nullptr);
  for (int i = 0; i < 1000; ++i) {
    Tuple t(arena, 2);
    t.Append(Value::StringIn(arena, "payload-" + std::to_string(i)));
    t.Append(Value::Int64(i));
    page->Add(StreamElement::OfTuple(std::move(t)));
  }
  EXPECT_EQ(page->size(), 1000u);
  EXPECT_GT(arena->bytes_used(), 1000u * sizeof(Value));
  page.reset();  // wholesale free; nothing to assert but "no crash/leak"
}

}  // namespace
}  // namespace nstream
