// Flat-Value semantic equivalence: the 16-byte tagged-union Value must
// be observationally identical to the std::variant representation it
// replaced. A frozen copy of the variant implementation (rep, Hash,
// TryCompare, equality — verbatim from the pre-flat value.cc) lives
// here as the reference; randomized values of every type — including
// owned and arena-borrowed strings and the >2^53 numeric region —
// are pushed through both and must agree on Hash, TryCompare (both
// comparability and sign), ==, type, and string bytes. Representation
// rules (copies promote borrowed → owned, moves preserve the borrow)
// are asserted directly.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "types/tuple_arena.h"
#include "types/value.h"

namespace nstream {
namespace {

// ---- Frozen variant reference (the pre-flat representation) ----

struct RefStringRef {
  const char* data;
  size_t len;
};

class RefValue {
 public:
  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           std::string, RefStringRef>;

  ValueType type = ValueType::kNull;
  Rep rep;

  static RefValue Of(const Value& v) {
    RefValue r;
    r.type = v.type();
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        r.rep = v.bool_value();
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        r.rep = v.int64_value();
        break;
      case ValueType::kDouble:
        r.rep = v.double_value();
        break;
      case ValueType::kString: {
        std::string_view sv = v.string_view();
        if (v.is_borrowed_string()) {
          r.rep = RefStringRef{sv.data(), sv.size()};
        } else {
          r.rep = std::string(sv);
        }
        break;
      }
    }
    return r;
  }

  bool is_null() const { return type == ValueType::kNull; }
  bool is_numeric() const {
    return type == ValueType::kInt64 || type == ValueType::kDouble ||
           type == ValueType::kTimestamp;
  }
  std::string_view string_view() const {
    if (rep.index() == 5) {
      const RefStringRef& s = std::get<RefStringRef>(rep);
      return std::string_view(s.data, s.len);
    }
    return std::get<std::string>(rep);
  }

  bool TryCompare(const RefValue& other, int* out) const {
    if (is_null() || other.is_null()) {
      if (is_null() && other.is_null()) {
        *out = 0;
      } else {
        *out = is_null() ? -1 : 1;
      }
      return true;
    }
    if (is_numeric() && other.is_numeric()) {
      if (type != ValueType::kDouble && other.type != ValueType::kDouble) {
        int64_t a = std::get<int64_t>(rep);
        int64_t b = std::get<int64_t>(other.rep);
        *out = a < b ? -1 : (a > b ? 1 : 0);
        return true;
      }
      double a = type == ValueType::kDouble
                     ? std::get<double>(rep)
                     : static_cast<double>(std::get<int64_t>(rep));
      double b = other.type == ValueType::kDouble
                     ? std::get<double>(other.rep)
                     : static_cast<double>(std::get<int64_t>(other.rep));
      *out = a < b ? -1 : (a > b ? 1 : 0);
      return true;
    }
    if (type == ValueType::kString && other.type == ValueType::kString) {
      int c = string_view().compare(other.string_view());
      *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
      return true;
    }
    if (type == ValueType::kBool && other.type == ValueType::kBool) {
      *out = static_cast<int>(std::get<bool>(rep)) -
             static_cast<int>(std::get<bool>(other.rep));
      return true;
    }
    return false;
  }

  bool Equals(const RefValue& other) const {
    int c;
    return TryCompare(other, &c) && c == 0;
  }

  size_t Hash() const {
    switch (type) {
      case ValueType::kNull:
        return 0x9ae16a3b2f90404fULL;
      case ValueType::kBool:
        return std::get<bool>(rep) ? 0x1234567 : 0x7654321;
      case ValueType::kInt64:
      case ValueType::kTimestamp: {
        int64_t v = std::get<int64_t>(rep);
        if (v > -Value::kDoubleExactBound && v < Value::kDoubleExactBound) {
          return std::hash<int64_t>{}(v);
        }
        return std::hash<double>{}(static_cast<double>(v));
      }
      case ValueType::kDouble: {
        double d = std::get<double>(rep);
        if (d > -static_cast<double>(Value::kDoubleExactBound) &&
            d < static_cast<double>(Value::kDoubleExactBound)) {
          int64_t i = static_cast<int64_t>(d);
          if (static_cast<double>(i) == d) {
            return std::hash<int64_t>{}(i);
          }
        }
        return std::hash<double>{}(d);
      }
      case ValueType::kString:
        return std::hash<std::string_view>{}(string_view());
    }
    return 0;
  }
};

// ---- Randomized value generation ----

std::string RandomText(std::mt19937_64* rng) {
  // Skewed lengths: empties, short join keys, and the occasional
  // chunk-straddling blob.
  size_t len;
  switch ((*rng)() % 5) {
    case 0:
      len = 0;
      break;
    case 1:
      len = 1 + (*rng)() % 4;
      break;
    case 2:
      len = 8 + (*rng)() % 24;
      break;
    default:
      len = (*rng)() % 200;
      break;
  }
  std::string out;
  out.reserve(len);
  // Tiny alphabet so equal strings are actually generated.
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + (*rng)() % 3));
  }
  return out;
}

Value RandomValue(std::mt19937_64* rng, TupleArena* arena) {
  switch ((*rng)() % 8) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool((*rng)() % 2 == 0);
    case 2:
      return Value::Int64(static_cast<int64_t>((*rng)() % 64) - 32);
    case 3: {
      // The >2^53 region and INT64 extremes.
      int64_t v = static_cast<int64_t>((*rng)());
      return Value::Int64(v);
    }
    case 4: {
      double d = static_cast<double>(static_cast<int64_t>((*rng)() % 97) -
                                     48) /
                 4.0;
      return Value::Double(d);
    }
    case 5:
      return Value::Timestamp(static_cast<TimeMs>((*rng)() % 1000));
    case 6:
      return Value::String(RandomText(rng));
    default:
      // Borrowed representation, bytes owned by the arena.
      return Value::StringIn(arena, RandomText(rng));
  }
}

TEST(ValueFlatEquivalence, RandomizedAgainstVariantReference) {
  std::mt19937_64 rng(0xfeedface);
  TupleArena arena;
  std::vector<Value> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(RandomValue(&rng, &arena));
  }
  std::vector<RefValue> refs;
  refs.reserve(values.size());
  for (const Value& v : values) refs.push_back(RefValue::Of(v));

  for (size_t i = 0; i < values.size(); ++i) {
    // Unary observations.
    EXPECT_EQ(values[i].Hash(), refs[i].Hash()) << values[i].ToString();
    if (values[i].type() == ValueType::kString) {
      EXPECT_EQ(values[i].string_view(), refs[i].string_view());
    }
    // Pairwise: comparability, sign, equality, hash compatibility.
    for (size_t j = 0; j < values.size(); ++j) {
      int flat_c = 99, ref_c = 99;
      bool flat_ok = values[i].TryCompare(values[j], &flat_c);
      bool ref_ok = refs[i].TryCompare(refs[j], &ref_c);
      ASSERT_EQ(flat_ok, ref_ok)
          << values[i].ToString() << " vs " << values[j].ToString();
      if (flat_ok) {
        ASSERT_EQ(flat_c, ref_c)
            << values[i].ToString() << " vs " << values[j].ToString();
      }
      ASSERT_EQ(values[i] == values[j], refs[i].Equals(refs[j]))
          << values[i].ToString() << " vs " << values[j].ToString();
      if (values[i] == values[j]) {
        ASSERT_EQ(values[i].Hash(), values[j].Hash())
            << values[i].ToString() << " == " << values[j].ToString()
            << " but hashes differ";
      }
      Result<int> slow = values[i].Compare(values[j]);
      ASSERT_EQ(slow.ok(), flat_ok);
      if (flat_ok) ASSERT_EQ(slow.value(), flat_c);
    }
  }
}

TEST(ValueFlatEquivalence, CopyPromotesBorrowedToSelfContained) {
  TupleArena arena;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    // Force borrows with BorrowedString directly so every length —
    // including the inline-capable ones — exercises the promotion.
    std::string text = RandomText(&rng);
    Value borrowed = Value::BorrowedString(arena.CopyString(text));
    ASSERT_TRUE(borrowed.is_borrowed_string());
    ASSERT_TRUE(borrowed.is_trivially_destructible_rep());

    // Copy construction and copy assignment both promote to a
    // self-contained representation (inline or heap-owned by length).
    Value copy(borrowed);
    EXPECT_FALSE(copy.is_borrowed_string());
    EXPECT_EQ(copy.is_inline_string(),
              text.size() <= Value::kInlineCap);
    EXPECT_EQ(copy.string_view(), text);
    if (!text.empty()) {
      EXPECT_NE(copy.string_view().data(),
                borrowed.string_view().data())
          << "a copy must not alias arena bytes";
    }

    Value assigned;
    assigned = borrowed;
    EXPECT_FALSE(assigned.is_borrowed_string());
    EXPECT_EQ(assigned.string_view(), text);

    // Moves preserve the representation; the source resets to NULL.
    Value moved(std::move(borrowed));
    EXPECT_TRUE(moved.is_borrowed_string());
    EXPECT_EQ(moved.string_view(), text);

    // Self-contained strings stay self-contained through copies, and
    // heap-owned ones re-clone (no aliasing).
    Value owned = Value::String(text);
    Value owned_copy = owned;
    EXPECT_FALSE(owned_copy.is_borrowed_string());
    EXPECT_EQ(owned_copy, owned);
    if (text.size() > Value::kInlineCap) {
      EXPECT_NE(owned_copy.string_view().data(),
                owned.string_view().data());
    }
  }
}

TEST(ValueFlatEquivalence, CopiedValuesOutliveTheirArena) {
  // The escape-safety rule end to end: copy out of an arena, destroy
  // the arena, the copy's bytes must still be intact (ASan enforces
  // the "must" part; the content check catches silent aliasing).
  std::string text = "stream-segment-17";
  Value copy;
  {
    TupleArena arena;
    Value borrowed = Value::StringIn(&arena, text);
    copy = borrowed;
  }
  EXPECT_EQ(copy.string_view(), text);
  EXPECT_EQ(copy, Value::String(text));
}

TEST(ValueFlatEquivalence, AssignmentFromAliasedSubstringIsSafe) {
  // `b` borrows bytes inside `a`'s own storage; assigning b into a
  // must clone before touching a's fields — for a heap-owned a AND
  // for an inline a (whose bytes live inside the value being
  // overwritten).
  Value heap_a = Value::String("abcdefgh-beyond-inline");
  Value heap_b = Value::BorrowedString(heap_a.string_view().substr(2, 4));
  heap_a = heap_b;
  EXPECT_EQ(heap_a.string_view(), "cdef");
  EXPECT_FALSE(heap_a.is_borrowed_string());

  Value inline_a = Value::String("abcdefgh");
  ASSERT_TRUE(inline_a.is_inline_string());
  Value inline_b =
      Value::BorrowedString(inline_a.string_view().substr(2, 4));
  inline_a = inline_b;
  EXPECT_EQ(inline_a.string_view(), "cdef");
  EXPECT_FALSE(inline_a.is_borrowed_string());
}

TEST(ValueFlatEquivalence, SelfAssignmentKeepsOwnedBytes) {
  Value a = Value::String("hello");
  const Value& alias = a;
  a = alias;
  EXPECT_EQ(a.string_view(), "hello");
  Value moved = Value::String("world");
  moved = std::move(moved);  // self-move: must not free-then-read
  SUCCEED();
}

TEST(ValueFlatEquivalence, EmptyStringRepresentations) {
  // Empty strings: inline via every self-contained constructor,
  // borrowed only via an explicit borrow; all equal, all one hash.
  TupleArena arena;
  Value inlined = Value::String("");
  Value via_arena = Value::StringIn(&arena, "");  // short-circuits to inline
  Value borrowed = Value::BorrowedString(std::string_view());
  EXPECT_EQ(inlined, via_arena);
  EXPECT_EQ(inlined, borrowed);
  EXPECT_EQ(inlined.Hash(), borrowed.Hash());
  EXPECT_TRUE(inlined.is_inline_string());
  EXPECT_TRUE(via_arena.is_inline_string());
  EXPECT_TRUE(borrowed.is_borrowed_string());
  EXPECT_TRUE(inlined.is_trivially_destructible_rep());
  EXPECT_TRUE(borrowed.is_trivially_destructible_rep());
  EXPECT_EQ(inlined.string_view().size(), 0u);
  Value copy = borrowed;  // promoting an empty borrow must be sound
  EXPECT_EQ(copy, inlined);
  EXPECT_FALSE(copy.is_borrowed_string());
  EXPECT_TRUE(copy.is_inline_string());
}

TEST(ValueFlatEquivalence, FlatLayoutBounds) {
  static_assert(sizeof(Value) <= 16);
  EXPECT_LE(sizeof(Value), 16u);
}

}  // namespace
}  // namespace nstream
