// Pace::ProcessPage equivalence: the paged path (in-place filtering +
// whole-page forwarding) must match the element walk exactly — same
// passed tuples in the same order, same per-input accounting, same
// watermark, same feedback rounds — under randomized multi-input
// streams, mixed pages (punctuation bounding the tuple run), every
// PaceMode, and arena-backed input pages (whose surviving tuples ride
// the page through, and whose detached remainders must be promoted).

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ops/pace.h"
#include "testing/test_util.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::P;

SchemaPtr TsV() {
  return Schema::Make(
      {{"ts", ValueType::kTimestamp}, {"v", ValueType::kInt64}});
}

// Records every downstream emission in order; PagedEmissionPreferred
// is configurable so the same Pace instance can be driven down either
// ProcessPage path.
class CollectCtx : public ExecContext {
 public:
  explicit CollectCtx(bool paged) : paged_(paged) {}

  void EmitTuple(int, Tuple t) override { rows.push_back(t.ToString()); }
  void EmitPage(int, Page&& page) override {
    for (StreamElement& e : page.mutable_elements()) {
      rows.push_back(e.tuple().ToString());
    }
  }
  void EmitPunct(int, Punctuation p) override {
    rows.push_back("punct" + p.ToString());
  }
  void EmitEos(int) override {}
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    feedback.push_back(std::to_string(in_port) + ":" +
                       fb.pattern().ToString());
  }
  void EmitControl(int, ControlMessage) override {}
  TimeMs NowMs() const override { return 0; }
  void ChargeMs(double) override {}
  bool PagedEmissionPreferred() const override { return paged_; }

  std::vector<std::string> rows;
  std::vector<std::string> feedback;

 private:
  bool paged_;
};

struct PaceOutcome {
  std::vector<std::string> rows;
  std::vector<std::string> feedback;
  std::vector<PaceInputStats> per_input;
  TimeMs hwm = 0;
  uint64_t feedback_rounds = 0;
  uint64_t tuples_in = 0;
  uint64_t guard_drops = 0;
};

void ExpectSameStats(const std::vector<PaceInputStats>& a,
                     const std::vector<PaceInputStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuples, b[i].tuples) << "input " << i;
    EXPECT_EQ(a[i].timely, b[i].timely) << "input " << i;
    EXPECT_EQ(a[i].late, b[i].late) << "input " << i;
    EXPECT_EQ(a[i].dropped, b[i].dropped) << "input " << i;
  }
}

// One scripted delivery: (port, page) pairs driven through
// ProcessPage under a paged or element-emitting context.
struct Delivery {
  int port;
  // Tuple (ts, v) payloads followed by an optional trailing/mid-page
  // watermark punctuation bound (<= bound on ts); -1 = none.
  std::vector<std::pair<TimeMs, int64_t>> tuples;
  TimeMs punct_bound = -1;
  // Position of the punctuation within the page (index among
  // elements); -1 = append after all tuples.
  int punct_at = -1;
};

PaceOutcome Drive(const std::vector<Delivery>& script, PaceOptions popt,
                  int num_inputs, bool paged, bool arenas) {
  ScopedTupleArenasEnabled scoped(arenas);
  Pace pace("pace", num_inputs, popt);
  for (int i = 0; i < num_inputs; ++i) {
    EXPECT_TRUE(pace.SetInputSchema(i, TsV()).ok());
  }
  EXPECT_TRUE(pace.InferSchemas().ok());
  CollectCtx ctx(paged);
  EXPECT_TRUE(pace.Open(&ctx).ok());
  for (const Delivery& d : script) {
    Page page;
    TupleArena* arena = page.arena();  // null when arenas disabled
    size_t pos = 0;
    auto maybe_punct = [&](size_t at) {
      if (d.punct_bound >= 0 &&
          static_cast<int>(at) ==
              (d.punct_at < 0 ? static_cast<int>(d.tuples.size())
                              : d.punct_at)) {
        PunctPattern p = PunctPattern::AllWildcard(2);
        p = p.With(0, AttrPattern::Le(Value::Timestamp(d.punct_bound)));
        page.Add(StreamElement::OfPunct(Punctuation(std::move(p))));
      }
    };
    for (const auto& [ts, v] : d.tuples) {
      maybe_punct(pos++);
      Tuple t(arena, 2);
      t.Append(Value::Timestamp(ts));
      t.Append(Value::Int64(v));
      page.Add(StreamElement::OfTuple(std::move(t)));
    }
    maybe_punct(pos);
    TimeMs tick = 0;
    EXPECT_TRUE(pace.ProcessPage(d.port, std::move(page), &tick).ok());
  }
  PaceOutcome out;
  out.rows = ctx.rows;
  out.feedback = ctx.feedback;
  for (int i = 0; i < num_inputs; ++i) {
    out.per_input.push_back(pace.input_stats(i));
  }
  out.hwm = pace.high_watermark();
  out.feedback_rounds = pace.feedback_rounds();
  out.tuples_in = pace.stats().tuples_in;
  out.guard_drops = pace.stats().input_guard_drops;
  return out;
}

void ExpectPagedMatchesElement(const std::vector<Delivery>& script,
                               PaceOptions popt, int num_inputs) {
  for (bool arenas : {false, true}) {
    PaceOutcome element =
        Drive(script, popt, num_inputs, /*paged=*/false, arenas);
    PaceOutcome paged =
        Drive(script, popt, num_inputs, /*paged=*/true, arenas);
    EXPECT_EQ(paged.rows, element.rows) << "arenas " << arenas;
    EXPECT_EQ(paged.feedback, element.feedback);
    ExpectSameStats(paged.per_input, element.per_input);
    EXPECT_EQ(paged.hwm, element.hwm);
    EXPECT_EQ(paged.feedback_rounds, element.feedback_rounds);
    EXPECT_EQ(paged.tuples_in, element.tuples_in);
    EXPECT_EQ(paged.guard_drops, element.guard_drops);
    EXPECT_GT(paged.rows.size(), 0u);
  }
}

std::vector<Delivery> RandomScript(std::mt19937* rng, int num_inputs,
                                   int pages) {
  std::vector<Delivery> script;
  TimeMs base = 0;
  int64_t seq = 0;
  for (int p = 0; p < pages; ++p) {
    Delivery d;
    d.port = static_cast<int>((*rng)() % num_inputs);
    int n = 1 + static_cast<int>((*rng)() % 24);
    for (int i = 0; i < n; ++i) {
      // A mix of advancing, on-time, and deeply-late timestamps.
      TimeMs ts = base + static_cast<TimeMs>((*rng)() % 200) - 80;
      if (ts < 0) ts = 0;
      d.tuples.push_back({ts, seq++});
      base += static_cast<TimeMs>((*rng)() % 8);
    }
    if ((*rng)() % 3 == 0) {
      d.punct_bound = base / 2;
      d.punct_at = ((*rng)() % 2 == 0)
                       ? -1
                       : static_cast<int>((*rng)() % (n + 1));
    }
    script.push_back(std::move(d));
  }
  return script;
}

TEST(PacePageTest, RandomizedPagedVsElementAllModes) {
  std::mt19937 rng(17);
  for (PaceMode mode : {PaceMode::kUnionOnly, PaceMode::kDrop,
                        PaceMode::kDropAndFeedback}) {
    for (int trial = 0; trial < 4; ++trial) {
      PaceOptions popt;
      popt.ts_attr = 0;
      popt.tolerance_ms = 50;
      popt.mode = mode;
      ExpectPagedMatchesElement(RandomScript(&rng, 2, 12), popt, 2);
    }
  }
}

TEST(PacePageTest, MixedPageRemainderIsPromotedAndOrdered) {
  // Punctuation mid-page: the admitted tuple prefix is forwarded as a
  // page, the remainder (punct + trailing tuples) walks element-wise
  // — order must be exactly the element walk's, and under arenas the
  // detached tuples must have been promoted (the outcome comparison
  // would dangle/diverge otherwise, and ASan would flag it).
  PaceOptions popt;
  popt.ts_attr = 0;
  popt.tolerance_ms = 10;
  popt.mode = PaceMode::kDrop;
  std::vector<Delivery> script;
  Delivery d;
  d.port = 0;
  d.tuples = {{0, 0}, {100, 1}, {5, 2}, {120, 3}, {115, 4}};
  d.punct_bound = 100;
  d.punct_at = 2;  // punctuation lands between tuples 1 and 2
  script.push_back(d);
  ExpectPagedMatchesElement(script, popt, 1);
}

TEST(PacePageTest, GuardedTuplesDropInBothWalks) {
  PaceOptions popt;
  popt.ts_attr = 0;
  popt.tolerance_ms = 1000;  // nothing late: isolate the guard path
  popt.mode = PaceMode::kDrop;
  auto drive_with_guard = [&](bool paged) {
    ScopedTupleArenasEnabled scoped(true);
    Pace pace("pace", 1, popt);
    EXPECT_TRUE(pace.SetInputSchema(0, TsV()).ok());
    EXPECT_TRUE(pace.InferSchemas().ok());
    CollectCtx ctx(paged);
    EXPECT_TRUE(pace.Open(&ctx).ok());
    // Assumed feedback from downstream: v == 7 is no longer needed.
    EXPECT_TRUE(
        pace.ProcessFeedback(0, testing_util::FB("~[*,7]")).ok());
    Page page;
    TupleArena* arena = page.arena();
    for (int64_t v = 0; v < 16; ++v) {
      Tuple t(arena, 2);
      t.Append(Value::Timestamp(v));
      t.Append(Value::Int64(v % 8));
      page.Add(StreamElement::OfTuple(std::move(t)));
    }
    TimeMs tick = 0;
    EXPECT_TRUE(pace.ProcessPage(0, std::move(page), &tick).ok());
    return std::make_pair(ctx.rows, pace.stats().input_guard_drops);
  };
  auto [paged_rows, paged_drops] = drive_with_guard(true);
  auto [elem_rows, elem_drops] = drive_with_guard(false);
  EXPECT_EQ(paged_rows, elem_rows);
  EXPECT_EQ(paged_drops, elem_drops);
  EXPECT_EQ(paged_drops, 2u);  // v%8 == 7 appears twice in 0..15
  EXPECT_EQ(paged_rows.size(), 14u);
}

TEST(PacePageTest, ExecutorLevelEquivalenceSyncVsSim) {
  // End-to-end: the SyncExecutor (paged emission, arena pages through
  // the spsc chain) and the SimExecutor (per-element) agree on what a
  // PACE'd stream delivers.
  auto run = [](bool sim) {
    std::vector<Tuple> tuples;
    std::mt19937 rng(23);
    TimeMs base = 0;
    for (int i = 0; i < 300; ++i) {
      TimeMs ts = base + static_cast<TimeMs>(rng() % 120) - 50;
      if (ts < 0) ts = 0;
      tuples.push_back(TupleBuilder().Ts(ts).I64(i).Build());
      base += static_cast<TimeMs>(rng() % 4);
    }
    testing_util::LinearPlan lp(TsV(), AtMillis(std::move(tuples)));
    PaceOptions popt;
    popt.ts_attr = 0;
    popt.tolerance_ms = 40;
    popt.mode = PaceMode::kDrop;
    auto* pace = lp.Add(std::make_unique<Pace>("pace", 1, popt));
    CollectorSink* sink = lp.Finish();
    Status st = sim ? lp.RunSim() : lp.RunSync();
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::vector<std::string> rows;
    for (const CollectedTuple& c : sink->collected()) {
      rows.push_back(c.tuple.ToString());
    }
    return std::make_pair(rows, pace->input_stats(0).dropped);
  };
  auto [sync_rows, sync_dropped] = run(false);
  auto [sim_rows, sim_dropped] = run(true);
  EXPECT_EQ(sync_rows, sim_rows);
  EXPECT_EQ(sync_dropped, sim_dropped);
  EXPECT_GT(sync_dropped, 0u);
  EXPECT_GT(sync_rows.size(), 0u);
}

}  // namespace
}  // namespace nstream
