#include <gtest/gtest.h>

#include "ops/duplicate.h"
#include "ops/impute.h"
#include "ops/pace.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/union_op.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::FB;
using testing_util::Int64Column;
using testing_util::LinearPlan;
using testing_util::P;

SchemaPtr KV() {
  return Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}});
}

std::vector<TimedElement> Keys(std::initializer_list<int64_t> keys) {
  std::vector<Tuple> tuples;
  for (int64_t k : keys) {
    tuples.push_back(
        TupleBuilder().I64(k).D(static_cast<double>(k) * 10).Build());
  }
  return AtMillis(std::move(tuples));
}

// ----------------------------------------------------------------- Select

TEST(SelectTest, FeedbackAddsToCondition) {
  // §4.3: "assumed punctuation can simply be added to its select
  // condition".
  LinearPlan lp(KV(), Keys({1, 2, 3, 4, 5, 6}));
  auto* sel = lp.Add(Select::FromPattern("sel", P("[*,*]")));
  // Feedback ¬[>=4,*] arrives before the run via direct injection at
  // plan level: simulate by installing through ProcessControl after
  // Open (executor calls Open first, so we inject via a sink driver).
  auto sent = std::make_shared<bool>(false);
  lp.Finish({}, [sent](const Tuple&,
                       TimeMs) -> std::vector<FeedbackPunctuation> {
    if (*sent) return {};
    *sent = true;
    return {FB("~[>=4,*]")};
  });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_GT(sel->stats().input_guard_drops, 0u);
  EXPECT_GT(sel->guards().total_installed(), 0u);
}

TEST(SelectTest, IgnorePolicyIsNullResponse) {
  LinearPlan lp(KV(), Keys({1, 2, 3, 4, 5, 6}));
  auto* sel = lp.Add(std::make_unique<Select>(
      "sel", [](const Tuple&) { return true; },
      SelectOptions{FeedbackPolicy::kIgnore}));
  auto sent = std::make_shared<bool>(false);
  CollectorSink* sink =
      lp.Finish({}, [sent](const Tuple&,
                           TimeMs) -> std::vector<FeedbackPunctuation> {
        if (*sent) return {};
        *sent = true;
        return {FB("~[>=1,*]")};
      });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_EQ(sink->consumed(), 6u);  // nothing suppressed
  EXPECT_GT(sel->stats().feedback_ignored, 0u);
}

TEST(SelectTest, WrongArityFeedbackIgnored) {
  LinearPlan lp(KV(), Keys({1}));
  auto* sel = lp.Add(Select::FromPattern("sel", P("[*,*]")));
  lp.Finish({}, [](const Tuple&, TimeMs) {
    return std::vector<FeedbackPunctuation>{FB("~[1,2,3]")};
  });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_GT(sel->stats().feedback_ignored, 0u);
}

// ---------------------------------------------------------------- Project

TEST(ProjectTest, ReordersAndDropsAttrs) {
  LinearPlan lp(KV(), Keys({7}));
  lp.Add(std::make_unique<Project>("proj", std::vector<int>{1, 0}));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  ASSERT_EQ(sink->collected().size(), 1u);
  const Tuple& t = sink->collected()[0].tuple;
  EXPECT_DOUBLE_EQ(t.value(0).double_value(), 70.0);
  EXPECT_EQ(t.value(1).int64_value(), 7);
}

TEST(ProjectTest, PunctuationSurvivesOnlyIfConstraintsKept) {
  // [<=3, *] projected onto {0} keeps the claim; [*, <=30] projected
  // onto {0} must be dropped (the claim would silently widen).
  std::vector<TimedElement> elems = Keys({1});
  elems.push_back(TimedElement::OfPunct(10, Punctuation(P("[<=3,*]"))));
  elems.push_back(
      TimedElement::OfPunct(11, Punctuation(P("[*,<=30.0]"))));
  LinearPlan lp(KV(), std::move(elems));
  lp.Add(std::make_unique<Project>("proj", std::vector<int>{0}));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(sink->stats().puncts_in, 1u);  // only the kept-attr punct
}

TEST(ProjectTest, FeedbackMappedToInputSchema) {
  LinearPlan lp(KV(), Keys({1, 2, 3, 4, 5, 6, 7, 8}));
  auto* proj = lp.Add(
      std::make_unique<Project>("proj", std::vector<int>{1, 0}));
  auto sent = std::make_shared<bool>(false);
  lp.Finish({}, [sent](const Tuple&,
                       TimeMs) -> std::vector<FeedbackPunctuation> {
    if (*sent) return {};
    *sent = true;
    // Over the projected schema (v, k): suppress k >= 5.
    return {FB("~[*,>=5]")};
  });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_GT(proj->stats().input_guard_drops, 0u);
  EXPECT_GT(proj->stats().feedback_propagated, 0u);
  // The installed guard is in INPUT terms: (k, v) with k>=5.
  EXPECT_TRUE(proj->input_guards().Blocks(
      TupleBuilder().I64(6).D(0).Build()));
}

// -------------------------------------------------------------- Duplicate

TEST(DuplicateTest, CopiesToAllOutputs) {
  QueryPlan plan;
  auto* src = plan.AddOp(
      std::make_unique<VectorSource>("src", KV(), Keys({1, 2, 3})));
  auto* dup = plan.AddOp(std::make_unique<Duplicate>("dup", 2));
  auto* s1 = plan.AddOp(std::make_unique<CollectorSink>("s1"));
  auto* s2 = plan.AddOp(std::make_unique<CollectorSink>("s2"));
  ASSERT_TRUE(plan.Connect(*src, *dup).ok());
  ASSERT_TRUE(plan.Connect(*dup, 0, *s1, 0).ok());
  ASSERT_TRUE(plan.Connect(*dup, 1, *s2, 0).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  EXPECT_EQ(s1->consumed(), 3u);
  EXPECT_EQ(s2->consumed(), 3u);
}

TEST(DuplicateTest, ExploitsOnlyWhenAllConsumersAgree) {
  // §4.1: DUPLICATE's outputs must stay identical — one consumer's
  // assumed feedback alone is held; when the second consumer issues a
  // covering pattern, the subset is dead and dropping begins.
  Duplicate dup("dup", 2);
  ASSERT_TRUE(dup.SetInputSchema(0, KV()).ok());
  ASSERT_TRUE(dup.InferSchemas().ok());

  // Drive handlers directly (no executor): a stub context recording
  // emissions per port.
  class StubCtx : public ExecContext {
   public:
    void EmitTuple(int port, Tuple) override { ++counts[port]; }
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation fb) override {
      relayed.push_back(std::move(fb));
    }
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::map<int, int> counts;
    std::vector<FeedbackPunctuation> relayed;
  };
  StubCtx ctx;
  ASSERT_TRUE(dup.Open(&ctx).ok());

  Tuple covered = TupleBuilder().I64(9).D(1).Build();
  ASSERT_TRUE(dup.ProcessTuple(0, covered).ok());
  EXPECT_EQ(ctx.counts[0], 1);
  EXPECT_EQ(ctx.counts[1], 1);

  // Output 0 disclaims k>=9; output 1 has not: still copied to both.
  ASSERT_TRUE(dup.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[>=9,*]")))
                  .ok());
  ASSERT_TRUE(dup.ProcessTuple(0, covered).ok());
  EXPECT_EQ(ctx.counts[0], 2);
  EXPECT_EQ(ctx.counts[1], 2);
  EXPECT_TRUE(ctx.relayed.empty());  // not yet propagated

  // Output 1 agrees: now the subset is dead end-to-end.
  ASSERT_TRUE(dup.ProcessControl(
                     1, ControlMessage::Feedback(FB("~[>=9,*]")))
                  .ok());
  ASSERT_TRUE(dup.ProcessTuple(0, covered).ok());
  EXPECT_EQ(ctx.counts[0], 2);  // dropped for both
  EXPECT_EQ(ctx.counts[1], 2);
  EXPECT_EQ(ctx.relayed.size(), 1u);  // and relayed upstream
  EXPECT_GT(dup.stats().input_guard_drops, 0u);
}

// ------------------------------------------------------------ Union/PACE

TEST(UnionTest, MergesAndEnforcesSchemaAgreement) {
  QueryPlan plan;
  auto* a = plan.AddOp(
      std::make_unique<VectorSource>("a", KV(), Keys({1, 2})));
  auto* b = plan.AddOp(
      std::make_unique<VectorSource>("b", KV(), Keys({3})));
  auto* u = plan.AddOp(std::make_unique<UnionOp>("union", 2));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*a, 0, *u, 0).ok());
  ASSERT_TRUE(plan.Connect(*b, 0, *u, 1).ok());
  ASSERT_TRUE(plan.Connect(*u, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  EXPECT_EQ(sink->consumed(), 3u);
}

TEST(UnionTest, WatermarkPunctuationIsMinAcrossInputs) {
  UnionOp u("u", 2);
  ASSERT_TRUE(u.SetInputSchema(0, KV()).ok());
  ASSERT_TRUE(u.SetInputSchema(1, KV()).ok());
  ASSERT_TRUE(u.InferSchemas().ok());
  class PunctCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple) override {}
    void EmitPunct(int, Punctuation p) override {
      puncts.push_back(std::move(p));
    }
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation) override {}
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::vector<Punctuation> puncts;
  };
  PunctCtx ctx;
  ASSERT_TRUE(u.Open(&ctx).ok());
  // Input 0 punctuates through 100: output punct must wait for input 1.
  ASSERT_TRUE(u.ProcessPunctuation(0, Punctuation(P("[<=100,*]"))).ok());
  EXPECT_TRUE(ctx.puncts.empty());
  // Input 1 punctuates through 50: output = min(100, 50) = 50.
  ASSERT_TRUE(u.ProcessPunctuation(1, Punctuation(P("[<=50,*]"))).ok());
  ASSERT_EQ(ctx.puncts.size(), 1u);
  EXPECT_EQ(ctx.puncts[0].pattern(), P("[<=50,*]"));
  // Input 1 advances to 200: output = min(100, 200) = 100.
  ASSERT_TRUE(u.ProcessPunctuation(1, Punctuation(P("[<=200,*]"))).ok());
  ASSERT_EQ(ctx.puncts.size(), 2u);
  EXPECT_EQ(ctx.puncts[1].pattern(), P("[<=100,*]"));
}

TEST(PaceTest, UnionOnlyModeCountsButPasses) {
  QueryPlan plan;
  std::vector<TimedElement> fast = Keys({0});
  fast[0].element.mutable_tuple().mutable_value(0) = Value::Int64(100);
  auto* a = plan.AddOp(std::make_unique<VectorSource>(
      "fast", KV(), std::move(fast)));
  auto* b = plan.AddOp(std::make_unique<VectorSource>(
      "slow", KV(), Keys({1})));  // k=1 is 99 behind the watermark
  PaceOptions popt;
  popt.ts_attr = 0;
  popt.tolerance_ms = 10;
  popt.mode = PaceMode::kUnionOnly;
  auto* pace = plan.AddOp(std::make_unique<Pace>("pace", 2, popt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*a, 0, *pace, 0).ok());
  ASSERT_TRUE(plan.Connect(*b, 0, *pace, 1).ok());
  ASSERT_TRUE(plan.Connect(*pace, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  EXPECT_EQ(sink->consumed(), 2u);  // late tuple still passes
  EXPECT_EQ(pace->input_stats(1).late, 1u);
  EXPECT_EQ(pace->input_stats(1).dropped, 0u);
}

TEST(PaceTest, DropModeEnforcesBound) {
  QueryPlan plan;
  std::vector<TimedElement> fast = Keys({0});
  fast[0].element.mutable_tuple().mutable_value(0) = Value::Int64(100);
  auto* a = plan.AddOp(std::make_unique<VectorSource>(
      "fast", KV(), std::move(fast)));
  auto* b = plan.AddOp(
      std::make_unique<VectorSource>("slow", KV(), Keys({1})));
  PaceOptions popt;
  popt.ts_attr = 0;
  popt.tolerance_ms = 10;
  popt.mode = PaceMode::kDrop;
  auto* pace = plan.AddOp(std::make_unique<Pace>("pace", 2, popt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*a, 0, *pace, 0).ok());
  ASSERT_TRUE(plan.Connect(*b, 0, *pace, 1).ok());
  ASSERT_TRUE(plan.Connect(*pace, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  EXPECT_EQ(pace->input_stats(1).dropped, 1u);
  EXPECT_EQ(pace->stats().feedback_sent, 0u);  // kDrop: no feedback
}

// ----------------------------------------------------------------- Impute

TEST(ImputeTest, FillsNullsAndFlags) {
  SchemaPtr schema = Schema::Make({{"v", ValueType::kDouble},
                                   {"flag", ValueType::kInt64}});
  std::vector<TimedElement> elems;
  elems.push_back(TimedElement::OfTuple(
      0, TupleBuilder().Null().I64(0).Build()));
  elems.push_back(TimedElement::OfTuple(
      1, TupleBuilder().D(5.0).I64(0).Build()));
  LinearPlan lp(schema, std::move(elems));
  ImputeOptions iopt;
  iopt.value_attr = 0;
  iopt.flag_attr = 1;
  iopt.cost_ms = 1.0;
  auto* imp = lp.Add(std::make_unique<Impute>(
      "imp", [](const Tuple&) { return 42.0; }, iopt));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  ASSERT_EQ(sink->collected().size(), 2u);
  EXPECT_DOUBLE_EQ(sink->collected()[0].tuple.value(0).double_value(),
                   42.0);
  EXPECT_EQ(sink->collected()[0].tuple.value(1).int64_value(), 1);
  EXPECT_DOUBLE_EQ(sink->collected()[1].tuple.value(0).double_value(),
                   5.0);
  EXPECT_EQ(sink->collected()[1].tuple.value(1).int64_value(), 0);
  EXPECT_EQ(imp->imputations(), 1u);
}

TEST(ImputeTest, FeedbackGuardsAndCountsAvoidedWork) {
  SchemaPtr schema = Schema::Make({{"ts", ValueType::kTimestamp},
                                   {"v", ValueType::kDouble}});
  std::vector<TimedElement> elems;
  for (int i = 0; i < 10; ++i) {
    elems.push_back(TimedElement::OfTuple(
        i, TupleBuilder().Ts(i * 100).Null().Build()));
  }
  LinearPlan lp(schema, std::move(elems));
  ImputeOptions iopt;
  iopt.value_attr = 1;
  auto* imp = lp.Add(std::make_unique<Impute>(
      "imp", [](const Tuple&) { return 1.0; }, iopt));
  auto sent = std::make_shared<bool>(false);
  lp.Finish({}, [sent](const Tuple&,
                       TimeMs) -> std::vector<FeedbackPunctuation> {
    if (*sent) return {};
    *sent = true;
    return {FB("~[<=t:500,*]")};
  });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_GT(imp->stats().work_avoided, 0u);
  EXPECT_LT(imp->imputations(), 10u);
}

}  // namespace
}  // namespace nstream
