// Arena lifetime across the operator layer: tuples promoted into join
// tables must outlive their source pages (including string payloads
// that lived in arena bytes), staged/queued arena pages must survive
// feedback surgery, and whole pipelines must produce identical result
// multisets with page arenas enabled and disabled — on the batched
// and element-wise paths, under the sync and threaded executors.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "testing/test_util.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::P;

// ---------------------------------------------------------------------------
// Join-table promotion: arena-backed inputs (built by an upstream
// Project into its staging pages' arenas) are inserted into the join
// tables, their source pages die, and the join must still emit correct
// string payloads — both on the probe path and on the left-outer path
// at window close / EOS.
// ---------------------------------------------------------------------------

SchemaPtr SideSchema(const char* payload) {
  return Schema::Make({{"k", ValueType::kString},
                       {"ts", ValueType::kTimestamp},
                       {payload, ValueType::kString},
                       {"pad", ValueType::kInt64}});
}

std::vector<Tuple> StringSide(int n, const char* tag, int key_mod,
                              int ts_spread) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(TupleBuilder()
                      .S("key-" + std::to_string(i % key_mod))
                      .Ts(i % ts_spread)
                      .S(std::string(tag) + "-" + std::to_string(i))
                      .I64(i)
                      .Build());
  }
  return out;
}

struct JoinRows {
  std::multiset<std::string> rows;
  uint64_t joined = 0;
};

JoinRows RunStringJoin(int n, bool left_outer, bool batched,
                       bool threaded) {
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", SideSchema("lp"), AtMillis(StringSide(n, "left", 9, 40))));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", SideSchema("rp"), AtMillis(StringSide(n, "right", 7, 40))));
  // Identity-permutation projections: their paged path rebuilds every
  // tuple in a staging page's arena, so the join's inputs are
  // arena-backed (string values borrowing page bytes) — exactly the
  // shape table promotion must survive.
  auto* pl = plan.AddOp(
      std::make_unique<Project>("pl", std::vector<int>{0, 1, 2, 3}));
  auto* pr = plan.AddOp(
      std::make_unique<Project>("pr", std::vector<int>{0, 1, 2, 3}));
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window_join = true;
  jopt.window = WindowSpec{10, 10};
  jopt.left_outer = left_outer;
  jopt.page_batched_probe = batched;
  jopt.output_page_size = 8;  // several staged-page generations
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *pl, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *pr, 0).ok());
  EXPECT_TRUE(plan.Connect(*pl, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*pr, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  Status st;
  if (threaded) {
    ThreadedExecutor exec;
    st = exec.Run(&plan);
  } else {
    SyncExecutorOptions opts;
    opts.queue.page_size = 16;  // many short-lived input pages
    SyncExecutor exec(opts);
    st = exec.Run(&plan);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  JoinRows out;
  for (const CollectedTuple& c : sink->collected()) {
    out.rows.insert(c.tuple.ToString());
  }
  out.joined = join->joined_count();
  return out;
}

TEST(ArenaLifetimeTest, PromotedTableTuplesOutliveSourcePages) {
  JoinRows with = RunStringJoin(200, /*left_outer=*/false,
                                /*batched=*/true, /*threaded=*/false);
  EXPECT_GT(with.joined, 0u);
  // Every row's string payloads must have survived promotion intact.
  for (const std::string& row : with.rows) {
    EXPECT_NE(row.find("'key-"), std::string::npos) << row;
    EXPECT_NE(row.find("'left-"), std::string::npos) << row;
  }
  ScopedTupleArenasEnabled off(false);
  JoinRows without = RunStringJoin(200, false, true, false);
  EXPECT_EQ(with.rows, without.rows);
}

TEST(ArenaLifetimeTest, LeftOuterEmissionFromPromotedEntries) {
  // Outer rows materialize at window close / EOS, long after every
  // input page (and its arena) is gone — they read only the promoted
  // table copies.
  JoinRows with = RunStringJoin(150, /*left_outer=*/true,
                                /*batched=*/true, /*threaded=*/false);
  ScopedTupleArenasEnabled off(false);
  JoinRows without = RunStringJoin(150, true, true, false);
  EXPECT_EQ(with.rows, without.rows);
  // Outer rows (NULL-padded right attributes) must be present — they
  // are built from promoted table entries exclusively.
  size_t outer_rows = 0;
  for (const std::string& row : with.rows) {
    if (row.find("null") != std::string::npos) ++outer_rows;
  }
  EXPECT_GT(outer_rows, 0u);
}

TEST(ArenaLifetimeTest, ThreadedExecutorSameRows) {
  JoinRows sync_rows = RunStringJoin(150, /*left_outer=*/true,
                                     /*batched=*/true, /*threaded=*/false);
  JoinRows threaded_rows = RunStringJoin(150, true, true,
                                         /*threaded=*/true);
  EXPECT_EQ(sync_rows.rows, threaded_rows.rows);
}

// ---------------------------------------------------------------------------
// Randomized windowed + left-outer equivalence: arenas on vs off must
// yield the same result multiset on both probe paths.
// ---------------------------------------------------------------------------

SchemaPtr IntSide() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kInt64}});
}

std::vector<Tuple> RandomSide(std::mt19937* rng, int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>((*rng)() % 12))
                      .Ts(static_cast<int64_t>((*rng)() % 60))
                      .I64(i)
                      .Build());
  }
  return out;
}

std::multiset<std::string> RunIntJoin(const std::vector<Tuple>& left,
                                      const std::vector<Tuple>& right,
                                      bool batched) {
  QueryPlan plan;
  auto* l = plan.AddOp(
      std::make_unique<VectorSource>("L", IntSide(), AtMillis(left)));
  auto* r = plan.AddOp(
      std::make_unique<VectorSource>("R", IntSide(), AtMillis(right)));
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window_join = true;
  jopt.window = WindowSpec{10, 10};
  jopt.left_outer = true;
  jopt.page_batched_probe = batched;
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutorOptions opts;
  opts.queue.page_size = 8;
  SyncExecutor exec(opts);
  Status st = exec.Run(&plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::multiset<std::string> rows;
  for (const CollectedTuple& c : sink->collected()) {
    rows.insert(c.tuple.ToString());
  }
  return rows;
}

TEST(ArenaLifetimeTest, RandomizedJoinEquivalenceArenasOnVsOff) {
  std::mt19937 rng(20260728);
  for (int round = 0; round < 6; ++round) {
    std::vector<Tuple> left = RandomSide(&rng, 150);
    std::vector<Tuple> right = RandomSide(&rng, 150);
    for (bool batched : {true, false}) {
      std::multiset<std::string> on;
      {
        ScopedTupleArenasEnabled e(true);
        on = RunIntJoin(left, right, batched);
      }
      std::multiset<std::string> off;
      {
        ScopedTupleArenasEnabled e(false);
        off = RunIntJoin(left, right, batched);
      }
      EXPECT_EQ(on, off) << "round " << round << " batched " << batched;
      EXPECT_GT(on.size(), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// WindowAggregate: batched (run-grouped) input vs the element walk,
// crossed with arenas on/off — identical rows and counters.
// ---------------------------------------------------------------------------

SchemaPtr AggSchema() {
  return Schema::Make({{"ts", ValueType::kTimestamp},
                       {"g", ValueType::kInt64},
                       {"v", ValueType::kDouble}});
}

struct AggRun {
  std::multiset<std::string> rows;
  uint64_t applied = 0;
  uint64_t skipped = 0;
  uint64_t tuples_in = 0;
};

AggRun RunAgg(const std::vector<TimedElement>& elems, AggKind kind,
              bool batched) {
  QueryPlan plan;
  auto* src = plan.AddOp(std::make_unique<VectorSource>(
      "src", AggSchema(), elems));
  WindowAggregateOptions wopt;
  wopt.ts_attr = 0;
  wopt.group_attrs = {1};
  wopt.agg_attr = 2;
  wopt.kind = kind;
  wopt.window = WindowSpec{100, 100};
  wopt.page_batched_input = batched;
  wopt.output_page_size = 4;
  auto* agg = plan.AddOp(
      std::make_unique<WindowAggregate>("agg", wopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*src, *agg).ok());
  EXPECT_TRUE(plan.Connect(*agg, *sink).ok());
  SyncExecutorOptions opts;
  opts.queue.page_size = 8;
  SyncExecutor exec(opts);
  Status st = exec.Run(&plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  AggRun out;
  for (const CollectedTuple& c : sink->collected()) {
    out.rows.insert(c.tuple.ToString());
  }
  out.applied = agg->updates_applied();
  out.skipped = agg->updates_skipped();
  out.tuples_in = agg->stats().tuples_in;
  return out;
}

std::vector<TimedElement> RandomAggStream(std::mt19937* rng, int n) {
  std::vector<TimedElement> out;
  TimeMs at = 0;
  int64_t max_ts = 0;
  for (int i = 0; i < n; ++i) {
    int64_t ts = static_cast<int64_t>((*rng)() % 500);
    max_ts = std::max(max_ts, ts);
    out.push_back(TimedElement::OfTuple(
        at++, TupleBuilder()
                  .Ts(ts)
                  .I64(static_cast<int64_t>((*rng)() % 5))
                  .D(static_cast<double>((*rng)() % 1000) / 10.0)
                  .Build()));
    if (i > 0 && i % 37 == 0) {
      // Progress punctuation: everything at or below the max seen so
      // far is complete (true for this generator only in hindsight —
      // good enough to close windows and bound runs).
      int64_t bound = static_cast<int64_t>((*rng)() % 500);
      out.push_back(TimedElement::OfPunct(
          at++, Punctuation(P("[<=t:" + std::to_string(bound) +
                              ",*,*]"))));
    }
  }
  (void)max_ts;
  return out;
}

TEST(ArenaLifetimeTest, WindowAggregateBatchedEquivalence) {
  std::mt19937 rng(987654);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMax, AggKind::kMin}) {
    std::vector<TimedElement> elems = RandomAggStream(&rng, 300);
    for (bool arenas : {true, false}) {
      ScopedTupleArenasEnabled e(arenas);
      AggRun batched = RunAgg(elems, kind, /*batched=*/true);
      AggRun element = RunAgg(elems, kind, /*batched=*/false);
      EXPECT_EQ(batched.rows, element.rows)
          << AggKindName(kind) << " arenas=" << arenas;
      EXPECT_EQ(batched.applied, element.applied);
      EXPECT_EQ(batched.skipped, element.skipped);
      EXPECT_EQ(batched.tuples_in, element.tuples_in);
      EXPECT_GT(batched.rows.size(), 0u);
    }
  }
}

TEST(ArenaLifetimeTest, WindowAggregateCollisionFallbackAgrees) {
  // Stress the group-hash collision path indirectly: many groups per
  // tiny window so runs regularly contain multiple distinct keys, on
  // a stream with interleaved punctuation.
  std::mt19937 rng(13579);
  std::vector<TimedElement> elems = RandomAggStream(&rng, 500);
  AggRun batched = RunAgg(elems, AggKind::kSum, true);
  AggRun element = RunAgg(elems, AggKind::kSum, false);
  EXPECT_EQ(batched.rows, element.rows);
  EXPECT_EQ(batched.applied, element.applied);
}

// ---------------------------------------------------------------------------
// Select's in-place page forwarding keeps arena payloads alive through
// the hop (the filtered page itself travels with its arena).
// ---------------------------------------------------------------------------

TEST(ArenaLifetimeTest, SelectForwardsArenaPagesIntact) {
  QueryPlan plan;
  std::vector<Tuple> in;
  for (int i = 0; i < 100; ++i) {
    in.push_back(TupleBuilder()
                     .S("s-" + std::to_string(i))
                     .Ts(i)
                     .I64(i)
                     .Build());
  }
  auto* src = plan.AddOp(std::make_unique<VectorSource>(
      "src",
      Schema::Make({{"s", ValueType::kString},
                    {"ts", ValueType::kTimestamp},
                    {"i", ValueType::kInt64}}),
      AtMillis(std::move(in))));
  // Project first so pages reaching Select hold arena-backed tuples.
  auto* proj = plan.AddOp(
      std::make_unique<Project>("proj", std::vector<int>{0, 1, 2}));
  auto* sel = plan.AddOp(std::make_unique<Select>(
      "sel", [](const Tuple& t) {
        return t.value(2).int64_value() % 3 != 0;
      }));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*src, *proj).ok());
  EXPECT_TRUE(plan.Connect(*proj, *sel).ok());
  EXPECT_TRUE(plan.Connect(*sel, *sink).ok());
  SyncExecutorOptions opts;
  opts.queue.page_size = 16;
  SyncExecutor exec(opts);
  ASSERT_TRUE(exec.Run(&plan).ok());
  ASSERT_EQ(sink->collected().size(), 66u);
  for (const CollectedTuple& c : sink->collected()) {
    int64_t i = c.tuple.value(2).int64_value();
    EXPECT_NE(i % 3, 0);
    EXPECT_EQ(c.tuple.value(0).string_view(), "s-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace nstream
