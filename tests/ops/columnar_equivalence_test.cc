// Row ↔ columnar layout equivalence: every pipeline must produce the
// same result multiset with columnar page staging enabled and
// disabled, crossed with page arenas on/off (columnar requires arenas,
// so columnar-on/arenas-off must silently degrade to row staging, not
// misbehave). Randomized streams with punctuation at arbitrary
// mid-page positions drive Select / Pace / Project chains, the
// symmetric hash join (columnar emit + columnar adjacency probe,
// including a forced-collision storm through key_hash_override), and
// WindowAggregate — under the sync and threaded executors.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/pace.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "stream/columnar.h"
#include "testing/test_util.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::P;

using Rows = std::multiset<std::string>;

Rows Collect(const CollectorSink* sink) {
  Rows out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

// Run `run` under all four layout × arena configurations and assert
// the result multisets agree. Returns the baseline (row, no-arena)
// rows so callers can assert on content.
template <typename RunFn>
Rows AllConfigsAgree(RunFn&& run, const char* what) {
  Rows baseline;
  bool first = true;
  for (bool columnar : {false, true}) {
    for (bool arenas : {false, true}) {
      ScopedPageColumnarEnabled c(columnar);
      ScopedTupleArenasEnabled a(arenas);
      Rows rows = run();
      if (first) {
        baseline = std::move(rows);
        first = false;
      } else {
        EXPECT_EQ(rows, baseline)
            << what << " columnar=" << columnar << " arenas=" << arenas;
      }
    }
  }
  return baseline;
}

// ---------------------------------------------------------------------------
// Select / Pace / Project chain with punctuation at random positions.
// ---------------------------------------------------------------------------

SchemaPtr ChainSchema() {
  return Schema::Make({{"ts", ValueType::kTimestamp},
                       {"k", ValueType::kInt64},
                       {"s", ValueType::kString},
                       {"v", ValueType::kDouble}});
}

std::vector<TimedElement> RandomChainStream(std::mt19937* rng, int n) {
  std::vector<TimedElement> out;
  TimeMs at = 0;
  int64_t hwm = 0;
  for (int i = 0; i < n; ++i) {
    // Mostly-ordered timestamps with bounded disorder, so Pace both
    // passes and drops.
    int64_t ts = hwm + static_cast<int64_t>((*rng)() % 7) - 3;
    if (ts < 0) ts = 0;
    hwm = std::max(hwm, ts);
    std::string s = "s-" + std::to_string((*rng)() % 40);
    if ((*rng)() % 4 == 0) s += "-stretched-well-past-the-inline-cap";
    out.push_back(TimedElement::OfTuple(
        at++, TupleBuilder()
                  .Ts(ts)
                  .I64(static_cast<int64_t>((*rng)() % 10))
                  .S(std::move(s))
                  .D(static_cast<double>((*rng)() % 100) / 4.0)
                  .Build()));
    // Punctuation at arbitrary mid-page positions: forces page
    // flushes at uneven fills and exercises the flush-before-punct
    // ordering on columnar staging paths.
    if ((*rng)() % 11 == 0) {
      out.push_back(TimedElement::OfPunct(
          at++, Punctuation(P("[<=t:" + std::to_string(hwm) + ",*,*,*]"))));
    }
  }
  return out;
}

Rows RunChain(const std::vector<TimedElement>& elems, bool threaded) {
  testing_util::LinearPlan plan(ChainSchema(), elems);
  // Permuting projection: its paged path stages a fresh output page
  // (columnar when enabled) per input page.
  plan.Add(std::make_unique<Project>("perm", std::vector<int>{3, 0, 2, 1}));
  // Select rides FilterPageInPlace: selection vector vs compaction.
  plan.Add(std::make_unique<Select>("sel", [](const Tuple& t) {
    return t.value(3).int64_value() % 3 != 0;
  }));
  PaceOptions popt;
  popt.ts_attr = 1;
  popt.tolerance_ms = 2;
  popt.mode = PaceMode::kDrop;
  plan.Add(std::make_unique<Pace>("pace", 1, popt));
  // Remap projection: on columnar input this is the in-place
  // column-repoint fast path (duplicates included).
  plan.Add(std::make_unique<Project>("remap", std::vector<int>{1, 2, 0, 0}));
  CollectorSink* sink = plan.Finish();
  Status st;
  if (threaded) {
    st = plan.RunThreaded();
  } else {
    SyncExecutorOptions opts;
    opts.queue.page_size = 16;
    st = plan.RunSync(opts);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collect(sink);
}

TEST(ColumnarEquivalenceTest, SelectPaceProjectChain) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 5; ++round) {
    std::vector<TimedElement> elems = RandomChainStream(&rng, 300);
    Rows rows = AllConfigsAgree(
        [&] { return RunChain(elems, /*threaded=*/false); }, "chain");
    EXPECT_GT(rows.size(), 0u);
  }
}

TEST(ColumnarEquivalenceTest, SelectPaceProjectChainThreaded) {
  std::mt19937 rng(424242);
  std::vector<TimedElement> elems = RandomChainStream(&rng, 400);
  Rows sync_rows = RunChain(elems, false);
  Rows threaded_rows = AllConfigsAgree(
      [&] { return RunChain(elems, /*threaded=*/true); }, "chain-threaded");
  EXPECT_EQ(sync_rows, threaded_rows);
}

// ---------------------------------------------------------------------------
// Symmetric hash join: columnar emit + columnar adjacency probe, with
// string payloads (table promotion out of columnar pages) and forced
// hash collisions.
// ---------------------------------------------------------------------------

SchemaPtr JoinSide() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"p", ValueType::kString}});
}

std::vector<Tuple> RandomJoinSide(std::mt19937* rng, int n,
                                  const char* tag) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string payload = std::string(tag) + "-" + std::to_string(i);
    if (i % 3 == 0) payload += "-past-the-fifteen-byte-inline-cap";
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>((*rng)() % 11))
                      .Ts(static_cast<int64_t>((*rng)() % 60))
                      .S(std::move(payload))
                      .Build());
  }
  return out;
}

Rows RunJoin(const std::vector<Tuple>& left,
             const std::vector<Tuple>& right, bool left_outer,
             bool collide, ProbeGrouping grouping, bool threaded) {
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", JoinSide(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", JoinSide(), AtMillis(right)));
  // Identity projections so the join's input pages are operator-built
  // (columnar when enabled) rather than source row pages.
  auto* pl = plan.AddOp(
      std::make_unique<Project>("pl", std::vector<int>{0, 1, 2}));
  auto* pr = plan.AddOp(
      std::make_unique<Project>("pr", std::vector<int>{0, 1, 2}));
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window_join = true;
  jopt.window = WindowSpec{10, 10};
  jopt.left_outer = left_outer;
  jopt.probe_grouping = grouping;
  jopt.output_page_size = 8;  // several staged-page generations
  if (collide) {
    // Collision storm: the probe must re-establish key equality.
    jopt.key_hash_override = [](const Tuple&, int, int64_t) {
      return uint64_t{42};
    };
  }
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *pl, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *pr, 0).ok());
  EXPECT_TRUE(plan.Connect(*pl, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*pr, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  Status st;
  if (threaded) {
    ThreadedExecutor exec;
    st = exec.Run(&plan);
  } else {
    SyncExecutorOptions opts;
    opts.queue.page_size = 16;
    SyncExecutor exec(opts);
    st = exec.Run(&plan);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collect(sink);
}

TEST(ColumnarEquivalenceTest, JoinAllLayoutConfigs) {
  std::mt19937 rng(777);
  for (bool left_outer : {false, true}) {
    std::vector<Tuple> left = RandomJoinSide(&rng, 150, "left");
    std::vector<Tuple> right = RandomJoinSide(&rng, 150, "right");
    Rows rows = AllConfigsAgree(
        [&] {
          return RunJoin(left, right, left_outer, /*collide=*/false,
                         ProbeGrouping::kAdjacent, /*threaded=*/false);
        },
        left_outer ? "join-outer" : "join-inner");
    EXPECT_GT(rows.size(), 0u);
    // String payloads must survive promotion out of columnar pages
    // into the join tables intact.
    for (const std::string& row : rows) {
      if (row.find("null") != std::string::npos) continue;
      EXPECT_NE(row.find("'left-"), std::string::npos) << row;
      EXPECT_NE(row.find("'right-"), std::string::npos) << row;
    }
  }
}

TEST(ColumnarEquivalenceTest, JoinForcedHashCollisions) {
  // Every (wid, key) hashes to the same bucket: the columnar probe
  // path must re-check key equality per entry, exactly like the row
  // path, and both must agree on the result multiset.
  std::mt19937 rng(31337);
  std::vector<Tuple> left = RandomJoinSide(&rng, 120, "left");
  std::vector<Tuple> right = RandomJoinSide(&rng, 120, "right");
  Rows honest = RunJoin(left, right, false, /*collide=*/false,
                        ProbeGrouping::kAdjacent, false);
  Rows collided = AllConfigsAgree(
      [&] {
        return RunJoin(left, right, false, /*collide=*/true,
                       ProbeGrouping::kAdjacent, false);
      },
      "join-collide");
  EXPECT_EQ(honest, collided);
  EXPECT_GT(honest.size(), 0u);
}

TEST(ColumnarEquivalenceTest, JoinNonAdjacentGroupingsMaterialize) {
  // kSorted / kAdaptive take the row path on columnar input (via
  // EnsureRowLayout) — results must not depend on the layout.
  std::mt19937 rng(909090);
  std::vector<Tuple> left = RandomJoinSide(&rng, 100, "left");
  std::vector<Tuple> right = RandomJoinSide(&rng, 100, "right");
  for (ProbeGrouping g :
       {ProbeGrouping::kSorted, ProbeGrouping::kAdaptive}) {
    Rows rows = AllConfigsAgree(
        [&] {
          return RunJoin(left, right, /*left_outer=*/true,
                         /*collide=*/false, g, /*threaded=*/false);
        },
        "join-grouping");
    EXPECT_GT(rows.size(), 0u);
  }
}

TEST(ColumnarEquivalenceTest, JoinThreadedExecutor) {
  std::mt19937 rng(5150);
  std::vector<Tuple> left = RandomJoinSide(&rng, 120, "left");
  std::vector<Tuple> right = RandomJoinSide(&rng, 120, "right");
  Rows sync_rows = RunJoin(left, right, true, false,
                           ProbeGrouping::kAdjacent, /*threaded=*/false);
  Rows threaded_rows = AllConfigsAgree(
      [&] {
        return RunJoin(left, right, true, false,
                       ProbeGrouping::kAdjacent, /*threaded=*/true);
      },
      "join-threaded");
  EXPECT_EQ(sync_rows, threaded_rows);
}

// ---------------------------------------------------------------------------
// WindowAggregate: columnar result staging (EmitResult) and columnar
// input pages from an upstream Project.
// ---------------------------------------------------------------------------

SchemaPtr AggSchema() {
  return Schema::Make({{"ts", ValueType::kTimestamp},
                       {"g", ValueType::kInt64},
                       {"v", ValueType::kDouble}});
}

std::vector<TimedElement> RandomAggStream(std::mt19937* rng, int n) {
  std::vector<TimedElement> out;
  TimeMs at = 0;
  for (int i = 0; i < n; ++i) {
    out.push_back(TimedElement::OfTuple(
        at++, TupleBuilder()
                  .Ts(static_cast<int64_t>((*rng)() % 500))
                  .I64(static_cast<int64_t>((*rng)() % 5))
                  .D(static_cast<double>((*rng)() % 1000) / 10.0)
                  .Build()));
    if (i > 0 && i % 29 == 0) {
      out.push_back(TimedElement::OfPunct(
          at++, Punctuation(P("[<=t:" +
                              std::to_string((*rng)() % 500) +
                              ",*,*]"))));
    }
  }
  return out;
}

Rows RunAgg(const std::vector<TimedElement>& elems, AggKind kind) {
  testing_util::LinearPlan plan(AggSchema(), elems);
  // Upstream identity Project so the aggregate's input pages are
  // columnar when enabled (its batched walk materializes them).
  plan.Add(std::make_unique<Project>("id", std::vector<int>{0, 1, 2}));
  WindowAggregateOptions wopt;
  wopt.ts_attr = 0;
  wopt.group_attrs = {1};
  wopt.agg_attr = 2;
  wopt.kind = kind;
  wopt.window = WindowSpec{100, 100};
  wopt.output_page_size = 4;  // several staged output pages
  plan.Add(std::make_unique<WindowAggregate>("agg", wopt));
  CollectorSink* sink = plan.Finish();
  SyncExecutorOptions opts;
  opts.queue.page_size = 8;
  Status st = plan.RunSync(opts);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collect(sink);
}

TEST(ColumnarEquivalenceTest, WindowAggregateAllLayoutConfigs) {
  std::mt19937 rng(246810);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMax, AggKind::kMin}) {
    std::vector<TimedElement> elems = RandomAggStream(&rng, 300);
    Rows rows = AllConfigsAgree([&] { return RunAgg(elems, kind); },
                                AggKindName(kind));
    EXPECT_GT(rows.size(), 0u);
  }
}

}  // namespace
}  // namespace nstream
