#include <gtest/gtest.h>

#include "core/correctness.h"
#include "ops/symmetric_hash_join.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::FB;
using testing_util::P;

SchemaPtr ASchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr BSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

struct JoinHarness {
  QueryPlan plan;
  SymmetricHashJoin* join = nullptr;
  CollectorSink* sink = nullptr;

  JoinHarness(std::vector<TimedElement> left,
              std::vector<TimedElement> right, JoinOptions jopt,
              CollectorSink::FeedbackDriver driver = nullptr) {
    auto* l = plan.AddOp(
        std::make_unique<VectorSource>("A", ASchema(), std::move(left)));
    auto* r = plan.AddOp(std::make_unique<VectorSource>(
        "B", BSchema(), std::move(right)));
    join = plan.AddOp(
        std::make_unique<SymmetricHashJoin>("join", std::move(jopt)));
    sink = plan.AddOp(std::make_unique<CollectorSink>(
        "sink", CollectorSinkOptions{}, std::move(driver)));
    EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
    EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
    EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  }

  Status Run() {
    SyncExecutor exec;
    return exec.Run(&plan);
  }
};

JoinOptions BasicJoin() {
  JoinOptions j;
  j.left_keys = {1, 2};
  j.right_keys = {0, 1};
  return j;
}

TimedElement LeftT(TimeMs at, int64_t a, int64_t t, int64_t id) {
  return TimedElement::OfTuple(
      at, TupleBuilder().I64(a).I64(t).I64(id).Build());
}
TimedElement RightT(TimeMs at, int64_t t, int64_t id, int64_t b) {
  return TimedElement::OfTuple(
      at, TupleBuilder().I64(t).I64(id).I64(b).Build());
}

TEST(JoinTest, InnerEquiJoinOutputsLJR) {
  JoinHarness h({LeftT(0, 50, 3, 4), LeftT(1, 60, 9, 9)},
                {RightT(0, 3, 4, 77)}, BasicJoin());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_EQ(h.sink->consumed(), 1u);
  // Output schema: (a, t, id, b).
  EXPECT_EQ(h.sink->collected()[0].tuple,
            (TupleBuilder().I64(50).I64(3).I64(4).I64(77).Build()));
  EXPECT_EQ(h.join->output_schema(0)->ToString(),
            "(a:int64, t:int64, id:int64, b:int64)");
}

TEST(JoinTest, SymmetricProbeBothDirections) {
  // Match found regardless of arrival order.
  JoinHarness h({LeftT(5, 1, 7, 7)}, {RightT(0, 7, 7, 2)}, BasicJoin());
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(h.sink->consumed(), 1u);
}

TEST(JoinTest, Table2JoinAttrFeedbackPurgesBothAndGuards) {
  auto sent = std::make_shared<bool>(false);
  JoinHarness h(
      {LeftT(0, 1, 3, 4), LeftT(1, 2, 5, 6)},
      {RightT(0, 8, 8, 1)}, BasicJoin(),
      [sent](const Tuple&, TimeMs) -> std::vector<FeedbackPunctuation> {
        if (*sent) return {};
        *sent = true;
        return {FB("~[*,3,4,*]")};
      });
  // Force feedback to land before the join finishes: fine-grained
  // batches.
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  // Trigger the driver: need at least one result first — add a
  // matching pair on a different key.
  // (Keep it simple: feedback may arrive after processing; the purge
  // still removes stored entries.)
  SyncExecutor exec(opts);
  ASSERT_TRUE(exec.Run(&h.plan).ok());
  (void)opts;
  // Entries with (t,id)=(3,4) were purged from the left table if the
  // feedback landed; the guard exists either way once received.
  if (h.join->stats().feedback_received > 0) {
    EXPECT_TRUE(h.join->input_guards(0).Blocks(
        TupleBuilder().I64(99).I64(3).I64(4).Build()));
    EXPECT_TRUE(h.join->input_guards(1).Blocks(
        TupleBuilder().I64(3).I64(4).I64(0).Build()));
  }
}

TEST(JoinTest, FeedbackDirectInjection) {
  // Drive the operator directly for deterministic Table 2 checks.
  SymmetricHashJoin join("join", BasicJoin());
  ASSERT_TRUE(join.SetInputSchema(0, ASchema()).ok());
  ASSERT_TRUE(join.SetInputSchema(1, BSchema()).ok());
  ASSERT_TRUE(join.InferSchemas().ok());
  class StubCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple) override {}
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int port, FeedbackPunctuation fb) override {
      relayed.emplace_back(port, std::move(fb));
    }
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::vector<std::pair<int, FeedbackPunctuation>> relayed;
  };
  StubCtx ctx;
  ASSERT_TRUE(join.Open(&ctx).ok());

  // Populate both hash tables.
  ASSERT_TRUE(
      join.ProcessTuple(0, TupleBuilder().I64(50).I64(3).I64(4).Build())
          .ok());
  ASSERT_TRUE(
      join.ProcessTuple(0, TupleBuilder().I64(60).I64(9).I64(9).Build())
          .ok());
  ASSERT_TRUE(
      join.ProcessTuple(1, TupleBuilder().I64(3).I64(4).I64(7).Build())
          .ok());
  EXPECT_EQ(join.table_size(0), 2u);
  EXPECT_EQ(join.table_size(1), 1u);

  // Row 1: ¬[*,3,4,*] purges matching entries from BOTH tables and
  // relays to both inputs.
  ASSERT_TRUE(join.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[*,3,4,*]")))
                  .ok());
  EXPECT_EQ(join.table_size(0), 1u);
  EXPECT_EQ(join.table_size(1), 0u);
  ASSERT_EQ(ctx.relayed.size(), 2u);
  EXPECT_EQ(ctx.relayed[0].second.pattern(), P("[*,3,4]"));
  EXPECT_EQ(ctx.relayed[1].second.pattern(), P("[3,4,*]"));

  // Row 2: ¬[60,*,*,*] touches the left side only.
  ctx.relayed.clear();
  ASSERT_TRUE(join.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[60,*,*,*]")))
                  .ok());
  EXPECT_EQ(join.table_size(0), 0u);
  ASSERT_EQ(ctx.relayed.size(), 1u);
  EXPECT_EQ(ctx.relayed[0].first, 0);

  // Row 4: ¬[l,*,*,r] — no safe propagation; output guard only. The
  // paper's <49,2,3,50> must keep flowing.
  ctx.relayed.clear();
  ASSERT_TRUE(join.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[50,*,*,50]")))
                  .ok());
  EXPECT_TRUE(ctx.relayed.empty());
  EXPECT_FALSE(join.output_guards().empty());
  EXPECT_FALSE(join.output_guards().Blocks(
      TupleBuilder().I64(49).I64(2).I64(3).I64(50).Build()));
  EXPECT_TRUE(join.output_guards().Blocks(
      TupleBuilder().I64(50).I64(2).I64(3).I64(50).Build()));
}

TEST(JoinTest, ConservativeNoRetractionOnlyGuardsOutput) {
  JoinOptions j = BasicJoin();
  j.conservative_no_retraction = true;
  SymmetricHashJoin join("join", j);
  ASSERT_TRUE(join.SetInputSchema(0, ASchema()).ok());
  ASSERT_TRUE(join.SetInputSchema(1, BSchema()).ok());
  ASSERT_TRUE(join.InferSchemas().ok());
  class StubCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple) override {}
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation) override { ++relays; }
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    int relays = 0;
  };
  StubCtx ctx;
  ASSERT_TRUE(join.Open(&ctx).ok());
  ASSERT_TRUE(
      join.ProcessTuple(0, TupleBuilder().I64(50).I64(3).I64(4).Build())
          .ok());
  ASSERT_TRUE(join.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[*,3,4,*]")))
                  .ok());
  EXPECT_EQ(join.table_size(0), 1u);  // §4.4: no purge
  EXPECT_EQ(ctx.relays, 0);
  EXPECT_FALSE(join.output_guards().empty());
}

JoinOptions WindowedJoin() {
  JoinOptions j;
  j.left_keys = {2};    // id
  j.right_keys = {1};   // id
  j.left_ts = 1;        // t as timestamp
  j.right_ts = 0;
  j.window_join = true;
  j.window = {1'000, 1'000};
  return j;
}

TEST(JoinTest, WindowJoinOnlyMatchesSameWindow) {
  JoinHarness h({LeftT(0, 1, 100, 7), LeftT(1, 2, 1'500, 7)},
                {RightT(0, 120, 7, 5)}, WindowedJoin());
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(h.sink->consumed(), 1u);  // only the window-0 pair
}

TEST(JoinTest, PunctuationPurgesOtherSidesClosedWindows) {
  std::vector<TimedElement> left = {LeftT(0, 1, 100, 7)};
  left.push_back(
      TimedElement::OfPunct(2, Punctuation(P("[*,<=t:999,*]"))));
  std::vector<TimedElement> right = {RightT(0, 100, 7, 5)};
  right.push_back(
      TimedElement::OfPunct(3, Punctuation(P("[<=t:999,*,*]"))));
  JoinHarness h(std::move(left), std::move(right), WindowedJoin());
  ASSERT_TRUE(h.Run().ok());
  EXPECT_EQ(h.sink->consumed(), 1u);
  EXPECT_EQ(h.join->table_size(0), 0u);
  EXPECT_EQ(h.join->table_size(1), 0u);
  EXPECT_GE(h.sink->stats().puncts_in, 1u);  // output punctuation
}

TEST(JoinTest, LeftOuterEmitsUnmatchedWithNulls) {
  JoinOptions j = WindowedJoin();
  j.left_outer = true;
  JoinHarness h({LeftT(0, 1, 100, 7), LeftT(1, 2, 200, 8)},
                {RightT(0, 120, 7, 5)}, j);
  ASSERT_TRUE(h.Run().ok());
  ASSERT_EQ(h.sink->consumed(), 2u);
  int nulls = 0;
  for (const auto& c : h.sink->collected()) {
    if (c.tuple.value(3).is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 1);  // id=8 had no match
}

TEST(JoinTest, ThriftyEmptyWindowSendsFeedback) {
  JoinOptions j = WindowedJoin();
  j.thrifty = true;
  j.thrifty_probe_input = 0;
  // Left (probe) has data only in window 0; punctuates through window
  // 2. Windows 1 and 2 are empty -> feedback.
  std::vector<TimedElement> left = {LeftT(0, 1, 100, 7)};
  left.push_back(
      TimedElement::OfPunct(5, Punctuation(P("[*,<=t:2999,*]"))));
  std::vector<TimedElement> right = {RightT(0, 100, 7, 5)};
  JoinHarness h(std::move(left), std::move(right), j);
  ASSERT_TRUE(h.Run().ok());
  EXPECT_GE(h.join->thrifty_feedbacks(), 2u);
}

TEST(JoinTest, ThriftyRejectsUnsafeOuterConfig) {
  JoinOptions j = WindowedJoin();
  j.thrifty = true;
  j.thrifty_probe_input = 1;  // feedback would suppress LEFT tuples...
  j.left_outer = true;        // ...that outer join must still emit
  SymmetricHashJoin join("join", j);
  ASSERT_TRUE(join.SetInputSchema(0, ASchema()).ok());
  ASSERT_TRUE(join.SetInputSchema(1, BSchema()).ok());
  EXPECT_FALSE(join.InferSchemas().ok());
}

TEST(JoinTest, ImpatientSendsDesiredForArrivedData) {
  JoinOptions j = WindowedJoin();
  j.impatient = true;
  j.impatient_data_input = 0;
  JoinHarness h({LeftT(0, 1, 100, 7), LeftT(1, 1, 150, 7)},
                {RightT(5, 100, 7, 5)}, j);
  ASSERT_TRUE(h.Run().ok());
  // One desired feedback per distinct (window, key), not per tuple.
  EXPECT_EQ(h.join->impatient_feedbacks(), 1u);
}

TEST(JoinTest, GateSuppressesInnerMatchButKeepsOuterRow) {
  JoinOptions j = WindowedJoin();
  j.left_outer = true;
  j.left_gate = [](const Tuple& t) {
    return t.value(0).int64_value() < 45;  // "congested" joins
  };
  j.gate_feedback_horizon = 2;
  JoinHarness h({LeftT(0, 60, 100, 7)},  // a=60: uncongested, gated
                {RightT(1, 120, 7, 5)}, j);
  ASSERT_TRUE(h.Run().ok());
  ASSERT_EQ(h.sink->consumed(), 1u);
  EXPECT_TRUE(h.sink->collected()[0].tuple.value(3).is_null())
      << "gated row must outer-emit, not inner-join";
  EXPECT_EQ(h.join->gate_feedbacks(), 1u);
}

TEST(JoinTest, DifferentialCorrectnessUnderJoinAttrFeedback) {
  // Definition 1 end-to-end: run with and without feedback; anything
  // missing must match the feedback pattern.
  auto make_side = [](bool left) {
    std::vector<TimedElement> out;
    for (int i = 0; i < 40; ++i) {
      if (left) {
        out.push_back(LeftT(i, i % 5, i % 4, i % 3));
      } else {
        out.push_back(RightT(i, i % 4, i % 3, i % 7));
      }
    }
    return out;
  };
  auto run = [&](bool feedback) {
    auto sent = std::make_shared<bool>(false);
    CollectorSink::FeedbackDriver driver = nullptr;
    if (feedback) {
      driver = [sent](const Tuple&,
                      TimeMs) -> std::vector<FeedbackPunctuation> {
        if (*sent) return {};
        *sent = true;
        return {FB("~[*,2,1,*]")};
      };
    }
    JoinHarness h(make_side(true), make_side(false), BasicJoin(),
                  driver);
    SyncExecutorOptions opts;
    opts.source_batch = 1;
    opts.queue.page_size = 1;
    SyncExecutor exec(opts);
    EXPECT_TRUE(exec.Run(&h.plan).ok());
    return testing_util::TuplesOf(h.sink->collected());
  };
  std::vector<Tuple> baseline = run(false);
  std::vector<Tuple> exploited = run(true);
  ExploitationCheck check =
      CheckCorrectExploitation(baseline, exploited, P("[*,2,1,*]"));
  EXPECT_TRUE(check.correct) << check.ToString();
}

}  // namespace
}  // namespace nstream
