#include <gtest/gtest.h>

#include "ops/window.h"
#include "ops/window_aggregate.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::FB;
using testing_util::LinearPlan;
using testing_util::P;

// ----------------------------------------------------------- WID windows

TEST(WindowSpecTest, TumblingAssignsExactlyOneWindow) {
  WindowSpec w{1'000, 1'000};
  EXPECT_EQ(w.WindowsOf(0), std::vector<int64_t>{0});
  EXPECT_EQ(w.WindowsOf(999), std::vector<int64_t>{0});
  EXPECT_EQ(w.WindowsOf(1'000), std::vector<int64_t>{1});
}

TEST(WindowSpecTest, SlidingAssignsMultipleWindows) {
  WindowSpec w{3'000, 1'000};  // range 3s, slide 1s
  std::vector<int64_t> wins = w.WindowsOf(5'500);
  // 5500 in [w*1000, w*1000+3000) for w in {3,4,5}.
  EXPECT_EQ(wins, (std::vector<int64_t>{3, 4, 5}));
}

TEST(WindowSpecTest, LastClosableWindow) {
  WindowSpec w{1'000, 1'000};
  // "all ts <= 999 seen": window 0 ([0,1000)) is complete.
  EXPECT_EQ(w.LastClosableWindow(999), 0);
  EXPECT_EQ(w.LastClosableWindow(998), -1);
  WindowSpec sliding{3'000, 1'000};
  // window w covers [w, w+3): complete once ts <= w+2999 seen.
  EXPECT_EQ(sliding.LastClosableWindow(2'999), 0);
  EXPECT_EQ(sliding.LastClosableWindow(3'999), 1);
}

struct WindowCase {
  TimeMs range;
  TimeMs slide;
};

class WindowPropertyTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowPropertyTest, MembershipConsistency) {
  WindowSpec w{GetParam().range, GetParam().slide};
  for (TimeMs ts = 0; ts < 20'000; ts += 333) {
    for (int64_t wid : w.WindowsOf(ts)) {
      EXPECT_LE(w.WindowStart(wid), ts);
      EXPECT_LT(ts, w.WindowEnd(wid));
    }
    // Count matches the closed-form expectation.
    size_t expected = static_cast<size_t>(
        (GetParam().range + GetParam().slide - 1) / GetParam().slide);
    EXPECT_LE(w.WindowsOf(ts).size(), expected + 1);
    EXPECT_GE(w.WindowsOf(ts).size(), 1u);
  }
}

TEST_P(WindowPropertyTest, MapWindowEndLeIsSound) {
  // A tuple suppressed by the mapped timestamp pattern must have ALL
  // its windows covered by the window-end constraint.
  WindowSpec w{GetParam().range, GetParam().slide};
  for (TimeMs bound = 0; bound < 15'000; bound += 777) {
    Result<AttrPattern> mapped = MapWindowEndToTimestamp(
        AttrPattern::Le(Value::Timestamp(bound)), w);
    ASSERT_TRUE(mapped.ok());
    for (TimeMs ts = 0; ts < 20'000; ts += 251) {
      if (!mapped.value().Matches(Value::Timestamp(ts))) continue;
      for (int64_t wid : w.WindowsOf(ts)) {
        EXPECT_LE(w.WindowEnd(wid), bound)
            << "ts " << ts << " suppressed but window end "
            << w.WindowEnd(wid) << " > bound " << bound;
      }
    }
  }
}

TEST_P(WindowPropertyTest, MapWindowEndRangeIsSound) {
  WindowSpec w{GetParam().range, GetParam().slide};
  Result<AttrPattern> mapped = MapWindowEndToTimestamp(
      AttrPattern::Range(Value::Timestamp(5'000),
                         Value::Timestamp(9'000)),
      w);
  if (!mapped.ok()) return;  // Unsupported is always sound
  for (TimeMs ts = 0; ts < 20'000; ts += 97) {
    if (!mapped.value().Matches(Value::Timestamp(ts))) continue;
    for (int64_t wid : w.WindowsOf(ts)) {
      EXPECT_GE(w.WindowEnd(wid), 5'000);
      EXPECT_LE(w.WindowEnd(wid), 9'000);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, WindowPropertyTest,
    ::testing::Values(WindowCase{1'000, 1'000},
                      WindowCase{3'000, 1'000},
                      WindowCase{5'000, 2'000},
                      WindowCase{60'000, 60'000}));

TEST(WindowMapTest, EqualityOnlyForTumbling) {
  EXPECT_TRUE(MapWindowEndToTimestamp(
                  AttrPattern::Eq(Value::Timestamp(3'000)),
                  WindowSpec{3'000, 1'000})
                  .status()
                  .IsUnsupported());
  Result<AttrPattern> r = MapWindowEndToTimestamp(
      AttrPattern::Eq(Value::Timestamp(3'000)),
      WindowSpec{1'000, 1'000});
  ASSERT_TRUE(r.ok());
  // ts in [2000, 2999].
  EXPECT_TRUE(r.value().Matches(Value::Timestamp(2'000)));
  EXPECT_TRUE(r.value().Matches(Value::Timestamp(2'999)));
  EXPECT_FALSE(r.value().Matches(Value::Timestamp(3'000)));
}

// ----------------------------------------------------- WindowAggregate

SchemaPtr GVSchema() {
  return Schema::Make({{"g", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kDouble}});
}

std::vector<TimedElement> AggStream() {
  // Two groups, two 1s windows, punctuated after each window.
  std::vector<TimedElement> out;
  auto add = [&](int64_t g, TimeMs ts, double v) {
    out.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(g).Ts(ts).D(v).Build()));
  };
  add(0, 100, 10);
  add(0, 200, 20);
  add(1, 300, 50);
  out.push_back(TimedElement::OfPunct(1'000, Punctuation(P("[*,<=t:999,*]"))));
  add(0, 1'100, 30);
  add(1, 1'200, 60);
  out.push_back(
      TimedElement::OfPunct(2'000, Punctuation(P("[*,<=t:1999,*]"))));
  return out;
}

WindowAggregateOptions AggOpt(AggKind kind) {
  WindowAggregateOptions opt;
  opt.ts_attr = 1;
  opt.group_attrs = {0};
  opt.agg_attr = 2;
  opt.kind = kind;
  opt.window = {1'000, 1'000};
  return opt;
}

TEST(WindowAggregateTest, AvgPerGroupPerWindow) {
  LinearPlan lp(GVSchema(), AggStream());
  lp.Add(std::make_unique<WindowAggregate>("avg", AggOpt(AggKind::kAvg)));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  ASSERT_EQ(sink->collected().size(), 4u);
  // Window 1 (ends 1000): group 0 avg 15, group 1 avg 50.
  const Tuple& t0 = sink->collected()[0].tuple;
  EXPECT_EQ(t0.value(0).timestamp_value(), 1'000);
  EXPECT_EQ(t0.value(1).int64_value(), 0);
  EXPECT_DOUBLE_EQ(t0.value(2).double_value(), 15.0);
  const Tuple& t1 = sink->collected()[1].tuple;
  EXPECT_DOUBLE_EQ(t1.value(2).double_value(), 50.0);
}

TEST(WindowAggregateTest, CountMaxMinSum) {
  struct KindCase {
    AggKind kind;
    double w1g0;
  };
  for (KindCase c : {KindCase{AggKind::kCount, 2},
                     KindCase{AggKind::kSum, 30},
                     KindCase{AggKind::kMax, 20},
                     KindCase{AggKind::kMin, 10}}) {
    LinearPlan lp(GVSchema(), AggStream());
    lp.Add(std::make_unique<WindowAggregate>("agg", AggOpt(c.kind)));
    CollectorSink* sink = lp.Finish();
    ASSERT_TRUE(lp.RunSync().ok());
    ASSERT_GE(sink->collected().size(), 1u);
    Result<double> v = sink->collected()[0].tuple.value(2).AsDouble();
    ASSERT_TRUE(v.ok());
    EXPECT_DOUBLE_EQ(v.value(), c.w1g0) << AggKindName(c.kind);
  }
}

TEST(WindowAggregateTest, PunctuationClosesWindowsAndPropagates) {
  LinearPlan lp(GVSchema(), AggStream());
  auto* agg = lp.Add(
      std::make_unique<WindowAggregate>("avg", AggOpt(AggKind::kAvg)));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(agg->state_size(), 0u);           // everything closed
  EXPECT_GE(sink->stats().puncts_in, 2u);     // output punctuation
}

TEST(WindowAggregateTest, EosFlushesOpenWindows) {
  std::vector<TimedElement> stream;
  stream.push_back(TimedElement::OfTuple(
      0, TupleBuilder().I64(0).Ts(100).D(7).Build()));
  // No punctuation at all: only EOS closes the window.
  LinearPlan lp(GVSchema(), std::move(stream));
  lp.Add(std::make_unique<WindowAggregate>("avg", AggOpt(AggKind::kAvg)));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(sink->consumed(), 1u);
}

TEST(WindowAggregateTest, SlidingWindowsMultiContribution) {
  WindowAggregateOptions opt = AggOpt(AggKind::kCount);
  opt.window = {2'000, 1'000};  // each tuple in 2 windows
  std::vector<TimedElement> stream;
  stream.push_back(TimedElement::OfTuple(
      1'500, TupleBuilder().I64(0).Ts(1'500).D(1).Build()));
  LinearPlan lp(GVSchema(), std::move(stream));
  auto* agg = lp.Add(std::make_unique<WindowAggregate>("count", opt));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(agg->updates_applied(), 2u);
  EXPECT_EQ(sink->consumed(), 2u);  // one result per window at EOS
}

// §3.5: AVERAGE receiving ¬[*,*,≥50] — purging window 4 at partial 51
// would be WRONG; a later tuple can drop the average below 50. The
// correct exploitation is an output guard.
TEST(WindowAggregateTest, AverageDoesNotPurgeOnValueBound) {
  WindowAggregate avg("avg", AggOpt(AggKind::kAvg));
  ASSERT_TRUE(avg.SetInputSchema(0, GVSchema()).ok());
  ASSERT_TRUE(avg.InferSchemas().ok());
  class NullCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple t) override { emitted.push_back(std::move(t)); }
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation) override {}
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::vector<Tuple> emitted;
  };
  NullCtx ctx;
  ASSERT_TRUE(avg.Open(&ctx).ok());
  // Window 0, group 0 at partial average 51.
  ASSERT_TRUE(
      avg.ProcessTuple(0, TupleBuilder().I64(0).Ts(100).D(51).Build())
          .ok());
  ASSERT_TRUE(avg.ProcessControl(
                     0, ControlMessage::Feedback(FB("~[*,*,>=50]")))
                  .ok());
  EXPECT_EQ(avg.state_size(), 1u) << "AVERAGE must not purge (§3.5)";
  // The future tuple drags the average to 30: result must be emitted.
  ASSERT_TRUE(
      avg.ProcessTuple(0, TupleBuilder().I64(0).Ts(200).D(9).Build())
          .ok());
  ASSERT_TRUE(
      avg.ProcessPunctuation(0, Punctuation(P("[*,<=t:999,*]"))).ok());
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.emitted[0].value(2).double_value(), 30.0);
}

// §3.5: MAX receiving ¬[*,*,≥50] — a window at partial 51 can be
// purged (max only grows), but must be TOMBSTONED: a later value-40
// tuple would otherwise recreate the window with a wrong partial.
TEST(WindowAggregateTest, MaxPurgesAndTombstonesOnValueBound) {
  WindowAggregate maxop("max", AggOpt(AggKind::kMax));
  ASSERT_TRUE(maxop.SetInputSchema(0, GVSchema()).ok());
  ASSERT_TRUE(maxop.InferSchemas().ok());
  class NullCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple t) override { emitted.push_back(std::move(t)); }
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation) override {}
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::vector<Tuple> emitted;
  };
  NullCtx ctx;
  ASSERT_TRUE(maxop.Open(&ctx).ok());
  ASSERT_TRUE(
      maxop.ProcessTuple(0, TupleBuilder().I64(0).Ts(100).D(51).Build())
          .ok());
  ASSERT_TRUE(maxop
                  .ProcessControl(0, ControlMessage::Feedback(
                                         FB("~[*,*,>=50]")))
                  .ok());
  EXPECT_EQ(maxop.state_size(), 0u) << "MAX may purge: max only grows";
  EXPECT_EQ(maxop.tombstone_count(), 1u);
  // The paper's pitfall: value 40 must NOT recreate the window.
  ASSERT_TRUE(
      maxop.ProcessTuple(0, TupleBuilder().I64(0).Ts(200).D(40).Build())
          .ok());
  EXPECT_EQ(maxop.state_size(), 0u)
      << "value-40 tuple recreated a purged window (§3.5 pitfall)";
  // And a fresh window whose max stays below 50 still emits.
  ASSERT_TRUE(
      maxop.ProcessTuple(0, TupleBuilder().I64(0).Ts(1'100).D(44).Build())
          .ok());
  ASSERT_TRUE(
      maxop.ProcessPunctuation(0, Punctuation(P("[*,<=t:1999,*]"))).ok());
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.emitted[0].value(2).double_value(), 44.0);
  // Tombstones for closed windows were reclaimed (§4.4).
  EXPECT_EQ(maxop.tombstone_count(), 0u);
}

TEST(WindowAggregateTest, MonotonicityTable) {
  EXPECT_EQ(WindowAggregate("a", AggOpt(AggKind::kCount)).monotonicity(),
            AggMonotonicity::kNonDecreasing);
  EXPECT_EQ(WindowAggregate("a", AggOpt(AggKind::kMax)).monotonicity(),
            AggMonotonicity::kNonDecreasing);
  EXPECT_EQ(WindowAggregate("a", AggOpt(AggKind::kMin)).monotonicity(),
            AggMonotonicity::kNonIncreasing);
  EXPECT_EQ(WindowAggregate("a", AggOpt(AggKind::kAvg)).monotonicity(),
            AggMonotonicity::kNone);
  WindowAggregateOptions sum = AggOpt(AggKind::kSum);
  EXPECT_EQ(WindowAggregate("a", sum).monotonicity(),
            AggMonotonicity::kNone);
  sum.assume_non_negative = true;
  EXPECT_EQ(WindowAggregate("a", sum).monotonicity(),
            AggMonotonicity::kNonDecreasing);
}

TEST(WindowAggregateTest, DemandedEmitsPartials) {
  WindowAggregate avg("avg", AggOpt(AggKind::kAvg));
  ASSERT_TRUE(avg.SetInputSchema(0, GVSchema()).ok());
  ASSERT_TRUE(avg.InferSchemas().ok());
  class NullCtx : public ExecContext {
   public:
    void EmitTuple(int, Tuple t) override { emitted.push_back(std::move(t)); }
    void EmitPunct(int, Punctuation) override {}
    void EmitEos(int) override {}
    void EmitFeedback(int, FeedbackPunctuation) override {}
    void EmitControl(int, ControlMessage) override {}
    TimeMs NowMs() const override { return 0; }
    void ChargeMs(double) override {}
    std::vector<Tuple> emitted;
  };
  NullCtx ctx;
  ASSERT_TRUE(avg.Open(&ctx).ok());
  ASSERT_TRUE(
      avg.ProcessTuple(0, TupleBuilder().I64(3).Ts(100).D(10).Build())
          .ok());
  ASSERT_TRUE(
      avg.ProcessTuple(0, TupleBuilder().I64(4).Ts(150).D(99).Build())
          .ok());
  // Demand group 3 now.
  ASSERT_TRUE(
      avg.ProcessControl(0, ControlMessage::Feedback(FB("![*,3,*]")))
          .ok());
  ASSERT_EQ(avg.partials_emitted(), 1u);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].value(1).int64_value(), 3);
  // State is untouched: exact result still comes at window close.
  EXPECT_EQ(avg.state_size(), 2u);
}

TEST(WindowAggregateTest, ViewerStyleGroupFeedbackGuardsUpdates) {
  LinearPlan lp(GVSchema(), AggStream());
  auto* agg = lp.Add(
      std::make_unique<WindowAggregate>("avg", AggOpt(AggKind::kAvg)));
  auto sent = std::make_shared<bool>(false);
  lp.Finish({}, [sent](const Tuple&,
                       TimeMs) -> std::vector<FeedbackPunctuation> {
    if (*sent) return {};
    *sent = true;
    // Ignore group 1 for all windows ending within [1000, 3000].
    return {FB("~[[t:1000..t:3000],1,*]")};
  });
  SyncExecutorOptions opts;
  opts.source_batch = 1;
  opts.queue.page_size = 1;
  ASSERT_TRUE(lp.RunSync(opts).ok());
  EXPECT_GT(agg->stats().feedback_received, 0u);
  EXPECT_GT(agg->stats().input_guard_drops +
                agg->stats().output_guard_drops +
                agg->stats().state_purged,
            0u);
}

}  // namespace
}  // namespace nstream
