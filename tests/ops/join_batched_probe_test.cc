// Page-at-a-time probe equivalence: SymmetricHashJoin::ProcessPage's
// grouped probe must produce exactly the element-wise walk's result
// multiset (order across keys may differ — grouping reorders the
// probe interleaving, never the result set), with identical feedback
// counters, under randomized streams, forced hash collisions (every
// key in one bucket via key_hash_override), window joins, and
// left-outer emission.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"l", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"r", ValueType::kInt64}});
}

struct RunResult {
  std::multiset<std::string> rows;
  uint64_t joined = 0;
  uint64_t impatient = 0;
  uint64_t gate = 0;
  uint64_t tuples_in = 0;
};

RunResult RunJoin(const std::vector<Tuple>& left,
                  const std::vector<Tuple>& right, JoinOptions jopt,
                  bool threaded = false) {
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(right)));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  Status st;
  if (threaded) {
    ThreadedExecutor exec;
    st = exec.Run(&plan);
  } else {
    // Small pages so a run crosses many page boundaries.
    SyncExecutorOptions opts;
    opts.queue.page_size = 16;
    SyncExecutor exec(opts);
    st = exec.Run(&plan);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  RunResult out;
  for (const CollectedTuple& c : sink->collected()) {
    out.rows.insert(c.tuple.ToString());
  }
  out.joined = join->joined_count();
  out.impatient = join->impatient_feedbacks();
  out.gate = join->gate_feedbacks();
  out.tuples_in = join->stats().tuples_in;
  return out;
}

std::vector<Tuple> RandomSide(std::mt19937* rng, int n, int key_mod,
                              int ts_mod) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>((*rng)() % key_mod))
                      .Ts(static_cast<int64_t>((*rng)() % ts_mod))
                      .I64(i)
                      .Build());
  }
  return out;
}

JoinOptions BaseOptions() {
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  return jopt;
}

void ExpectEquivalent(const std::vector<Tuple>& left,
                      const std::vector<Tuple>& right,
                      JoinOptions jopt) {
  JoinOptions element = jopt;
  element.page_batched_probe = false;
  RunResult e = RunJoin(left, right, element);
  EXPECT_GT(e.joined, 0u);  // vacuous equivalence is no evidence
  for (ProbeGrouping grouping :
       {ProbeGrouping::kSorted, ProbeGrouping::kAdjacent,
        ProbeGrouping::kAdaptive}) {
    JoinOptions batched = jopt;
    batched.page_batched_probe = true;
    batched.probe_grouping = grouping;
    RunResult b = RunJoin(left, right, batched);
    EXPECT_EQ(b.rows, e.rows)
        << "grouping " << static_cast<int>(grouping);
    EXPECT_EQ(b.joined, e.joined);
    EXPECT_EQ(b.impatient, e.impatient);
    EXPECT_EQ(b.gate, e.gate);
    EXPECT_EQ(b.tuples_in, e.tuples_in);
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalencePlainJoin) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 300, 11, 1000);
    std::vector<Tuple> right = RandomSide(&rng, 300, 11, 1000);
    ExpectEquivalent(left, right, BaseOptions());
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceForcedCollisions) {
  // Every key lands in one bucket: probe correctness rests entirely on
  // the collision-checked EqualsSubset, in both walks.
  std::mt19937 rng(13);
  JoinOptions jopt = BaseOptions();
  jopt.key_hash_override = [](const Tuple&, int, int64_t) {
    return uint64_t{0};
  };
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 200, 7, 1000);
    std::vector<Tuple> right = RandomSide(&rng, 200, 7, 1000);
    ExpectEquivalent(left, right, jopt);
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceWindowJoin) {
  std::mt19937 rng(29);
  JoinOptions jopt = BaseOptions();
  jopt.window_join = true;
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window = WindowSpec{100, 100};
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 250, 9, 500);
    std::vector<Tuple> right = RandomSide(&rng, 250, 9, 500);
    ExpectEquivalent(left, right, jopt);
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceLeftOuterWindowed) {
  std::mt19937 rng(31);
  JoinOptions jopt = BaseOptions();
  jopt.window_join = true;
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window = WindowSpec{100, 100};
  jopt.left_outer = true;
  // Sparse right side so outer rows actually appear.
  std::vector<Tuple> left = RandomSide(&rng, 250, 9, 500);
  std::vector<Tuple> right = RandomSide(&rng, 60, 9, 500);
  ExpectEquivalent(left, right, jopt);
}

TEST(JoinBatchedProbe, RandomizedEquivalenceGatedJoin) {
  // The adaptive gate: gated left tuples must not probe nor be probed
  // in either walk.
  std::mt19937 rng(37);
  JoinOptions jopt = BaseOptions();
  jopt.left_gate = [](const Tuple& t) {
    return t.value(2).int64_value() % 3 != 0;  // gate a third of them
  };
  std::vector<Tuple> left = RandomSide(&rng, 300, 8, 1000);
  std::vector<Tuple> right = RandomSide(&rng, 300, 8, 1000);
  ExpectEquivalent(left, right, jopt);
}

TEST(JoinBatchedProbe, DuplicateKeysWithinOnePageKeepPerKeyOrder) {
  // Several same-key tuples inside one page: within a key, output
  // order must match arrival order on both paths (the batched sort is
  // stabilized by element index).
  std::vector<Tuple> left;
  for (int i = 0; i < 6; ++i) {
    left.push_back(TupleBuilder().I64(5).Ts(0).I64(i).Build());
  }
  std::vector<Tuple> right = {TupleBuilder().I64(5).Ts(0).I64(99).Build()};
  JoinOptions batched = BaseOptions();
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(right)));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", batched));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  ASSERT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  ASSERT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  // All six left tuples joined the one right tuple, in arrival order
  // of their sequence attribute (index 2).
  ASSERT_EQ(sink->collected().size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sink->collected()[static_cast<size_t>(i)]
                  .tuple.value(2)
                  .int64_value(),
              i);
  }
}

TEST(JoinBatchedProbe, BurstyDuplicateRunsAllGroupings) {
  // Bursty streams — runs of identical keys, the adjacency grouping's
  // target shape — must join identically under every grouping,
  // including when the bursts cross page boundaries (page_size 16,
  // burst length 8) and when every key collides.
  std::mt19937 rng(47);
  for (bool collide : {false, true}) {
    JoinOptions jopt = BaseOptions();
    if (collide) {
      jopt.key_hash_override = [](const Tuple&, int, int64_t) {
        return uint64_t{0};
      };
    }
    std::vector<Tuple> left;
    std::vector<Tuple> right;
    for (int i = 0; i < 240; ++i) {
      left.push_back(TupleBuilder()
                         .I64(i / 8)  // 8-tuple bursts per key
                         .Ts(static_cast<int64_t>(rng() % 1000))
                         .I64(i)
                         .Build());
      right.push_back(TupleBuilder()
                          .I64(i / 8)
                          .Ts(static_cast<int64_t>(rng() % 1000))
                          .I64(i)
                          .Build());
    }
    ExpectEquivalent(left, right, jopt);
  }
}

TEST(JoinBatchedProbe, AdjacentGroupingPreservesFullElementOrder) {
  // Unlike kSorted (which reorders across keys), the adjacency walk
  // emits in exact element order — interleaved keys stay interleaved.
  // The SyncExecutor hands the join its port-0 page first each round,
  // so the left rows are table-resident when the interleaved right
  // page probes.
  std::vector<Tuple> left = {
      TupleBuilder().I64(1).Ts(0).I64(100).Build(),
      TupleBuilder().I64(2).Ts(0).I64(200).Build()};
  std::vector<Tuple> right;
  for (int i = 0; i < 8; ++i) {
    right.push_back(TupleBuilder().I64(1 + i % 2).Ts(0).I64(i).Build());
  }
  JoinOptions jopt = BaseOptions();
  jopt.probe_grouping = ProbeGrouping::kAdjacent;
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(right)));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  ASSERT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  ASSERT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  // Output = left attrs (k, ts, l) then right non-key attrs (ts, r):
  // the probing tuple's sequence number lands at output index 4.
  ASSERT_EQ(sink->collected().size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sink->collected()[static_cast<size_t>(i)]
                  .tuple.value(4)
                  .int64_value(),
              i);
  }
}

TEST(JoinBatchedProbe, AdaptiveDensityTracksStreamShape) {
  // A unique-key stream drives the duplicate-density estimate to ~0;
  // a bursty stream drives it high. (The estimate is what flips the
  // adaptive walk between grouped and element-wise.)
  auto run_and_read_ewma = [](const std::vector<Tuple>& left,
                              const std::vector<Tuple>& right) {
    JoinOptions jopt;
    jopt.left_keys = {0};
    jopt.right_keys = {0};
    jopt.probe_grouping = ProbeGrouping::kAdjacent;  // always samples
    QueryPlan plan;
    auto* l = plan.AddOp(std::make_unique<VectorSource>(
        "L", LeftSchema(), AtMillis(left)));
    auto* r = plan.AddOp(std::make_unique<VectorSource>(
        "R", RightSchema(), AtMillis(right)));
    auto* join =
        plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
    auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
    EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
    EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
    EXPECT_TRUE(plan.Connect(*join, *sink).ok());
    SyncExecutor exec;
    EXPECT_TRUE(exec.Run(&plan).ok());
    return join->adjacent_dup_ewma();
  };
  std::vector<Tuple> unique_l, unique_r, bursty_l, bursty_r;
  for (int i = 0; i < 200; ++i) {
    unique_l.push_back(TupleBuilder().I64(i).Ts(0).I64(i).Build());
    unique_r.push_back(TupleBuilder().I64(i).Ts(0).I64(i).Build());
    bursty_l.push_back(TupleBuilder().I64(i / 10).Ts(0).I64(i).Build());
    bursty_r.push_back(TupleBuilder().I64(i / 10).Ts(0).I64(i).Build());
  }
  EXPECT_LT(run_and_read_ewma(unique_l, unique_r), 0.05);
  EXPECT_GT(run_and_read_ewma(bursty_l, bursty_r), 0.5);
}

TEST(JoinBatchedProbe, ThreadedExecutorMatchesSyncResults) {
  std::mt19937 rng(43);
  std::vector<Tuple> left = RandomSide(&rng, 200, 10, 1000);
  std::vector<Tuple> right = RandomSide(&rng, 200, 10, 1000);
  JoinOptions jopt = BaseOptions();
  RunResult sync_run = RunJoin(left, right, jopt, /*threaded=*/false);
  RunResult threaded_run = RunJoin(left, right, jopt, /*threaded=*/true);
  EXPECT_EQ(sync_run.rows, threaded_run.rows);
  EXPECT_GT(sync_run.rows.size(), 0u);
}

}  // namespace
}  // namespace nstream
