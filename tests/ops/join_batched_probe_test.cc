// Page-at-a-time probe equivalence: SymmetricHashJoin::ProcessPage's
// grouped probe must produce exactly the element-wise walk's result
// multiset (order across keys may differ — grouping reorders the
// probe interleaving, never the result set), with identical feedback
// counters, under randomized streams, forced hash collisions (every
// key in one bucket via key_hash_override), window joins, and
// left-outer emission.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"l", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"r", ValueType::kInt64}});
}

struct RunResult {
  std::multiset<std::string> rows;
  uint64_t joined = 0;
  uint64_t impatient = 0;
  uint64_t gate = 0;
  uint64_t tuples_in = 0;
};

RunResult RunJoin(const std::vector<Tuple>& left,
                  const std::vector<Tuple>& right, JoinOptions jopt,
                  bool threaded = false) {
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(right)));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  Status st;
  if (threaded) {
    ThreadedExecutor exec;
    st = exec.Run(&plan);
  } else {
    // Small pages so a run crosses many page boundaries.
    SyncExecutorOptions opts;
    opts.queue.page_size = 16;
    SyncExecutor exec(opts);
    st = exec.Run(&plan);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  RunResult out;
  for (const CollectedTuple& c : sink->collected()) {
    out.rows.insert(c.tuple.ToString());
  }
  out.joined = join->joined_count();
  out.impatient = join->impatient_feedbacks();
  out.gate = join->gate_feedbacks();
  out.tuples_in = join->stats().tuples_in;
  return out;
}

std::vector<Tuple> RandomSide(std::mt19937* rng, int n, int key_mod,
                              int ts_mod) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(TupleBuilder()
                      .I64(static_cast<int64_t>((*rng)() % key_mod))
                      .Ts(static_cast<int64_t>((*rng)() % ts_mod))
                      .I64(i)
                      .Build());
  }
  return out;
}

JoinOptions BaseOptions() {
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  return jopt;
}

void ExpectEquivalent(const std::vector<Tuple>& left,
                      const std::vector<Tuple>& right,
                      JoinOptions jopt) {
  JoinOptions batched = jopt;
  batched.page_batched_probe = true;
  JoinOptions element = jopt;
  element.page_batched_probe = false;
  RunResult b = RunJoin(left, right, batched);
  RunResult e = RunJoin(left, right, element);
  EXPECT_EQ(b.rows, e.rows);
  EXPECT_EQ(b.joined, e.joined);
  EXPECT_EQ(b.impatient, e.impatient);
  EXPECT_EQ(b.gate, e.gate);
  EXPECT_EQ(b.tuples_in, e.tuples_in);
  EXPECT_GT(b.joined, 0u);  // vacuous equivalence is no evidence
}

TEST(JoinBatchedProbe, RandomizedEquivalencePlainJoin) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 300, 11, 1000);
    std::vector<Tuple> right = RandomSide(&rng, 300, 11, 1000);
    ExpectEquivalent(left, right, BaseOptions());
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceForcedCollisions) {
  // Every key lands in one bucket: probe correctness rests entirely on
  // the collision-checked EqualsSubset, in both walks.
  std::mt19937 rng(13);
  JoinOptions jopt = BaseOptions();
  jopt.key_hash_override = [](const Tuple&, int, int64_t) {
    return uint64_t{0};
  };
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 200, 7, 1000);
    std::vector<Tuple> right = RandomSide(&rng, 200, 7, 1000);
    ExpectEquivalent(left, right, jopt);
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceWindowJoin) {
  std::mt19937 rng(29);
  JoinOptions jopt = BaseOptions();
  jopt.window_join = true;
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window = WindowSpec{100, 100};
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Tuple> left = RandomSide(&rng, 250, 9, 500);
    std::vector<Tuple> right = RandomSide(&rng, 250, 9, 500);
    ExpectEquivalent(left, right, jopt);
  }
}

TEST(JoinBatchedProbe, RandomizedEquivalenceLeftOuterWindowed) {
  std::mt19937 rng(31);
  JoinOptions jopt = BaseOptions();
  jopt.window_join = true;
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window = WindowSpec{100, 100};
  jopt.left_outer = true;
  // Sparse right side so outer rows actually appear.
  std::vector<Tuple> left = RandomSide(&rng, 250, 9, 500);
  std::vector<Tuple> right = RandomSide(&rng, 60, 9, 500);
  ExpectEquivalent(left, right, jopt);
}

TEST(JoinBatchedProbe, RandomizedEquivalenceGatedJoin) {
  // The adaptive gate: gated left tuples must not probe nor be probed
  // in either walk.
  std::mt19937 rng(37);
  JoinOptions jopt = BaseOptions();
  jopt.left_gate = [](const Tuple& t) {
    return t.value(2).int64_value() % 3 != 0;  // gate a third of them
  };
  std::vector<Tuple> left = RandomSide(&rng, 300, 8, 1000);
  std::vector<Tuple> right = RandomSide(&rng, 300, 8, 1000);
  ExpectEquivalent(left, right, jopt);
}

TEST(JoinBatchedProbe, DuplicateKeysWithinOnePageKeepPerKeyOrder) {
  // Several same-key tuples inside one page: within a key, output
  // order must match arrival order on both paths (the batched sort is
  // stabilized by element index).
  std::vector<Tuple> left;
  for (int i = 0; i < 6; ++i) {
    left.push_back(TupleBuilder().I64(5).Ts(0).I64(i).Build());
  }
  std::vector<Tuple> right = {TupleBuilder().I64(5).Ts(0).I64(99).Build()};
  JoinOptions batched = BaseOptions();
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(left)));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(right)));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", batched));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  ASSERT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  ASSERT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  // All six left tuples joined the one right tuple, in arrival order
  // of their sequence attribute (index 2).
  ASSERT_EQ(sink->collected().size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sink->collected()[static_cast<size_t>(i)]
                  .tuple.value(2)
                  .int64_value(),
              i);
  }
}

TEST(JoinBatchedProbe, ThreadedExecutorMatchesSyncResults) {
  std::mt19937 rng(43);
  std::vector<Tuple> left = RandomSide(&rng, 200, 10, 1000);
  std::vector<Tuple> right = RandomSide(&rng, 200, 10, 1000);
  JoinOptions jopt = BaseOptions();
  RunResult sync_run = RunJoin(left, right, jopt, /*threaded=*/false);
  RunResult threaded_run = RunJoin(left, right, jopt, /*threaded=*/true);
  EXPECT_EQ(sync_run.rows, threaded_run.rows);
  EXPECT_GT(sync_run.rows.size(), 0u);
}

}  // namespace
}  // namespace nstream
