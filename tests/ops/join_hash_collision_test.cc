// Hashed-key join correctness: the (wid, hash) table key is only a
// bucket address — equality must be re-established per entry. Forcing
// every key onto one hash value makes every probe a collision storm
// and the join must still produce exactly the equi-join result.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/sync_executor.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"l", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"r", ValueType::kInt64}});
}

std::multiset<std::string> RunJoinCollect(
    std::vector<Tuple> left, std::vector<Tuple> right,
    JoinOptions jopt) {
  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), AtMillis(std::move(left))));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), AtMillis(std::move(right))));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  EXPECT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  EXPECT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutor exec;
  Status st = exec.Run(&plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

JoinOptions KeyOnFirst() {
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  return jopt;
}

TEST(JoinHashCollision, ForcedCollisionsDoNotFabricateJoins) {
  std::vector<Tuple> left;
  std::vector<Tuple> right;
  for (int i = 0; i < 20; ++i) {
    left.push_back(TupleBuilder().I64(i).I64(100 + i).Build());
    // Right has keys 0..9 twice; keys 10..19 never match.
    right.push_back(TupleBuilder().I64(i % 10).I64(200 + i).Build());
  }

  JoinOptions normal = KeyOnFirst();
  JoinOptions collide = KeyOnFirst();
  // Every key hashes identically: the table degenerates into a single
  // bucket and only collision-checked equality separates keys.
  collide.key_hash_override = [](const Tuple&, int, int64_t) {
    return uint64_t{0};
  };

  std::multiset<std::string> want =
      RunJoinCollect(left, right, normal);
  std::multiset<std::string> got =
      RunJoinCollect(left, right, collide);

  // 10 matching keys × 2 right duplicates = 20 results either way.
  EXPECT_EQ(want.size(), 20u);
  EXPECT_EQ(got, want);
}

TEST(JoinHashCollision, UnequalKeysWithEqualHashNeverJoin) {
  // Two tuples, different keys, same (forced) hash: zero output.
  JoinOptions collide = KeyOnFirst();
  collide.key_hash_override = [](const Tuple&, int, int64_t) {
    return uint64_t{42};
  };
  std::multiset<std::string> got = RunJoinCollect(
      {TupleBuilder().I64(1).I64(10).Build()},
      {TupleBuilder().I64(2).I64(20).Build()}, collide);
  EXPECT_TRUE(got.empty());
}

TEST(JoinHashCollision, WindowIdSeparatesCollidingKeys) {
  // Windowed join with a constant hash: same key in different windows
  // must not join (the wid check is part of collision resolution).
  SchemaPtr schema = Schema::Make(
      {{"k", ValueType::kInt64}, {"ts", ValueType::kTimestamp}});
  JoinOptions jopt;
  jopt.left_keys = {0};
  jopt.right_keys = {0};
  jopt.left_ts = 1;
  jopt.right_ts = 1;
  jopt.window_join = true;
  jopt.window = {1'000, 1'000};
  jopt.key_hash_override = [](const Tuple&, int, int64_t) {
    return uint64_t{7};
  };

  QueryPlan plan;
  auto* l = plan.AddOp(std::make_unique<VectorSource>(
      "L", schema,
      AtMillis({TupleBuilder().I64(1).Ts(100).Build(),
                TupleBuilder().I64(1).Ts(2'100).Build()})));
  auto* r = plan.AddOp(std::make_unique<VectorSource>(
      "R", schema,
      AtMillis({TupleBuilder().I64(1).Ts(150).Build(),
                TupleBuilder().I64(1).Ts(5'100).Build()})));
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*l, 0, *join, 0).ok());
  ASSERT_TRUE(plan.Connect(*r, 0, *join, 1).ok());
  ASSERT_TRUE(plan.Connect(*join, *sink).ok());
  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());
  // Only the window-0 pair (ts 100 ⋈ ts 150) joins; windows 2 and 5
  // hold the same key and collide in hash but must stay separate.
  ASSERT_EQ(sink->collected().size(), 1u);
  EXPECT_EQ(sink->collected()[0]
                .tuple.value(1)
                .timestamp_value(),
            100);
}

TEST(JoinHashCollision, NumericallyEqualKeysJoinAcrossTypes) {
  // Int64(5) and Double(5.0) are equal under Value::operator== and
  // hash identically, so they key to the same join group.
  std::multiset<std::string> got = RunJoinCollect(
      {TupleBuilder().I64(5).I64(10).Build()},
      {Tuple(std::vector<Value>{Value::Double(5.0), Value::Int64(20)})},
      KeyOnFirst());
  EXPECT_EQ(got.size(), 1u);
}

}  // namespace
}  // namespace nstream
