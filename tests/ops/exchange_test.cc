// Exchange / ShardMerge / MakePartitionedJoin coverage: deterministic
// collision-safe routing, punctuation broadcast and coalescing (no
// early and no duplicate emission at the merge), feedback relayed
// through the partition boundary purging every shard, and randomized
// result-equivalence of the 4-shard topology against the 1-shard
// baseline under both the sync and threaded executors.

#include "ops/exchange.h"

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::FB;
using testing_util::P;

SchemaPtr KeyTsPayloadSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kInt64}});
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST(ExchangeRouting, DeterministicAndKeyPure) {
  std::vector<int> keys = {0};
  for (int64_t k = 0; k < 1000; ++k) {
    // Same key, different payload/timestamp → same hash: routing must
    // depend on the partition keys alone, or join partners separate.
    Tuple a = TupleBuilder().I64(k).Ts(11).I64(7).Build();
    Tuple b = TupleBuilder().I64(k).Ts(9999).I64(-3).Build();
    EXPECT_EQ(Exchange::RoutingHash(a, keys),
              Exchange::RoutingHash(b, keys));
    // And repeated evaluation is stable.
    EXPECT_EQ(Exchange::RoutingHash(a, keys),
              Exchange::RoutingHash(a, keys));
  }
}

TEST(ExchangeRouting, AllShardsPopulatedAndInRange) {
  std::vector<int> keys = {0};
  for (int shards : {2, 3, 4, 8}) {
    std::vector<int> hits(static_cast<size_t>(shards), 0);
    for (int64_t k = 0; k < 4096; ++k) {
      Tuple t = TupleBuilder().I64(k).Ts(0).I64(0).Build();
      int s = Exchange::ShardOfHash(Exchange::RoutingHash(t, keys),
                                    shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      ++hits[static_cast<size_t>(s)];
    }
    for (int s = 0; s < shards; ++s) {
      // With 4096 uniform keys a starving shard means a broken prefix.
      EXPECT_GT(hits[static_cast<size_t>(s)], 4096 / shards / 4)
          << "shard " << s << " of " << shards << " underpopulated";
    }
  }
}

// ---------------------------------------------------------------------------
// Unit harness: drive an operator directly, recording its emissions.
// ---------------------------------------------------------------------------

class RecordingContext final : public ExecContext {
 public:
  void EmitTuple(int out_port, Tuple t) override {
    tuples[out_port].push_back(std::move(t));
  }
  void EmitPunct(int out_port, Punctuation p) override {
    puncts[out_port].push_back(std::move(p));
  }
  void EmitEos(int out_port) override { ++eos[out_port]; }
  void EmitPage(int out_port, Page&& page) override {
    ++pages_emitted;
    for (StreamElement& e : page.mutable_elements()) {
      tuples[out_port].push_back(std::move(e.mutable_tuple()));
    }
  }
  void EmitFeedback(int in_port, FeedbackPunctuation fb) override {
    feedback[in_port].push_back(std::move(fb));
  }
  void EmitControl(int, ControlMessage) override {}
  TimeMs NowMs() const override { return 0; }
  void ChargeMs(double) override {}
  int PurgeInput(int in_port, const PunctPattern&) override {
    ++purge_calls[in_port];
    return 0;
  }
  int PrioritizeInput(int in_port, const PunctPattern&) override {
    ++prioritize_calls[in_port];
    return 0;
  }

  std::map<int, std::vector<Tuple>> tuples;
  std::map<int, std::vector<Punctuation>> puncts;
  std::map<int, std::vector<FeedbackPunctuation>> feedback;
  std::map<int, int> eos;
  std::map<int, int> purge_calls;
  std::map<int, int> prioritize_calls;
  int pages_emitted = 0;
};

std::unique_ptr<Exchange> OpenExchange(int shards,
                                       RecordingContext* ctx) {
  ExchangeOptions opts;
  opts.partition_keys = {0};
  auto xchg = std::make_unique<Exchange>("xchg", shards, opts);
  EXPECT_TRUE(xchg->SetInputSchema(0, KeyTsPayloadSchema()).ok());
  EXPECT_TRUE(xchg->InferSchemas().ok());
  EXPECT_TRUE(xchg->Open(ctx).ok());
  return xchg;
}

TEST(Exchange, PartitionsTuplesAndBroadcastsPunctuation) {
  RecordingContext ctx;
  auto xchg = OpenExchange(4, &ctx);

  Page page;
  const int kTuples = 512;
  for (int64_t i = 0; i < kTuples; ++i) {
    page.Add(StreamElement::OfTuple(
        TupleBuilder().I64(i).Ts(i).I64(i * 2).Build()));
  }
  page.Add(StreamElement::OfPunct(Punctuation(P("[*,<=511,*]"))));
  ASSERT_TRUE(xchg->ProcessPage(0, std::move(page), nullptr).ok());

  int total = 0;
  for (int s = 0; s < 4; ++s) {
    // Every tuple reached exactly one shard; the partition is total.
    total += static_cast<int>(ctx.tuples[s].size());
    EXPECT_EQ(xchg->routed(s), ctx.tuples[s].size());
    // The punctuation reached every shard.
    ASSERT_EQ(ctx.puncts[s].size(), 1u) << "shard " << s;
    EXPECT_EQ(ctx.puncts[s][0].pattern(), P("[*,<=511,*]"));
  }
  EXPECT_EQ(total, kTuples);

  // Routing agrees with the static function (what the merge and the
  // join's debug tripwire use).
  for (int s = 0; s < 4; ++s) {
    for (const Tuple& t : ctx.tuples[s]) {
      EXPECT_EQ(Exchange::ShardOfHash(
                    Exchange::RoutingHash(t, {0}), 4),
                s);
    }
  }
}

TEST(Exchange, PunctuationNeverOvertakesStagedTuples) {
  RecordingContext ctx;
  auto xchg = OpenExchange(2, &ctx);

  // Tuples staged (fewer than stage_page_size, so they sit in the
  // staging page) followed by a punctuation: the flush must deliver
  // the tuples first on every port.
  Page page;
  for (int64_t i = 0; i < 10; ++i) {
    page.Add(StreamElement::OfTuple(
        TupleBuilder().I64(i).Ts(i).I64(0).Build()));
  }
  page.Add(StreamElement::OfPunct(Punctuation(P("[*,<=9,*]"))));
  ASSERT_TRUE(xchg->ProcessPage(0, std::move(page), nullptr).ok());
  EXPECT_EQ(ctx.tuples[0].size() + ctx.tuples[1].size(), 10u);
  EXPECT_GT(ctx.pages_emitted, 0);
  ASSERT_EQ(ctx.puncts[0].size(), 1u);
  ASSERT_EQ(ctx.puncts[1].size(), 1u);
}

TEST(Exchange, AssumedFeedbackGuardsPortThenCoalescesUpstream) {
  RecordingContext ctx;
  auto xchg = OpenExchange(3, &ctx);
  // Payload-pinned, key-free: no single shard owns the subset, so the
  // exchange must wait for every shard to concur.
  FeedbackPunctuation fb = FB("~[*,*,7]");

  // Shard 0 assumes ¬[*,*,7]: its port is guarded, nothing relayed —
  // other shards' slices of the stream are not covered by the claim.
  ASSERT_TRUE(xchg->ProcessFeedback(0, fb).ok());
  EXPECT_EQ(xchg->port_guards(0).size(), 1);
  EXPECT_TRUE(xchg->input_guards().empty());
  EXPECT_EQ(xchg->coalesced_relays(), 0u);
  EXPECT_TRUE(ctx.feedback[0].empty());
  EXPECT_EQ(xchg->pending_feedback(), 1u);

  // A duplicate from the same shard changes nothing.
  ASSERT_TRUE(xchg->ProcessFeedback(0, fb).ok());
  EXPECT_EQ(xchg->coalesced_relays(), 0u);

  // Remaining shards concur: now the subset is dead stream-wide — the
  // exchange guards its input, purges the backlog, and relays ONE
  // coalesced claim upstream.
  ASSERT_TRUE(xchg->ProcessFeedback(1, fb).ok());
  EXPECT_TRUE(ctx.feedback[0].empty());
  ASSERT_TRUE(xchg->ProcessFeedback(2, fb).ok());
  ASSERT_EQ(ctx.feedback[0].size(), 1u);
  EXPECT_TRUE(ctx.feedback[0][0].EquivalentTo(fb));
  EXPECT_FALSE(xchg->input_guards().empty());
  EXPECT_EQ(ctx.purge_calls[0], 1);
  EXPECT_EQ(xchg->coalesced_relays(), 1u);
  EXPECT_EQ(xchg->pending_feedback(), 0u);

  // Tuples matching the coalesced claim are now dropped at the input.
  Page page;
  page.Add(StreamElement::OfTuple(
      TupleBuilder().I64(1).Ts(1).I64(7).Build()));
  page.Add(StreamElement::OfTuple(
      TupleBuilder().I64(2).Ts(1).I64(8).Build()));
  ASSERT_TRUE(xchg->ProcessPage(0, std::move(page), nullptr).ok());
  size_t delivered = 0;
  for (int s = 0; s < 3; ++s) delivered += ctx.tuples[s].size();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(xchg->stats().input_guard_drops, 1u);
}

TEST(Exchange, KeyPinnedAssumedFeedbackRelaysFromOwnerImmediately) {
  RecordingContext ctx;
  auto xchg = OpenExchange(4, &ctx);

  // ¬[5,*,*] pins the partition key: every matching tuple routes to
  // one shard, so that shard's claim kills the subset stream-wide.
  Tuple probe = TupleBuilder().I64(5).Ts(0).I64(0).Build();
  int owner =
      Exchange::ShardOfHash(Exchange::RoutingHash(probe, {0}), 4);
  FeedbackPunctuation fb = FB("~[5,*,*]");

  // From a non-owner the claim is vacuous: no state, no relay.
  ASSERT_TRUE(xchg->ProcessFeedback((owner + 1) % 4, fb).ok());
  EXPECT_TRUE(ctx.feedback[0].empty());
  EXPECT_EQ(xchg->pending_feedback(), 0u);
  EXPECT_EQ(xchg->stats().feedback_ignored, 1u);

  // From the owner it exploits and relays at once — no waiting for
  // shards that will never see the key.
  ASSERT_TRUE(xchg->ProcessFeedback(owner, fb).ok());
  ASSERT_EQ(ctx.feedback[0].size(), 1u);
  EXPECT_TRUE(ctx.feedback[0][0].EquivalentTo(fb));
  EXPECT_EQ(xchg->owner_relays(), 1u);
  EXPECT_FALSE(xchg->input_guards().empty());
  EXPECT_EQ(ctx.purge_calls[0], 1);
  EXPECT_EQ(xchg->pending_feedback(), 0u);

  // Key 5 now dies at the exchange input.
  Page page;
  page.Add(StreamElement::OfTuple(
      TupleBuilder().I64(5).Ts(1).I64(0).Build()));
  ASSERT_TRUE(xchg->ProcessPage(0, std::move(page), nullptr).ok());
  EXPECT_EQ(xchg->stats().input_guard_drops, 1u);
}

TEST(Exchange, DesiredFeedbackPrioritizesOnceAndRelaysOnce) {
  RecordingContext ctx;
  auto xchg = OpenExchange(2, &ctx);
  // Key-free desired pattern: first shard to ask wins, later identical
  // requests are already served.
  FeedbackPunctuation fb = FB("?[*,<=5,*]");

  ASSERT_TRUE(xchg->ProcessFeedback(1, fb).ok());
  EXPECT_EQ(ctx.prioritize_calls[0], 1);
  ASSERT_EQ(ctx.feedback[0].size(), 1u);

  // The second shard's identical request is already served.
  ASSERT_TRUE(xchg->ProcessFeedback(0, fb).ok());
  EXPECT_EQ(ctx.prioritize_calls[0], 1);
  EXPECT_EQ(ctx.feedback[0].size(), 1u);

  // A key-pinned desired request (the impatient join's shape) acts
  // only when it comes from the key's owner shard.
  Tuple probe = TupleBuilder().I64(42).Ts(0).I64(0).Build();
  int owner =
      Exchange::ShardOfHash(Exchange::RoutingHash(probe, {0}), 2);
  FeedbackPunctuation keyed = FB("?[42,*,*]");
  ASSERT_TRUE(xchg->ProcessFeedback(1 - owner, keyed).ok());
  EXPECT_EQ(ctx.prioritize_calls[0], 1);  // vacuous: untouched
  ASSERT_TRUE(xchg->ProcessFeedback(owner, keyed).ok());
  EXPECT_EQ(ctx.prioritize_calls[0], 2);
  EXPECT_EQ(ctx.feedback[0].size(), 2u);
}

// ---------------------------------------------------------------------------
// ShardMerge coalescing
// ---------------------------------------------------------------------------

std::unique_ptr<ShardMerge> OpenMerge(int inputs,
                                      std::vector<int> partition_keys,
                                      RecordingContext* ctx) {
  ShardMergeOptions opts;
  opts.partition_keys = std::move(partition_keys);
  auto merge = std::make_unique<ShardMerge>("merge", inputs, opts);
  for (int i = 0; i < inputs; ++i) {
    EXPECT_TRUE(merge->SetInputSchema(i, KeyTsPayloadSchema()).ok());
  }
  EXPECT_TRUE(merge->InferSchemas().ok());
  EXPECT_TRUE(merge->Open(ctx).ok());
  return merge;
}

TEST(ShardMerge, WatermarkWaitsForEveryShardAndNeverDuplicates) {
  RecordingContext ctx;
  auto merge = OpenMerge(3, {0}, &ctx);

  // Two of three shards advance: no emission (early emission would
  // claim completeness the third shard can still violate).
  ASSERT_TRUE(
      merge->ProcessPunctuation(0, Punctuation(P("[*,<=10,*]"))).ok());
  ASSERT_TRUE(
      merge->ProcessPunctuation(1, Punctuation(P("[*,<=20,*]"))).ok());
  EXPECT_TRUE(ctx.puncts[0].empty());

  // Third shard arrives: emit the MIN across shards, exactly once.
  ASSERT_TRUE(
      merge->ProcessPunctuation(2, Punctuation(P("[*,<=15,*]"))).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 1u);
  EXPECT_EQ(ctx.puncts[0][0].pattern(), P("[*,<=10,*]"));

  // Shard 0 re-asserting its bound must not re-emit.
  ASSERT_TRUE(
      merge->ProcessPunctuation(0, Punctuation(P("[*,<=10,*]"))).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 1u);

  // Shard 0 advancing to 30 raises the min to 15 (shards 1 and 2
  // already stand at 20 and 15): emit the new min, exactly once.
  ASSERT_TRUE(
      merge->ProcessPunctuation(0, Punctuation(P("[*,<=30,*]"))).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 2u);
  EXPECT_EQ(ctx.puncts[0][1].pattern(), P("[*,<=15,*]"));

  // Shard 1 advancing leaves the min at 15: no emission. Shard 2
  // advancing to 25 raises it again.
  ASSERT_TRUE(
      merge->ProcessPunctuation(1, Punctuation(P("[*,<=30,*]"))).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 2u);
  ASSERT_TRUE(
      merge->ProcessPunctuation(2, Punctuation(P("[*,<=25,*]"))).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 3u);
  EXPECT_EQ(ctx.puncts[0][2].pattern(), P("[*,<=25,*]"));
}

TEST(ShardMerge, KeyPinnedPunctuationPassesFromOwnerShardOnly) {
  RecordingContext ctx;
  auto merge = OpenMerge(4, {0}, &ctx);

  Tuple probe = TupleBuilder().I64(5).Ts(0).I64(0).Build();
  int owner =
      Exchange::ShardOfHash(Exchange::RoutingHash(probe, {0}), 4);
  Punctuation key_punct(P("[5,*,*]"));

  // From a non-owner shard the claim is vacuous (that shard never sees
  // key 5) and must NOT settle the merged stream.
  int non_owner = (owner + 1) % 4;
  ASSERT_TRUE(merge->ProcessPunctuation(non_owner, key_punct).ok());
  EXPECT_TRUE(ctx.puncts[0].empty());
  EXPECT_EQ(merge->dropped_vacuous_puncts(), 1u);

  // From the owner it settles the whole stream immediately.
  ASSERT_TRUE(merge->ProcessPunctuation(owner, key_punct).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 1u);
  EXPECT_EQ(ctx.puncts[0][0].pattern(), P("[5,*,*]"));
  EXPECT_EQ(merge->owner_routed_puncts(), 1u);
}

TEST(ShardMerge, GeneralPatternCoalescesAcrossAllShards) {
  RecordingContext ctx;
  auto merge = OpenMerge(2, {0}, &ctx);

  // >= is not watermark-shaped and doesn't pin the key: it must wait
  // for every shard.
  Punctuation punct(P("[>=100,*,*]"));
  ASSERT_TRUE(merge->ProcessPunctuation(0, punct).ok());
  EXPECT_TRUE(ctx.puncts[0].empty());
  ASSERT_TRUE(merge->ProcessPunctuation(0, punct).ok());  // duplicate
  EXPECT_TRUE(ctx.puncts[0].empty());
  ASSERT_TRUE(merge->ProcessPunctuation(1, punct).ok());
  ASSERT_EQ(ctx.puncts[0].size(), 1u);
  EXPECT_EQ(merge->coalesced_puncts(), 1u);
}

TEST(ShardMerge, AllTuplePagesForwardWholesale) {
  RecordingContext ctx;
  auto merge = OpenMerge(2, {0}, &ctx);

  Page page;
  for (int64_t i = 0; i < 8; ++i) {
    page.Add(StreamElement::OfTuple(
        TupleBuilder().I64(i).Ts(i).I64(0).Build()));
  }
  ASSERT_TRUE(merge->ProcessPage(1, std::move(page), nullptr).ok());
  EXPECT_EQ(ctx.tuples[0].size(), 8u);
  EXPECT_EQ(ctx.pages_emitted, 1);
  EXPECT_EQ(merge->stats().tuples_in, 8u);
}

// ---------------------------------------------------------------------------
// Partitioned join: end-to-end equivalence and feedback relay
// ---------------------------------------------------------------------------

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"a", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"b", ValueType::kInt64}});
}

struct Workload {
  std::vector<TimedElement> left;
  std::vector<TimedElement> right;
};

Workload RandomWorkload(uint64_t seed, int tuples_per_side, int num_keys,
                        bool with_punctuation) {
  std::mt19937_64 rng(seed);
  Workload w;
  TimeMs ts = 0;
  for (int i = 0; i < tuples_per_side; ++i) {
    ts += static_cast<TimeMs>(rng() % 3);
    int64_t lk = static_cast<int64_t>(rng() % num_keys);
    int64_t rk = static_cast<int64_t>(rng() % num_keys);
    w.left.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(lk).Ts(ts).I64(lk * 10 + 1).Build()));
    w.right.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(rk).Ts(ts).I64(rk * 10 + 2).Build()));
    if (with_punctuation && i % 64 == 63) {
      // Both sides punctuate "complete through ts": drives window
      // close/purge inside shards and watermark coalescing at merge.
      w.left.push_back(TimedElement::OfPunct(
          ts, Punctuation(P("[*,<=" + std::to_string(ts) + ",*]"))));
      w.right.push_back(TimedElement::OfPunct(
          ts, Punctuation(P("[*,<=" + std::to_string(ts) + ",*]"))));
    }
  }
  return w;
}

struct PartitionedRun {
  std::vector<std::string> sorted_rows;
  uint64_t joined = 0;
  uint64_t merge_puncts_out = 0;
};

PartitionedRun RunPartitioned(const Workload& w, int shards,
                              bool threaded, bool window_join,
                              bool collide_join_hash) {
  QueryPlan plan;
  auto* left = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), w.left));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), w.right));

  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  if (window_join) {
    jo.window_join = true;
    jo.left_ts = 1;
    jo.right_ts = 1;
    jo.window = WindowSpec{/*range_ms=*/64, /*slide_ms=*/64};
  }
  if (collide_join_hash) {
    // Force every (wid,key) onto one table hash: the shard joins must
    // stay correct purely via collision-checked subset equality while
    // the exchange still routes by the REAL key hash.
    jo.key_hash_override = [](const Tuple&, int, int64_t) {
      return 42ULL;
    };
  }

  Result<PartitionedJoinPlan> pj =
      MakePartitionedJoin(&plan, "pjoin", jo, shards);
  EXPECT_TRUE(pj.ok()) << pj.status().ToString();
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(
      plan.Connect(*left, 0, *pj.value().left_exchange, 0).ok());
  EXPECT_TRUE(
      plan.Connect(*right, 0, *pj.value().right_exchange, 0).ok());
  EXPECT_TRUE(plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());

  Status st;
  if (threaded) {
    ThreadedExecutorOptions opts;
    opts.max_pages_per_wake = 4;
    ThreadedExecutor exec(opts);
    st = exec.Run(&plan);
  } else {
    SyncExecutor exec;
    st = exec.Run(&plan);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();

  PartitionedRun out;
  for (SymmetricHashJoin* shard : pj.value().shards) {
    out.joined += shard->joined_count();
  }
  out.merge_puncts_out = pj.value().merge->stats().puncts_out;
  for (const CollectedTuple& row : sink->collected()) {
    out.sorted_rows.push_back(row.tuple.ToString());
  }
  std::sort(out.sorted_rows.begin(), out.sorted_rows.end());
  return out;
}

TEST(PartitionedJoin, FourShardsMatchOneShardOnRandomizedWorkload) {
  Workload w = RandomWorkload(/*seed=*/1234, /*tuples_per_side=*/1500,
                              /*num_keys=*/97, /*with_punctuation=*/false);
  PartitionedRun base = RunPartitioned(w, 1, /*threaded=*/false,
                                       /*window_join=*/false, false);
  PartitionedRun sharded = RunPartitioned(w, 4, /*threaded=*/false,
                                          /*window_join=*/false, false);
  ASSERT_GT(base.sorted_rows.size(), 0u);
  EXPECT_EQ(base.joined, sharded.joined);
  EXPECT_EQ(base.sorted_rows, sharded.sorted_rows);
}

TEST(PartitionedJoin, WindowedFourShardsMatchOneShardWithPunctuation) {
  Workload w = RandomWorkload(/*seed=*/99, /*tuples_per_side=*/1500,
                              /*num_keys=*/61, /*with_punctuation=*/true);
  PartitionedRun base = RunPartitioned(w, 1, /*threaded=*/false,
                                       /*window_join=*/true, false);
  PartitionedRun sharded = RunPartitioned(w, 4, /*threaded=*/false,
                                          /*window_join=*/true, false);
  ASSERT_GT(base.sorted_rows.size(), 0u);
  EXPECT_EQ(base.joined, sharded.joined);
  EXPECT_EQ(base.sorted_rows, sharded.sorted_rows);
  // The merge really coalesced and emitted downstream punctuation.
  EXPECT_GT(sharded.merge_puncts_out, 0u);
}

TEST(PartitionedJoin, CollisionSafeUnderForcedJoinHashCollisions) {
  Workload w = RandomWorkload(/*seed=*/7, /*tuples_per_side=*/600,
                              /*num_keys=*/37, /*with_punctuation=*/false);
  PartitionedRun honest = RunPartitioned(w, 4, /*threaded=*/false,
                                         /*window_join=*/false, false);
  PartitionedRun collided = RunPartitioned(w, 4, /*threaded=*/false,
                                           /*window_join=*/false, true);
  EXPECT_EQ(honest.sorted_rows, collided.sorted_rows);
}

TEST(PartitionedJoin, ThreadedExecutorMatchesSyncResults) {
  Workload w = RandomWorkload(/*seed=*/5150, /*tuples_per_side=*/1200,
                              /*num_keys=*/73, /*with_punctuation=*/true);
  PartitionedRun sync_run = RunPartitioned(w, 4, /*threaded=*/false,
                                           /*window_join=*/true, false);
  PartitionedRun threaded_run = RunPartitioned(w, 4, /*threaded=*/true,
                                               /*window_join=*/true,
                                               false);
  ASSERT_GT(sync_run.sorted_rows.size(), 0u);
  EXPECT_EQ(sync_run.sorted_rows, threaded_run.sorted_rows);
}

TEST(PartitionedJoin, FeedbackRelayedThroughMergePurgesEveryShard) {
  // Left payload attr "a" is the constant 7 for every key, so assumed
  // feedback on it addresses state in EVERY shard; it is a left-only
  // attribute, so Table 2 row 2 applies inside each shard (purge left,
  // guard left, propagate left).
  const int kPerSide = 1200;
  const int kKeys = 64;
  Workload w;
  for (int i = 0; i < kPerSide; ++i) {
    TimeMs ts = static_cast<TimeMs>(i);
    int64_t k = static_cast<int64_t>(i % kKeys);
    w.left.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(k).Ts(ts).I64(7).Build()));
    w.right.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(k).Ts(ts).I64(k).Build()));
  }

  QueryPlan plan;
  auto* left = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), w.left));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), w.right));
  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  Result<PartitionedJoinPlan> pj =
      MakePartitionedJoin(&plan, "pjoin", jo, 4);
  ASSERT_TRUE(pj.ok()) << pj.status().ToString();

  // Output schema: k, ts, a, ts, b — the feedback pins a (position 2).
  auto fired = std::make_shared<bool>(false);
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false},
      [fired](const Tuple&,
              TimeMs) -> std::vector<FeedbackPunctuation> {
        if (*fired) return {};
        *fired = true;
        return {FB("~[*,*,7,*,*]")};
      }));
  ASSERT_TRUE(plan.Connect(*left, 0, *pj.value().left_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(*right, 0, *pj.value().right_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());

  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());

  // The merge relayed the feedback to every shard...
  EXPECT_EQ(pj.value().merge->stats().feedback_received, 1u);
  EXPECT_EQ(pj.value().merge->stats().feedback_propagated, 4u);
  // ...and every shard exploited it: left-table state purged, left
  // input guarded, derived claim relayed further upstream.
  for (SymmetricHashJoin* shard : pj.value().shards) {
    EXPECT_GT(shard->stats().state_purged, 0u)
        << shard->name() << " purged nothing";
    EXPECT_GT(shard->stats().feedback_propagated, 0u)
        << shard->name() << " relayed nothing";
  }
  // The left exchange heard an equivalent claim from all 4 shards and
  // coalesced it into ONE upstream relay; the claim covers the whole
  // left stream, so later left tuples die at the exchange input.
  EXPECT_EQ(pj.value().left_exchange->coalesced_relays(), 1u);
  EXPECT_FALSE(pj.value().left_exchange->input_guards().empty());
  EXPECT_GT(pj.value().left_exchange->stats().input_guard_drops, 0u);
  // The right exchange heard nothing (left-only attribute).
  EXPECT_EQ(pj.value().right_exchange->coalesced_relays(), 0u);
}

TEST(PartitionedJoin, GateFeedbackRelaysUpstreamFromOwnerShard) {
  // The speed-map adaptive gate (§3.3) through a sharded topology:
  // left tuples failing the gate make their shard send key-pinned
  // assumed feedback toward the right input. The right exchange must
  // recognize the sending shard as the key's owner and relay upstream
  // IMMEDIATELY — the other shards never see the key and could never
  // concur.
  const int kPerSide = 512;
  const int kKeys = 16;
  Workload w;
  for (int i = 0; i < kPerSide; ++i) {
    TimeMs ts = static_cast<TimeMs>(i);
    int64_t k = static_cast<int64_t>(i % kKeys);
    // Left payload is the "sensor speed"; even keys fail the <45 gate.
    w.left.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(k).Ts(ts).I64(k % 2 == 0 ? 60 : 30)
                .Build()));
    w.right.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(k).Ts(ts).I64(k).Build()));
    if (i % 64 == 63) {
      Punctuation punct(P("[*,<=" + std::to_string(ts) + ",*]"));
      w.left.push_back(TimedElement::OfPunct(ts, punct));
      w.right.push_back(TimedElement::OfPunct(ts, punct));
    }
  }

  QueryPlan plan;
  auto* left = plan.AddOp(std::make_unique<VectorSource>(
      "L", LeftSchema(), w.left));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "R", RightSchema(), w.right));
  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  jo.window_join = true;
  jo.left_ts = 1;
  jo.right_ts = 1;
  jo.window = WindowSpec{/*range_ms=*/64, /*slide_ms=*/64};
  jo.left_gate = [](const Tuple& t) {
    return t.value(2).AsInt64().value() < 45;
  };
  jo.gate_feedback_horizon = 4;
  Result<PartitionedJoinPlan> pj =
      MakePartitionedJoin(&plan, "pjoin", jo, 4);
  ASSERT_TRUE(pj.ok()) << pj.status().ToString();
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  ASSERT_TRUE(plan.Connect(*left, 0, *pj.value().left_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(*right, 0, *pj.value().right_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());

  SyncExecutor exec;
  ASSERT_TRUE(exec.Run(&plan).ok());

  uint64_t gate_feedbacks = 0;
  for (SymmetricHashJoin* shard : pj.value().shards) {
    gate_feedbacks += shard->gate_feedbacks();
  }
  ASSERT_GT(gate_feedbacks, 0u);
  // Every gate claim is key-pinned and was sent by the key's owner:
  // all of them relay upstream through the right exchange with no
  // coalescing residue.
  EXPECT_EQ(pj.value().right_exchange->owner_relays(), gate_feedbacks);
  EXPECT_EQ(pj.value().right_exchange->pending_feedback(), 0u);
  EXPECT_FALSE(pj.value().right_exchange->input_guards().empty());
}

}  // namespace
}  // namespace nstream
