// Randomized multi-plan equivalence stress (ISSUE satellite 1): N
// generated plans — filter chains, windowed symmetric joins, windowed
// LEFT OUTER joins, and joins with sink-driven feedback purges — each
// run under the pooled scheduler at pool sizes {1, 2, 4, hw} and under
// the seeded manual harness with wake deferral, always compared
// against a fresh SyncExecutor run of the identically-seeded plan.
// Output multisets must match exactly. Every assertion carries the
// (kind, plan seed, pool / harness seed) triple so a failure
// reproduces from its printed seed.
//
// The feedback plans are designed so purges CANNOT change the output:
// left keys span 0..95 but right keys only 0..47, and the sink's
// feedback addresses keys >= 48 — state that can never join. The purge
// path (sink → join purge → upstream guards) is fully exercised while
// the answer stays executor-independent.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/scheduler.h"
#include "exec/sync_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "testing/sched_harness.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::FB;
using testing_util::P;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;

enum PlanKind {
  kFilterChain = 0,
  kWindowJoin,
  kOuterWindowJoin,
  kFeedbackJoin,
  kNumPlanKinds,
};

const char* PlanKindName(int kind) {
  switch (kind) {
    case kFilterChain: return "filter-chain";
    case kWindowJoin: return "window-join";
    case kOuterWindowJoin: return "outer-window-join";
    case kFeedbackJoin: return "feedback-join";
    default: return "?";
  }
}

/// One generated plan instance. Plans are single-shot, so every run
/// (reference or subject) builds a fresh one from the same seed.
struct PlanKit {
  QueryPlan plan;
  CollectorSink* sink = nullptr;
};

SchemaPtr SideSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kInt64}});
}

std::vector<TimedElement> SideElements(int n, int64_t key_lo,
                                       int64_t key_hi, int64_t tag,
                                       Rng* rng) {
  std::vector<TimedElement> out;
  for (int i = 0; i < n; ++i) {
    int64_t k = rng->NextInt(key_lo, key_hi);
    out.push_back(TimedElement::OfTuple(
        i, TupleBuilder().I64(k).Ts(i).I64(k * 1000 + tag).Build()));
  }
  return out;
}

std::unique_ptr<PlanKit> BuildPlan(int kind, uint64_t seed) {
  auto kit = std::make_unique<PlanKit>();
  Rng rng(seed * 2654435761u + static_cast<uint64_t>(kind) + 1);

  if (kind == kFilterChain) {
    SchemaPtr schema = Schema::Make(
        {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
    std::vector<Tuple> tuples;
    const int n = 200 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < n; ++i) {
      tuples.push_back(TupleBuilder()
                           .I64(rng.NextInt(0, 19))
                           .I64(rng.NextInt(0, 999))
                           .Build());
    }
    auto* src = kit->plan.AddOp(std::make_unique<VectorSource>(
        "source", schema, AtMillis(std::move(tuples))));
    auto* s1 = kit->plan.AddOp(Select::FromPattern(
        "sel_v",
        P("[*,>=" + std::to_string(rng.NextInt(100, 500)) + "]")));
    auto* s2 = kit->plan.AddOp(Select::FromPattern(
        "sel_k",
        P("[<=" + std::to_string(rng.NextInt(8, 15)) + ",*]")));
    kit->sink = kit->plan.AddOp(std::make_unique<CollectorSink>("sink"));
    EXPECT_TRUE(kit->plan.Connect(*src, *s1).ok());
    EXPECT_TRUE(kit->plan.Connect(*s1, *s2).ok());
    EXPECT_TRUE(kit->plan.Connect(*s2, *kit->sink).ok());
    return kit;
  }

  // The three join shapes share the two-source skeleton.
  const int n = 250 + static_cast<int>(rng.NextBounded(150));
  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  std::vector<TimedElement> left, right;
  CollectorSink::FeedbackDriver driver = nullptr;

  if (kind == kWindowJoin || kind == kOuterWindowJoin) {
    jo.window_join = true;
    jo.left_ts = 1;
    jo.right_ts = 1;
    jo.window = WindowSpec{/*range_ms=*/64, /*slide_ms=*/64};
    jo.left_outer = (kind == kOuterWindowJoin);
    // Outer: right keys cover only half the left range, so unmatched
    // left tuples (null-padded) are part of the expected answer.
    left = SideElements(n, 0, 31, /*tag=*/1, &rng);
    right = SideElements(n, 0, jo.left_outer ? 15 : 31, /*tag=*/2, &rng);
  } else {  // kFeedbackJoin
    left = SideElements(n, 0, 95, /*tag=*/1, &rng);
    right = SideElements(n, 0, 47, /*tag=*/2, &rng);
    // Once, from the first delivered result: declare keys >= 48 dead.
    // Those keys never join (the right side never produces them), so
    // the purge/guard cascade runs without changing the answer.
    auto sent = std::make_shared<bool>(false);
    driver = [sent](const Tuple&,
                    TimeMs) -> std::vector<FeedbackPunctuation> {
      if (*sent) return {};
      *sent = true;
      return {FB("~[>=48,*,*,*,*]")};
    };
  }

  auto* lsrc = kit->plan.AddOp(std::make_unique<VectorSource>(
      "L", SideSchema(), std::move(left)));
  auto* rsrc = kit->plan.AddOp(std::make_unique<VectorSource>(
      "R", SideSchema(), std::move(right)));
  auto* join = kit->plan.AddOp(
      std::make_unique<SymmetricHashJoin>("join", std::move(jo)));
  kit->sink = kit->plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{}, std::move(driver)));
  EXPECT_TRUE(kit->plan.Connect(*lsrc, 0, *join, 0).ok());
  EXPECT_TRUE(kit->plan.Connect(*rsrc, 0, *join, 1).ok());
  EXPECT_TRUE(kit->plan.Connect(*join, *kit->sink).ok());
  return kit;
}

std::multiset<std::string> Rows(const CollectorSink* sink) {
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

std::multiset<std::string> SyncReference(int kind, uint64_t seed) {
  std::unique_ptr<PlanKit> kit = BuildPlan(kind, seed);
  SyncExecutor exec;
  Status st = exec.Run(&kit->plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Rows(kit->sink);
}

std::vector<int> PoolSizes() {
  std::set<int> sizes = {1, 2, 4};
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) sizes.insert(static_cast<int>(hw));
  return std::vector<int>(sizes.begin(), sizes.end());
}

TEST(SchedEquivalence, AllPlanKindsAllPoolSizesMatchSync) {
  const std::vector<int> pools = PoolSizes();
  for (int kind = 0; kind < kNumPlanKinds; ++kind) {
    for (uint64_t seed : {11ULL, 12ULL, 13ULL}) {
      SCOPED_TRACE(std::string("plan=") + PlanKindName(kind) +
                   " seed=" + std::to_string(seed));
      const std::multiset<std::string> expect = SyncReference(kind, seed);
      ASSERT_FALSE(expect.empty());
      for (int pool : pools) {
        SCOPED_TRACE("pool=" + std::to_string(pool));
        std::unique_ptr<PlanKit> kit = BuildPlan(kind, seed);
        PooledExecutorOptions opts;
        opts.pool_size = pool;
        PooledExecutor exec(opts);
        Status st = exec.Run(&kit->plan);
        ASSERT_TRUE(st.ok()) << st.ToString();
        EXPECT_EQ(expect, Rows(kit->sink));
        EXPECT_EQ(exec.scheduler()->stats().affinity_violations, 0u);
      }
    }
  }
}

TEST(SchedEquivalence, MutexDequeTransportMatchesToo) {
  // use_lockfree_queues=false swaps every edge to the unbounded mutex
  // deque — the A/B hedge must be answer-identical as well.
  for (int kind = 0; kind < kNumPlanKinds; ++kind) {
    SCOPED_TRACE(std::string("plan=") + PlanKindName(kind));
    const uint64_t seed = 21;
    const std::multiset<std::string> expect = SyncReference(kind, seed);
    std::unique_ptr<PlanKit> kit = BuildPlan(kind, seed);
    PooledExecutorOptions opts;
    opts.pool_size = 2;
    opts.use_lockfree_queues = false;
    PooledExecutor exec(opts);
    ASSERT_TRUE(exec.Run(&kit->plan).ok());
    EXPECT_EQ(expect, Rows(kit->sink));
  }
}

TEST(SchedEquivalence, WakeStormCannotChangeAnswers) {
  for (int kind : {kWindowJoin, kFeedbackJoin}) {
    SCOPED_TRACE(std::string("plan=") + PlanKindName(kind));
    const uint64_t seed = 31;
    const std::multiset<std::string> expect = SyncReference(kind, seed);
    std::unique_ptr<PlanKit> kit = BuildPlan(kind, seed);
    SchedulerOptions sopts;
    sopts.num_workers = 2;
    Scheduler sched(sopts);
    Result<QueryId> id = sched.Submit(&kit->plan);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    std::atomic<bool> done{false};
    std::thread storm([&] {
      while (!done.load(std::memory_order_relaxed)) {
        sched.WakeAll();
        std::this_thread::yield();
      }
    });
    Status st = sched.Wait(id.value());
    done.store(true, std::memory_order_relaxed);
    storm.join();
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(expect, Rows(kit->sink));
    EXPECT_GT(sched.stats().wakes_ignored +
                  sched.stats().wakes_coalesced,
              0u)
        << "storm never overlapped the run; test lost its teeth";
  }
}

TEST(SchedEquivalence, ManualHarnessWithWakeDeferralMatchesSync) {
  // The harness explores wake reorderings (30% of wakes deferred and
  // re-injected at random later points). Every explored interleaving
  // must still produce the sync answer; failures print the harness
  // seed for exact replay.
  for (int kind = 0; kind < kNumPlanKinds; ++kind) {
    const uint64_t plan_seed = 41;
    const std::multiset<std::string> expect =
        SyncReference(kind, plan_seed);
    for (uint64_t hseed : {1ULL, 2ULL, 3ULL}) {
      SCOPED_TRACE(std::string("plan=") + PlanKindName(kind) +
                   " harness_seed=" + std::to_string(hseed));
      std::unique_ptr<PlanKit> kit = BuildPlan(kind, plan_seed);
      SchedHarnessOptions hopts;
      hopts.seed = hseed;
      hopts.wake_defer_prob = 0.3;
      SchedHarness harness(hopts);
      Status st = harness.Run(&kit->plan);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(expect, Rows(kit->sink));
    }
  }
}

}  // namespace
}  // namespace nstream
