// Scheduler robustness: the stall watchdog (Wait deadline → state
// dump instead of an eternal hang), error isolation (a poisoned plan
// on a shared pool kills only its own tasks), and checkpoint aborts
// when a query fails mid-alignment.

#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/sync_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "testing/sched_harness.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::LinearPlan;
using testing_util::P;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;

SchemaPtr VSchema() {
  return Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

std::vector<TimedElement> VWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(TupleBuilder()
                         .I64(rng.NextInt(0, 9))
                         .I64(rng.NextInt(0, 999))
                         .Build());
  }
  return AtMillis(std::move(tuples));
}

std::multiset<std::string> Collected(const CollectorSink* sink) {
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

/// Consumes everything — including EOS — and forwards nothing. The
/// downstream never finishes: a deliberately wedged plan.
class BlackHole final : public Operator {
 public:
  BlackHole() : Operator("blackhole", 1, 1) {}
  Status ProcessTuple(int, const Tuple&) override {
    return Status::OK();
  }
  Status ProcessPage(int, Page&&, TimeMs*) override {
    return Status::OK();  // swallow tuples, punctuation, AND EOS
  }
};

class FailingOp final : public Operator {
 public:
  explicit FailingOp(int fail_after)
      : Operator("failer", 1, 1), fail_after_(fail_after) {}
  Status ProcessTuple(int, const Tuple& t) override {
    if (++seen_ > fail_after_) {
      return Status::Internal("failer: injected fault");
    }
    Emit(0, t);
    return Status::OK();
  }

 private:
  int fail_after_;
  int seen_ = 0;
};

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

TEST(StallWatchdog, WedgedPlanReportsInsteadOfHangingForever) {
  LinearPlan lp(VSchema(), VWorkload(50, 3));
  lp.Add(std::make_unique<BlackHole>());
  lp.Finish();
  Scheduler sched(SchedulerOptions{});
  Result<QueryId> id = sched.Submit(lp.plan());
  ASSERT_TRUE(id.ok());

  Status st = sched.Wait(id.value(), /*timeout_ms=*/300);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The report names the wedged operator, its state, and the queue
  // depths — the data needed to diagnose the hang.
  EXPECT_NE(st.message().find("still running"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("blackhole"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("WAITING"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("edge"), std::string::npos)
      << st.ToString();

  // The report is also available on demand.
  std::string report = sched.StallReport();
  EXPECT_NE(report.find("query"), std::string::npos);
  EXPECT_NE(report.find("sink"), std::string::npos);
}

TEST(StallWatchdog, HealthyPlanFinishesWellWithinTheDeadline) {
  LinearPlan lp(VSchema(), VWorkload(300, 5));
  lp.Add(Select::FromPattern("sel", P("[*,>=100]")));
  CollectorSink* sink = lp.Finish();
  Scheduler sched(SchedulerOptions{});
  Result<QueryId> id = sched.Submit(lp.plan());
  ASSERT_TRUE(id.ok());
  Status st = sched.Wait(id.value(), /*timeout_ms=*/30'000);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(sink->consumed(), 0u);
}

TEST(StallWatchdog, ManualHarnessStallCarriesTheReport) {
  LinearPlan lp(VSchema(), VWorkload(50, 7));
  lp.Add(std::make_unique<BlackHole>());
  lp.Finish();
  SchedHarnessOptions hopts;
  hopts.seed = 99;
  SchedHarness h(hopts);
  ASSERT_TRUE(h.Submit(lp.plan()).ok());
  Status st = h.Drive();
  ASSERT_FALSE(st.ok());
  // Seed for replay + the scheduler's task dump, in one message.
  EXPECT_NE(st.message().find("seed=99"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("blackhole"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// Error isolation across queries sharing one pool
// ---------------------------------------------------------------------------

TEST(ErrorIsolation, PoisonedPlanDoesNotStallOrCorruptSibling) {
  Scheduler sched(SchedulerOptions{});

  LinearPlan healthy(VSchema(), VWorkload(800, 11));
  healthy.Add(Select::FromPattern("sel", P("[*,>=300]")));
  CollectorSink* healthy_sink = healthy.Finish();

  LinearPlan poisoned(VSchema(), VWorkload(800, 12));
  poisoned.Add(std::make_unique<FailingOp>(/*fail_after=*/25));
  poisoned.Finish();

  Result<QueryId> hid = sched.Submit(healthy.plan());
  Result<QueryId> pid = sched.Submit(poisoned.plan());
  ASSERT_TRUE(hid.ok());
  ASSERT_TRUE(pid.ok());

  Status pst = sched.Wait(pid.value());
  ASSERT_FALSE(pst.ok());
  EXPECT_NE(pst.message().find("injected fault"), std::string::npos);

  // The sibling finishes (bounded wait: a stall here is the
  // regression) and produces exactly the reference output.
  Status hst = sched.Wait(hid.value(), /*timeout_ms=*/60'000);
  ASSERT_TRUE(hst.ok()) << hst.ToString();
  LinearPlan ref(VSchema(), VWorkload(800, 11));
  ref.Add(Select::FromPattern("sel", P("[*,>=300]")));
  CollectorSink* ref_sink = ref.Finish();
  ASSERT_TRUE(ref.RunSync().ok());
  EXPECT_EQ(Collected(ref_sink), Collected(healthy_sink));

  // Only the poisoned query's tasks died early; all tasks of both
  // queries are killed by now (6 total: 3 per linear plan).
  EXPECT_TRUE(sched.AllDone());
  EXPECT_EQ(sched.stats().tasks_killed, 6u);
}

TEST(ErrorIsolation, QueryFailureMidCheckpointAbortsTheCheckpoint) {
  // Deterministic manual-mode version: the failer must drain its
  // pre-barrier pages to align, and faults while doing so — the
  // checkpoint MUST abort with the query's error, and the healthy
  // sibling on the same scheduler must finish untouched.
  SchedHarnessOptions hopts;
  hopts.seed = 13;
  hopts.sched.queue.page_size = 4;  // pre-barrier pages exist early
  SchedHarness h(hopts);
  Scheduler* sched = h.scheduler();

  LinearPlan healthy(VSchema(), VWorkload(200, 21));
  healthy.Add(Select::FromPattern("sel", P("[*,>=500]")));
  CollectorSink* healthy_sink = healthy.Finish();

  LinearPlan poisoned(VSchema(), VWorkload(200, 22));
  poisoned.Add(std::make_unique<FailingOp>(/*fail_after=*/5));
  poisoned.Finish();

  Result<QueryId> hid = h.Submit(healthy.plan());
  Result<QueryId> pid = h.Submit(poisoned.plan());
  ASSERT_TRUE(hid.ok());
  ASSERT_TRUE(pid.ok());

  // Let the poisoned source stage pages, then checkpoint it: the
  // barrier will sit BEHIND the poison pill in the failer's input
  // queue, so alignment must trip the fault. Stopping at the FIRST
  // slice that produced source output guarantees the failer has not
  // consumed anything yet.
  while (poisoned.source()->position() == 0) {
    Result<bool> stepped = h.DriveFor(1);
    ASSERT_TRUE(stepped.ok());
    ASSERT_FALSE(stepped.value());
  }
  ASSERT_TRUE(
      sched
          ->StartCheckpoint(pid.value(),
                            CheckpointOptions{
                                ::testing::TempDir() + "/abort.nsp"})
          .ok());

  // Drive everything to completion; the poisoned query fails along
  // the way and takes its pending checkpoint down with it.
  ASSERT_TRUE(h.Drive().ok());
  std::optional<Status> ckpt = sched->CheckpointResult(pid.value());
  ASSERT_TRUE(ckpt.has_value()) << "checkpoint result never surfaced";
  ASSERT_FALSE(ckpt->ok());
  EXPECT_NE(ckpt->ToString().find("injected fault"), std::string::npos)
      << ckpt->ToString();

  Status pst = h.Wait(pid.value());
  ASSERT_FALSE(pst.ok());
  Status hst = h.Wait(hid.value());
  ASSERT_TRUE(hst.ok()) << hst.ToString();

  LinearPlan ref(VSchema(), VWorkload(200, 21));
  ref.Add(Select::FromPattern("sel", P("[*,>=500]")));
  CollectorSink* ref_sink = ref.Finish();
  ASSERT_TRUE(ref.RunSync().ok());
  EXPECT_EQ(Collected(ref_sink), Collected(healthy_sink));
}

TEST(ErrorIsolation, CheckpointOfHealthyQuerySurvivesSiblingFailure) {
  // The inverse: the FAILING query is the bystander; the healthy
  // query's checkpoint must complete normally.
  const std::string path = ::testing::TempDir() + "/sibling.nsp";
  SchedHarnessOptions hopts;
  hopts.seed = 29;
  SchedHarness h(hopts);

  LinearPlan healthy(VSchema(), VWorkload(400, 31));
  healthy.Add(Select::FromPattern("sel", P("[*,>=100]")));
  healthy.Finish();

  LinearPlan poisoned(VSchema(), VWorkload(400, 32));
  poisoned.Add(std::make_unique<FailingOp>(/*fail_after=*/3));
  poisoned.Finish();

  Result<QueryId> hid = h.Submit(healthy.plan());
  Result<QueryId> pid = h.Submit(poisoned.plan());
  ASSERT_TRUE(hid.ok());
  ASSERT_TRUE(pid.ok());

  ASSERT_TRUE(h.DriveFor(10).ok());
  ASSERT_TRUE(h.scheduler()
                  ->StartCheckpoint(hid.value(), CheckpointOptions{path})
                  .ok());
  ASSERT_TRUE(h.Drive().ok());
  std::optional<Status> ckpt =
      h.scheduler()->CheckpointResult(hid.value());
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_TRUE(ckpt->ok()) << ckpt->ToString();
  EXPECT_FALSE(h.Wait(pid.value()).ok());
  EXPECT_TRUE(h.Wait(hid.value()).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nstream
