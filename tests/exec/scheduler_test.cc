// Pooled scheduler coverage: pool-mode correctness vs SyncExecutor,
// task state machine behaviour, wake storms, failure propagation,
// worker affinity, the DataQueue consumer-affinity tripwire, and the
// deterministic manual-mode harness (seed reproducibility + virtual
// time).

#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/sync_executor.h"
#include "ops/exchange.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "testing/sched_harness.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::LinearPlan;
using testing_util::P;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;

SchemaPtr VSchema() {
  return Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

std::vector<TimedElement> VWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(TupleBuilder()
                         .I64(rng.NextInt(0, 9))
                         .I64(rng.NextInt(0, 999))
                         .Build());
  }
  return AtMillis(std::move(tuples));
}

std::multiset<std::string> Collected(const CollectorSink* sink) {
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

std::multiset<std::string> RunSelectPipeline(int pool_size) {
  LinearPlan lp(VSchema(), VWorkload(700, 11));
  lp.Add(Select::FromPattern("sel", P("[*,>=300]")));
  CollectorSink* sink = lp.Finish();
  Status st;
  if (pool_size <= 0) {
    st = lp.RunSync();
  } else {
    PooledExecutorOptions opts;
    opts.pool_size = pool_size;
    st = lp.RunPooled(opts);
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collected(sink);
}

TEST(PooledExecutor, SelectPipelineMatchesSyncAtAllPoolSizes) {
  std::multiset<std::string> expect = RunSelectPipeline(0);
  ASSERT_FALSE(expect.empty());
  for (int pool : {1, 2, 4}) {
    EXPECT_EQ(expect, RunSelectPipeline(pool)) << "pool=" << pool;
  }
}

TEST(PooledExecutor, MultiQuerySubmitWaitIsolates) {
  Scheduler sched(SchedulerOptions{});
  std::vector<std::unique_ptr<LinearPlan>> plans;
  std::vector<QueryId> ids;
  const int64_t bounds[3] = {100, 500, 900};
  for (int q = 0; q < 3; ++q) {
    plans.push_back(std::make_unique<LinearPlan>(
        VSchema(), VWorkload(400, 7 + static_cast<uint64_t>(q))));
    plans.back()->Add(Select::FromPattern(
        "sel", P("[*,>=" + std::to_string(bounds[q]) + "]")));
    plans.back()->Finish();
    Result<QueryId> id = sched.Submit(plans.back()->plan());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  for (int q = 0; q < 3; ++q) {
    EXPECT_TRUE(sched.Wait(ids[static_cast<size_t>(q)]).ok());
    // Against a fresh sync run of the identical plan.
    LinearPlan ref(VSchema(), VWorkload(400, 7 + static_cast<uint64_t>(q)));
    ref.Add(Select::FromPattern(
        "sel", P("[*,>=" + std::to_string(bounds[q]) + "]")));
    CollectorSink* ref_sink = ref.Finish();
    ASSERT_TRUE(ref.RunSync().ok());
    EXPECT_EQ(Collected(ref_sink),
              Collected(plans[static_cast<size_t>(q)]->sink()))
        << "query " << q;
  }
  EXPECT_TRUE(sched.AllDone());
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.tasks_created, 9u);  // 3 plans x (source, sel, sink)
  EXPECT_EQ(stats.tasks_killed, 9u);
  EXPECT_GT(stats.slices, 0u);
  EXPECT_EQ(stats.affinity_violations, 0u);
}

TEST(PooledExecutor, WakeStormDuringRunIsHarmless) {
  Scheduler sched(SchedulerOptions{});
  LinearPlan lp(VSchema(), VWorkload(2000, 23));
  lp.Add(Select::FromPattern("sel", P("[*,>=100]")));
  CollectorSink* sink = lp.Finish();
  Result<QueryId> id = sched.Submit(lp.plan());
  ASSERT_TRUE(id.ok());
  std::atomic<bool> done{false};
  std::thread storm([&] {
    while (!done.load(std::memory_order_relaxed)) {
      sched.WakeAll();  // spurious wakes must be idempotent
      std::this_thread::yield();
    }
  });
  Status st = sched.Wait(id.value());
  done.store(true, std::memory_order_relaxed);
  storm.join();
  ASSERT_TRUE(st.ok()) << st.ToString();

  LinearPlan ref(VSchema(), VWorkload(2000, 23));
  ref.Add(Select::FromPattern("sel", P("[*,>=100]")));
  CollectorSink* ref_sink = ref.Finish();
  ASSERT_TRUE(ref.RunSync().ok());
  EXPECT_EQ(Collected(ref_sink), Collected(sink));
}

class FailingOp final : public Operator {
 public:
  explicit FailingOp(int fail_after)
      : Operator("failer", 1, 1), fail_after_(fail_after) {}
  Status ProcessTuple(int, const Tuple& t) override {
    if (++seen_ > fail_after_) {
      return Status::Internal("failer: injected fault");
    }
    Emit(0, t);
    return Status::OK();
  }

 private:
  int fail_after_;
  int seen_ = 0;
};

TEST(PooledExecutor, OperatorErrorPropagatesThroughWait) {
  LinearPlan lp(VSchema(), VWorkload(500, 3));
  lp.Add(std::make_unique<FailingOp>(/*fail_after=*/50));
  lp.Finish();
  PooledExecutorOptions opts;
  opts.pool_size = 2;
  Status st = lp.RunPooled(opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("injected fault"), std::string::npos);
}

TEST(PooledExecutor, ShardAffinityPinsWorkersAndTripwireStaysQuiet) {
  QueryPlan plan;
  Rng rng(5);
  std::vector<TimedElement> left, right;
  for (int i = 0; i < 800; ++i) {
    int64_t lk = rng.NextInt(0, 96);
    int64_t rk = rng.NextInt(0, 96);
    left.push_back(TimedElement::OfTuple(
        i, TupleBuilder().I64(lk).Ts(i).I64(lk * 10 + 1).Build()));
    right.push_back(TimedElement::OfTuple(
        i, TupleBuilder().I64(rk).Ts(i).I64(rk * 10 + 2).Build()));
  }
  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                   {"ts", ValueType::kTimestamp},
                                   {"v", ValueType::kInt64}});
  auto* lsrc = plan.AddOp(
      std::make_unique<VectorSource>("L", schema, std::move(left)));
  auto* rsrc = plan.AddOp(
      std::make_unique<VectorSource>("R", schema, std::move(right)));
  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  Result<PartitionedJoinPlan> pj =
      MakePartitionedJoin(&plan, "pjoin", jo, /*num_shards=*/4);
  ASSERT_TRUE(pj.ok()) << pj.status().ToString();
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
  ASSERT_TRUE(plan.Connect(*lsrc, 0, *pj.value().left_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(*rsrc, 0, *pj.value().right_exchange, 0).ok());
  ASSERT_TRUE(
      plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());

  SchedulerOptions sopts;
  sopts.num_workers = 2;
  Scheduler sched(sopts);
  Result<QueryId> id = sched.Submit(&plan);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(sched.Wait(id.value()).ok());
  ASSERT_GT(sink->consumed(), 0u);

  // Every shard task must only ever have run on its pinned worker
  // (affinity key mod pool size).
  for (size_t s = 0; s < pj.value().shards.size(); ++s) {
    SymmetricHashJoin* shard = pj.value().shards[s];
    ASSERT_EQ(shard->scheduler_affinity(), static_cast<int>(s));
    uint32_t mask = sched.task_worker_mask(id.value(), shard->id());
    ASSERT_NE(mask, 0u) << "shard " << s << " never ran";
    uint32_t allowed = 1u << (s % 2);
    EXPECT_EQ(mask & ~allowed, 0u)
        << "shard " << s << " ran on foreign workers, mask=" << mask;
  }
  EXPECT_EQ(sched.stats().affinity_violations, 0u);
}

TEST(PooledExecutor, TaskStateIntrospectionAndNames) {
  EXPECT_STREQ(TaskStateName(TaskState::kQueued), "QUEUED");
  EXPECT_STREQ(TaskStateName(TaskState::kRunning), "RUNNING");
  EXPECT_STREQ(TaskStateName(TaskState::kWaiting), "WAITING");
  EXPECT_STREQ(TaskStateName(TaskState::kKilled), "KILLED");

  Scheduler sched(SchedulerOptions{});
  LinearPlan lp(VSchema(), VWorkload(50, 1));
  lp.Finish();
  Result<QueryId> id = sched.Submit(lp.plan());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sched.Wait(id.value()).ok());
  for (int64_t op = 0; op < lp.plan()->num_operators(); ++op) {
    EXPECT_EQ(sched.task_state(id.value(), op), TaskState::kKilled);
  }
}

// ---------------------------------------------------------------------------
// Consumer-affinity tripwire
// ---------------------------------------------------------------------------

/// Scoped non-fatal mode + thread-token reset so a failing test can't
/// poison later ones.
struct TripwireGuard {
  TripwireGuard() { DataQueue::SetAffinityViolationsFatal(false); }
  ~TripwireGuard() {
    DataQueue::SetAffinityViolationsFatal(true);
    DataQueue::SetThreadConsumerToken(0);
  }
};

TEST(AffinityTripwire, ForeignConsumerIsCaughtAndCounted) {
  TripwireGuard guard;
  DataQueueOptions qopts;
  qopts.page_size = 2;
  qopts.transport = DataQueueTransport::kSpscChain;
  DataQueue q(qopts);
  q.set_consumer_affinity_token(42);
  for (int i = 0; i < 4; ++i) {
    q.PushTuple(TupleBuilder().I64(i).Build());
  }

  // Pinned consumer: clean pops.
  DataQueue::SetThreadConsumerToken(42);
  EXPECT_TRUE(q.TryPopPage().has_value());
  EXPECT_EQ(q.affinity_violations(), 0u);

  // Foreign task: the pop still works (the wire observes, it does not
  // block) but the violation is counted.
  DataQueue::SetThreadConsumerToken(7);
  EXPECT_TRUE(q.TryPopPage().has_value());
  EXPECT_EQ(q.affinity_violations(), 1u);
  q.PurgeMatching(P("[*]"));
  EXPECT_EQ(q.affinity_violations(), 2u);

  // Untagged thread (token 0) is also foreign once the queue is pinned.
  DataQueue::SetThreadConsumerToken(0);
  q.TryPopPage();
  EXPECT_EQ(q.affinity_violations(), 3u);
}

TEST(AffinityTripwire, UnpinnedQueueNeverTrips) {
  TripwireGuard guard;
  DataQueueOptions qopts;
  qopts.transport = DataQueueTransport::kSpscChain;
  DataQueue q(qopts);
  q.PushTuple(TupleBuilder().I64(1).Build());
  q.Flush();
  DataQueue::SetThreadConsumerToken(99);  // any thread may drain
  EXPECT_TRUE(q.TryPopPage().has_value());
  EXPECT_EQ(q.affinity_violations(), 0u);
}

// ---------------------------------------------------------------------------
// Manual mode + harness
// ---------------------------------------------------------------------------

TEST(ManualMode, WaitBeforeDoneIsFailedPrecondition) {
  SchedulerOptions sopts;
  sopts.manual = true;
  Scheduler sched(sopts);
  LinearPlan lp(VSchema(), VWorkload(10, 2));
  lp.Finish();
  Result<QueryId> id = sched.Submit(lp.plan());
  ASSERT_TRUE(id.ok());
  Status st = sched.Wait(id.value());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ManualMode, StepReadyAtRejectsStaleIndex) {
  SchedulerOptions sopts;
  sopts.manual = true;
  Scheduler sched(sopts);
  EXPECT_EQ(sched.StepReadyAt(0).code(), StatusCode::kOutOfRange);
}

/// Two-source partitioned-join plan: enough concurrency for pick-order
/// to matter, so determinism is a real claim.
struct JoinFixture {
  QueryPlan plan;
  CollectorSink* sink = nullptr;

  explicit JoinFixture(uint64_t seed) {
    Rng rng(seed);
    SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                     {"ts", ValueType::kTimestamp},
                                     {"v", ValueType::kInt64}});
    std::vector<TimedElement> left, right;
    for (int i = 0; i < 600; ++i) {
      int64_t lk = rng.NextInt(0, 48);
      int64_t rk = rng.NextInt(0, 48);
      left.push_back(TimedElement::OfTuple(
          i, TupleBuilder().I64(lk).Ts(i).I64(lk + 100).Build()));
      right.push_back(TimedElement::OfTuple(
          i, TupleBuilder().I64(rk).Ts(i).I64(rk + 200).Build()));
    }
    auto* lsrc = plan.AddOp(
        std::make_unique<VectorSource>("L", schema, std::move(left)));
    auto* rsrc = plan.AddOp(
        std::make_unique<VectorSource>("R", schema, std::move(right)));
    JoinOptions jo;
    jo.left_keys = {0};
    jo.right_keys = {0};
    Result<PartitionedJoinPlan> pj =
        MakePartitionedJoin(&plan, "pjoin", jo, /*num_shards=*/2);
    EXPECT_TRUE(pj.ok());
    sink = plan.AddOp(std::make_unique<CollectorSink>("sink"));
    EXPECT_TRUE(plan.Connect(*lsrc, 0, *pj.value().left_exchange, 0).ok());
    EXPECT_TRUE(
        plan.Connect(*rsrc, 0, *pj.value().right_exchange, 0).ok());
    EXPECT_TRUE(
        plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());
  }
};

std::vector<std::string> HarnessJoinRun(uint64_t harness_seed,
                                        double defer_prob,
                                        uint64_t* steps_out) {
  JoinFixture fx(/*seed=*/31);
  SchedHarnessOptions hopts;
  hopts.seed = harness_seed;
  hopts.wake_defer_prob = defer_prob;
  SchedHarness harness(hopts);
  Status st = harness.Run(&fx.plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (steps_out != nullptr) *steps_out = harness.steps();
  std::vector<std::string> rows;
  for (const CollectedTuple& c : fx.sink->collected()) {
    rows.push_back(c.tuple.ToString());
  }
  return rows;
}

TEST(SchedHarnessTest, SameSeedReproducesExactInterleaving) {
  uint64_t steps_a = 0, steps_b = 0;
  std::vector<std::string> a = HarnessJoinRun(1234, 0.3, &steps_a);
  std::vector<std::string> b = HarnessJoinRun(1234, 0.3, &steps_b);
  ASSERT_FALSE(a.empty());
  // EXACT sequence equality (not just multiset): same seed, same
  // pick order, same wake deferrals, same element order end to end.
  EXPECT_EQ(a, b);
  EXPECT_EQ(steps_a, steps_b);
}

TEST(SchedHarnessTest, ResultsMatchSyncAcrossSeedsAndDeferral) {
  JoinFixture ref(/*seed=*/31);
  SyncExecutor sync;
  ASSERT_TRUE(sync.Run(&ref.plan).ok());
  std::multiset<std::string> expect;
  for (const CollectedTuple& c : ref.sink->collected()) {
    expect.insert(c.tuple.ToString());
  }
  ASSERT_FALSE(expect.empty());
  for (uint64_t seed : {7ULL, 99ULL, 4242ULL}) {
    std::vector<std::string> rows =
        HarnessJoinRun(seed, /*defer_prob=*/0.4, nullptr);
    EXPECT_EQ(expect, std::multiset<std::string>(rows.begin(),
                                                 rows.end()))
        << "seed=" << seed;
  }
}

TEST(SchedHarnessTest, VirtualTimePacingAndChargeAdvanceTheClock) {
  // 10 arrivals 5ms apart; the sink charges 2ms per tuple. Under the
  // harness this all happens in VIRTUAL time: the drive loop advances
  // the clock to each due arrival, each charge busy-parks the sink
  // for 2ms (the drive loop then advances to the park's due time),
  // and no wall-clock sleeping happens anywhere.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.push_back(TupleBuilder().I64(i).I64(i).Build());
  }
  LinearPlan lp(VSchema(), AtMillis(std::move(tuples), /*start=*/0,
                                    /*step=*/5));
  CollectorSinkOptions sopt;
  sopt.charge_ms_per_tuple = 2.0;
  CollectorSink* sink = lp.Finish(sopt);

  SchedHarnessOptions hopts;
  hopts.seed = 5;
  hopts.sched.pace_sources = true;
  hopts.sched.queue.page_size = 1;  // deliver per-arrival
  SchedHarness harness(hopts);
  ASSERT_TRUE(harness.Run(lp.plan()).ok());
  ASSERT_EQ(sink->collected().size(), 10u);
  // The last arrival is due at 45ms of virtual time and its charge
  // lands after that, so the clock must end at >= 47ms. (Earlier
  // charges overlap the arrival span, so 47 — not 45 + 20 — is the
  // guaranteed floor.)
  EXPECT_GE(harness.clock()->NowMs(), 47);
  // Arrival pacing is visible in the recorded output times: tuple i
  // cannot be seen before its 5i ms due time.
  for (size_t i = 0; i < sink->collected().size(); ++i) {
    EXPECT_GE(sink->collected()[i].out_ms,
              static_cast<TimeMs>(5 * i))
        << "tuple " << i << " surfaced before its arrival was due";
  }
}

TEST(SchedHarnessTest, StallReportsSeedInMessage) {
  // A plan whose source never finishes would stall the harness; here
  // we fake the simpler variant: drive an empty scheduler with a
  // deferred wake that never releases is impossible, so instead check
  // the seed lands in the step-budget message path by exhausting a
  // tiny budget.
  JoinFixture fx(/*seed=*/31);
  SchedHarnessOptions hopts;
  hopts.seed = 777;
  hopts.max_steps = 3;  // absurdly small: guaranteed overrun
  SchedHarness harness(hopts);
  Status st = harness.Run(&fx.plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("seed=777"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace nstream
