#include <gtest/gtest.h>

#include "exec/query_plan.h"
#include "ops/select.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::AtMillis;
using testing_util::Int64Column;
using testing_util::LinearPlan;
using testing_util::P;

SchemaPtr TwoCol() {
  return Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}});
}

std::vector<TimedElement> SmallStream() {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.push_back(TupleBuilder().I64(i).D(i * 10.0).Build());
  }
  return AtMillis(std::move(tuples));
}

TEST(SyncExecutorTest, PassThroughDeliversEverything) {
  LinearPlan lp(TwoCol(), SmallStream());
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(sink->consumed(), 10u);
  EXPECT_EQ(Int64Column(sink->collected(), 0),
            (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SyncExecutorTest, SelectFilters) {
  LinearPlan lp(TwoCol(), SmallStream());
  lp.Add(Select::FromPattern("sel", P("[>=5,*]")));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSync().ok());
  EXPECT_EQ(sink->consumed(), 5u);
}

TEST(SimExecutorTest, SameResultsAsSync) {
  LinearPlan lp(TwoCol(), SmallStream());
  lp.Add(Select::FromPattern("sel", P("[>=5,*]")));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunSim().ok());
  EXPECT_EQ(sink->consumed(), 5u);
  EXPECT_EQ(Int64Column(sink->collected(), 0),
            (std::vector<int64_t>{5, 6, 7, 8, 9}));
}

TEST(SimExecutorTest, VirtualTimeAdvancesWithCost) {
  LinearPlan lp(TwoCol(), SmallStream());
  CollectorSink* sink = lp.Finish({.charge_ms_per_tuple = 100.0});
  SimExecutorOptions opts;
  ASSERT_TRUE(lp.RunSim(opts).ok());
  // 10 tuples x 100ms sink cost: the run must span at least 1000 ms of
  // virtual time even though tuples arrive 1ms apart.
  EXPECT_GE(lp.sim_end_ms(), 1000.0);
  ASSERT_EQ(sink->collected().size(), 10u);
  // Output times reflect queueing behind the slow sink.
  EXPECT_GE(sink->collected().back().out_ms, 900);
}

TEST(SimExecutorTest, DeterministicAcrossRuns) {
  auto run = [] {
    LinearPlan lp(TwoCol(), SmallStream());
    CollectorSink* sink = lp.Finish({.charge_ms_per_tuple = 3.5});
    EXPECT_TRUE(lp.RunSim().ok());
    std::vector<TimeMs> out;
    for (const auto& c : sink->collected()) out.push_back(c.out_ms);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(ThreadedExecutorTest, PassThroughDeliversEverything) {
  LinearPlan lp(TwoCol(), SmallStream());
  lp.Add(Select::FromPattern("sel", P("[>=2,*]")));
  CollectorSink* sink = lp.Finish();
  ASSERT_TRUE(lp.RunThreaded().ok());
  EXPECT_EQ(sink->consumed(), 8u);
}

TEST(QueryPlanTest, RejectsUnwiredPorts) {
  QueryPlan plan;
  plan.AddOp(std::make_unique<VectorSource>("src", TwoCol(),
                                            SmallStream()));
  EXPECT_FALSE(plan.Finalize().ok());  // source output unwired
}

TEST(QueryPlanTest, RejectsDoubleWiring) {
  QueryPlan plan;
  auto* src = plan.AddOp(
      std::make_unique<VectorSource>("src", TwoCol(), SmallStream()));
  auto* s1 = plan.AddOp(std::make_unique<CollectorSink>("s1"));
  auto* s2 = plan.AddOp(std::make_unique<CollectorSink>("s2"));
  ASSERT_TRUE(plan.Connect(*src, *s1).ok());
  EXPECT_EQ(plan.Connect(*src, *s2).code(), StatusCode::kAlreadyExists);
}

TEST(QueryPlanTest, SchemaInferencePropagates) {
  LinearPlan lp(TwoCol(), SmallStream());
  auto* sel = lp.Add(Select::FromPattern("sel", P("[*,*]")));
  lp.Finish();
  ASSERT_TRUE(lp.plan()->Finalize().ok());
  EXPECT_TRUE(sel->output_schema(0)->Equals(*TwoCol()));
  EXPECT_NE(lp.plan()->ToString().find("sel"), std::string::npos);
}

TEST(QueryPlanTest, TopoOrderRespectsEdges) {
  LinearPlan lp(TwoCol(), SmallStream());
  lp.Add(Select::FromPattern("a", P("[*,*]")));
  lp.Add(Select::FromPattern("b", P("[*,*]")));
  lp.Finish();
  ASSERT_TRUE(lp.plan()->Finalize().ok());
  const auto& topo = lp.plan()->topo_order();
  ASSERT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.front(), lp.source()->id());
  EXPECT_EQ(topo.back(), lp.sink()->id());
}

}  // namespace
}  // namespace nstream
