// Snapshot codec + per-operator snapshot→restore coverage: primitive
// and engine-vocabulary round trips, file-envelope corruption
// detection, DataQueue content capture, and byte-exact re-snapshot
// equality for every stateful operator (join incl. forced hash
// collisions and outer-join window state, window aggregate across all
// five kinds incl. tombstones, source offsets). Canonical-form
// contract under test: snapshot(restore(snapshot(x))) == snapshot(x).

#include "recovery/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ops/callback_source.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "stream/data_queue.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::FB;
using testing_util::P;

/// Records everything an operator emits, by kind.
class CollectCtx : public ExecContext {
 public:
  void EmitTuple(int, Tuple t) override {
    tuples.push_back(std::move(t));
  }
  void EmitPunct(int, Punctuation p) override {
    puncts.push_back(std::move(p));
  }
  void EmitEos(int) override { ++eos; }
  void EmitFeedback(int, FeedbackPunctuation) override { ++feedback; }
  void EmitControl(int, ControlMessage) override {}
  TimeMs NowMs() const override { return 0; }
  void ChargeMs(double) override {}

  std::vector<std::string> TupleStrings() const {
    std::vector<std::string> out;
    for (const Tuple& t : tuples) out.push_back(t.ToString());
    return out;
  }

  std::vector<Tuple> tuples;
  std::vector<Punctuation> puncts;
  int eos = 0;
  int feedback = 0;
};

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

// ---------------------------------------------------------------------------
// Codec round trips
// ---------------------------------------------------------------------------

TEST(SnapshotCodec, PrimitiveRoundTrip) {
  SnapshotWriter w;
  w.WriteU8(0xAB);
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x1122334455667788ULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteString("");
  w.WriteString("hello");
  w.WriteString(std::string(1000, 'x'));  // forces heap-backed read

  SnapshotReader r(w.buffer());
  uint8_t u8 = 0;
  bool b1 = false, b2 = true;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s0, s1, s2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadBool(&b1).ok());
  ASSERT_TRUE(r.ReadBool(&b2).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s0).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x1122334455667788ULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s0, "");
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, std::string(1000, 'x'));
  EXPECT_TRUE(r.AtEnd());

  // Truncated payload fails cleanly rather than reading garbage.
  SnapshotReader trunc(std::string_view(w.buffer()).substr(0, 3));
  ASSERT_TRUE(trunc.ReadU8(&u8).ok());
  ASSERT_TRUE(trunc.ReadBool(&b1).ok());
  ASSERT_TRUE(trunc.ReadBool(&b2).ok());
  EXPECT_FALSE(trunc.ReadU32(&u32).ok());
}

TEST(SnapshotCodec, ValueAndTupleRoundTrip) {
  // All value kinds, including the three string storage classes:
  // empty, short (inline), long (heap/arena).
  Tuple t = TupleBuilder()
                .Null()
                .B(true)
                .I64(-7)
                .D(2.5)
                .Ts(123456)
                .S("")
                .S("abc")
                .S(std::string(300, 'q'))
                .Build();
  t.set_id(99);
  t.set_arrival_ms(1234);

  SnapshotWriter w;
  w.WriteTuple(t);
  SnapshotReader r(w.buffer());
  Tuple back;
  ASSERT_TRUE(r.ReadTuple(&back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(t, back);
  EXPECT_EQ(back.id(), 99);
  EXPECT_EQ(back.arrival_ms(), 1234);
  EXPECT_EQ(back.value(7).string_value(), std::string(300, 'q'));
}

TEST(SnapshotCodec, PatternPunctuationGuardRoundTrip) {
  SnapshotWriter w;
  w.WritePattern(P("[*,>=50]"));
  w.WritePunctuation(Punctuation(P("[7,<=9,*]")));
  w.WritePunctuation(Punctuation::Barrier(42));
  GuardSet g;
  g.Add(P("[*,>=50]"));
  g.Add(P("[3,*]"));
  w.WriteGuardSet(g);

  SnapshotReader r(w.buffer());
  PunctPattern p;
  Punctuation punct, barrier;
  GuardSet g2;
  ASSERT_TRUE(r.ReadPattern(&p).ok());
  ASSERT_TRUE(r.ReadPunctuation(&punct).ok());
  ASSERT_TRUE(r.ReadPunctuation(&barrier).ok());
  ASSERT_TRUE(r.ReadGuardSet(&g2).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(p, P("[*,>=50]"));
  EXPECT_EQ(punct.pattern(), P("[7,<=9,*]"));
  EXPECT_FALSE(punct.is_barrier());
  EXPECT_TRUE(barrier.is_barrier());
  EXPECT_EQ(barrier.barrier_id(), 42);
  // Restored guards behave like the originals.
  EXPECT_TRUE(g2.Blocks(TupleBuilder().I64(1).I64(80).Build()));
  EXPECT_TRUE(g2.Blocks(TupleBuilder().I64(3).I64(0).Build()));
  EXPECT_FALSE(g2.Blocks(TupleBuilder().I64(1).I64(2).Build()));
}

TEST(SnapshotCodec, SectionSkipIsolatesUnknownBytes) {
  SnapshotWriter inner;
  inner.WriteU64(777);
  SnapshotWriter w;
  w.WriteSection(inner.buffer());
  w.WriteU32(5);

  // A reader that does not care about the section skips it whole.
  SnapshotReader r(w.buffer());
  std::string_view section;
  ASSERT_TRUE(r.ReadSection(&section).ok());
  EXPECT_EQ(section.size(), sizeof(uint64_t));
  uint32_t tail = 0;
  ASSERT_TRUE(r.ReadU32(&tail).ok());
  EXPECT_EQ(tail, 5u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodec, PageElementsRoundTrip) {
  Page page;
  page.AddTuple(TupleBuilder().I64(1).S("one").Build());
  page.AddTuple(TupleBuilder().I64(2).S("two").Build());
  page.Add(StreamElement::OfPunct(Punctuation(P("[<=2,*]"))));
  page.AddTuple(TupleBuilder().I64(3).S(std::string(100, 'z')).Build());

  SnapshotWriter w;
  WritePageElements(&w, page);
  SnapshotReader r(w.buffer());
  Page back;
  ASSERT_TRUE(ReadPageInto(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(back.size(), page.size());
  const std::vector<StreamElement>& a = page.elements();
  const std::vector<StreamElement>& b = back.elements();
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind(), b[i].kind()) << "element " << i;
    if (a[i].is_tuple()) {
      EXPECT_EQ(a[i].tuple(), b[i].tuple()) << "element " << i;
    } else if (a[i].is_punct()) {
      EXPECT_EQ(a[i].punct().pattern(), b[i].punct().pattern());
    }
  }
}

// ---------------------------------------------------------------------------
// File envelope
// ---------------------------------------------------------------------------

TEST(SnapshotFile, RoundTripAndAtomicPublish) {
  const std::string path = TempPath("snap_roundtrip.nsp");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload-bytes-1").ok());
  Result<std::string> r1 = ReadSnapshotFile(path);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value(), "payload-bytes-1");

  // Overwrite publishes atomically; the new payload fully replaces.
  ASSERT_TRUE(WriteSnapshotFile(path, "payload-bytes-22").ok());
  Result<std::string> r2 = ReadSnapshotFile(path);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), "payload-bytes-22");
  std::remove(path.c_str());
}

TEST(SnapshotFile, CorruptionAndTruncationAreDetected) {
  const std::string path = TempPath("snap_corrupt.nsp");
  ASSERT_TRUE(WriteSnapshotFile(path, "some payload to corrupt").ok());

  // Flip one payload byte: CRC must catch it.
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(16 + 3);  // inside the payload, past the 16-byte header
    char c = 0;
    f.seekg(16 + 3);
    f.get(c);
    f.seekp(16 + 3);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  Result<std::string> r = ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("corrupted"), std::string::npos);

  // Truncated file (torn write): also a clean error.
  ASSERT_TRUE(WriteSnapshotFile(path, "another payload").ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  r = ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());

  // Missing file.
  std::remove(path.c_str());
  r = ReadSnapshotFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFile, CrashTwinNeverClobbersThePublishedSnapshot) {
  const std::string path = TempPath("snap_crash.nsp");
  ASSERT_TRUE(WriteSnapshotFile(path, "good snapshot").ok());

  // Crash before rename: tmp written whole, path untouched.
  Status st = WriteSnapshotFileCrash(path, "newer state",
                                     /*truncate_mid_write=*/false);
  ASSERT_TRUE(st.ok()) << st.ToString();
  Result<std::string> r = ReadSnapshotFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "good snapshot");

  // Crash mid-write: tmp is torn AND unreadable as a snapshot; path
  // still names the last complete one.
  ASSERT_TRUE(WriteSnapshotFileCrash(path, "torn state",
                                     /*truncate_mid_write=*/true)
                  .ok());
  EXPECT_FALSE(ReadSnapshotFile(path + ".tmp").ok());
  r = ReadSnapshotFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "good snapshot");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// DataQueue contents
// ---------------------------------------------------------------------------

std::vector<std::string> DrainToStrings(DataQueue* q) {
  std::vector<std::string> out;
  while (std::optional<Page> p = q->TryPopPage()) {
    for (const StreamElement& e : p->elements()) {
      if (e.is_tuple()) {
        out.push_back(e.tuple().ToString());
      } else if (e.is_punct()) {
        out.push_back(e.punct().ToString());
      } else {
        out.push_back("<eos>");
      }
    }
  }
  return out;
}

void QueueContentsRoundTrip(DataQueueTransport transport) {
  DataQueueOptions opts;
  opts.page_size = 3;
  opts.transport = transport;
  DataQueue q(opts);
  for (int i = 0; i < 7; ++i) {
    q.PushTuple(TupleBuilder().I64(i).I64(i * 10).Build());
  }
  q.PushPunctuation(Punctuation(P("[<=6,*]")));
  q.PushTuple(TupleBuilder().I64(7).I64(70).Build());  // stays open

  SnapshotWriter w;
  ASSERT_TRUE(q.SnapshotContents(&w).ok());
  // Snapshot is non-destructive: the source queue still drains fully
  // (the open page needs an explicit flush to pop; the snapshot
  // captured it without one).
  q.Flush();
  std::vector<std::string> original = DrainToStrings(&q);
  ASSERT_EQ(original.size(), 9u);

  DataQueue restored(opts);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreContents(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(DrainToStrings(&restored), original);
}

TEST(DataQueueSnapshot, MutexDequeContentsRoundTrip) {
  QueueContentsRoundTrip(DataQueueTransport::kMutexDeque);
}

TEST(DataQueueSnapshot, SpscChainContentsRoundTrip) {
  QueueContentsRoundTrip(DataQueueTransport::kSpscChain);
}

TEST(DataQueueSnapshot, EmptyQueueRoundTrip) {
  DataQueueOptions opts;
  DataQueue q(opts);
  SnapshotWriter w;
  ASSERT_TRUE(q.SnapshotContents(&w).ok());
  DataQueue restored(opts);
  SnapshotReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreContents(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(restored.TryPopPage().has_value());
}

// ---------------------------------------------------------------------------
// Operator snapshot → restore → re-snapshot byte equality
// ---------------------------------------------------------------------------

std::string SnapshotOf(Operator* op) {
  SnapshotWriter w;
  Status st = op->SnapshotState(&w);
  EXPECT_TRUE(st.ok()) << op->name() << ": " << st.ToString();
  return w.buffer();
}

void RestoreFrom(Operator* op, const std::string& bytes) {
  SnapshotReader r(bytes);
  Status st = op->RestoreState(&r);
  ASSERT_TRUE(st.ok()) << op->name() << ": " << st.ToString();
  EXPECT_TRUE(r.AtEnd()) << op->name() << ": trailing snapshot bytes";
}

SchemaPtr LeftSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

JoinOptions BasicJoin() {
  JoinOptions j;
  j.left_keys = {1, 2};
  j.right_keys = {0, 1};
  return j;
}

std::unique_ptr<SymmetricHashJoin> OpenJoin(const JoinOptions& jo,
                                            ExecContext* ctx) {
  auto join = std::make_unique<SymmetricHashJoin>("join", jo);
  EXPECT_TRUE(join->SetInputSchema(0, LeftSchema()).ok());
  EXPECT_TRUE(join->SetInputSchema(1, RightSchema()).ok());
  EXPECT_TRUE(join->InferSchemas().ok());
  EXPECT_TRUE(join->Open(ctx).ok());
  return join;
}

TEST(JoinSnapshot, RestoreIsByteExactAndBehaviorEquivalent) {
  CollectCtx ctx;
  JoinOptions jo = BasicJoin();
  std::unique_ptr<SymmetricHashJoin> join = OpenJoin(jo, &ctx);

  // Populate both tables, trigger a join, install guards + dedup
  // entries via feedback.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(join->ProcessTuple(
                        0, TupleBuilder().I64(i).I64(i % 5).I64(i % 3).Build())
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(join->ProcessTuple(
                        1, TupleBuilder().I64(i % 5).I64(i % 3).I64(i).Build())
                    .ok());
  }
  ASSERT_TRUE(join->ProcessControl(
                      0, ControlMessage::Feedback(FB("~[*,3,1,*]")))
                  .ok());
  ASSERT_GT(join->table_size(0), 0u);
  ASSERT_GT(join->table_size(1), 0u);

  std::string snap = SnapshotOf(join.get());

  // Restore into a freshly opened twin; its re-snapshot must be
  // byte-identical (canonical serialization).
  CollectCtx ctx2;
  std::unique_ptr<SymmetricHashJoin> twin = OpenJoin(jo, &ctx2);
  RestoreFrom(twin.get(), snap);
  EXPECT_EQ(SnapshotOf(twin.get()), snap);
  EXPECT_EQ(twin->table_size(0), join->table_size(0));
  EXPECT_EQ(twin->table_size(1), join->table_size(1));

  // Same future input → same future output.
  size_t before = ctx.tuples.size();
  Tuple probe = TupleBuilder().I64(4).I64(1).I64(77).Build();
  ASSERT_TRUE(join->ProcessTuple(1, probe).ok());
  ASSERT_TRUE(twin->ProcessTuple(1, probe).ok());
  const std::vector<std::string> all = ctx.TupleStrings();
  std::vector<std::string> orig_new(all.begin() + static_cast<long>(before),
                                    all.end());
  EXPECT_EQ(orig_new, ctx2.TupleStrings());
  EXPECT_FALSE(ctx2.tuples.empty()) << "probe should match stored rows";

  // The restored guard must block exactly like the original's.
  EXPECT_TRUE(twin->input_guards(0).Blocks(
      TupleBuilder().I64(0).I64(3).I64(1).Build()));
}

TEST(JoinSnapshot, ForcedHashCollisionsSurviveRoundTrip) {
  // Constant hash: every key collides, so restore must rebuild the
  // collision-checked buckets, not just hash slots.
  JoinOptions jo = BasicJoin();
  jo.key_hash_override = [](const Tuple&, int, int64_t) {
    return 42ULL;
  };
  CollectCtx ctx;
  std::unique_ptr<SymmetricHashJoin> join = OpenJoin(jo, &ctx);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(join->ProcessTuple(
                        0, TupleBuilder().I64(i).I64(i).I64(i).Build())
                    .ok());
  }
  std::string snap = SnapshotOf(join.get());

  CollectCtx ctx2;
  std::unique_ptr<SymmetricHashJoin> twin = OpenJoin(jo, &ctx2);
  RestoreFrom(twin.get(), snap);
  EXPECT_EQ(SnapshotOf(twin.get()), snap);

  // Only the true key (5,5) joins despite universal hash collision.
  ASSERT_TRUE(
      twin->ProcessTuple(1, TupleBuilder().I64(5).I64(5).I64(9).Build())
          .ok());
  ASSERT_EQ(ctx2.tuples.size(), 1u);
  EXPECT_EQ(ctx2.tuples[0],
            TupleBuilder().I64(5).I64(5).I64(5).I64(9).Build());
}

TEST(JoinSnapshot, WindowedOuterJoinStateSurvivesRoundTrip) {
  JoinOptions jo;
  jo.left_keys = {0};
  jo.right_keys = {0};
  jo.left_ts = 1;
  jo.right_ts = 1;
  jo.window_join = true;
  jo.window = WindowSpec{1'000, 1'000};
  jo.left_outer = true;

  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                   {"ts", ValueType::kTimestamp},
                                   {"v", ValueType::kInt64}});
  auto open_join = [&](ExecContext* ctx) {
    auto j = std::make_unique<SymmetricHashJoin>("wjoin", jo);
    EXPECT_TRUE(j->SetInputSchema(0, schema).ok());
    EXPECT_TRUE(j->SetInputSchema(1, schema).ok());
    EXPECT_TRUE(j->InferSchemas().ok());
    EXPECT_TRUE(j->Open(ctx).ok());
    return j;
  };

  CollectCtx ctx;
  std::unique_ptr<SymmetricHashJoin> join = open_join(&ctx);
  // Window 0: key 1 matched, key 2 left-unmatched (outer candidate).
  ASSERT_TRUE(join->ProcessTuple(
                      0, TupleBuilder().I64(1).Ts(100).I64(10).Build())
                  .ok());
  ASSERT_TRUE(join->ProcessTuple(
                      0, TupleBuilder().I64(2).Ts(200).I64(20).Build())
                  .ok());
  ASSERT_TRUE(join->ProcessTuple(
                      1, TupleBuilder().I64(1).Ts(300).I64(30).Build())
                  .ok());
  // Advance only the LEFT watermark past window 0: right entries for
  // window 0 purge, left outer candidates wait on the right side.
  ASSERT_TRUE(
      join->ProcessPunctuation(0, Punctuation(P("[*,<=t:999,*]"))).ok());

  std::string snap = SnapshotOf(join.get());
  CollectCtx ctx2;
  std::unique_ptr<SymmetricHashJoin> twin = open_join(&ctx2);
  RestoreFrom(twin.get(), snap);
  EXPECT_EQ(SnapshotOf(twin.get()), snap);

  // Finish both identically: the pending OUTER tuple for key 2 must
  // surface from the restored state too.
  auto finish = [](SymmetricHashJoin* j) {
    ASSERT_TRUE(
        j->ProcessPunctuation(1, Punctuation(P("[*,<=t:999,*]"))).ok());
    ASSERT_TRUE(j->ProcessEos(0).ok());
    ASSERT_TRUE(j->ProcessEos(1).ok());
  };
  size_t before = ctx.tuples.size();
  finish(join.get());
  finish(twin.get());
  const std::vector<std::string> all = ctx.TupleStrings();
  std::vector<std::string> orig_tail(all.begin() + static_cast<long>(before),
                                     all.end());
  EXPECT_EQ(ctx2.TupleStrings(), orig_tail);
  bool saw_outer = false;
  for (const Tuple& t : ctx2.tuples) {
    if (t.value(0).int64_value() == 2) saw_outer = true;
  }
  EXPECT_TRUE(saw_outer)
      << "left-outer candidate for key 2 lost across restore";
}

SchemaPtr GVSchema() {
  return Schema::Make({{"g", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {"v", ValueType::kDouble}});
}

WindowAggregateOptions AggOpt(AggKind kind) {
  WindowAggregateOptions opt;
  opt.ts_attr = 1;
  opt.group_attrs = {0};
  opt.agg_attr = 2;
  opt.kind = kind;
  opt.window = {1'000, 1'000};
  return opt;
}

std::unique_ptr<WindowAggregate> OpenAgg(
    const WindowAggregateOptions& opt, ExecContext* ctx) {
  auto agg = std::make_unique<WindowAggregate>("agg", opt);
  EXPECT_TRUE(agg->SetInputSchema(0, GVSchema()).ok());
  EXPECT_TRUE(agg->InferSchemas().ok());
  EXPECT_TRUE(agg->Open(ctx).ok());
  return agg;
}

TEST(WindowAggregateSnapshot, AllFiveKindsRoundTripByteExact) {
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMax, AggKind::kMin}) {
    SCOPED_TRACE(AggKindName(kind));
    WindowAggregateOptions opt = AggOpt(kind);
    CollectCtx ctx;
    std::unique_ptr<WindowAggregate> agg = OpenAgg(opt, &ctx);
    // Partials across three groups and two open windows.
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          agg->ProcessTuple(0, TupleBuilder()
                                   .I64(i % 3)
                                   .Ts(100 * i % 1'900)
                                   .D(static_cast<double>(i % 7))
                                   .Build())
              .ok());
    }
    ASSERT_GT(agg->state_size(), 0u);

    std::string snap = SnapshotOf(agg.get());
    CollectCtx ctx2;
    std::unique_ptr<WindowAggregate> twin = OpenAgg(opt, &ctx2);
    RestoreFrom(twin.get(), snap);
    EXPECT_EQ(SnapshotOf(twin.get()), snap);
    EXPECT_EQ(twin->state_size(), agg->state_size());

    // Identical punctuation closes identical windows with identical
    // results from the restored partials.
    size_t before = ctx.tuples.size();
    ASSERT_TRUE(
        agg->ProcessPunctuation(0, Punctuation(P("[*,<=t:1999,*]")))
            .ok());
    ASSERT_TRUE(
        twin->ProcessPunctuation(0, Punctuation(P("[*,<=t:1999,*]")))
            .ok());
    const std::vector<std::string> all = ctx.TupleStrings();
    std::vector<std::string> orig_tail(all.begin() + static_cast<long>(before),
                                       all.end());
    EXPECT_EQ(ctx2.TupleStrings(), orig_tail);
    EXPECT_FALSE(ctx2.tuples.empty());
  }
}

TEST(WindowAggregateSnapshot, TombstonesSurviveRoundTrip) {
  WindowAggregateOptions opt = AggOpt(AggKind::kMax);
  CollectCtx ctx;
  std::unique_ptr<WindowAggregate> agg = OpenAgg(opt, &ctx);
  ASSERT_TRUE(
      agg->ProcessTuple(0, TupleBuilder().I64(0).Ts(100).D(51).Build())
          .ok());
  // §3.5: MAX may purge on a value bound but must tombstone.
  ASSERT_TRUE(agg->ProcessControl(
                      0, ControlMessage::Feedback(FB("~[*,*,>=50]")))
                  .ok());
  ASSERT_EQ(agg->tombstone_count(), 1u);

  std::string snap = SnapshotOf(agg.get());
  CollectCtx ctx2;
  std::unique_ptr<WindowAggregate> twin = OpenAgg(opt, &ctx2);
  RestoreFrom(twin.get(), snap);
  EXPECT_EQ(SnapshotOf(twin.get()), snap);
  EXPECT_EQ(twin->tombstone_count(), 1u);

  // The §3.5 pitfall must hold ACROSS recovery: a later value-40
  // tuple must not recreate the purged window.
  ASSERT_TRUE(
      twin->ProcessTuple(0, TupleBuilder().I64(0).Ts(200).D(40).Build())
          .ok());
  EXPECT_EQ(twin->state_size(), 0u)
      << "restored tombstone failed to block window recreation";
}

// ---------------------------------------------------------------------------
// Source offsets
// ---------------------------------------------------------------------------

TEST(SourceSnapshot, VectorSourceResumesFromRecordedOffset) {
  auto make_elements = [] {
    std::vector<Tuple> tuples;
    for (int i = 0; i < 10; ++i) {
      tuples.push_back(TupleBuilder().I64(i).I64(i * 2).Build());
    }
    return testing_util::AtMillis(std::move(tuples));
  };
  SchemaPtr schema = Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});

  CollectCtx ctx;
  VectorSource src("src", schema, make_elements());
  ASSERT_TRUE(src.Open(&ctx).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(src.ProduceNext().ok());
  ASSERT_EQ(src.position(), 4u);
  std::string snap = SnapshotOf(&src);

  CollectCtx ctx2;
  VectorSource twin("src", schema, make_elements());
  ASSERT_TRUE(twin.Open(&ctx2).ok());
  RestoreFrom(&twin, snap);
  EXPECT_EQ(twin.position(), 4u);
  EXPECT_EQ(SnapshotOf(&twin), snap);

  // The twin replays exactly the uneroded tail.
  while (twin.NextArrivalMs().has_value()) {
    ASSERT_TRUE(twin.ProduceNext().ok());
  }
  ASSERT_EQ(ctx2.tuples.size(), 6u);
  EXPECT_EQ(ctx2.tuples[0].value(0).int64_value(), 4);

  // An offset beyond the element count is rejected (wrong plan).
  VectorSource shorty("src", schema,
                      testing_util::AtMillis(
                          {TupleBuilder().I64(0).I64(0).Build()}));
  ASSERT_TRUE(shorty.Open(&ctx2).ok());
  SnapshotReader r(snap);
  EXPECT_FALSE(shorty.RestoreState(&r).ok());
}

TEST(SourceSnapshot, CallbackSourceFastForwardsItsGenerator) {
  SchemaPtr schema = Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  auto make_gen = [] {
    auto i = std::make_shared<int64_t>(0);
    return [i]() -> std::optional<TimedElement> {
      if (*i >= 8) return std::nullopt;
      int64_t k = (*i)++;
      return TimedElement::OfTuple(
          k, TupleBuilder().I64(k).I64(k * k).Build());
    };
  };

  CollectCtx ctx;
  CallbackSource src("cb", schema, make_gen());
  ASSERT_TRUE(src.Open(&ctx).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(src.ProduceNext().ok());
  ASSERT_EQ(src.produced(), 5u);
  std::string snap = SnapshotOf(&src);

  CollectCtx ctx2;
  CallbackSource twin("cb", schema, make_gen());
  ASSERT_TRUE(twin.Open(&ctx2).ok());
  RestoreFrom(&twin, snap);
  EXPECT_EQ(twin.produced(), 5u);
  EXPECT_EQ(SnapshotOf(&twin), snap);
  while (twin.NextArrivalMs().has_value()) {
    ASSERT_TRUE(twin.ProduceNext().ok());
  }
  ASSERT_EQ(ctx2.tuples.size(), 3u);
  EXPECT_EQ(ctx2.tuples[0].value(0).int64_value(), 5);
  // Replayed ids continue the original numbering: at-least-once
  // dedup by id stays possible downstream.
  EXPECT_EQ(ctx2.tuples[0].id(), ctx.tuples.back().id() + 1);

  // A generator too short for the recorded offset is rejected.
  auto short_gen = [n = std::make_shared<int64_t>(0)]() mutable
      -> std::optional<TimedElement> {
    if (*n >= 2) return std::nullopt;
    int64_t k = (*n)++;
    return TimedElement::OfTuple(
        k, TupleBuilder().I64(k).I64(k).Build());
  };
  CallbackSource bad("cb", schema, short_gen);
  ASSERT_TRUE(bad.Open(&ctx2).ok());
  SnapshotReader r(snap);
  EXPECT_FALSE(bad.RestoreState(&r).ok());
}

}  // namespace
}  // namespace nstream
