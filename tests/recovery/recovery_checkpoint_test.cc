// Punctuation-aligned checkpoint/recovery under the deterministic
// scheduling harness: barrier injection + per-task alignment +
// quiesce + atomic publish, then seeded crash→recover→compare runs.
// The invariant proved throughout: the union of (output delivered
// before the crash) and (output of the recovered run) is a multiset
// SUPERSET of the crash-free output — nothing is lost, and every
// extra tuple is a replayed duplicate of a legitimate result
// (at-least-once delivery), never a foreign value. Crash points are
// seeded slice counts, including mid-checkpoint crashes (torn tmp
// write / crash before rename) that must fall back to the previous
// complete snapshot.

#include "recovery/recover.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/scheduler.h"
#include "exec/sync_executor.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"
#include "testing/sched_harness.h"
#include "testing/test_util.h"

namespace nstream {
namespace {

using testing_util::P;
using testing_util::SchedHarness;
using testing_util::SchedHarnessOptions;

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

// ---- The Table 2 join plan, with punctuation in both streams -------
//
// Two sources ordered by t; after each t-group the source embeds
// grouped punctuation ("no more tuples with this t"), so barriers,
// real punctuation, and tuples all share the queues under test.

SchemaPtr LeftSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

std::vector<TimedElement> SideElems(bool left, int n, int per_group) {
  std::vector<TimedElement> out;
  TimeMs at = 0;
  int prev_t = -1;
  for (int i = 0; i < n; ++i) {
    int64_t t = i / per_group;
    if (prev_t >= 0 && t != prev_t) {
      std::string pat = left
                            ? "[*," + std::to_string(prev_t) + ",*]"
                            : "[" + std::to_string(prev_t) + ",*,*]";
      out.push_back(TimedElement::OfPunct(at, Punctuation(P(pat))));
    }
    prev_t = static_cast<int>(t);
    if (left) {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder().I64(i % 7).I64(t).I64(i % 3).Build()));
    } else {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder().I64(t).I64(i % 3).I64(i % 11).Build()));
    }
    ++at;
  }
  return out;
}

struct Table2Plan {
  std::unique_ptr<QueryPlan> plan;
  VectorSource* left = nullptr;
  VectorSource* right = nullptr;
  SymmetricHashJoin* join = nullptr;
  CollectorSink* sink = nullptr;
};

Table2Plan MakeTable2Plan(int n, int per_group) {
  Table2Plan out;
  out.plan = std::make_unique<QueryPlan>();
  out.left = out.plan->AddOp(std::make_unique<VectorSource>(
      "A", LeftSchema(), SideElems(true, n, per_group)));
  out.right = out.plan->AddOp(std::make_unique<VectorSource>(
      "B", RightSchema(), SideElems(false, n, per_group)));
  JoinOptions jo;
  jo.left_keys = {1, 2};   // (t, id)
  jo.right_keys = {0, 1};  // (t, id)
  out.join = out.plan->AddOp(
      std::make_unique<SymmetricHashJoin>("join", jo));
  out.sink = out.plan->AddOp(std::make_unique<CollectorSink>("sink"));
  EXPECT_TRUE(out.plan->Connect(*out.left, 0, *out.join, 0).ok());
  EXPECT_TRUE(out.plan->Connect(*out.right, 0, *out.join, 1).ok());
  EXPECT_TRUE(out.plan->Connect(*out.join, *out.sink).ok());
  return out;
}

std::multiset<std::string> Collected(const CollectorSink* sink) {
  std::multiset<std::string> out;
  for (const CollectedTuple& c : sink->collected()) {
    out.insert(c.tuple.ToString());
  }
  return out;
}

std::multiset<std::string> CrashFreeReference(int n, int per_group) {
  Table2Plan ref = MakeTable2Plan(n, per_group);
  SyncExecutor sync;
  Status st = sync.Run(ref.plan.get());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collected(ref.sink);
}

/// combined must contain every crash-free tuple at full multiplicity;
/// anything left over must be a duplicate of a crash-free value.
void ExpectAtLeastOnce(const std::multiset<std::string>& crash_free,
                       std::multiset<std::string> combined,
                       const std::string& label) {
  for (const std::string& s : crash_free) {
    auto it = combined.find(s);
    ASSERT_NE(it, combined.end())
        << label << ": result tuple LOST across recovery: " << s;
    combined.erase(it);
  }
  for (const std::string& s : combined) {
    EXPECT_GE(crash_free.count(s), 1u)
        << label << ": foreign tuple fabricated by recovery: " << s;
  }
}

/// Drive until the checkpoint started on `id` reports its result.
Status DriveCheckpointToResult(SchedHarness* h, QueryId id) {
  Scheduler* sched = h->scheduler();
  for (int guard = 0; guard < 1'000'000; ++guard) {
    if (std::optional<Status> res = sched->CheckpointResult(id)) {
      return *res;
    }
    Result<bool> stepped = h->DriveFor(1);
    EXPECT_TRUE(stepped.ok()) << stepped.status().ToString();
    if (!stepped.ok()) return stepped.status();
  }
  return Status::Internal("checkpoint never finished");
}

/// Run the recovered half: rebuild the identical plan, restore from
/// `path`, drive to completion, return the recovered output.
std::multiset<std::string> RecoverAndFinish(const std::string& path,
                                            int n, int per_group,
                                            uint64_t seed) {
  Table2Plan rebuilt = MakeTable2Plan(n, per_group);
  SchedHarnessOptions hopts;
  hopts.seed = seed;
  SchedHarness h(hopts);
  Result<QueryId> id =
      h.scheduler()->SubmitRecovered(rebuilt.plan.get(), path);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (!id.ok()) return {};
  Status st = h.Drive();
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = h.Wait(id.value());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return Collected(rebuilt.sink);
}

// ---------------------------------------------------------------------------
// Barrier protocol
// ---------------------------------------------------------------------------

TEST(Checkpoint, MidRunCheckpointDoesNotPerturbResults) {
  const int kN = 60, kGroup = 5;
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);
  ASSERT_FALSE(expect.empty());

  const std::string path = TempPath("ckpt_quiet.nsp");
  Table2Plan t2 = MakeTable2Plan(kN, kGroup);
  SchedHarnessOptions hopts;
  hopts.seed = 17;
  SchedHarness h(hopts);
  Result<QueryId> id = h.Submit(t2.plan.get());
  ASSERT_TRUE(id.ok());
  Result<bool> done = h.DriveFor(30);
  ASSERT_TRUE(done.ok());
  ASSERT_FALSE(done.value()) << "plan finished before the checkpoint";

  ASSERT_TRUE(h.scheduler()
                  ->StartCheckpoint(id.value(), CheckpointOptions{path})
                  .ok());
  Status ckpt = DriveCheckpointToResult(&h, id.value());
  ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
  ASSERT_TRUE(ReadSnapshotFile(path).ok());

  // The checkpointed run still produces EXACTLY the reference output:
  // aligned barriers stall nothing permanently and drop nothing.
  ASSERT_TRUE(h.Drive().ok());
  ASSERT_TRUE(h.Wait(id.value()).ok());
  EXPECT_EQ(Collected(t2.sink), expect);
  std::remove(path.c_str());
}

TEST(Checkpoint, BackToBackCheckpointsAndApiEdges) {
  const std::string path = TempPath("ckpt_edges.nsp");
  // Big enough that the query is still running after the first
  // checkpoint completes — the second checkpoint must find live work.
  Table2Plan t2 = MakeTable2Plan(600, 5);
  SchedHarnessOptions hopts;
  hopts.seed = 23;
  SchedHarness h(hopts);
  Scheduler* sched = h.scheduler();
  Result<QueryId> id = h.Submit(t2.plan.get());
  ASSERT_TRUE(id.ok());

  // Unknown query / empty path.
  EXPECT_EQ(sched->StartCheckpoint(999, CheckpointOptions{path}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      sched->StartCheckpoint(id.value(), CheckpointOptions{}).code(),
      StatusCode::kInvalidArgument);
  // Blocking Checkpoint() needs a pool to make progress.
  EXPECT_EQ(sched->Checkpoint(id.value(), path).code(),
            StatusCode::kFailedPrecondition);
  std::optional<Status> unknown = sched->CheckpointResult(424242);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->code(), StatusCode::kNotFound);

  ASSERT_TRUE(h.DriveFor(20).ok());
  // Two checkpoints in a row: the second must wait for the first.
  ASSERT_TRUE(
      sched->StartCheckpoint(id.value(), CheckpointOptions{path}).ok());
  EXPECT_EQ(
      sched->StartCheckpoint(id.value(), CheckpointOptions{path}).code(),
      StatusCode::kFailedPrecondition);
  ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());

  // After the first finishes, a second checkpoint succeeds.
  {
    Status st = sched->StartCheckpoint(id.value(), CheckpointOptions{path});
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());

  // After completion, checkpointing is a clean precondition failure.
  ASSERT_TRUE(h.Drive().ok());
  ASSERT_TRUE(h.Wait(id.value()).ok());
  EXPECT_EQ(
      sched->StartCheckpoint(id.value(), CheckpointOptions{path}).code(),
      StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash → recover → compare
// ---------------------------------------------------------------------------

TEST(CrashRecovery, CrashAfterCheckpointRecoversEverything) {
  const int kN = 600, kGroup = 5;  // long run: checkpoint lands mid-flight
  const std::string path = TempPath("ckpt_crash_basic.nsp");
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);

  std::multiset<std::string> prefix;
  {
    Table2Plan t2 = MakeTable2Plan(kN, kGroup);
    SchedHarnessOptions hopts;
    hopts.seed = 41;
    SchedHarness h(hopts);
    Result<QueryId> id = h.Submit(t2.plan.get());
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(h.DriveFor(40).ok());
    {
      Status st = h.scheduler()->StartCheckpoint(id.value(),
                                                 CheckpointOptions{path});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());
    // Keep running past the checkpoint, then crash: everything the
    // sink saw in this window becomes potential duplicates.
    ASSERT_TRUE(h.DriveFor(25).ok());
    prefix = Collected(t2.sink);
  }  // harness + plan destroyed with the query mid-flight: the crash

  std::multiset<std::string> recovered =
      RecoverAndFinish(path, kN, kGroup, /*seed=*/42);
  std::multiset<std::string> combined = prefix;
  combined.insert(recovered.begin(), recovered.end());
  ExpectAtLeastOnce(expect, combined, "basic crash");
  std::remove(path.c_str());
}

TEST(CrashRecovery, MidCheckpointCrashFallsBackToPreviousSnapshot) {
  const int kN = 600, kGroup = 5;  // both checkpoints must land mid-flight
  const std::string path = TempPath("ckpt_crash_mid.nsp");
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);

  for (CheckpointCrashMode mode : {CheckpointCrashMode::kMidWrite,
                                   CheckpointCrashMode::kBeforeRename}) {
    SCOPED_TRACE(static_cast<int>(mode));
    std::multiset<std::string> prefix;
    {
      Table2Plan t2 = MakeTable2Plan(kN, kGroup);
      SchedHarnessOptions hopts;
      hopts.seed = 59;
      SchedHarness h(hopts);
      Result<QueryId> id = h.Submit(t2.plan.get());
      ASSERT_TRUE(id.ok());

      // A good checkpoint early on…
      ASSERT_TRUE(h.DriveFor(20).ok());
      ASSERT_TRUE(h.scheduler()
                      ->StartCheckpoint(id.value(),
                                        CheckpointOptions{path})
                      .ok());
      ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());
      Result<std::string> good = ReadSnapshotFile(path);
      ASSERT_TRUE(good.ok());

      // …then a later checkpoint whose write crashes. The failure is
      // reported, and `path` still names the good snapshot.
      ASSERT_TRUE(h.DriveFor(30).ok());
      ASSERT_TRUE(h.scheduler()
                      ->StartCheckpoint(id.value(),
                                        CheckpointOptions{path, mode})
                      .ok());
      Status crashed = DriveCheckpointToResult(&h, id.value());
      ASSERT_FALSE(crashed.ok());
      EXPECT_EQ(crashed.code(), StatusCode::kCancelled);
      Result<std::string> after = ReadSnapshotFile(path);
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(after.value(), good.value())
          << "crashed checkpoint clobbered the published snapshot";

      // The query itself is unharmed by the failed checkpoint; run a
      // little longer and crash the engine.
      ASSERT_TRUE(h.DriveFor(15).ok());
      prefix = Collected(t2.sink);
    }

    std::multiset<std::string> recovered = RecoverAndFinish(
        path, kN, kGroup, /*seed=*/60 + static_cast<uint64_t>(mode));
    std::multiset<std::string> combined = prefix;
    combined.insert(recovered.begin(), recovered.end());
    ExpectAtLeastOnce(expect, combined, "mid-checkpoint crash");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
}

TEST(CrashRecovery, RandomizedSeededCrashSweep) {
  const int kN = 80, kGroup = 5;
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);
  const CheckpointCrashMode kModes[] = {
      CheckpointCrashMode::kNone, CheckpointCrashMode::kMidWrite,
      CheckpointCrashMode::kBeforeRename};

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919);
    const uint64_t k1 = 10 + rng.NextBounded(110);
    const uint64_t k2 = rng.NextBounded(80);
    const CheckpointCrashMode mode = kModes[seed % 3];
    const std::string path =
        TempPath("ckpt_sweep_" + std::to_string(seed) + ".nsp");

    std::multiset<std::string> prefix;
    bool have_snapshot = false;
    {
      Table2Plan t2 = MakeTable2Plan(kN, kGroup);
      SchedHarnessOptions hopts;
      hopts.seed = seed;
      hopts.wake_defer_prob = 0.2;  // wake reordering in the mix
      SchedHarness h(hopts);
      Result<QueryId> id = h.Submit(t2.plan.get());
      ASSERT_TRUE(id.ok());

      // An early complete snapshot: the crashing modes fall back to
      // it, and it also covers seeds whose k1 lands past completion.
      Result<bool> early = h.DriveFor(8);
      ASSERT_TRUE(early.ok());
      ASSERT_FALSE(early.value()) << "plan finished in 8 slices";
      ASSERT_TRUE(h.scheduler()
                      ->StartCheckpoint(id.value(),
                                        CheckpointOptions{path})
                      .ok());
      ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());
      have_snapshot = true;

      Result<bool> done = h.DriveFor(k1);
      ASSERT_TRUE(done.ok());
      if (!done.value()) {
        Status st = h.scheduler()->StartCheckpoint(
            id.value(), CheckpointOptions{path, mode});
        ASSERT_TRUE(st.ok()) << st.ToString();
        Status ckpt = DriveCheckpointToResult(&h, id.value());
        if (mode == CheckpointCrashMode::kNone) {
          ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
          have_snapshot = true;
        } else {
          ASSERT_FALSE(ckpt.ok());
        }
        ASSERT_TRUE(h.DriveFor(k2).ok());
      }
      prefix = Collected(t2.sink);
    }

    ASSERT_TRUE(have_snapshot);
    std::multiset<std::string> recovered =
        RecoverAndFinish(path, kN, kGroup, seed + 1000);
    std::multiset<std::string> combined = prefix;
    combined.insert(recovered.begin(), recovered.end());
    ExpectAtLeastOnce(expect, combined,
                      "sweep seed " + std::to_string(seed));
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
}

TEST(CrashRecovery, CrashAtEveryPunctuationSweep) {
  // Checkpoint + crash aligned at EVERY punctuation arrival of the
  // Table 2 plan: for each i, drive until the join has consumed i
  // punctuations, checkpoint there, crash immediately, recover, and
  // prove nothing was lost.
  const int kN = 40, kGroup = 5;
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);

  int punct_points = 0;
  for (int i = 1;; ++i) {
    SCOPED_TRACE("punct=" + std::to_string(i));
    const std::string path =
        TempPath("ckpt_punct_" + std::to_string(i) + ".nsp");
    Table2Plan t2 = MakeTable2Plan(kN, kGroup);
    SchedHarnessOptions hopts;
    hopts.seed = 100 + static_cast<uint64_t>(i);
    SchedHarness h(hopts);
    Result<QueryId> id = h.Submit(t2.plan.get());
    ASSERT_TRUE(id.ok());

    // Step until the i-th punctuation reaches the join.
    bool reached = false;
    while (t2.join->stats().puncts_in <
           static_cast<uint64_t>(i)) {
      Result<bool> stepped = h.DriveFor(1);
      ASSERT_TRUE(stepped.ok()) << stepped.status().ToString();
      if (stepped.value()) break;  // plan finished first
    }
    reached =
        t2.join->stats().puncts_in >= static_cast<uint64_t>(i);
    if (!reached || h.scheduler()->AllDone()) {
      break;  // ran out of punctuation points
    }
    ++punct_points;

    ASSERT_TRUE(h.scheduler()
                    ->StartCheckpoint(id.value(),
                                      CheckpointOptions{path})
                    .ok());
    ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());
    std::multiset<std::string> prefix = Collected(t2.sink);
    // Crash right at the checkpoint: zero extra slices.

    std::multiset<std::string> recovered = RecoverAndFinish(
        path, kN, kGroup, 2000 + static_cast<uint64_t>(i));
    std::multiset<std::string> combined = prefix;
    combined.insert(recovered.begin(), recovered.end());
    ExpectAtLeastOnce(expect, combined,
                      "punctuation point " + std::to_string(i));
    std::remove(path.c_str());
  }
  // The workload embeds punctuation after every t-group on both
  // sides; the sweep must actually have exercised a healthy number.
  EXPECT_GE(punct_points, 8);
}

// ---------------------------------------------------------------------------
// Pool-mode (threaded) checkpoint + recovery
// ---------------------------------------------------------------------------

TEST(CrashRecovery, PooledCheckpointAndRecoveredResubmit) {
  const int kN = 4000, kGroup = 5;
  const std::string path = TempPath("ckpt_pool.nsp");
  std::multiset<std::string> expect = CrashFreeReference(kN, kGroup);

  Table2Plan t2 = MakeTable2Plan(kN, kGroup);
  PooledExecutorOptions opts;
  opts.pool_size = 2;
  PooledExecutor exec(opts);
  Result<QueryId> id = exec.Submit(t2.plan.get());
  ASSERT_TRUE(id.ok());
  Status ckpt = exec.Checkpoint(id.value(), path);
  // The plan may have drained before the barrier landed; that narrow
  // race is a clean precondition error, not a hang or corruption.
  if (!ckpt.ok()) {
    ASSERT_EQ(ckpt.code(), StatusCode::kFailedPrecondition)
        << ckpt.ToString();
    ASSERT_TRUE(exec.Wait(id.value()).ok());
    GTEST_SKIP() << "plan finished before the checkpoint; nothing to "
                    "recover";
  }
  ASSERT_TRUE(exec.Wait(id.value()).ok());
  EXPECT_EQ(Collected(t2.sink), expect);

  // Recover the snapshot on a FRESH pool: the recovered run replays
  // the post-checkpoint suffix; all of its output must be legitimate.
  Table2Plan rebuilt = MakeTable2Plan(kN, kGroup);
  PooledExecutor exec2(opts);
  Result<QueryId> rid =
      exec2.SubmitRecovered(rebuilt.plan.get(), path);
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  ASSERT_TRUE(exec2.Wait(rid.value()).ok());
  std::multiset<std::string> recovered = Collected(rebuilt.sink);
  std::multiset<std::string> combined = Collected(t2.sink);
  combined.insert(recovered.begin(), recovered.end());
  ExpectAtLeastOnce(expect, combined, "pooled recovery");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Restore validation
// ---------------------------------------------------------------------------

TEST(Recovery, StructurallyDifferentPlanIsRejected) {
  const int kN = 40, kGroup = 5;
  const std::string path = TempPath("ckpt_fingerprint.nsp");
  {
    Table2Plan t2 = MakeTable2Plan(kN, kGroup);
    SchedHarnessOptions hopts;
    hopts.seed = 7;
    SchedHarness h(hopts);
    Result<QueryId> id = h.Submit(t2.plan.get());
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(h.DriveFor(20).ok());
    ASSERT_TRUE(h.scheduler()
                    ->StartCheckpoint(id.value(),
                                      CheckpointOptions{path})
                    .ok());
    ASSERT_TRUE(DriveCheckpointToResult(&h, id.value()).ok());
  }

  // A plan with a different operator set must be refused by the
  // fingerprint check, not silently half-restored.
  testing_util::LinearPlan other(
      Schema::Make({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}),
      testing_util::AtMillis({TupleBuilder().I64(1).I64(2).Build()}));
  other.Finish();
  SchedHarness h2;
  Result<QueryId> rid =
      h2.scheduler()->SubmitRecovered(other.plan(), path);
  ASSERT_FALSE(rid.ok());
  EXPECT_EQ(rid.status().code(), StatusCode::kInvalidArgument);

  // Missing snapshot file: clean NotFound.
  Table2Plan rebuilt = MakeTable2Plan(kN, kGroup);
  SchedHarness h3;
  Result<QueryId> missing = h3.scheduler()->SubmitRecovered(
      rebuilt.plan.get(), path + ".nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nstream
