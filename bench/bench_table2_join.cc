// Reproduces Table 2: the JOIN characterization. Prints the published
// rows, verifies the SchemaMap-driven propagation decisions against
// §4.2's worked examples (A(a,t,id) ⋈ B(t,id,b)), and measures the
// effect of each response class on a symmetric hash join.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <unordered_map>

#include "bench_json.h"
#include "common/logging.h"
#include "core/characterization.h"
#include "core/propagation.h"
#include "exec/sync_executor.h"
#include "metrics/report.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "punct/pattern_parser.h"
#include "stream/columnar.h"
#include "stream/page.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

// Heap-allocation counting hook: this binary replaces global
// operator new/delete with counting shims (definitions after main's
// namespace), so BENCH_hotpath.json can record allocations per output
// tuple — the arena model's primary claim — rather than inferring
// them from timings.
std::atomic<uint64_t> g_alloc_count{0};

SchemaPtr LeftSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

// burst = how many consecutive tuples share a key pair (1 = the
// classic Table 2 stream where adjacent keys always differ; >1 models
// bursty sources — per-segment sensor batches — the adjacency-grouped
// probe targets).
std::vector<TimedElement> SideStream(int n, bool left, int key_mod,
                                     int burst = 1) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TimeMs at = static_cast<TimeMs>(i);
    int k = i / burst;
    if (left) {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(i % 100)
                  .I64(k % key_mod)
                  .I64(k % 7)
                  .Build()));
    } else {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(k % key_mod)
                  .I64(k % 7)
                  .I64(i % 100)
                  .Build()));
    }
  }
  return out;
}

struct JoinRun {
  uint64_t joined = 0;
  uint64_t purged = 0;
  uint64_t guarded = 0;
};

JoinRun RunJoin(benchmark::State* state, int n, const char* feedback,
                bool batched_probe = true,
                ProbeGrouping grouping = JoinOptions{}.probe_grouping,
                int burst = 1) {
  QueryPlan plan;
  auto* left = plan.AddOp(std::make_unique<VectorSource>(
      "A", LeftSchema(), SideStream(n, true, 50, burst)));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "B", RightSchema(), SideStream(n, false, 50, burst)));
  JoinOptions jopt;
  jopt.left_keys = {1, 2};   // (t, id)
  jopt.right_keys = {0, 1};  // (t, id)
  jopt.page_batched_probe = batched_probe;
  jopt.probe_grouping = grouping;
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto injected = std::make_shared<bool>(false);
  std::string fb = feedback == nullptr ? "" : feedback;
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false},
      [fb, injected](const Tuple&,
                     TimeMs) -> std::vector<FeedbackPunctuation> {
        if (fb.empty() || *injected) return {};
        *injected = true;
        return {ParseFeedback(fb).value()};
      }));
  NSTREAM_CHECK(plan.Connect(*left, 0, *join, 0).ok());
  NSTREAM_CHECK(plan.Connect(*right, 0, *join, 1).ok());
  NSTREAM_CHECK(plan.Connect(*join, *sink).ok());

  SyncExecutor exec;
  Status st = exec.Run(&plan);
  if (!st.ok() && state != nullptr) {
    state->SkipWithError(st.ToString().c_str());
  }
  JoinRun out;
  out.joined = join->joined_count();
  out.purged = join->stats().state_purged;
  out.guarded = join->stats().input_guard_drops +
                join->stats().output_guard_drops;
  return out;
}

void BM_Join_NullResponse(benchmark::State& state) {
  for (auto _ : state) {
    JoinRun r = RunJoin(&state, static_cast<int>(state.range(0)),
                        nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Join_NullResponse)->Arg(1 << 11)->Arg(1 << 13);

void BM_Join_JoinAttrFeedback(benchmark::State& state) {
  // Table 2 row 1: ¬[*,j,*] — purge both tables, guard, propagate.
  for (auto _ : state) {
    JoinRun r = RunJoin(&state, static_cast<int>(state.range(0)),
                        "~[*,3,*,*]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Join_JoinAttrFeedback)->Arg(1 << 11)->Arg(1 << 13);

void BM_Join_LeftOnlyFeedback(benchmark::State& state) {
  // Table 2 row 2: ¬[l,*,*] — left side only.
  for (auto _ : state) {
    JoinRun r = RunJoin(&state, static_cast<int>(state.range(0)),
                        "~[42,*,*,*]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Join_LeftOnlyFeedback)->Arg(1 << 11)->Arg(1 << 13);

void BM_Join_SplitFeedback(benchmark::State& state) {
  // Table 2 row 4: ¬[l,*,r] — output guard only (unsafe to split).
  for (auto _ : state) {
    JoinRun r = RunJoin(&state, static_cast<int>(state.range(0)),
                        "~[42,*,*,17]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Join_SplitFeedback)->Arg(1 << 11)->Arg(1 << 13);

// ---- Join-key probe microbench: seed string keys vs hashed keys ----
// The seed join rendered "wid|v0|v1|..." per probe (one std::string
// allocation plus a ToString per key attribute); the overhauled join
// keys on a 64-bit (wid, HashSubset) value. Both are measured here so
// the before/after lands in BENCH_hotpath.json.

std::string SeedMakeKey(const Tuple& t, const std::vector<int>& keys,
                        int64_t wid) {
  std::string out = std::to_string(wid);
  for (int k : keys) {
    out += '|';
    out += t.value(k).ToString();
  }
  return out;
}

uint64_t HashedKey(const Tuple& t, const std::vector<int>& keys,
                   int64_t wid) {
  // The production scheme, via the join's own mixer — keeps the
  // recorded "after" number honest if the scheme ever changes.
  return SymmetricHashJoin::MixWidHash(
      static_cast<uint64_t>(t.HashSubset(keys)), wid);
}

void RecordHotpathJson() {
  using benchjson::MeasurePerSec;
  const int kTuples = 4096;
  const std::vector<int> keys = {1, 2};
  std::vector<Tuple> tuples;
  tuples.reserve(kTuples);
  for (int i = 0; i < kTuples; ++i) {
    tuples.push_back(
        TupleBuilder().I64(i % 100).I64(i % 50).I64(i % 7).Build());
  }

  // Build + probe a table the seed way and the hashed way.
  double seed_probe = MeasurePerSec(kTuples, 150.0, [&] {
    std::unordered_map<std::string, int> table;
    for (const Tuple& t : tuples) table[SeedMakeKey(t, keys, 3)] += 1;
    int hits = 0;
    for (const Tuple& t : tuples) {
      auto it = table.find(SeedMakeKey(t, keys, 3));
      if (it != table.end()) hits += it->second;
    }
    benchmark::DoNotOptimize(hits);
  });
  double hashed_probe = MeasurePerSec(kTuples, 150.0, [&] {
    std::unordered_map<uint64_t, int> table;
    for (const Tuple& t : tuples) table[HashedKey(t, keys, 3)] += 1;
    int hits = 0;
    for (const Tuple& t : tuples) {
      auto it = table.find(HashedKey(t, keys, 3));
      if (it != table.end()) hits += it->second;
    }
    benchmark::DoNotOptimize(hits);
  });

  // End-to-end Table 2 join throughput (tuples pushed per wall
  // second), with the page-at-a-time probe A/B'd against the
  // element-wise walk on the identical plan. table2_8192 keeps
  // measuring the production default (batched). Methodology: two
  // warm-up runs (allocator, code paths), then best-of-3 — this
  // pipeline pushes ~192k result tuples through the allocator, and a
  // single cold run on a shared box mixes allocator warm-up and
  // scheduler hiccups into a number downstream PRs diff against.
  //
  // TRAJECTORY NOTE: through PR 2, table2_8192 was recorded from one
  // cold run; the warm best-of-3 switch happened together with the
  // batched probe, so the cross-PR delta on this key conflates the
  // two. The clean same-methodology A/B is batched_probe_speedup
  // (batched vs element_probe, both measured identically below).
  const int kJoinN = 1 << 13;
  // The production default is the batched walk again (the sort-free
  // adjacency grouping, default ProbeGrouping::kAdjacent, won
  // batching back from the element walk — the sort-based grouping
  // had lost to it when the arena model landed, and kAdaptive's
  // element-walk fallback measured strictly worse than always
  // grouping). The headline and arena rows measure the default; the
  // grouping A/B rows keep every path honest, on both the classic
  // Table 2 stream (adjacent keys always differ) and a bursty variant
  // (8-tuple key bursts, the adjacency grouping's target shape).
  const bool kDefaultBatched = JoinOptions{}.page_batched_probe;
  const ProbeGrouping kDefaultGrouping = JoinOptions{}.probe_grouping;
  auto timed_run = [&](bool batched,
                       ProbeGrouping grouping = JoinOptions{}.probe_grouping,
                       int burst = 1) {
    auto start = std::chrono::steady_clock::now();
    JoinRun run = RunJoin(nullptr, kJoinN, nullptr, batched, grouping,
                          burst);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    benchmark::DoNotOptimize(run.joined);
    return 2.0 * kJoinN / (ms / 1000.0);
  };
  auto best_run = [&](bool batched,
                      ProbeGrouping grouping = JoinOptions{}.probe_grouping,
                      int burst = 1) {
    double best = 0;
    for (int i = 0; i < 3; ++i) {
      best = std::max(best, timed_run(batched, grouping, burst));
    }
    return best;
  };
  timed_run(true);  // warm-up
  timed_run(false);
  double batched_tps = best_run(true);
  double element_tps = best_run(false);
  double sorted_tps = best_run(true, ProbeGrouping::kSorted);
  double adjacent_tps = best_run(true, ProbeGrouping::kAdjacent);
  double default_tps = kDefaultBatched ? batched_tps : element_tps;
  double bursty_adjacent_tps =
      best_run(true, ProbeGrouping::kAdjacent, /*burst=*/8);
  double bursty_element_tps = best_run(false, kDefaultGrouping, 8);
  // Arena A/B on the identical plan (production probe config): page
  // arenas globally disabled puts every result tuple (and join-table
  // entry) back on the owned per-tuple allocation path.
  double noarena_tps;
  {
    ScopedTupleArenasEnabled off(false);
    timed_run(kDefaultBatched);  // warm this configuration too
    noarena_tps = best_run(kDefaultBatched);
  }

  // Columnar (SoA) vs row page staging on the identical plan and
  // production probe config, arenas on in both arms (columnar
  // requires them; with arenas off it degrades to row staging
  // anyway). This is the honest e2e A/B behind the PageColumnar
  // default.
  double columnar_tps, rowpage_tps;
  {
    ScopedPageColumnarEnabled on(true);
    timed_run(kDefaultBatched);
    columnar_tps = best_run(kDefaultBatched);
  }
  {
    ScopedPageColumnarEnabled off(false);
    timed_run(kDefaultBatched);
    rowpage_tps = best_run(kDefaultBatched);
  }

  // Staged-result construction in isolation (the join's emit path,
  // per output tuple): columnar = AddRow + one Set per attribute into
  // column arrays; row = arena tuple, one Append per attribute, one
  // StreamElement push. Join-shaped pairs: 3 left attrs + 1 right
  // non-key attr -> 4-attr output, pages of output_page_size.
  const int kEmitPage = JoinOptions{}.output_page_size;
  std::vector<Tuple> emit_left, emit_right;
  for (int i = 0; i < kEmitPage; ++i) {
    emit_left.push_back(
        TupleBuilder().I64(i % 100).I64(i % 50).I64(i % 7).Build());
    emit_right.push_back(
        TupleBuilder().I64(i % 50).I64(i % 7).I64(i % 100).Build());
  }
  auto emit_ns = [](double per_sec) { return 1e9 / per_sec; };
  double columnar_emit_ns = emit_ns(MeasurePerSec(kEmitPage, 60.0, [&] {
    Page p;
    ColumnarBlock* b =
        p.BeginColumnar(4, static_cast<uint32_t>(kEmitPage));
    for (int i = 0; i < kEmitPage; ++i) {
      const Tuple& l = emit_left[static_cast<size_t>(i)];
      const Tuple& r = emit_right[static_cast<size_t>(i)];
      uint32_t row = b->AddRow(l.id(), -1);
      b->Set(0, row, l.value(0));
      b->Set(1, row, l.value(1));
      b->Set(2, row, l.value(2));
      b->Set(3, row, r.value(2));
    }
    benchmark::DoNotOptimize(p.size());
  }));
  double rowpage_emit_ns = emit_ns(MeasurePerSec(kEmitPage, 60.0, [&] {
    Page p;
    p.Reserve(static_cast<size_t>(kEmitPage));
    for (int i = 0; i < kEmitPage; ++i) {
      const Tuple& l = emit_left[static_cast<size_t>(i)];
      const Tuple& r = emit_right[static_cast<size_t>(i)];
      Tuple out(p.arena(), 4);
      out.Append(l.value(0));
      out.Append(l.value(1));
      out.Append(l.value(2));
      out.Append(r.value(2));
      out.set_id(l.id());
      p.Add(StreamElement::OfTuple(std::move(out)));
    }
    benchmark::DoNotOptimize(p.size());
  }));

  // Allocations per output tuple, via the operator-new counting hook.
  // One warm run first so allocator pools and code paths are hot;
  // then a counted run. The count covers the whole pipeline (plan
  // build, sources, queues), so the per-output quotient slightly
  // OVERSTATES the result-tuple cost — fine for an upper bound.
  auto allocs_per_output = [&](bool arenas_on) {
    ScopedTupleArenasEnabled scoped(arenas_on);
    RunJoin(nullptr, kJoinN, nullptr, kDefaultBatched);  // warm
    uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    JoinRun run = RunJoin(nullptr, kJoinN, nullptr, kDefaultBatched);
    uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    return static_cast<double>(allocs) /
           static_cast<double>(run.joined == 0 ? 1 : run.joined);
  };
  double arena_allocs = allocs_per_output(true);
  double noarena_allocs = allocs_per_output(false);

  benchjson::RecordAll({
      {"join.seed_stringkey_probes_per_sec", seed_probe},
      {"join.hashed_probes_per_sec", hashed_probe},
      {"join.hashed_probe_speedup", hashed_probe / seed_probe},
      {"join.table2_8192_tuples_per_sec", default_tps},
      {"join.batched_probe_tuples_per_sec", batched_tps},
      {"join.element_probe_tuples_per_sec", element_tps},
      {"join.batched_probe_speedup", batched_tps / element_tps},
      // Probe-grouping A/B: sorted (the original batched probe),
      // sort-free adjacency, and the bursty-stream shape where
      // adjacency grouping actually collapses table lookups.
      {"join.sorted_probe_tuples_per_sec", sorted_tps},
      {"join.adjacent_probe_tuples_per_sec", adjacent_tps},
      {"join.bursty8_adjacent_tuples_per_sec", bursty_adjacent_tps},
      {"join.bursty8_element_tuples_per_sec", bursty_element_tps},
      {"join.bursty8_adjacent_speedup",
       bursty_adjacent_tps / bursty_element_tps},
      // Arena-backed tuple memory: e2e throughput and allocation
      // count A/B on the production (batched, paged) configuration.
      {"join.arena_tuples_per_sec", default_tps},
      {"join.noarena_tuples_per_sec", noarena_tps},
      {"join.arena_e2e_speedup", default_tps / noarena_tps},
      {"join.arena_allocs_per_output", arena_allocs},
      {"join.noarena_allocs_per_output", noarena_allocs},
      {"join.arena_alloc_reduction", noarena_allocs / arena_allocs},
      // Columnar (SoA) page staging: e2e throughput A/B and the
      // isolated emit-path cost per output tuple.
      {"join.columnar_tuples_per_sec", columnar_tps},
      {"join.rowpage_tuples_per_sec", rowpage_tps},
      {"join.columnar_e2e_speedup", columnar_tps / rowpage_tps},
      {"join.columnar_emit_ns_per_tuple", columnar_emit_ns},
      {"join.rowpage_emit_ns_per_tuple", rowpage_emit_ns},
      {"join.columnar_emit_speedup",
       rowpage_emit_ns / columnar_emit_ns},
      {"join.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  });
}

}  // namespace
}  // namespace nstream

// Global allocation-counting shims (see g_alloc_count above). Sized
// deletes forward to free; counting uses relaxed atomics so the hook
// costs one uncontended add per allocation.
void* operator new(std::size_t n) {
  nstream::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  nstream::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main(int argc, char** argv) {
  using namespace nstream;
  std::printf("%s", ExperimentBanner("T2 (Table 2)",
                                     "A characterization for JOIN")
                        .c_str());
  std::printf("%s\n",
              RenderCharacterization("Published rows:", Table2Join())
                  .c_str());

  // §4.2 worked examples: A(a,t,id) ⋈ B(t,id,b) → C(a,t,id,b).
  SchemaMap map(2, 4);
  NSTREAM_CHECK(map.Map(0, 0, 0).ok());               // a   <- A.0
  NSTREAM_CHECK(map.Map(1, 0, 1).ok());               // t   <- A.1
  NSTREAM_CHECK(map.Map(1, 1, 0).ok());               //      & B.0
  NSTREAM_CHECK(map.Map(2, 0, 2).ok());               // id  <- A.2
  NSTREAM_CHECK(map.Map(2, 1, 1).ok());               //      & B.1
  NSTREAM_CHECK(map.Map(3, 1, 2).ok());               // b   <- B.2

  struct Case {
    const char* fb;
    bool to_a;
    bool to_b;
  };
  Case cases[] = {
      {"~[*,3,4,*]", true, true},    // join attrs: both inputs
      {"~[50,*,*,*]", true, false},  // left-only attr
      {"~[50,*,*,50]", false, false} // split: no safe propagation
  };
  std::printf("Safe-propagation decisions (§4.2 worked examples):\n");
  bool all_ok = true;
  for (const Case& c : cases) {
    PunctPattern p = ParseFeedback(c.fb).value().pattern();
    bool a = CanPropagate(p, map, 0);
    bool b = CanPropagate(p, map, 1);
    bool ok = a == c.to_a && b == c.to_b;
    all_ok = all_ok && ok;
    std::printf("  %-14s -> A:%-3s B:%-3s  [%s]\n", c.fb,
                a ? "yes" : "no", b ? "yes" : "no",
                ok ? "MATCH" : "MISMATCH");
  }

  JoinRun null_run = RunJoin(nullptr, 1 << 13, nullptr);
  JoinRun join_attr = RunJoin(nullptr, 1 << 13, "~[*,3,*,*]");
  JoinRun split = RunJoin(nullptr, 1 << 13, "~[42,*,*,17]");
  std::printf(
      "\nEffect at 8192 tuples/side:\n"
      "  null response:     %llu joined\n"
      "  ~[*,j,*]:          %llu joined, %llu purged, %llu guarded\n"
      "  ~[l,*,r] (split):  %llu joined, %llu purged, %llu guarded\n\n",
      (unsigned long long)null_run.joined,
      (unsigned long long)join_attr.joined,
      (unsigned long long)join_attr.purged,
      (unsigned long long)join_attr.guarded,
      (unsigned long long)split.joined,
      (unsigned long long)split.purged,
      (unsigned long long)split.guarded);
  if (!all_ok) return 1;

  RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
