// Ablations on the feedback mechanism itself:
//
//  1. Feedback delivery latency (§4.1 names in-flight tuples and
//     propagation delay as the gap between per-operator correctness
//     and whole-plan effect): sweep the control-channel latency in the
//     discrete-event executor and measure how much wasted imputation
//     work slips through before exploitation kicks in.
//
//  2. Guard expiration (§4.4): run the Experiment 2 viewer feedback
//     with and without punctuation-driven guard expiry and compare the
//     number of live guard patterns — the state-accumulation argument
//     for only supporting feedback on delimited attributes.

#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"
#include "exec/sim_executor.h"
#include "exec/sync_executor.h"
#include "metrics/report.h"
#include "metrics/timeliness.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

void FeedbackLatencyAblation() {
  std::printf("%s",
              ExperimentBanner("A1",
                               "Feedback delivery latency vs wasted "
                               "work (Experiment 1 plan)")
                  .c_str());
  TextTable table({"control latency", "imputations done",
                   "queries avoided", "imputed dropped/late"});
  for (double latency_ms : {0.0, 100.0, 1'000.0, 5'000.0, 20'000.0}) {
    ImputationPlanConfig config;
    config.stream.num_tuples = 3'000;
    config.impute_cost_ms = 112.0;
    config.tolerance_ms = 5'000;
    config.feedback_enabled = true;
    ImputationPlan built = BuildImputationPlan(config);

    SimExecutorOptions sim;
    sim.cost.SetDefaultTupleCostMs(0.05);
    sim.control_latency_ms = latency_ms;
    SimExecutor exec(sim);
    Status st = exec.Run(built.plan.get());
    NSTREAM_CHECK(st.ok()) << st.ToString();

    TimelinessOptions topt;
    topt.ts_attr = kImpTimestamp;
    topt.flag_attr = kImpFlag;
    topt.tolerance_ms = config.tolerance_ms;
    topt.total_expected_imputed = built.expected_dirty;
    TimelinessReport report =
        AnalyzeTimeliness(built.sink->collected(), topt);

    table.AddRow(
        {FormatDouble(latency_ms / 1000.0, 1) + "s",
         std::to_string(built.impute->imputations()),
         std::to_string(built.impute->stats().work_avoided),
         FormatDouble(100 * report.imputed_dropped_or_late_fraction(),
                      1) +
             "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("reading: slower feedback -> fewer avoided queries and "
              "more late tuples; the mechanism degrades gracefully to "
              "the no-feedback baseline.\n\n");
}

void GuardExpiryAblation() {
  std::printf("%s",
              ExperimentBanner("A2",
                               "Guard expiration via delimited "
                               "attributes (Experiment 2 plan)")
                  .c_str());
  TextTable table({"expiry", "guards installed", "guards expired",
                   "live at end"});
  // The viewer's feedback is time-bounded, so guards expire as windows
  // close. The counterfactual (no expiry) is simulated by counting
  // installed-but-never-expired patterns.
  SpeedmapPlanConfig config;
  config.traffic.num_segments = 9;
  config.traffic.detectors_per_segment = 4;
  config.traffic.duration_ms = 4LL * 3'600'000;
  config.scheme = FeedbackPolicy::kExploit;
  config.switch_every_ms = 120'000;
  SpeedmapPlan built = BuildSpeedmapPlan(config);
  SyncExecutor exec;
  Status st = exec.Run(built.plan.get());
  NSTREAM_CHECK(st.ok()) << st.ToString();

  const GuardSet& g = built.average->group_guards();
  table.AddRow({"punctuation-driven (ours)",
                std::to_string(g.total_installed()),
                std::to_string(g.total_expired()),
                std::to_string(g.size())});
  table.AddRow({"none (counterfactual)",
                std::to_string(g.total_installed()), "0",
                std::to_string(g.total_installed())});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reading: every installed guard was reclaimed by embedded "
      "punctuation covering it; without expiry the guard set grows "
      "linearly with feedback volume (%llu patterns over 4 h), which "
      "is §4.4's argument for restricting feedback to delimited "
      "attributes.\n",
      static_cast<unsigned long long>(g.total_installed()));
}

}  // namespace
}  // namespace nstream

int main() {
  nstream::FeedbackLatencyAblation();
  nstream::GuardExpiryAblation();
  return 0;
}
