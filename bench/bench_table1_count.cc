// Reproduces Table 1: the COUNT characterization. Prints the published
// rows, verifies the implemented decision logic agrees with each row,
// and measures the cost/benefit of each response class with
// google-benchmark: group feedback (purge+guard) vs aggregate-bound
// feedback (guard-output-only) vs the feedback-unaware null response.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/logging.h"
#include "core/aggregate_feedback.h"
#include "core/characterization.h"
#include "exec/sync_executor.h"
#include "metrics/report.h"
#include "ops/sink.h"
#include "ops/vector_source.h"
#include "ops/window_aggregate.h"
#include "punct/pattern_parser.h"

namespace nstream {
namespace {

SchemaPtr InSchema() {
  return Schema::Make({{"group", ValueType::kInt64},
                       {"timestamp", ValueType::kTimestamp},
                       {"value", ValueType::kDouble}});
}

std::vector<TimedElement> MakeStream(int n, int groups) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(n) + static_cast<size_t>(n) / 64);
  for (int i = 0; i < n; ++i) {
    TimeMs ts = static_cast<TimeMs>(i) * 10;
    out.push_back(TimedElement::OfTuple(
        ts, TupleBuilder().I64(i % groups).Ts(ts).D(i % 97).Build()));
    if (i % 512 == 511) {
      PunctPattern p = PunctPattern::AllWildcard(3).With(
          1, AttrPattern::Le(Value::Timestamp(ts)));
      out.push_back(TimedElement::OfPunct(ts, Punctuation(std::move(p))));
    }
  }
  return out;
}

struct CountRun {
  uint64_t updates = 0;
  uint64_t emitted = 0;
  uint64_t purged = 0;
};

// Run COUNT(group, 1s windows) over `n` tuples; `feedback_text` (if
// any) is injected once the sink has seen `inject_after` results.
CountRun RunCount(benchmark::State* state, int n,
                  const char* feedback_text) {
  QueryPlan plan;
  auto* src = plan.AddOp(std::make_unique<VectorSource>(
      "src", InSchema(), MakeStream(n, /*groups=*/16)));
  WindowAggregateOptions opt;
  opt.ts_attr = 1;
  opt.group_attrs = {0};
  opt.agg_attr = -1;  // COUNT(*)
  opt.kind = AggKind::kCount;
  opt.window = {1'000, 1'000};
  auto* count =
      plan.AddOp(std::make_unique<WindowAggregate>("count", opt));
  auto injected = std::make_shared<bool>(false);
  std::string fb_text = feedback_text == nullptr ? "" : feedback_text;
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false},
      [fb_text, injected](const Tuple&,
                          TimeMs) -> std::vector<FeedbackPunctuation> {
        if (fb_text.empty() || *injected) return {};
        *injected = true;
        return {ParseFeedback(fb_text).value()};
      }));
  NSTREAM_CHECK(plan.Connect(*src, *count).ok());
  NSTREAM_CHECK(plan.Connect(*count, *sink).ok());

  SyncExecutor exec;
  Status st = exec.Run(&plan);
  if (!st.ok() && state != nullptr) {
    state->SkipWithError(st.ToString().c_str());
  }
  CountRun out;
  out.updates = count->updates_applied();
  out.emitted = sink->consumed();
  out.purged = count->stats().state_purged;
  return out;
}

void BM_Count_NullResponse(benchmark::State& state) {
  for (auto _ : state) {
    CountRun r = RunCount(&state, static_cast<int>(state.range(0)),
                          nullptr);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Count_NullResponse)->Arg(1 << 14)->Arg(1 << 16);

void BM_Count_GroupFeedback(benchmark::State& state) {
  // Table 1 row 1: ¬[g,*] — purge group, guard input, propagate.
  // (group 3 for every remaining window: wildcard window_end.)
  for (auto _ : state) {
    CountRun r = RunCount(&state, static_cast<int>(state.range(0)),
                          "~[*,3,*]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Count_GroupFeedback)->Arg(1 << 14)->Arg(1 << 16);

void BM_Count_LowerBoundFeedback(benchmark::State& state) {
  // Table 1 row 3: ¬[*,≥a] — purge matching partials, tombstone,
  // propagate G.
  for (auto _ : state) {
    CountRun r = RunCount(&state, static_cast<int>(state.range(0)),
                          "~[*,*,>=5]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Count_LowerBoundFeedback)->Arg(1 << 14)->Arg(1 << 16);

void BM_Count_UpperBoundFeedback(benchmark::State& state) {
  // Table 1 row 4: ¬[*,≤a] — output guard only (count may still grow).
  for (auto _ : state) {
    CountRun r = RunCount(&state, static_cast<int>(state.range(0)),
                          "~[*,*,<=5]");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Count_UpperBoundFeedback)->Arg(1 << 14)->Arg(1 << 16);

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  using namespace nstream;
  std::printf("%s", ExperimentBanner("T1 (Table 1)",
                                     "A characterization for COUNT")
                        .c_str());
  std::printf("%s\n",
              RenderCharacterization("Published rows:", Table1Count())
                  .c_str());

  // Verify the implemented decision logic row by row (the output
  // schema is (window_end, g, count): positions {0,1} group, {2} agg).
  struct RowCheck {
    const char* fb;
    const char* expect;
    bool ok;
  };
  auto decide = [](const char* text) {
    return DecideAggFeedback(ParseFeedback(text).value().pattern(),
                             {0, 1}, {2},
                             AggMonotonicity::kNonDecreasing);
  };
  AggFeedbackDecision r1 = decide("~[*,3,*]");
  AggFeedbackDecision r2 = decide("~[*,*,7]");
  AggFeedbackDecision r3 = decide("~[*,*,>=7]");
  AggFeedbackDecision r4 = decide("~[*,*,<=7]");
  RowCheck checks[] = {
      {"~[g,*]", "purge groups + guard input + propagate",
       r1.purge_groups && r1.guard_input_groups && r1.propagate_groups},
      {"~[*,a]", "guard output only",
       r2.guard_output && !r2.purge_groups && !r2.purge_by_partial},
      {"~[*,>=a]", "purge matching partials (G) + tombstone",
       r3.purge_by_partial},
      {"~[*,<=a]", "guard output only",
       r4.guard_output && !r4.purge_by_partial && !r4.purge_groups},
  };
  std::printf("Implemented decisions vs published rows:\n");
  bool all_ok = true;
  for (const RowCheck& c : checks) {
    std::printf("  %-10s -> %-45s [%s]\n", c.fb, c.expect,
                c.ok ? "MATCH" : "MISMATCH");
    all_ok = all_ok && c.ok;
  }

  // Demonstrate the effect sizes once outside the timed loops.
  CountRun null_run = RunCount(nullptr, 1 << 16, nullptr);
  CountRun group_run = RunCount(nullptr, 1 << 16, "~[*,3,*]");
  CountRun lower_run = RunCount(nullptr, 1 << 16, "~[*,*,>=5]");
  std::printf(
      "\nEffect at 65536 tuples / 16 groups:\n"
      "  null response:      %llu updates, %llu results\n"
      "  ~[*,3,*] feedback:  %llu updates, %llu results, %llu purged\n"
      "  ~[*,*,>=5]:         %llu updates, %llu results, %llu purged\n\n",
      (unsigned long long)null_run.updates,
      (unsigned long long)null_run.emitted,
      (unsigned long long)group_run.updates,
      (unsigned long long)group_run.emitted,
      (unsigned long long)group_run.purged,
      (unsigned long long)lower_run.updates,
      (unsigned long long)lower_run.emitted,
      (unsigned long long)lower_run.purged);
  if (!all_ok) return 1;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
