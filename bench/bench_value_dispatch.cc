// Value-dispatch microbench: the flat 16-byte tagged-union Value
// against a frozen copy of the std::variant representation it
// replaced (pre-flat value.h/value.cc, verbatim). Measures the three
// per-value operations the Table 2 join's result construction and
// probe path are made of — copy (construct + destroy), Hash, and
// TryCompare — on two mixes: the all-numeric Table 2 key shape and a
// 25%-string mix. Records ns-per-op rows and the combined
// copy+hash+compare speedup into BENCH_hotpath.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

#include "bench_json.h"
#include "types/value.h"

namespace nstream {
namespace {

// ---- Frozen variant-based reference (the pre-flat representation) ----
//
// Fidelity note: in the pre-flat engine, TryCompare and HashSlow
// lived behind a translation-unit boundary (value.cc) — every call
// paid the function-call cost. NSTREAM_REF_NOINLINE reproduces that
// boundary here; without it the reference would be measured in a
// better-than-historical configuration. The flat representation's win
// includes the header inlining its 16-byte layout made profitable
// (the 40-byte variant body was never a realistic inlining
// candidate). Copy and the Hash fast path were header-inline before
// and stay inlinable here.

#define NSTREAM_REF_NOINLINE __attribute__((noinline))

class VariantValue {
 public:
  VariantValue() : type_(ValueType::kNull) {}
  VariantValue(const VariantValue& o)
      : type_(o.type_), rep_(CopyRep(o.rep_)) {}
  VariantValue& operator=(const VariantValue& o) {
    if (this != &o) {
      type_ = o.type_;
      if (o.rep_.index() == kBorrowedIndex) {
        const StringRef& r = std::get<StringRef>(o.rep_);
        rep_.emplace<std::string>(r.data, r.len);
      } else {
        rep_ = o.rep_;
      }
    }
    return *this;
  }
  VariantValue(VariantValue&&) = default;
  VariantValue& operator=(VariantValue&&) = default;

  static VariantValue Int64(int64_t v) {
    VariantValue x;
    x.type_ = ValueType::kInt64;
    x.rep_ = v;
    return x;
  }
  static VariantValue Timestamp(int64_t v) {
    VariantValue x;
    x.type_ = ValueType::kTimestamp;
    x.rep_ = v;
    return x;
  }
  static VariantValue Double(double v) {
    VariantValue x;
    x.type_ = ValueType::kDouble;
    x.rep_ = v;
    return x;
  }
  static VariantValue String(std::string v) {
    VariantValue x;
    x.type_ = ValueType::kString;
    x.rep_ = std::move(v);
    return x;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt64 || type_ == ValueType::kDouble ||
           type_ == ValueType::kTimestamp;
  }
  std::string_view string_view() const {
    if (rep_.index() == kBorrowedIndex) {
      const StringRef& r = std::get<StringRef>(rep_);
      return std::string_view(r.data, r.len);
    }
    return std::get<std::string>(rep_);
  }

  NSTREAM_REF_NOINLINE
  bool TryCompare(const VariantValue& other, int* out) const {
    if (is_null() || other.is_null()) {
      if (is_null() && other.is_null()) {
        *out = 0;
      } else {
        *out = is_null() ? -1 : 1;
      }
      return true;
    }
    if (is_numeric() && other.is_numeric()) {
      if (type_ != ValueType::kDouble &&
          other.type_ != ValueType::kDouble) {
        int64_t a = std::get<int64_t>(rep_);
        int64_t b = std::get<int64_t>(other.rep_);
        *out = a < b ? -1 : (a > b ? 1 : 0);
        return true;
      }
      double a = type_ == ValueType::kDouble
                     ? std::get<double>(rep_)
                     : static_cast<double>(std::get<int64_t>(rep_));
      double b = other.type_ == ValueType::kDouble
                     ? std::get<double>(other.rep_)
                     : static_cast<double>(std::get<int64_t>(other.rep_));
      *out = a < b ? -1 : (a > b ? 1 : 0);
      return true;
    }
    if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
      int c = string_view().compare(other.string_view());
      *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
      return true;
    }
    if (type_ == ValueType::kBool && other.type_ == ValueType::kBool) {
      *out = static_cast<int>(std::get<bool>(rep_)) -
             static_cast<int>(std::get<bool>(other.rep_));
      return true;
    }
    return false;
  }

  size_t Hash() const {
    if (rep_.index() == 2) {
      int64_t v = std::get<int64_t>(rep_);
      if (v > -Value::kDoubleExactBound && v < Value::kDoubleExactBound) {
        return std::hash<int64_t>{}(v);
      }
    }
    return HashSlow();
  }

 private:
  struct StringRef {
    const char* data;
    size_t len;
  };
  static constexpr size_t kBorrowedIndex = 5;

  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           std::string, StringRef>;
  static Rep CopyRep(const Rep& r) {
    if (r.index() == kBorrowedIndex) {
      const StringRef& s = std::get<StringRef>(r);
      return Rep(std::in_place_type<std::string>, s.data, s.len);
    }
    return r;
  }

  NSTREAM_REF_NOINLINE size_t HashSlow() const {
    switch (type_) {
      case ValueType::kNull:
        return 0x9ae16a3b2f90404fULL;
      case ValueType::kBool:
        return std::get<bool>(rep_) ? 0x1234567 : 0x7654321;
      case ValueType::kInt64:
      case ValueType::kTimestamp: {
        int64_t v = std::get<int64_t>(rep_);
        if (v > -Value::kDoubleExactBound &&
            v < Value::kDoubleExactBound) {
          return std::hash<int64_t>{}(v);
        }
        return std::hash<double>{}(static_cast<double>(v));
      }
      case ValueType::kDouble: {
        double d = std::get<double>(rep_);
        if (d > -static_cast<double>(Value::kDoubleExactBound) &&
            d < static_cast<double>(Value::kDoubleExactBound)) {
          int64_t i = static_cast<int64_t>(d);
          if (static_cast<double>(i) == d) {
            return std::hash<int64_t>{}(i);
          }
        }
        return std::hash<double>{}(d);
      }
      case ValueType::kString:
        return std::hash<std::string_view>{}(string_view());
    }
    return 0;
  }

  ValueType type_;
  Rep rep_;
};

// ---- Workload construction ----
// The Table 2 output tuple copies (a, t, id, b) — four numeric values
// — per result; real streams sprinkle string attributes in. Both
// mixes are measured; the headline "dispatch" rows use the numeric
// mix (the measured hot path), the string rows keep the clone cost
// honest.

template <typename V>
std::vector<V> NumericMix(int n) {
  std::vector<V> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0:
        out.push_back(V::Int64(i % 100));
        break;
      case 1:
        out.push_back(V::Timestamp(i % 50));
        break;
      case 2:
        out.push_back(V::Int64(i % 7));
        break;
      default:
        out.push_back(V::Double(i * 0.25));
        break;
    }
  }
  return out;
}

// 25% strings of one length class mixed into the numeric stream.
// Length classes: ≤15 bytes copies as a flat inline value (no
// allocation at all — the tag byte carries the length, so the whole
// 15-byte payload is usable) where the variant's std::string used
// SSO; >15 bytes both sides heap-allocate. The mid12 class used to be
// the variant SSO's remaining advantage (the flat rep heap-cloned
// 9-15 byte strings when only ≤8 inlined) and is kept as the
// regression row for the inline-cap extension.
template <typename V>
std::vector<V> StringMix(int n, size_t str_len) {
  std::vector<V> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i % 4 == 3) {
      std::string s;
      for (size_t k = 0; k < str_len; ++k) {
        s.push_back(static_cast<char>('a' + (i + static_cast<int>(k)) % 26));
      }
      out.push_back(V::String(std::move(s)));
    } else {
      out.push_back(V::Int64(i % 100));
    }
  }
  return out;
}

/// ns per op of `body`, which performs `ops_per_call` operations.
/// Best of 3 windows: the recorded number is the attainable cost, not
/// the scheduler's mood on a shared 1-core box (applied identically
/// to both representations).
template <typename Fn>
double MeasureNsPerOp(double ops_per_call, Fn&& body) {
  double best = 0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best,
                    benchjson::MeasurePerSec(ops_per_call, 60.0, body));
  }
  return 1e9 / best;
}

template <typename V>
double CopyNs(const std::vector<V>& values) {
  return MeasureNsPerOp(static_cast<double>(values.size()), [&] {
    for (const V& v : values) {
      V copy(v);  // copy-construct + destroy: the result-build cost
      benchmark::DoNotOptimize(copy);
    }
  });
}

template <typename V>
double HashNs(const std::vector<V>& values) {
  return MeasureNsPerOp(static_cast<double>(values.size()), [&] {
    size_t acc = 0;
    for (const V& v : values) acc ^= v.Hash();
    benchmark::DoNotOptimize(acc);
  });
}

template <typename V>
double CompareNs(const std::vector<V>& values) {
  return MeasureNsPerOp(static_cast<double>(values.size()), [&] {
    int acc = 0;
    const size_t n = values.size();
    for (size_t i = 0; i + 1 < n; ++i) {
      int c = 0;
      if (values[i].TryCompare(values[i + 1], &c)) acc += c;
    }
    benchmark::DoNotOptimize(acc);
  });
}

void RecordJson() {
  // Working set sized to a page burst (~2 pages of 128 tuples x 4
  // values) — the unit the page-at-a-time engine actually streams
  // through an operator. The flat rep keeps it L1-resident (16 KB vs
  // 48 KB); that cache footprint is part of the design, not an
  // artifact.
  const int kN = 1024;
  auto flat_num = NumericMix<Value>(kN);
  auto var_num = NumericMix<VariantValue>(kN);

  double flat_copy = CopyNs(flat_num);
  double var_copy = CopyNs(var_num);
  double flat_hash = HashNs(flat_num);
  double var_hash = HashNs(var_num);
  double flat_cmp = CompareNs(flat_num);
  double var_cmp = CompareNs(var_num);

  double combined_flat = flat_copy + flat_hash + flat_cmp;
  double combined_var = var_copy + var_hash + var_cmp;

  std::printf(
      "value dispatch (ns/op, numeric mix):\n"
      "  copy     flat %.2f  variant %.2f  (%.2fx)\n"
      "  hash     flat %.2f  variant %.2f  (%.2fx)\n"
      "  compare  flat %.2f  variant %.2f  (%.2fx)\n"
      "  combined %.2f vs %.2f -> %.2fx\n"
      "  sizeof: flat %zu  variant %zu\n",
      flat_copy, var_copy, var_copy / flat_copy, flat_hash, var_hash,
      var_hash / flat_hash, flat_cmp, var_cmp, var_cmp / flat_cmp,
      combined_flat, combined_var, combined_var / combined_flat,
      sizeof(Value), sizeof(VariantValue));

  std::map<std::string, double> metrics = {
      {"value.flat_copy_ns", flat_copy},
      {"value.variant_copy_ns", var_copy},
      {"value.copy_speedup", var_copy / flat_copy},
      {"value.flat_hash_ns", flat_hash},
      {"value.variant_hash_ns", var_hash},
      {"value.hash_speedup", var_hash / flat_hash},
      {"value.flat_compare_ns", flat_cmp},
      {"value.variant_compare_ns", var_cmp},
      {"value.compare_speedup", var_cmp / flat_cmp},
      {"value.dispatch_speedup", combined_var / combined_flat},
      {"value.sizeof_flat", static_cast<double>(sizeof(Value))},
      {"value.sizeof_variant", static_cast<double>(sizeof(VariantValue))},
      {"value.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  };

  // String-copy rows, one per length class (see StringMix).
  const struct {
    const char* key;
    size_t len;
  } kStringClasses[] = {
      {"short6", 6},   // flat inline vs variant SSO
      {"mid12", 12},   // flat inline (since the 15-byte cap) vs SSO
      {"mid15", 15},   // the inline-cap boundary itself
      {"long24", 24},  // both heap-allocate
  };
  for (const auto& cls : kStringClasses) {
    double flat = CopyNs(StringMix<Value>(kN, cls.len));
    double var = CopyNs(StringMix<VariantValue>(kN, cls.len));
    std::printf("  copy (25%% %s strings) flat %.2f  variant %.2f  (%.2fx)\n",
                cls.key, flat, var, var / flat);
    metrics["value.flat_copy_" + std::string(cls.key) + "_ns"] = flat;
    metrics["value.variant_copy_" + std::string(cls.key) + "_ns"] = var;
    metrics["value.copy_" + std::string(cls.key) + "_speedup"] =
        var / flat;
  }

  benchjson::RecordAll(metrics);
}

// Google-benchmark registrations so the bench-smoke CI job exercises
// the same bodies with its tiny iteration budget.

void BM_FlatCopyNumeric(benchmark::State& state) {
  auto values = NumericMix<Value>(1024);
  for (auto _ : state) {
    for (const Value& v : values) {
      Value copy(v);
      benchmark::DoNotOptimize(copy);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_FlatCopyNumeric);

void BM_VariantCopyNumeric(benchmark::State& state) {
  auto values = NumericMix<VariantValue>(1024);
  for (auto _ : state) {
    for (const VariantValue& v : values) {
      VariantValue copy(v);
      benchmark::DoNotOptimize(copy);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_VariantCopyNumeric);

void BM_FlatHash(benchmark::State& state) {
  auto values = NumericMix<Value>(1024);
  for (auto _ : state) {
    size_t acc = 0;
    for (const Value& v : values) acc ^= v.Hash();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FlatHash);

void BM_FlatCompare(benchmark::State& state) {
  auto values = NumericMix<Value>(1024);
  for (auto _ : state) {
    int acc = 0;
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      int c = 0;
      if (values[i].TryCompare(values[i + 1], &c)) acc += c;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FlatCompare);

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
