// Machine-readable bench output: a flat {"metric": value} JSON object
// shared by the hot-path benches (BENCH_hotpath.json). Each bench
// binary read-modify-writes its own entries so the file accumulates a
// perf trajectory across runs and across binaries — later PRs diff it.
//
// Path: $NSTREAM_BENCH_JSON if set, else ./BENCH_hotpath.json (the
// bench runner's working directory).

#ifndef NSTREAM_BENCH_BENCH_JSON_H_
#define NSTREAM_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace nstream {
namespace benchjson {

inline std::string FilePath() {
  const char* env = std::getenv("NSTREAM_BENCH_JSON");
  return env != nullptr ? env : "BENCH_hotpath.json";
}

// Parses the flat one-entry-per-line object this header writes. Not a
// general JSON parser; it only needs to round-trip its own output.
inline std::map<std::string, double> ReadExisting(
    const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    size_t colon = line.find(':', q2);
    if (colon == std::string::npos) continue;
    out[line.substr(q1 + 1, q2 - q1 - 1)] =
        std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return out;
}

/// Merge `updates` into the JSON file (existing keys not in `updates`
/// are preserved).
inline void RecordAll(const std::map<std::string, double>& updates) {
  std::string path = FilePath();
  std::map<std::string, double> all = ReadExisting(path);
  for (const auto& [k, v] : updates) all[k] = v;
  std::ofstream out(path);
  out << "{\n";
  size_t i = 0;
  for (const auto& [k, v] : all) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out << "  \"" << k << "\": " << buf
        << (++i == all.size() ? "\n" : ",\n");
  }
  out << "}\n";
  std::printf("[bench_json] wrote %zu metrics to %s\n", all.size(),
              path.c_str());
}

/// Wall-clock throughput of `body` (which performs `items_per_call`
/// logical items per invocation): runs for ~`budget_ms` and returns
/// items/sec.
template <typename Fn>
double MeasurePerSec(double items_per_call, double budget_ms, Fn&& body) {
  using Clock = std::chrono::steady_clock;
  // Warm-up.
  body();
  auto start = Clock::now();
  double items = 0;
  while (true) {
    body();
    items += items_per_call;
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
    if (ms >= budget_ms) return items / (ms / 1000.0);
  }
}

}  // namespace benchjson
}  // namespace nstream

#endif  // NSTREAM_BENCH_BENCH_JSON_H_
