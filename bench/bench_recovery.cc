// Checkpoint/recovery characterization (ROADMAP item 5): what a
// punctuation-aligned checkpoint costs. Records
//
//   checkpoint.ckpt_ms_*     barrier-inject → published snapshot file,
//                            measured mid-run on the Table 2 join with
//                            the manual (deterministic) scheduler, at
//                            two state sizes;
//   checkpoint.restore_ms_*  SubmitRecovered latency: read + verify the
//                            snapshot, rebuild operator state, refill
//                            queues, rewind sources;
//   checkpoint.snapshot_kb_* published payload size at each state size
//                            (the "vs state size" axis);
//   checkpoint.overhead      steady-state wall-time ratio of a pooled
//                            run with 4 interleaved blocking
//                            checkpoints over the same run with none.
//
// Latency rows depend on how many CPUs the host exposes (the pooled
// overhead row especially), so checkpoint.online_cpus is recorded next
// to the batch for cross-box comparability.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/clock.h"
#include "common/logging.h"
#include "exec/scheduler.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"
#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"

namespace nstream {
namespace {

// ---- Table 2 join plan (bench_scheduler's shape) -------------------

SchemaPtr LeftSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

std::vector<TimedElement> SideStream(int n, bool left, int key_mod) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TimeMs at = static_cast<TimeMs>(i);
    if (left) {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(i % 100)
                  .I64(i % key_mod)
                  .I64(i % 7)
                  .Build()));
    } else {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(i % key_mod)
                  .I64(i % 7)
                  .I64(i % 100)
                  .Build()));
    }
  }
  return out;
}

struct JoinPlan {
  std::unique_ptr<QueryPlan> plan;
  VectorSource* left = nullptr;
};

JoinPlan MakeJoinPlan(int n) {
  JoinPlan out;
  out.plan = std::make_unique<QueryPlan>();
  QueryPlan& plan = *out.plan;
  out.left = plan.AddOp(std::make_unique<VectorSource>(
      "A", LeftSchema(), SideStream(n, true, 50)));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "B", RightSchema(), SideStream(n, false, 50)));
  JoinOptions jopt;
  jopt.left_keys = {1, 2};   // (t, id)
  jopt.right_keys = {0, 1};  // (t, id)
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  NSTREAM_CHECK(plan.Connect(*out.left, 0, *join, 0).ok());
  NSTREAM_CHECK(plan.Connect(*right, 0, *join, 1).ok());
  NSTREAM_CHECK(plan.Connect(*join, *sink).ok());
  NSTREAM_CHECK(plan.Finalize().ok());
  return out;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Drive a manual scheduler until `done()` (deterministic: always the
// lowest-index ready task). Stall or budget overrun is a CHECK —
// benches measure, they don't tolerate.
void DriveUntil(Scheduler* sched, VirtualClock* clock,
                const std::function<bool()>& done) {
  for (uint64_t steps = 0; steps < 50'000'000; ++steps) {
    if (done()) return;
    sched->ReleaseDue(clock->NowMs());
    if (sched->ReadyCount() == 0) {
      std::optional<TimeMs> due = sched->NextDueMs();
      NSTREAM_CHECK(due.has_value());
      clock->AdvanceTo(*due);
      continue;
    }
    NSTREAM_CHECK(sched->StepReadyAt(0).ok());
  }
  NSTREAM_CHECK(false);  // budget exhausted
}

// ---- Checkpoint write / restore latency vs state size --------------

struct CkptLatency {
  double ckpt_ms = 0;     // StartCheckpoint → result published
  double restore_ms = 0;  // SubmitRecovered on the rebuilt plan
  double snapshot_kb = 0;
};

CkptLatency MeasureCheckpoint(int n) {
  const std::string path =
      "/tmp/nstream_bench_ckpt_" + std::to_string(n) + ".nsp";
  CkptLatency out;

  // Build up join state: drive the plan until the left source is half
  // consumed, so both hash tables hold ~n/2 rows at the barrier.
  JoinPlan p = MakeJoinPlan(n);
  VirtualClock clock;
  SchedulerOptions so;
  so.manual = true;
  so.virtual_clock = &clock;
  Scheduler sched(so);
  Result<QueryId> id = sched.Submit(p.plan.get());
  NSTREAM_CHECK(id.ok());
  DriveUntil(&sched, &clock, [&] {
    return p.left->position() >= static_cast<size_t>(n) / 2;
  });

  // Checkpoint completion latency: barrier injection, per-port
  // alignment, quiesce, serialize, atomic publish. Includes the
  // slices that carry the barrier to the sink — that is the real
  // latency a caller sees.
  auto t0 = std::chrono::steady_clock::now();
  NSTREAM_CHECK(
      sched.StartCheckpoint(id.value(), CheckpointOptions{path}).ok());
  std::optional<Status> res;
  DriveUntil(&sched, &clock, [&] {
    res = sched.CheckpointResult(id.value());
    return res.has_value();
  });
  out.ckpt_ms = ElapsedMs(t0);
  NSTREAM_CHECK(res->ok());

  Result<std::string> payload = ReadSnapshotFile(path);
  NSTREAM_CHECK(payload.ok());
  out.snapshot_kb = static_cast<double>(payload.value().size()) / 1024.0;

  DriveUntil(&sched, &clock, [&] { return sched.AllDone(); });
  NSTREAM_CHECK(sched.Wait(id.value()).ok());

  // Restore latency: rebuild the plan from the same construction code
  // and load the snapshot into it (read + verify + operator state +
  // queue refill + source rewind), exactly the recovery entry point.
  JoinPlan q = MakeJoinPlan(n);
  VirtualClock clock2;
  SchedulerOptions so2;
  so2.manual = true;
  so2.virtual_clock = &clock2;
  Scheduler sched2(so2);
  auto t1 = std::chrono::steady_clock::now();
  Result<QueryId> rid = sched2.SubmitRecovered(q.plan.get(), path);
  out.restore_ms = ElapsedMs(t1);
  NSTREAM_CHECK(rid.ok());
  DriveUntil(&sched2, &clock2, [&] { return sched2.AllDone(); });
  NSTREAM_CHECK(sched2.Wait(rid.value()).ok());

  std::remove(path.c_str());
  return out;
}

// ---- Steady-state overhead: checkpoints on vs off (pooled) ---------

double PooledPlainMs(int n) {
  JoinPlan p = MakeJoinPlan(n);
  PooledExecutor exec(PooledExecutorOptions{});
  auto start = std::chrono::steady_clock::now();
  NSTREAM_CHECK(exec.Run(p.plan.get()).ok());
  return ElapsedMs(start);
}

double PooledCheckpointedMs(int n, int checkpoints) {
  const std::string path = "/tmp/nstream_bench_ckpt_overhead.nsp";
  JoinPlan p = MakeJoinPlan(n);
  PooledExecutor exec(PooledExecutorOptions{});
  auto start = std::chrono::steady_clock::now();
  Result<QueryId> id = exec.Submit(p.plan.get());
  NSTREAM_CHECK(id.ok());
  for (int i = 0; i < checkpoints; ++i) {
    // FailedPrecondition = the query finished before this checkpoint
    // could start; that just means the run outpaced the cadence.
    Status st = exec.Checkpoint(id.value(), path);
    if (st.code() == StatusCode::kFailedPrecondition) break;
    NSTREAM_CHECK(st.ok());
  }
  NSTREAM_CHECK(exec.Wait(id.value()).ok());
  double ms = ElapsedMs(start);
  std::remove(path.c_str());
  return ms;
}

// ---- google-benchmark registrations (bench-smoke coverage) ---------

void BM_Checkpoint_Manual(benchmark::State& state) {
  for (auto _ : state) {
    CkptLatency l = MeasureCheckpoint(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(l.ckpt_ms);
  }
}
BENCHMARK(BM_Checkpoint_Manual)->Arg(1 << 10);

void BM_Checkpoint_PooledOverhead(benchmark::State& state) {
  for (auto _ : state) {
    double ms = PooledCheckpointedMs(1 << 11, /*checkpoints=*/2);
    benchmark::DoNotOptimize(ms);
  }
}
BENCHMARK(BM_Checkpoint_PooledOverhead);

// ---- Recorded trajectory metrics -----------------------------------

void RecordHotpathJson() {
  // Latency vs state size: ~1k rows resident per join side vs ~8k.
  // Warm once, then best (min) of 3 — same methodology note as
  // table2_8192.
  const int kSmall = 1 << 11;
  const int kLarge = 1 << 14;
  MeasureCheckpoint(kSmall);  // warm-up
  CkptLatency small, large;
  small.ckpt_ms = small.restore_ms = 1e18;
  large.ckpt_ms = large.restore_ms = 1e18;
  for (int i = 0; i < 3; ++i) {
    CkptLatency s = MeasureCheckpoint(kSmall);
    small.ckpt_ms = std::min(small.ckpt_ms, s.ckpt_ms);
    small.restore_ms = std::min(small.restore_ms, s.restore_ms);
    small.snapshot_kb = s.snapshot_kb;
    CkptLatency l = MeasureCheckpoint(kLarge);
    large.ckpt_ms = std::min(large.ckpt_ms, l.ckpt_ms);
    large.restore_ms = std::min(large.restore_ms, l.restore_ms);
    large.snapshot_kb = l.snapshot_kb;
  }

  // Steady-state overhead: 4 blocking checkpoints interleaved with a
  // pooled Table 2 run, against the same run with none. Best-of-3 on
  // both sides; the ratio is the acceptance row (1.0 = free).
  const int kOverheadN = 1 << 13;
  PooledPlainMs(kOverheadN);  // warm-up
  double plain = 1e18, ckpted = 1e18;
  for (int i = 0; i < 3; ++i) {
    plain = std::min(plain, PooledPlainMs(kOverheadN));
    ckpted = std::min(ckpted,
                      PooledCheckpointedMs(kOverheadN, /*checkpoints=*/4));
  }

  benchjson::RecordAll({
      {"checkpoint.ckpt_ms_small", small.ckpt_ms},
      {"checkpoint.ckpt_ms_large", large.ckpt_ms},
      {"checkpoint.restore_ms_small", small.restore_ms},
      {"checkpoint.restore_ms_large", large.restore_ms},
      {"checkpoint.snapshot_kb_small", small.snapshot_kb},
      {"checkpoint.snapshot_kb_large", large.snapshot_kb},
      {"checkpoint.overhead", ckpted / plain},
      {"checkpoint.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
