// Reproduces Figures 5 and 6 (Experiment 1): the imputation query plan
// (Fig. 4a) run over 5 000 tuples with clean/dirty alternation, first
// without feedback (PACE as plain UNION — Fig. 5) and then with PACE
// producing assumed feedback to IMPUTE (Fig. 6).
//
// Paper-reported values: 97% of imputed tuples arrive beyond the
// tolerated divergence without feedback; only 29% of imputed tuples
// are dropped with feedback enabled.
//
// Output: the summary table plus fig5.csv / fig6.csv containing the
// (series, tuple id, output time) points behind the scatter plots.

#include <cstdio>
#include <algorithm>
#include <fstream>

#include "common/string_util.h"
#include "exec/sim_executor.h"
#include "metrics/report.h"
#include "metrics/timeliness.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

struct RunOutput {
  TimelinessReport report;
  ImputationPlan built;
  double sim_end_ms = 0;
};

RunOutput RunOnce(bool feedback) {
  ImputationPlanConfig config;
  config.stream.num_tuples = 5'000;      // the paper's run length
  config.stream.inter_arrival_ms = 40;   // ~200 s of stream
  config.impute_cost_ms = 112.0;         // archival query latency
  config.tolerance_ms = 5'000;           // PACE's tolerated divergence
  config.feedback_enabled = feedback;

  RunOutput out;
  out.built = BuildImputationPlan(config);
  SimExecutorOptions sim;
  sim.cost.SetDefaultTupleCostMs(0.05);
  SimExecutor exec(sim);
  Status st = exec.Run(out.built.plan.get());
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  out.sim_end_ms = exec.now_ms();

  TimelinessOptions topt;
  topt.ts_attr = kImpTimestamp;
  topt.flag_attr = kImpFlag;
  topt.tolerance_ms = config.tolerance_ms;
  topt.total_expected_imputed = out.built.expected_dirty;
  out.report = AnalyzeTimeliness(out.built.sink->collected(), topt);
  return out;
}

void WriteCsv(const char* path, const TimelinessReport& report) {
  std::ofstream f(path);
  f << SeriesCsv(report);
  std::printf("  series written to %s (%zu clean, %zu imputed points)\n",
              path, report.clean.size(), report.imputed.size());
}

}  // namespace
}  // namespace nstream

int main() {
  using namespace nstream;

  std::printf("%s", ExperimentBanner(
                        "E1 (Figures 5 & 6)",
                        "Imputation query plan: output pattern with and "
                        "without feedback punctuation")
                        .c_str());
  std::printf(
      "plan: DUPLICATE -> sigma_C / sigma_notC -> IMPUTE -> PACE "
      "(Fig. 4a)\nworkload: 5000 tuples, alternating clean/dirty, "
      "40 ms inter-arrival; IMPUTE 112 ms/query; tolerance 5 s\n\n");

  RunOutput without = RunOnce(/*feedback=*/false);
  RunOutput with = RunOnce(/*feedback=*/true);

  TextTable table({"metric", "no feedback (Fig.5)",
                   "feedback (Fig.6)", "paper"});
  table.AddRow({"imputed dropped-or-late",
                FormatDouble(100 * without.report
                                       .imputed_dropped_or_late_fraction(),
                             1) +
                    "%",
                FormatDouble(
                    100 * with.report.imputed_dropped_or_late_fraction(),
                    1) +
                    "%",
                "97% / 29%"});
  table.AddRow(
      {"imputed delivered",
       std::to_string(without.report.imputed_delivered),
       std::to_string(with.report.imputed_delivered), "-"});
  table.AddRow({"clean delivered",
                std::to_string(without.report.clean_delivered),
                std::to_string(with.report.clean_delivered), "-"});
  table.AddRow(
      {"max imputed lag (s)",
       FormatDouble(static_cast<double>(
                        without.report.imputed.empty()
                            ? 0
                            : without.report.imputed.back().lag_ms) /
                        1000.0,
                    1),
       FormatDouble(
           [&] {
             TimeMs mx = 0;
             for (const auto& p : with.report.imputed) {
               mx = std::max(mx, p.lag_ms);
             }
             return static_cast<double>(mx) / 1000.0;
           }(),
           1),
       "diverges / bounded"});
  table.AddRow({"feedback messages", "0",
                std::to_string(with.built.pace->stats().feedback_sent),
                "-"});
  table.AddRow(
      {"archival queries avoided", "0",
       std::to_string(with.built.impute->stats().work_avoided), "-"});
  std::printf("%s\n", table.Render().c_str());

  WriteCsv("fig5.csv", without.report);
  WriteCsv("fig6.csv", with.report);

  // Shape checks (exit non-zero if the reproduction regresses).
  bool ok =
      without.report.imputed_dropped_or_late_fraction() > 0.85 &&
      with.report.imputed_dropped_or_late_fraction() < 0.45 &&
      with.report.imputed_dropped_or_late_fraction() > 0.10;
  std::printf("\nshape check (%s): no-feedback >85%% late, feedback "
              "10-45%% dropped\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
