// Ablation: punctuation-pattern matching and subsumption cost.
// Feedback metadata rides the hot path (every guarded tuple is tested
// against installed patterns), so these costs bound the overhead of
// the whole mechanism — the reason Experiment 2 sees "no discernible
// overhead" from more frequent feedback.
//
// The bench also carries a frozen copy of the seed's Result-based
// matcher (`seed_ref`) so the interpreted-vs-compiled before/after is
// measured inside one binary and recorded to BENCH_hotpath.json.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "core/guards.h"
#include "punct/compiled_pattern.h"
#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {
namespace {

// ---- Frozen seed matcher (pre-hot-path-overhaul reference) ----
// Replicates the original AttrPattern::Matches, which routed every
// comparison through Result<int> Value::Compare — one Status+optional
// construction per attribute test.
namespace seed_ref {

bool CmpKnown(const Value& a, const Value& b, int* out) {
  Result<int> r = a.Compare(b);
  if (!r.ok()) return false;
  *out = r.value();
  return true;
}

bool AttrMatches(const AttrPattern& p, const Value& v) {
  if (p.op() == PatternOp::kAny) return true;
  if (p.op() == PatternOp::kIsNull) return v.is_null();
  if (p.op() == PatternOp::kNotNull) return !v.is_null();
  if (v.is_null()) return false;
  int c;
  switch (p.op()) {
    case PatternOp::kEq:
      return CmpKnown(v, p.operand(), &c) && c == 0;
    case PatternOp::kNe:
      return CmpKnown(v, p.operand(), &c) && c != 0;
    case PatternOp::kLt:
      return CmpKnown(v, p.operand(), &c) && c < 0;
    case PatternOp::kLe:
      return CmpKnown(v, p.operand(), &c) && c <= 0;
    case PatternOp::kGt:
      return CmpKnown(v, p.operand(), &c) && c > 0;
    case PatternOp::kGe:
      return CmpKnown(v, p.operand(), &c) && c >= 0;
    case PatternOp::kRange: {
      int clo, chi;
      return CmpKnown(v, p.operand(), &clo) && clo >= 0 &&
             CmpKnown(v, p.hi(), &chi) && chi <= 0;
    }
    default:
      return false;
  }
}

bool PatternMatches(const PunctPattern& p, const Tuple& t) {
  if (t.size() != p.arity()) return false;
  for (int i = 0; i < p.arity(); ++i) {
    if (!AttrMatches(p.attr(i), t.value(i))) return false;
  }
  return true;
}

}  // namespace seed_ref

Tuple MakeTuple(int64_t i) {
  return TupleBuilder()
      .I64(i % 9)
      .I64(i % 360)
      .Ts(i * 20'000)
      .D(static_cast<double>(i % 70))
      .Build();
}

PunctPattern MakePattern(int64_t i) {
  return PunctPattern::AllWildcard(4)
      .With(0, AttrPattern::Ne(Value::Int64(i % 9)))
      .With(2, AttrPattern::Range(Value::Timestamp(i * 1'000),
                                  Value::Timestamp((i + 60) * 1'000)));
}

// The dominant feedback shape: a watermark prefix over the timestamp.
PunctPattern MakeTsPrefixPattern(int64_t bound) {
  return PunctPattern::AllWildcard(4).With(
      2, AttrPattern::Le(Value::Timestamp(bound)));
}

void BM_PatternMatchSeedReference(benchmark::State& state) {
  PunctPattern p = MakePattern(7);
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seed_ref::PatternMatches(p, t));
  }
}
BENCHMARK(BM_PatternMatchSeedReference);

void BM_PatternMatch(benchmark::State& state) {
  PunctPattern p = MakePattern(7);
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_CompiledPatternMatch(benchmark::State& state) {
  CompiledPattern p(MakePattern(7));
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_CompiledPatternMatch);

void BM_CompiledPatternMatchTsPrefix(benchmark::State& state) {
  CompiledPattern p(MakeTsPrefixPattern(1'000'000));
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_CompiledPatternMatchTsPrefix);

void BM_PatternMatchWildcardOnly(benchmark::State& state) {
  PunctPattern p = PunctPattern::AllWildcard(4);
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_PatternMatchWildcardOnly);

void BM_PatternSubsumes(benchmark::State& state) {
  PunctPattern wide = MakePattern(7);
  PunctPattern narrow =
      MakePattern(7).With(1, AttrPattern::Eq(Value::Int64(5)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wide.Subsumes(narrow));
  }
}
BENCHMARK(BM_PatternSubsumes);

void BM_GuardSetBlocks(benchmark::State& state) {
  // Cost of an input guard holding `k` active patterns — the per-tuple
  // overhead an exploiting operator pays. GuardSet now matches via
  // CompiledPattern internally.
  GuardSet guards;
  for (int64_t i = 0; i < state.range(0); ++i) {
    guards.Add(MakePattern(i * 101));
  }
  Tuple t = MakeTuple(999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guards.Blocks(t));
  }
  state.SetLabel(std::to_string(guards.size()) + " guards");
}
BENCHMARK(BM_GuardSetBlocks)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_GuardSetAddWithSubsumption(benchmark::State& state) {
  // Installing a guard dedups against existing patterns.
  for (auto _ : state) {
    state.PauseTiming();
    GuardSet guards;
    for (int64_t i = 0; i < state.range(0); ++i) {
      guards.Add(MakePattern(i * 101));
    }
    state.ResumeTiming();
    guards.Add(MakePattern(state.range(0) * 101));
    benchmark::DoNotOptimize(guards.size());
  }
}
BENCHMARK(BM_GuardSetAddWithSubsumption)->Arg(4)->Arg(64);

void RecordHotpathJson() {
  using benchjson::MeasurePerSec;
  const int kReps = 512;
  PunctPattern p = MakePattern(7);
  CompiledPattern cp(p);
  CompiledPattern ts(MakeTsPrefixPattern(1'000'000));
  Tuple t = MakeTuple(12345);

  double seed = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) acc ^= seed_ref::PatternMatches(p, t);
    benchmark::DoNotOptimize(acc);
  });
  double interp = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) acc ^= p.Matches(t);
    benchmark::DoNotOptimize(acc);
  });
  double compiled = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) acc ^= cp.Matches(t);
    benchmark::DoNotOptimize(acc);
  });
  double ts_prefix = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) acc ^= ts.Matches(t);
    benchmark::DoNotOptimize(acc);
  });

  GuardSet guards;
  for (int64_t i = 0; i < 16; ++i) guards.Add(MakePattern(i * 101));
  Tuple miss = MakeTuple(999);
  double guard16 = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) acc ^= guards.Blocks(miss);
    benchmark::DoNotOptimize(acc);
  });
  double guard16_seed = MeasurePerSec(kReps, 120.0, [&] {
    bool acc = false;
    for (int i = 0; i < kReps; ++i) {
      for (const PunctPattern& g : guards.patterns()) {
        if (seed_ref::PatternMatches(g, miss)) {
          acc = true;
          break;
        }
      }
    }
    benchmark::DoNotOptimize(acc);
  });

  benchjson::RecordAll({
      {"punct_match.seed_interpreted_per_sec", seed},
      {"punct_match.interpreted_per_sec", interp},
      {"punct_match.compiled_per_sec", compiled},
      {"punct_match.compiled_ts_prefix_per_sec", ts_prefix},
      {"punct_match.compiled_speedup_vs_seed", compiled / seed},
      {"guard_blocks.16guards_seed_per_sec", guard16_seed},
      {"guard_blocks.16guards_per_sec", guard16},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
