// Ablation: punctuation-pattern matching and subsumption cost.
// Feedback metadata rides the hot path (every guarded tuple is tested
// against installed patterns), so these costs bound the overhead of
// the whole mechanism — the reason Experiment 2 sees "no discernible
// overhead" from more frequent feedback.

#include <benchmark/benchmark.h>

#include "core/guards.h"
#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {
namespace {

Tuple MakeTuple(int64_t i) {
  return TupleBuilder()
      .I64(i % 9)
      .I64(i % 360)
      .Ts(i * 20'000)
      .D(static_cast<double>(i % 70))
      .Build();
}

PunctPattern MakePattern(int64_t i) {
  return PunctPattern::AllWildcard(4)
      .With(0, AttrPattern::Ne(Value::Int64(i % 9)))
      .With(2, AttrPattern::Range(Value::Timestamp(i * 1'000),
                                  Value::Timestamp((i + 60) * 1'000)));
}

void BM_PatternMatch(benchmark::State& state) {
  PunctPattern p = MakePattern(7);
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_PatternMatchWildcardOnly(benchmark::State& state) {
  PunctPattern p = PunctPattern::AllWildcard(4);
  Tuple t = MakeTuple(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Matches(t));
  }
}
BENCHMARK(BM_PatternMatchWildcardOnly);

void BM_PatternSubsumes(benchmark::State& state) {
  PunctPattern wide = MakePattern(7);
  PunctPattern narrow =
      MakePattern(7).With(1, AttrPattern::Eq(Value::Int64(5)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wide.Subsumes(narrow));
  }
}
BENCHMARK(BM_PatternSubsumes);

void BM_GuardSetBlocks(benchmark::State& state) {
  // Cost of an input guard holding `k` active patterns — the per-tuple
  // overhead an exploiting operator pays.
  GuardSet guards;
  for (int64_t i = 0; i < state.range(0); ++i) {
    guards.Add(MakePattern(i * 101));
  }
  Tuple t = MakeTuple(999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(guards.Blocks(t));
  }
  state.SetLabel(std::to_string(guards.size()) + " guards");
}
BENCHMARK(BM_GuardSetBlocks)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_GuardSetAddWithSubsumption(benchmark::State& state) {
  // Installing a guard dedups against existing patterns.
  for (auto _ : state) {
    state.PauseTiming();
    GuardSet guards;
    for (int64_t i = 0; i < state.range(0); ++i) {
      guards.Add(MakePattern(i * 101));
    }
    state.ResumeTiming();
    guards.Add(MakePattern(state.range(0) * 101));
    benchmark::DoNotOptimize(guards.size());
  }
}
BENCHMARK(BM_GuardSetAddWithSubsumption)->Arg(4)->Arg(64);

}  // namespace
}  // namespace nstream

BENCHMARK_MAIN();
