// Shard-parallel join bench: 1/2/4/8-shard throughput of the
// partitioned SymmetricHashJoin, recorded into BENCH_hotpath.json next
// to the join-probe baseline (bench_table2_join).
//
// Three measurements:
//   * STAGE — the join stage driven directly, shards fed in bursts the
//     way the executor's paged queues deliver work. Methodology
//     matches join.hashed_probes_per_sec (no queue hops), isolating
//     what partitioning does to the join itself: each shard's tables
//     are 1/N the footprint, so probes hit higher in the cache
//     hierarchy even on a single core (radix-partitioning locality).
//   * E2E — the full fan-out/fan-in subplan (2 Exchanges → N shards →
//     ShardMerge → sink) under the ThreadedExecutor. On a multi-core
//     host the N shard threads run concurrently and this is where the
//     parallel speedup shows; on a single-core host it degenerates to
//     the locality effect minus scheduling overhead. The host's core
//     count is recorded (sharded_join.online_cpus) so the trajectory
//     file stays interpretable across machines.
//   * EQUIVALENCE — the 4-shard output is verified tuple-identical (up
//     to ordering) to the 1-shard baseline before any number is
//     recorded; a mismatch hard-fails the bench.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "exec/sync_executor.h"
#include "exec/threaded_executor.h"
#include "ops/exchange.h"
#include "ops/sink.h"
#include "ops/vector_source.h"

namespace nstream {
namespace {

// Schema: two join-key attributes (k1, k2), a timestamp, a payload.
// Two-attribute keys make the probe's collision check touch the stored
// tuple's values block, as real multi-attribute equi-joins do.
SchemaPtr SideSchema(const char* payload_name) {
  return Schema::Make({{"k1", ValueType::kInt64},
                       {"k2", ValueType::kInt64},
                       {"ts", ValueType::kTimestamp},
                       {payload_name, ValueType::kInt64}});
}

const std::vector<int> kKeyAttrs = {0, 1};

Tuple SideTuple(int64_t key, int64_t payload) {
  return TupleBuilder()
      .I64(key)
      .I64(key * 7 + 1)
      .Ts(1)
      .I64(payload)
      .Build();
}

std::vector<int64_t> ShuffledKeys(int num_keys, uint64_t seed) {
  std::vector<int64_t> keys(static_cast<size_t>(num_keys));
  for (int i = 0; i < num_keys; ++i) keys[static_cast<size_t>(i)] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(keys.begin(), keys.end(), rng);
  return keys;
}

// ---------------------------------------------------------------------------
// STAGE: shards driven directly in executor-sized bursts.
// ---------------------------------------------------------------------------

class NullContext final : public ExecContext {
 public:
  void EmitTuple(int, Tuple t) override {
    checksum_ += static_cast<uint64_t>(t.size());
  }
  void EmitPunct(int, Punctuation) override {}
  void EmitEos(int) override {}
  void EmitFeedback(int, FeedbackPunctuation) override {}
  void EmitControl(int, ControlMessage) override {}
  TimeMs NowMs() const override { return 0; }
  void ChargeMs(double) override {}
  uint64_t checksum_ = 0;
};

struct StageResult {
  double tuples_per_sec = 0;
  uint64_t joined = 0;
};

StageResult StageRun(int num_shards, int num_keys, int reps) {
  // Pre-partition both sides exactly as the Exchange would.
  std::vector<std::vector<Tuple>> left(
      static_cast<size_t>(num_shards)),
      right(static_cast<size_t>(num_shards));
  for (int64_t k : ShuffledKeys(num_keys, 11)) {
    Tuple t = SideTuple(k, k);
    int s = Exchange::ShardOfHash(Exchange::RoutingHash(t, kKeyAttrs),
                                  num_shards);
    left[static_cast<size_t>(s)].push_back(std::move(t));
  }
  for (int64_t k : ShuffledKeys(num_keys, 23)) {
    Tuple t = SideTuple(k, -k);
    int s = Exchange::ShardOfHash(Exchange::RoutingHash(t, kKeyAttrs),
                                  num_shards);
    right[static_cast<size_t>(s)].push_back(std::move(t));
  }

  const size_t kBurst = 4096;  // ≈ a queue's worth of pages
  StageResult out;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<std::unique_ptr<SymmetricHashJoin>> shards;
    std::vector<NullContext> ctxs(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      JoinOptions jo;
      jo.left_keys = kKeyAttrs;
      jo.right_keys = kKeyAttrs;
      jo.shard_index = s;
      jo.shard_count = num_shards;
      auto join = std::make_unique<SymmetricHashJoin>(
          "stage.shard" + std::to_string(s), jo);
      NSTREAM_CHECK(join->SetInputSchema(0, SideSchema("a")).ok());
      NSTREAM_CHECK(join->SetInputSchema(1, SideSchema("b")).ok());
      NSTREAM_CHECK(join->InferSchemas().ok());
      NSTREAM_CHECK(
          join->Open(&ctxs[static_cast<size_t>(s)]).ok());
      shards.push_back(std::move(join));
    }

    auto t0 = std::chrono::steady_clock::now();
    for (int side = 0; side < 2; ++side) {
      const auto& parts = side == 0 ? left : right;
      std::vector<size_t> pos(static_cast<size_t>(num_shards), 0);
      bool more = true;
      while (more) {
        more = false;
        for (int s = 0; s < num_shards; ++s) {
          const std::vector<Tuple>& mine =
              parts[static_cast<size_t>(s)];
          size_t& p = pos[static_cast<size_t>(s)];
          size_t end = std::min(p + kBurst, mine.size());
          for (; p < end; ++p) {
            NSTREAM_CHECK(shards[static_cast<size_t>(s)]
                              ->ProcessTuple(side, mine[p])
                              .ok());
          }
          if (p < mine.size()) more = true;
        }
      }
    }
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    uint64_t joined = 0;
    for (const auto& j : shards) joined += j->joined_count();
    NSTREAM_CHECK(joined == static_cast<uint64_t>(num_keys));
    out.joined = joined;
    out.tuples_per_sec =
        std::max(out.tuples_per_sec, 2.0 * num_keys / sec);
  }
  return out;
}

// ---------------------------------------------------------------------------
// E2E: source → Exchange×2 → N shards → ShardMerge → sink, threaded.
// ---------------------------------------------------------------------------

std::vector<TimedElement> SideElements(int num_keys, uint64_t seed,
                                       int64_t payload_sign) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(num_keys));
  TimeMs at = 0;
  for (int64_t k : ShuffledKeys(num_keys, seed)) {
    out.push_back(
        TimedElement::OfTuple(at++, SideTuple(k, payload_sign * k)));
  }
  return out;
}

struct E2eResult {
  double tuples_per_sec = 0;
  uint64_t consumed = 0;
  std::vector<std::string> sorted_rows;  // filled when record=true
};

E2eResult E2eRun(int num_shards, int num_keys, bool record, int reps,
                 bool threaded) {
  E2eResult out;
  for (int rep = 0; rep < reps; ++rep) {
    QueryPlan plan;
    auto* left = plan.AddOp(std::make_unique<VectorSource>(
        "L", SideSchema("a"), SideElements(num_keys, 11, 1)));
    auto* right = plan.AddOp(std::make_unique<VectorSource>(
        "R", SideSchema("b"), SideElements(num_keys, 23, -1)));
    JoinOptions jo;
    jo.left_keys = kKeyAttrs;
    jo.right_keys = kKeyAttrs;
    Result<PartitionedJoinPlan> pj =
        MakePartitionedJoin(&plan, "pjoin", jo, num_shards);
    NSTREAM_CHECK(pj.ok());
    auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
        "sink", CollectorSinkOptions{.record_tuples = record}));
    NSTREAM_CHECK(
        plan.Connect(*left, 0, *pj.value().left_exchange, 0).ok());
    NSTREAM_CHECK(
        plan.Connect(*right, 0, *pj.value().right_exchange, 0).ok());
    NSTREAM_CHECK(
        plan.Connect(pj.value().merge->id(), 0, sink->id(), 0).ok());

    auto t0 = std::chrono::steady_clock::now();
    Status st;
    if (threaded) {
      ThreadedExecutorOptions opts;
      opts.queue = DataQueueOptions{/*page_size=*/256, /*max_pages=*/64};
      opts.max_pages_per_wake = 8;
      ThreadedExecutor exec(opts);
      st = exec.Run(&plan);
    } else {
      SyncExecutor exec;
      st = exec.Run(&plan);
    }
    NSTREAM_CHECK(st.ok());
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    out.consumed = sink->consumed();
    out.tuples_per_sec =
        std::max(out.tuples_per_sec, 2.0 * num_keys / sec);
    if (record) {
      out.sorted_rows.clear();
      for (const CollectedTuple& row : sink->collected()) {
        out.sorted_rows.push_back(row.tuple.ToString());
      }
      std::sort(out.sorted_rows.begin(), out.sorted_rows.end());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

void RecordHotpathJson() {
  const int kStageKeys = 1 << 15;  // ~10 MB of join state at 1 shard
  const int kE2eKeys = 1 << 15;
  const int kEquivKeys = 1 << 13;

  // Equivalence gate first: no number is recorded unless the 4-shard
  // topology produces exactly the 1-shard result set.
  E2eResult base =
      E2eRun(1, kEquivKeys, /*record=*/true, 1, /*threaded=*/false);
  E2eResult quad =
      E2eRun(4, kEquivKeys, /*record=*/true, 1, /*threaded=*/false);
  E2eResult quad_threaded =
      E2eRun(4, kEquivKeys, /*record=*/true, 1, /*threaded=*/true);
  bool equivalent = base.sorted_rows == quad.sorted_rows &&
                    base.sorted_rows == quad_threaded.sorted_rows &&
                    !base.sorted_rows.empty();
  std::printf("[sharded_join] equivalence 4v1: %s (%zu rows)\n",
              equivalent ? "OK" : "MISMATCH", base.sorted_rows.size());
  NSTREAM_CHECK(equivalent);

  std::map<std::string, double> metrics;
  metrics["sharded_join.equivalence_4v1_ok"] = 1.0;
  metrics["sharded_join.online_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());

  double stage1 = 0;
  for (int shards : {1, 2, 4, 8}) {
    StageResult r = StageRun(shards, kStageKeys, /*reps=*/3);
    if (shards == 1) stage1 = r.tuples_per_sec;
    metrics["sharded_join.stage_shards" + std::to_string(shards) +
            "_tuples_per_sec"] = r.tuples_per_sec;
    std::printf(
        "[sharded_join] stage  %d shard(s): %8.0f tuples/sec (%.2fx)\n",
        shards, r.tuples_per_sec, r.tuples_per_sec / stage1);
  }
  metrics["sharded_join.stage_speedup_4shards"] =
      metrics["sharded_join.stage_shards4_tuples_per_sec"] / stage1;

  double e2e1 = 0;
  for (int shards : {1, 2, 4, 8}) {
    E2eResult r =
        E2eRun(shards, kE2eKeys, /*record=*/false, 5, /*threaded=*/true);
    if (shards == 1) e2e1 = r.tuples_per_sec;
    metrics["sharded_join.e2e_shards" + std::to_string(shards) +
            "_tuples_per_sec"] = r.tuples_per_sec;
    std::printf(
        "[sharded_join] e2e    %d shard(s): %8.0f tuples/sec (%.2fx)\n",
        shards, r.tuples_per_sec, r.tuples_per_sec / e2e1);
  }
  // Headline speedup = the stage measurement: same methodology as the
  // join.hashed_probes_per_sec baseline and stable on loaded hosts;
  // the (scheduler-sensitive) end-to-end ratio is recorded alongside.
  metrics["sharded_join.speedup_4shards"] =
      metrics["sharded_join.stage_speedup_4shards"];
  metrics["sharded_join.e2e_speedup_4shards"] =
      metrics["sharded_join.e2e_shards4_tuples_per_sec"] / e2e1;

  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "[sharded_join] NOTE: single-core host — e2e speedup reflects "
        "partitioned-table cache locality only; shard threads cannot "
        "run concurrently here.\n");
  }
  benchjson::RecordAll(metrics);
}

void BM_ShardedJoinStage(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int keys = 1 << 14;
  for (auto _ : state) {
    StageResult r = StageRun(shards, keys, 1);
    benchmark::DoNotOptimize(r.joined);
  }
  state.SetItemsProcessed(state.iterations() * 2 * keys);
}
BENCHMARK(BM_ShardedJoinStage)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ShardedJoinE2eThreaded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int keys = 1 << 13;
  for (auto _ : state) {
    E2eResult r = E2eRun(shards, keys, false, 1, /*threaded=*/true);
    benchmark::DoNotOptimize(r.consumed);
  }
  state.SetItemsProcessed(state.iterations() * 2 * keys);
}
BENCHMARK(BM_ShardedJoinE2eThreaded)->Arg(1)->Arg(4);

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
