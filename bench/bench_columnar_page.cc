// Columnar-page microbench: the SoA ColumnarBlock against the row
// (StreamElement-vector) page layout on the primitives the layouts
// differ on — result construction (AddRow+Set per attribute vs arena
// tuple + element push), filtering (selection-vector index edit vs
// in-place compaction) across a keep-rate sweep, the compiled-pattern
// purge (hoisted all-int64 column loop vs per-tuple Matches), and the
// row-materialization bridge (EnsureRowLayout). Records
// columnar.* rows into BENCH_hotpath.json; the e2e join A/B lives in
// bench_table2_join (join.columnar_e2e_speedup).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "punct/compiled_pattern.h"
#include "punct/punct_pattern.h"
#include "stream/columnar.h"
#include "stream/page.h"
#include "types/tuple.h"
#include "types/value.h"

namespace nstream {
namespace {

// The Table 2 join output shape: 4 int64 attributes.
constexpr uint32_t kCols = 4;

// Build one columnar page of n rows (the join/project emit path:
// AddRow + one Set per attribute).
Page BuildColumnarPage(int n) {
  Page page;
  ColumnarBlock* b =
      page.BeginColumnar(kCols, static_cast<uint32_t>(n));
  for (int i = 0; i < n; ++i) {
    uint32_t r = b->AddRow(i, i);
    b->Set(0, r, Value::Int64(i % 100));
    b->Set(1, r, Value::Timestamp(i));
    b->Set(2, r, Value::Int64(i % 7));
    b->Set(3, r, Value::Int64(i));
  }
  return page;
}

// Build one row page of n tuples (the pre-columnar emit path: arena
// tuple, one Append per attribute, element push).
Page BuildRowPage(int n) {
  Page page;
  page.Reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Tuple t(page.arena(), static_cast<int>(kCols));
    t.Append(Value::Int64(i % 100));
    t.Append(Value::Timestamp(i));
    t.Append(Value::Int64(i % 7));
    t.Append(Value::Int64(i));
    t.set_id(i);
    page.Add(StreamElement::OfTuple(std::move(t)));
  }
  return page;
}

/// Best-of-3 ns/op (same methodology as the other hot-path benches:
/// the attainable cost, not the scheduler's mood).
template <typename Fn>
double MeasureNsPerOp(double ops_per_call, Fn&& body) {
  double best = 0;
  for (int i = 0; i < 3; ++i) {
    best = std::max(best,
                    benchjson::MeasurePerSec(ops_per_call, 60.0, body));
  }
  return 1e9 / best;
}

// Filter predicate with an exact keep rate in [0,1]: keep when
// (row * 7919) % 1000 < keep_permille — cheap, branch-predictable
// enough to not dominate, identical across layouts.
inline bool KeepRow(int64_t row, int keep_permille) {
  return (row * 7919) % 1000 < keep_permille;
}

void RecordJson() {
  const int kN = 4096;  // a large page / small page burst
  std::map<std::string, double> metrics;

  // ---- Result construction (the emit path) ----
  double col_emit = MeasureNsPerOp(kN, [&] {
    Page p = BuildColumnarPage(kN);
    benchmark::DoNotOptimize(p.size());
  });
  double row_emit = MeasureNsPerOp(kN, [&] {
    Page p = BuildRowPage(kN);
    benchmark::DoNotOptimize(p.size());
  });
  std::printf("columnar emit %.2f ns/tuple  row emit %.2f ns/tuple  (%.2fx)\n",
              col_emit, row_emit, row_emit / col_emit);
  metrics["columnar.emit_ns_per_tuple"] = col_emit;
  metrics["columnar.row_emit_ns_per_tuple"] = row_emit;
  metrics["columnar.emit_speedup"] = row_emit / col_emit;

  // ---- Filter: selection vector vs compaction, keep-rate sweep ----
  // Both arms build the page and filter it (the build is the emit
  // cost above; the difference between the arms at equal keep rate is
  // the filtering discipline). Row compaction mirrors
  // Operator::FilterPageInPlace: survivors shift down, vector
  // truncates. Selection-vector filtering writes surviving indices
  // and never touches the columns.
  const int kKeeps[] = {100, 500, 900, 990};  // permille
  for (int keep : kKeeps) {
    double col = MeasureNsPerOp(kN, [&] {
      Page p = BuildColumnarPage(kN);
      ColumnarBlock* b = p.columnar();
      b->KeepIf([&](uint32_t r) {
        return KeepRow(b->column(3)[r].unchecked_int64(), keep);
      });
      benchmark::DoNotOptimize(p.size());
    });
    double row = MeasureNsPerOp(kN, [&] {
      Page p = BuildRowPage(kN);
      std::vector<StreamElement>& elems = p.mutable_elements();
      size_t kept = 0;
      for (size_t i = 0; i < elems.size(); ++i) {
        if (!KeepRow(elems[i].tuple().value(3).unchecked_int64(),
                     keep)) {
          continue;
        }
        if (kept != i) elems[kept] = std::move(elems[i]);
        ++kept;
      }
      elems.resize(kept);
      benchmark::DoNotOptimize(p.size());
    });
    std::string tag = "keep" + std::to_string(keep);
    std::printf("filter %s: selvec %.2f  compact %.2f ns/tuple (%.2fx)\n",
                tag.c_str(), col, row, row / col);
    metrics["columnar.filter_" + tag + "_selvec_ns"] = col;
    metrics["columnar.filter_" + tag + "_compact_ns"] = row;
    metrics["columnar.filter_" + tag + "_speedup"] = row / col;
  }

  // ---- Compiled-pattern purge: hoisted int64 columns vs row walk ----
  // The dominant feedback exploit (timestamp-range purge) over both
  // layouts. The columnar path hoists the tag dispatch into one
  // column-class check and runs raw unchecked_int64 compares.
  PunctPattern purge_p = PunctPattern::AllWildcard(4).With(
      1, AttrPattern::Range(Value::Timestamp(kN / 4),
                            Value::Timestamp(3 * kN / 4)));
  CompiledPattern purge(purge_p);
  double col_purge = MeasureNsPerOp(kN, [&] {
    Page p = BuildColumnarPage(kN);
    benchmark::DoNotOptimize(purge.FilterColumnarPurge(p.columnar()));
  });
  double row_purge = MeasureNsPerOp(kN, [&] {
    Page p = BuildRowPage(kN);
    std::vector<StreamElement>& elems = p.mutable_elements();
    size_t kept = 0;
    for (size_t i = 0; i < elems.size(); ++i) {
      if (purge.Matches(elems[i].tuple())) continue;
      if (kept != i) elems[kept] = std::move(elems[i]);
      ++kept;
    }
    elems.resize(kept);
    benchmark::DoNotOptimize(p.size());
  });
  std::printf("purge: columnar %.2f  row %.2f ns/tuple (%.2fx)\n",
              col_purge, row_purge, row_purge / col_purge);
  metrics["columnar.purge_ns_per_tuple"] = col_purge;
  metrics["columnar.row_purge_ns_per_tuple"] = row_purge;
  metrics["columnar.purge_speedup"] = row_purge / col_purge;

  // ---- The materialization bridge ----
  // What a row-requiring boundary pays to consume a columnar page
  // (gather-alias every selected row), on top of the build.
  double materialize = MeasureNsPerOp(kN, [&] {
    Page p = BuildColumnarPage(kN);
    p.EnsureRowLayout();
    benchmark::DoNotOptimize(p.elements().size());
  });
  metrics["columnar.emit_plus_materialize_ns_per_tuple"] = materialize;
  metrics["columnar.online_cpus"] =
      static_cast<double>(std::thread::hardware_concurrency());
  benchjson::RecordAll(metrics);
}

// Google-benchmark registrations so the bench-smoke CI job exercises
// the same bodies with its tiny iteration budget.

void BM_ColumnarEmit(benchmark::State& state) {
  for (auto _ : state) {
    Page p = BuildColumnarPage(1024);
    benchmark::DoNotOptimize(p.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ColumnarEmit);

void BM_RowEmit(benchmark::State& state) {
  for (auto _ : state) {
    Page p = BuildRowPage(1024);
    benchmark::DoNotOptimize(p.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RowEmit);

void BM_SelectionVectorFilter(benchmark::State& state) {
  for (auto _ : state) {
    Page p = BuildColumnarPage(1024);
    ColumnarBlock* b = p.columnar();
    b->KeepIf([&](uint32_t r) {
      return KeepRow(b->column(3)[r].unchecked_int64(), 900);
    });
    benchmark::DoNotOptimize(p.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SelectionVectorFilter);

void BM_ColumnarPurge(benchmark::State& state) {
  CompiledPattern purge(PunctPattern::AllWildcard(4).With(
      1, AttrPattern::Range(Value::Timestamp(256),
                            Value::Timestamp(768))));
  for (auto _ : state) {
    Page p = BuildColumnarPage(1024);
    benchmark::DoNotOptimize(purge.FilterColumnarPurge(p.columnar()));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ColumnarPurge);

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  if (!nstream::TupleArenas::enabled()) {
    std::fprintf(stderr, "columnar pages require arenas\n");
    return 1;
  }
  nstream::RecordJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
