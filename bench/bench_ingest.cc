// Ingest front-end characterization (ROADMAP: network ingest edge).
// Records
//
//   ingest.parse_ns_per_tuple      zero-copy wire → arena-page decode
//                                  (DecodeTupleBatchInto), per tuple;
//   ingest.parse_ns_per_tuple_ref  the materialize-then-copy reference
//                                  (DecodeTupleBatchOwned into heap
//                                  tuples, then re-homed into a page);
//   ingest.parse_speedup           ref / zero-copy — the acceptance row
//                                  (must stay >= 1.3);
//   ingest.frames_per_sec          end-to-end conduit → IngestSource →
//                                  sink on the pooled executor;
//   ingest.frames_per_sec_4p       the same end-to-end path through the
//                                  TCP serving edge with 4 concurrent
//                                  producer connections fanned into one
//                                  conduit (loopback sockets included);
//   ingest.feedback_roundtrip_ns   engine-edge feedback loop: intent
//                                  exploited + relayed by the source,
//                                  decoded back on the client side.
//
// Throughput rows depend on how many CPUs the host exposes, so
// ingest.online_cpus is recorded next to the batch for cross-box
// comparability.

#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "exec/scheduler.h"
#include "ingest/ingest_client.h"
#include "ingest/ingest_source.h"
#include "ingest/tcp_acceptor.h"
#include "ops/sink.h"
#include "punct/pattern_parser.h"
#include "stream/columnar.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

// The same mixed shape the ingest tests use: two fixed-width columns
// around a string column whose lengths straddle the inline/arena
// boundary — the case where a materializing decode pays for heap
// strings the zero-copy path never creates.
SchemaPtr IngestSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"s", ValueType::kString},
                       {"b", ValueType::kInt64}});
}

std::vector<Tuple> MakeTuples(int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  const std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  for (int i = 0; i < n; ++i) {
    out.push_back(TupleBuilder()
                      .I64(i)
                      .S(alphabet.substr(0, 1 + (i % 24)))
                      .I64(i * 10)
                      .Build());
  }
  return out;
}

std::string EncodeStream(const std::vector<Tuple>& tuples,
                         size_t batch_size) {
  std::string out;
  AppendHelloFrame(&out, 3);
  for (size_t i = 0; i < tuples.size(); i += batch_size) {
    AppendTupleBatchFrame(&out, tuples.data() + i,
                          std::min(batch_size, tuples.size() - i));
  }
  AppendEosFrame(&out);
  return out;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---- parse path A/B ------------------------------------------------

struct ParseCost {
  double zero_copy_ns_per_tuple = 0;
  double ref_ns_per_tuple = 0;
};

ParseCost MeasureParse(int batch_tuples, int reps) {
  std::vector<Tuple> tuples = MakeTuples(batch_tuples);
  std::string frame;
  AppendTupleBatchFrame(&frame, tuples);
  FrameView f;
  size_t consumed = 0;
  NSTREAM_CHECK(ScanFrame(frame, &f, &consumed).ok());

  ScopedTupleArenasEnabled arenas(true);
  ScopedPageColumnarEnabled columnar(true);
  const double denom =
      static_cast<double>(batch_tuples) * static_cast<double>(reps);

  // Zero-copy: wire payload straight into the page arena.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    Page page;
    int64_t next_id = 1;
    NSTREAM_CHECK(DecodeTupleBatchInto(f.payload, 3, &page,
                                       /*allow_columnar=*/true, &next_id)
                      .ok());
    benchmark::DoNotOptimize(page.size());
  }
  ParseCost out;
  out.zero_copy_ns_per_tuple = ElapsedNs(t0) / denom;

  // Reference: materialize owned tuples, then copy them into a page —
  // what a front-end without the arena-aware decode has to do.
  auto t1 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    std::vector<Tuple> owned;
    NSTREAM_CHECK(DecodeTupleBatchOwned(f.payload, 3, &owned).ok());
    Page page;
    int64_t next_id = 1;
    for (Tuple& t : owned) {
      if (t.id() == 0) t.set_id(next_id++);
      page.AddTuple(std::move(t));
    }
    benchmark::DoNotOptimize(page.size());
  }
  out.ref_ns_per_tuple = ElapsedNs(t1) / denom;
  return out;
}

// ---- end-to-end frame throughput (pooled) --------------------------

double MeasureFramesPerSec(int n_tuples, size_t batch_size) {
  std::vector<Tuple> tuples = MakeTuples(n_tuples);
  const std::string stream = EncodeStream(tuples, batch_size);

  FrameConduitOptions copts;
  copts.buffer_bytes = 4096;
  copts.num_buffers = stream.size() / copts.buffer_bytes + 2;
  FrameConduit conduit(copts);
  NSTREAM_CHECK(conduit.WriteAll(stream));
  conduit.CloseWrite();

  auto plan = std::make_unique<QueryPlan>();
  auto* src = plan->AddOp(
      std::make_unique<IngestSource>("ingest", IngestSchema(), &conduit));
  auto* sink = plan->AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  NSTREAM_CHECK(plan->Connect(*src, *sink).ok());
  NSTREAM_CHECK(plan->Finalize().ok());

  PooledExecutor exec(PooledExecutorOptions{});
  auto start = std::chrono::steady_clock::now();
  NSTREAM_CHECK(exec.Run(plan.get()).ok());
  const double ns = ElapsedNs(start);
  return static_cast<double>(src->admitted_frames()) / (ns * 1e-9);
}

// ---- multi-producer throughput through the TCP serving edge --------

bool SendAllFd(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Graceful producer exit: half-close, then drain engine → producer
/// frames (the hello ack) until the acceptor closes the connection.
/// An abrupt close() would RST and discard unread frames acceptor-side.
void DrainAndClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  char tmp[4096];
  for (;;) {
    ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
}

double MeasureAcceptorFramesPerSec(int producers, int n_tuples,
                                   size_t batch_size,
                                   std::string* stats_out = nullptr) {
  std::vector<std::string> wire(static_cast<size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    const uint64_t id = static_cast<uint64_t>(p) + 1;
    std::string& w = wire[static_cast<size_t>(p)];
    AppendHelloFrame(&w, 3, id, 0);
    std::vector<Tuple> tuples = MakeTuples(n_tuples);
    for (size_t i = 0; i < tuples.size(); i += batch_size) {
      AppendTupleBatchFrame(&w, tuples.data() + i,
                            std::min(batch_size, tuples.size() - i));
    }
    AppendEosFrame(&w);
  }

  FrameConduit conduit;
  TcpAcceptor acceptor(&conduit);
  NSTREAM_CHECK(acceptor.Listen().ok());

  auto plan = std::make_unique<QueryPlan>();
  IngestSourceOptions sopts;
  sopts.multi_producer = true;
  sopts.expected_eos_producers = producers;
  auto* src = plan->AddOp(std::make_unique<IngestSource>(
      "ingest", IngestSchema(), &conduit, sopts));
  auto* sink = plan->AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  NSTREAM_CHECK(plan->Connect(*src, *sink).ok());
  NSTREAM_CHECK(plan->Finalize().ok());

  PooledExecutor exec(PooledExecutorOptions{});
  Result<QueryId> id = exec.Submit(plan.get());
  NSTREAM_CHECK(id.ok());

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(wire.size());
  for (const std::string& w : wire) {
    threads.emplace_back([&acceptor, &w] {
      Result<int> fd = TcpConnectLoopback(acceptor.port());
      NSTREAM_CHECK(fd.ok());
      NSTREAM_CHECK(SendAllFd(fd.value(), w));
      DrainAndClose(fd.value());
    });
  }
  NSTREAM_CHECK(exec.Wait(id.value()).ok());
  const double ns = ElapsedNs(start);
  acceptor.Stop();  // closes the conns, releasing the drain loops
  for (std::thread& t : threads) t.join();
  NSTREAM_CHECK(src->quarantined_producers() == 0);
  if (stats_out != nullptr) *stats_out = acceptor.StatsReport().ToString();
  return static_cast<double>(src->admitted_frames()) / (ns * 1e-9);
}

// ---- feedback round-trip at the edge -------------------------------

double MeasureFeedbackRoundTripNs(int reps) {
  FrameConduit conduit;
  IngestSource src("ingest", IngestSchema(), &conduit);
  ConduitClient client(&conduit);
  FeedbackPunctuation fb = FeedbackPunctuation::Assumed(
      ParsePattern("[*,*,>=990]").value());
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    NSTREAM_CHECK(src.ProcessFeedback(0, fb).ok());
    Result<std::optional<FeedbackPunctuation>> got = client.PollFeedback();
    NSTREAM_CHECK(got.ok() && got.value().has_value());
    benchmark::DoNotOptimize(got.value()->is_assumed());
  }
  return ElapsedNs(start) / static_cast<double>(reps);
}

// ---- google-benchmark registrations (bench-smoke coverage) ---------

void BM_Ingest_ParseZeroCopy(benchmark::State& state) {
  for (auto _ : state) {
    ParseCost c = MeasureParse(static_cast<int>(state.range(0)), 4);
    benchmark::DoNotOptimize(c.zero_copy_ns_per_tuple);
  }
}
BENCHMARK(BM_Ingest_ParseZeroCopy)->Arg(1 << 10);

void BM_Ingest_FramesPooled(benchmark::State& state) {
  for (auto _ : state) {
    double fps = MeasureFramesPerSec(1 << 12, 32);
    benchmark::DoNotOptimize(fps);
  }
}
BENCHMARK(BM_Ingest_FramesPooled);

void BM_Ingest_FramesAcceptor4P(benchmark::State& state) {
  for (auto _ : state) {
    double fps = MeasureAcceptorFramesPerSec(4, 1 << 11, 32);
    benchmark::DoNotOptimize(fps);
  }
}
BENCHMARK(BM_Ingest_FramesAcceptor4P);

void BM_Ingest_FeedbackRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    double ns = MeasureFeedbackRoundTripNs(64);
    benchmark::DoNotOptimize(ns);
  }
}
BENCHMARK(BM_Ingest_FeedbackRoundTrip);

// ---- Recorded trajectory metrics -----------------------------------

void RecordHotpathJson() {
  // Parse A/B: warm once, then best (min) of 5 — same methodology as
  // the other hot-path rows.
  const int kBatch = 1 << 10;
  const int kReps = 64;
  MeasureParse(kBatch, kReps);  // warm-up
  ParseCost best;
  best.zero_copy_ns_per_tuple = best.ref_ns_per_tuple = 1e18;
  for (int i = 0; i < 5; ++i) {
    ParseCost c = MeasureParse(kBatch, kReps);
    best.zero_copy_ns_per_tuple =
        std::min(best.zero_copy_ns_per_tuple, c.zero_copy_ns_per_tuple);
    best.ref_ns_per_tuple =
        std::min(best.ref_ns_per_tuple, c.ref_ns_per_tuple);
  }

  const int kStreamTuples = 1 << 15;
  MeasureFramesPerSec(kStreamTuples, 32);  // warm-up
  double fps = 0;
  for (int i = 0; i < 3; ++i) {
    fps = std::max(fps, MeasureFramesPerSec(kStreamTuples, 32));
  }

  // 4 concurrent producers through the TCP acceptor into one conduit.
  const int kAcceptorProducers = 4;
  MeasureAcceptorFramesPerSec(kAcceptorProducers, 1 << 12, 32);  // warm-up
  double fps4 = 0;
  std::string acceptor_stats;
  for (int i = 0; i < 3; ++i) {
    std::string stats;
    const double run =
        MeasureAcceptorFramesPerSec(kAcceptorProducers, 1 << 13, 32, &stats);
    if (run > fps4) {
      fps4 = run;
      acceptor_stats = std::move(stats);
    }
  }
  std::fprintf(stdout, "acceptor (%d producers, best run):\n%s\n",
               kAcceptorProducers, acceptor_stats.c_str());

  MeasureFeedbackRoundTripNs(256);  // warm-up
  double rt = 1e18;
  for (int i = 0; i < 5; ++i) {
    rt = std::min(rt, MeasureFeedbackRoundTripNs(256));
  }

  benchjson::RecordAll({
      {"ingest.parse_ns_per_tuple", best.zero_copy_ns_per_tuple},
      {"ingest.parse_ns_per_tuple_ref", best.ref_ns_per_tuple},
      {"ingest.parse_speedup",
       best.ref_ns_per_tuple / best.zero_copy_ns_per_tuple},
      {"ingest.frames_per_sec", fps},
      {"ingest.frames_per_sec_4p", fps4},
      {"ingest.feedback_roundtrip_ns", rt},
      {"ingest.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
