// Scheduler characterization (ROADMAP item 3): what a fixed worker
// pool costs relative to a thread per operator. Records the per-slice
// dispatch overhead, the wake→drain round trip on a 1-tuple-page
// pipe, the pool=1 end-to-end throughput against ThreadedExecutor on
// the Table 2 join pipeline (acceptance: within 10%), and the
// multi-query shape the pool exists for — many concurrent plans on
// two workers, which thread-per-operator could only serve by
// spawning plans × operators threads.
//
// Like the sharded-join and queue benches, several rows depend on how
// many CPUs the host exposes, so sched.online_cpus is recorded next
// to the batch for cross-box comparability.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/logging.h"
#include "exec/scheduler.h"
#include "exec/threaded_executor.h"
#include "ops/select.h"
#include "ops/sink.h"
#include "ops/symmetric_hash_join.h"
#include "ops/vector_source.h"

namespace nstream {
namespace {

// ---- Filter-chain plan: source → σ → σ → sink ----------------------

SchemaPtr ChainSchema() {
  return Schema::Make(
      {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}});
}

std::vector<TimedElement> ChainStream(int n) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(TimedElement::OfTuple(
        static_cast<TimeMs>(i),
        TupleBuilder()
            .I64(i % 100)
            .D(static_cast<double>(i % 977))
            .Build()));
  }
  return out;
}

struct ChainPlan {
  std::unique_ptr<QueryPlan> plan;
};

ChainPlan MakeChainPlan(int n) {
  ChainPlan out;
  out.plan = std::make_unique<QueryPlan>();
  QueryPlan& plan = *out.plan;
  auto* source = plan.AddOp(std::make_unique<VectorSource>(
      "src", ChainSchema(), ChainStream(n)));
  auto* s1 = plan.AddOp(Select::FromPattern(
      "sel-lo", PunctPattern::AllWildcard(2).With(
                    1, AttrPattern::Ge(Value::Double(10.0)))));
  auto* s2 = plan.AddOp(Select::FromPattern(
      "sel-hi", PunctPattern::AllWildcard(2).With(
                    1, AttrPattern::Le(Value::Double(900.0)))));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  NSTREAM_CHECK(plan.Connect(*source, *s1).ok());
  NSTREAM_CHECK(plan.Connect(*s1, *s2).ok());
  NSTREAM_CHECK(plan.Connect(*s2, *sink).ok());
  NSTREAM_CHECK(plan.Finalize().ok());
  return out;
}

// ---- Table 2 join plan (bench_table2_join's shape) -----------------

SchemaPtr LeftSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"t", ValueType::kInt64},
                       {"id", ValueType::kInt64}});
}
SchemaPtr RightSchema() {
  return Schema::Make({{"t", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"b", ValueType::kInt64}});
}

std::vector<TimedElement> SideStream(int n, bool left, int key_mod) {
  std::vector<TimedElement> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TimeMs at = static_cast<TimeMs>(i);
    if (left) {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(i % 100)
                  .I64(i % key_mod)
                  .I64(i % 7)
                  .Build()));
    } else {
      out.push_back(TimedElement::OfTuple(
          at, TupleBuilder()
                  .I64(i % key_mod)
                  .I64(i % 7)
                  .I64(i % 100)
                  .Build()));
    }
  }
  return out;
}

struct JoinPlan {
  std::unique_ptr<QueryPlan> plan;
};

JoinPlan MakeJoinPlan(int n) {
  JoinPlan out;
  out.plan = std::make_unique<QueryPlan>();
  QueryPlan& plan = *out.plan;
  auto* left = plan.AddOp(std::make_unique<VectorSource>(
      "A", LeftSchema(), SideStream(n, true, 50)));
  auto* right = plan.AddOp(std::make_unique<VectorSource>(
      "B", RightSchema(), SideStream(n, false, 50)));
  JoinOptions jopt;
  jopt.left_keys = {1, 2};   // (t, id)
  jopt.right_keys = {0, 1};  // (t, id)
  auto* join =
      plan.AddOp(std::make_unique<SymmetricHashJoin>("join", jopt));
  auto* sink = plan.AddOp(std::make_unique<CollectorSink>(
      "sink", CollectorSinkOptions{.record_tuples = false}));
  NSTREAM_CHECK(plan.Connect(*left, 0, *join, 0).ok());
  NSTREAM_CHECK(plan.Connect(*right, 0, *join, 1).ok());
  NSTREAM_CHECK(plan.Connect(*join, *sink).ok());
  NSTREAM_CHECK(plan.Finalize().ok());
  return out;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Run one plan on a fresh pool; returns wall ms and the scheduler's
// counters for the run (stats are per-Scheduler, so a fresh executor
// keeps them attributable).
struct PooledRun {
  double ms = 0;
  SchedulerStats stats;
};

PooledRun RunPooled(int n, PooledExecutorOptions opts,
                    bool join_plan) {
  PooledRun out;
  if (join_plan) {
    JoinPlan p = MakeJoinPlan(n);
    PooledExecutor exec(opts);
    auto start = std::chrono::steady_clock::now();
    NSTREAM_CHECK(exec.Run(p.plan.get()).ok());
    out.ms = ElapsedMs(start);
    out.stats = exec.scheduler()->stats();
  } else {
    ChainPlan p = MakeChainPlan(n);
    PooledExecutor exec(opts);
    auto start = std::chrono::steady_clock::now();
    NSTREAM_CHECK(exec.Run(p.plan.get()).ok());
    out.ms = ElapsedMs(start);
    out.stats = exec.scheduler()->stats();
  }
  return out;
}

double RunThreadedMs(int n) {
  JoinPlan p = MakeJoinPlan(n);
  ThreadedExecutor exec;
  auto start = std::chrono::steady_clock::now();
  NSTREAM_CHECK(exec.Run(p.plan.get()).ok());
  return ElapsedMs(start);
}

// ---- google-benchmark registrations (bench-smoke coverage) ---------

void BM_Pooled_FilterChain(benchmark::State& state) {
  PooledExecutorOptions opts;
  opts.pool_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PooledRun r = RunPooled(1 << 12, opts, /*join_plan=*/false);
    benchmark::DoNotOptimize(r.stats.slices);
  }
}
BENCHMARK(BM_Pooled_FilterChain)->Arg(1)->Arg(2);

void BM_Pooled_Join_Pool1(benchmark::State& state) {
  PooledExecutorOptions opts;
  opts.pool_size = 1;
  for (auto _ : state) {
    PooledRun r = RunPooled(static_cast<int>(state.range(0)), opts,
                            /*join_plan=*/true);
    benchmark::DoNotOptimize(r.stats.slices);
  }
}
BENCHMARK(BM_Pooled_Join_Pool1)->Arg(1 << 11);

void BM_Threaded_Join(benchmark::State& state) {
  for (auto _ : state) {
    double ms = RunThreadedMs(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(ms);
  }
}
BENCHMARK(BM_Threaded_Join)->Arg(1 << 11);

// ---- Recorded trajectory metrics -----------------------------------

void RecordHotpathJson() {
  // Per-slice cost including dispatch: pool=1 on the filter chain, so
  // every slice crosses the full pop-ready → run → re-enqueue path
  // with zero cross-worker noise. Warm once, then best (min ns/slice)
  // of 3 — same methodology note as table2_8192.
  const int kChainN = 1 << 13;
  PooledExecutorOptions pool1;
  pool1.pool_size = 1;
  RunPooled(kChainN, pool1, false);  // warm-up
  double slice_ns = 1e18;
  for (int i = 0; i < 3; ++i) {
    PooledRun r = RunPooled(kChainN, pool1, false);
    double ns = r.ms * 1e6 / static_cast<double>(
                                 r.stats.slices == 0 ? 1 : r.stats.slices);
    slice_ns = std::min(slice_ns, ns);
  }

  // Wake→drain round trip: page_size=1 turns every tuple into its own
  // page, and with 2 workers the producer and consumer slices overlap,
  // so each delivered wake carries exactly one page through the
  // pipeline. ns per delivered wake is the round-trip upper bound
  // (it includes the slice that drains the page).
  PooledExecutorOptions ping;
  ping.pool_size = 2;
  ping.queue.page_size = 1;
  RunPooled(1 << 11, ping, false);  // warm-up
  double wake_ns = 1e18;
  for (int i = 0; i < 3; ++i) {
    PooledRun r = RunPooled(1 << 11, ping, false);
    uint64_t wakes = r.stats.wakes_delivered;
    double ns = r.ms * 1e6 / static_cast<double>(wakes == 0 ? 1 : wakes);
    wake_ns = std::min(wake_ns, ns);
  }

  // Pool=1 vs thread-per-operator on the Table 2 join: the overhead
  // acceptance row. Both sides warm once then best-of-3; throughput is
  // input tuples (both sides) per wall second.
  const int kJoinN = 1 << 13;
  RunPooled(kJoinN, pool1, true);  // warm-up
  RunThreadedMs(kJoinN);
  double pool1_tps = 0;
  double threaded_tps = 0;
  for (int i = 0; i < 3; ++i) {
    PooledRun r = RunPooled(kJoinN, pool1, true);
    pool1_tps = std::max(pool1_tps, 2.0 * kJoinN / (r.ms / 1000.0));
    double tms = RunThreadedMs(kJoinN);
    threaded_tps =
        std::max(threaded_tps, 2.0 * kJoinN / (tms / 1000.0));
  }

  // The multi-query shape: 8 filter-chain plans resident on one
  // 2-worker pool. Thread-per-operator would need 8 plans × 4 ops =
  // 32 threads for the same job.
  const int kMultiN = 1 << 12;
  const int kPlans = 8;
  auto multi_run = [&] {
    std::vector<ChainPlan> plans;
    plans.reserve(kPlans);
    for (int i = 0; i < kPlans; ++i) {
      plans.push_back(MakeChainPlan(kMultiN));
    }
    PooledExecutorOptions opts;
    opts.pool_size = 2;
    PooledExecutor exec(opts);
    auto start = std::chrono::steady_clock::now();
    std::vector<QueryId> ids;
    for (ChainPlan& p : plans) {
      ids.push_back(exec.Submit(p.plan.get()).value());
    }
    for (QueryId id : ids) NSTREAM_CHECK(exec.Wait(id).ok());
    double ms = ElapsedMs(start);
    return kPlans * static_cast<double>(kMultiN) / (ms / 1000.0);
  };
  multi_run();  // warm-up
  double multi_tps = 0;
  for (int i = 0; i < 3; ++i) multi_tps = std::max(multi_tps, multi_run());

  benchjson::RecordAll({
      {"sched.slice_ns", slice_ns},
      {"sched.wake_roundtrip_ns", wake_ns},
      {"sched.pool1_join_tuples_per_sec", pool1_tps},
      {"sched.threaded_join_tuples_per_sec", threaded_tps},
      // Acceptance row: >= 0.9 means pool=1 is within 10% of a
      // thread per operator on the same pipeline.
      {"sched.pool1_vs_threaded", pool1_tps / threaded_tps},
      {"sched.multiquery8_pool2_tuples_per_sec", multi_tps},
      {"sched.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
