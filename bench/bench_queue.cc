// Ablation: inter-operator queue batching (§5). NiagaraST pages tuples
// to limit synchronization and context switches; this bench sweeps the
// page size and shows why punctuation must flush pages (a punctuation
// stuck behind an unfilled page stalls downstream progress).
//
// It also A/Bs the two DataQueue transports — the mutex deque against
// the lock-free SPSC page ring — in an uncontended single-thread mode
// and a 2-thread producer/consumer mode. NOTE on the 2-thread rows:
// like the sharded-join numbers, they depend on how many CPUs the
// host exposes (on a 1-core box they measure scheduler churn, not
// parallel transfer), so queue.online_cpus is recorded next to every
// queue metric batch for cross-box comparability.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "bench_json.h"
#include "stream/data_queue.h"
#include "types/tuple.h"
#include "types/tuple_arena.h"

namespace nstream {
namespace {

Tuple MakeTuple(int64_t i) {
  return TupleBuilder().I64(i).D(static_cast<double>(i)).Build();
}

DataQueueOptions TransportOptions(DataQueueTransport transport,
                                  int page_size, int batch) {
  DataQueueOptions opts;
  opts.page_size = page_size;
  opts.max_pages = 0;
  opts.transport = transport;
  // Uncontended mode pushes the whole batch before popping, so the
  // ring must hold every page the batch produces (plus the EOS page).
  // Sized exactly: an oversized ring would charge its construction to
  // the measured loop.
  opts.spsc_default_capacity = batch / page_size + 2;
  return opts;
}

// Push `batch` tuples + EOS, then drain — the uncontended shape, where
// the delta between transports is pure per-push/per-pop overhead.
void PushPopOnce(DataQueueOptions opts, int batch) {
  DataQueue q(opts);
  for (int i = 0; i < batch; ++i) q.PushTuple(MakeTuple(i));
  q.PushEos();
  size_t popped = 0;
  while (auto page = q.TryPopPage()) popped += page->size();
  benchmark::DoNotOptimize(popped);
}

// Transfer-only modes: the payload is built once and recycled from
// the popped pages back into the push slots, so the measured cost is
// queue overhead alone (no per-iteration tuple construction, no
// allocator traffic once warm). These are the apples-to-apples
// transport comparisons; the legacy pushpop rows keep their
// construction-included methodology so the cross-PR trajectory in
// BENCH_hotpath.json stays comparable.
//
// Tuple granularity: PushTuple per element (the queue assembles
// pages). Measures the producer-side per-element path.
class TupleTransferBench {
 public:
  explicit TupleTransferBench(int batch) {
    tuples_.reserve(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) tuples_.push_back(MakeTuple(i));
  }

  /// `reps` push-all/pop-all rounds against one queue, so the queue's
  /// construction (ring slot vector, deque map) amortizes away and the
  /// steady-state transfer cost is what's measured.
  void Run(const DataQueueOptions& opts, int reps) {
    DataQueue q(opts);
    for (int r = 0; r < reps; ++r) {
      for (Tuple& t : tuples_) q.PushTuple(std::move(t));
      q.Flush();
      size_t slot = 0;
      while (auto page = q.TryPopPage()) {
        for (StreamElement& e : page->mutable_elements()) {
          if (e.is_tuple()) {
            tuples_[slot++] = std::move(e.mutable_tuple());
          }
        }
      }
      benchmark::DoNotOptimize(slot);
    }
  }

 private:
  std::vector<Tuple> tuples_;
};

// Page granularity: whole pre-assembled pages via PushPage — how
// Exchange, ShardMerge, and the join's result stream actually feed
// queues since PR 2. The transport (one queue transition per page) is
// the dominant term here, so this row is where the SPSC-vs-mutex
// delta shows undiluted.
class PageTransferBench {
 public:
  PageTransferBench(int batch, int page_size) {
    for (int i = 0; i < batch; i += page_size) {
      Page p;
      p.Reserve(static_cast<size_t>(page_size));
      for (int j = i; j < i + page_size && j < batch; ++j) {
        p.Add(StreamElement::OfTuple(MakeTuple(j)));
      }
      pages_.push_back(std::move(p));
    }
  }

  /// Same amortization story as TupleTransferBench::Run. The queue is
  /// caller-owned so its construction (ring slots, deque map,
  /// condvars) stays outside the timed region entirely — a queue with
  /// no EOS pushed is reusable indefinitely.
  void Run(DataQueue* q, int reps) {
    for (int r = 0; r < reps; ++r) {
      for (Page& p : pages_) q->PushPage(std::move(p));
      size_t slot = 0;
      while (auto page = q->TryPopPage()) {
        pages_[slot++] = std::move(*page);
      }
      benchmark::DoNotOptimize(slot);
    }
  }

 private:
  std::vector<Page> pages_;
};

// Concurrent producer/consumer across two threads with a bounded
// queue (backpressure active) — the threaded executor's shape.
void PushPop2ThreadOnce(DataQueueTransport transport, int page_size,
                        int batch) {
  DataQueueOptions opts;
  opts.page_size = page_size;
  opts.max_pages = 64;
  opts.transport = transport;
  DataQueue q(opts);
  std::thread producer([&] {
    for (int i = 0; i < batch; ++i) q.PushTuple(MakeTuple(i));
    q.PushEos();
  });
  size_t popped = 0;
  while (auto page = q.PopPageBlocking(nullptr)) popped += page->size();
  producer.join();
  benchmark::DoNotOptimize(popped);
}

void BM_QueuePushPop_PageSize(benchmark::State& state) {
  const int page_size = static_cast<int>(state.range(0));
  const int kBatch = 4096;
  for (auto _ : state) {
    PushPopOnce(
        TransportOptions(DataQueueTransport::kMutexDeque, page_size,
                         kBatch),
        kBatch);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueuePushPop_PageSize)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);

void BM_QueuePushPop_SpscRing(benchmark::State& state) {
  const int page_size = static_cast<int>(state.range(0));
  const int kBatch = 4096;
  for (auto _ : state) {
    PushPopOnce(
        TransportOptions(DataQueueTransport::kSpscRing, page_size,
                         kBatch),
        kBatch);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueuePushPop_SpscRing)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);

void BM_QueuePushPop_2Thread(benchmark::State& state) {
  // range(0): 0 = mutex deque, 1 = SPSC ring; range(1): page size.
  const DataQueueTransport transport =
      state.range(0) == 0 ? DataQueueTransport::kMutexDeque
                          : DataQueueTransport::kSpscRing;
  const int page_size = static_cast<int>(state.range(1));
  const int kBatch = 4096;
  for (auto _ : state) {
    PushPop2ThreadOnce(transport, page_size, kBatch);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueuePushPop_2Thread)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({0, 512})
    ->Args({1, 512});

void BM_QueuePunctuationFlushRate(benchmark::State& state) {
  // Punctuation every `k` tuples: more punctuation = more (smaller)
  // pages = more queue transitions. Quantifies the batching loss that
  // aggressive punctuation cadence costs.
  const int punct_every = static_cast<int>(state.range(0));
  const int kBatch = 4096;
  uint64_t pages = 0;
  for (auto _ : state) {
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBatch; ++i) {
      q.PushTuple(MakeTuple(i));
      if (i % punct_every == punct_every - 1) {
        q.PushPunctuation(Punctuation(
            PunctPattern::AllWildcard(2).With(
                0, AttrPattern::Le(Value::Int64(i)))));
      }
    }
    q.PushEos();
    while (auto page = q.TryPopPage()) ++pages;
    benchmark::DoNotOptimize(pages);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("pages/run=" +
                 std::to_string(pages / std::max<uint64_t>(
                                            1, state.iterations())));
}
BENCHMARK(BM_QueuePunctuationFlushRate)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_QueuePurgeMatching(benchmark::State& state) {
  // Cost of an exploiting purge sweep over a deep backlog (IMPUTE's
  // response to PACE feedback in Experiment 1).
  const int kBacklog = static_cast<int>(state.range(0));
  PunctPattern old_half = PunctPattern::AllWildcard(2).With(
      0, AttrPattern::Le(Value::Int64(kBacklog / 2)));
  for (auto _ : state) {
    state.PauseTiming();
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBacklog; ++i) q.PushTuple(MakeTuple(i));
    state.ResumeTiming();
    int purged = q.PurgeMatching(old_half);
    benchmark::DoNotOptimize(purged);
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
}
BENCHMARK(BM_QueuePurgeMatching)->Arg(1024)->Arg(16384);

void RecordHotpathJson() {
  using benchjson::MeasurePerSec;
  const int kBatch = 4096;
  auto pushpop = [&](DataQueueTransport transport, int page_size) {
    return MeasurePerSec(kBatch, 150.0, [&] {
      PushPopOnce(TransportOptions(transport, page_size, kBatch),
                  kBatch);
    });
  };
  auto pushpop2t = [&](DataQueueTransport transport, int page_size) {
    return MeasurePerSec(kBatch, 300.0, [&] {
      PushPop2ThreadOnce(transport, page_size, kBatch);
    });
  };
  const DataQueueTransport kMutex = DataQueueTransport::kMutexDeque;
  const DataQueueTransport kSpsc = DataQueueTransport::kSpscRing;
  const int kReps = 256;
  // Best-of-9 for the transport A/B rows: a single 150ms window on a
  // shared box can eat a scheduler hiccup, and the A/B ratio is what
  // downstream acceptance gates read.
  auto best_of9 = [](auto&& measure) {
    double best = 0;
    for (int i = 0; i < 9; ++i) best = std::max(best, measure());
    return best;
  };
  // The A/B rows run both transports with the threaded executor's
  // actual bound (max_pages=64) so neither side skips its
  // backpressure machinery. 4096 tuples / 128 per page = 32 pages in
  // flight, comfortably under the bound either way.
  auto ab_options = [&](DataQueueTransport transport) {
    DataQueueOptions opts;
    opts.page_size = 128;
    opts.max_pages = 64;
    opts.transport = transport;
    return opts;
  };
  TupleTransferBench tuple_transfer(kBatch);
  auto tuple_only = [&](DataQueueTransport transport) {
    return best_of9([&] {
      return MeasurePerSec(static_cast<double>(kBatch) * kReps, 150.0,
                           [&] {
                             tuple_transfer.Run(ab_options(transport),
                                                kReps);
                           });
    });
  };
  PageTransferBench page_transfer(kBatch, 128);
  auto page_only = [&](DataQueueTransport transport) {
    DataQueue q(ab_options(transport));
    return best_of9([&] {
      return MeasurePerSec(
          static_cast<double>(kBatch) * kReps, 150.0,
          [&] { page_transfer.Run(&q, kReps); });
    });
  };
  const int kBacklog = 16384;
  PunctPattern old_half = PunctPattern::AllWildcard(2).With(
      0, AttrPattern::Le(Value::Int64(kBacklog / 2)));
  double purge = MeasurePerSec(kBacklog, 150.0, [&] {
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBacklog; ++i) q.PushTuple(MakeTuple(i));
    benchmark::DoNotOptimize(q.PurgeMatching(old_half));
  });

  double mutex1 = pushpop(kMutex, 1);
  double mutex128 = pushpop(kMutex, 128);
  double mutex2048 = pushpop(kMutex, 2048);
  double tuple_mutex128 = tuple_only(kMutex);
  double tuple_spsc128 = tuple_only(kSpsc);
  double page_mutex128 = page_only(kMutex);
  double page_spsc128 = page_only(kSpsc);
  double mutex_2t = pushpop2t(kMutex, 128);
  double spsc_2t = pushpop2t(kSpsc, 128);
  // The unbounded SPSC chain — the transport SyncExecutor edges now
  // ride instead of the mutex deque.
  const DataQueueTransport kChain = DataQueueTransport::kSpscChain;
  double page_chain128 = page_only(kChain);
  double tuple_chain128 = tuple_only(kChain);

  // Arena A/B: construct-transfer-consume per tuple. The producer
  // builds each 3-value tuple (two numerics + a short string) in the
  // queue's open-page arena — or in owned heap storage with arenas
  // globally disabled — and the consumer drops whole pages (wholesale
  // arena free vs per-tuple destruction). This is the page-owned
  // memory model's per-tuple cost, isolated from any operator logic.
  auto build_cycle = [&](bool arenas_on) {
    ScopedTupleArenasEnabled scoped(arenas_on);
    DataQueueOptions opts;
    opts.page_size = 128;
    opts.transport = kChain;
    opts.assume_single_thread = true;
    const int reps = 16;
    return best_of9([&] {
      return MeasurePerSec(
          static_cast<double>(kBatch) * reps, 150.0, [&] {
            DataQueue q(opts);
            for (int r = 0; r < reps; ++r) {
              for (int i = 0; i < kBatch; ++i) {
                TupleArena* arena = q.OpenPageArena();
                Tuple t(arena, 3);
                t.Append(Value::Int64(i));
                t.Append(Value::Double(static_cast<double>(i)));
                t.Append(Value::StringIn(arena, "seg-42"));
                q.PushTuple(std::move(t));
              }
              q.Flush();
              size_t popped = 0;
              while (auto page = q.TryPopPage()) popped += page->size();
              benchmark::DoNotOptimize(popped);
            }
          });
    });
  };
  double arena_build = build_cycle(true);
  double noarena_build = build_cycle(false);

  benchjson::RecordAll({
      {"queue.pushpop_page1_tuples_per_sec", mutex1},
      {"queue.pushpop_page128_tuples_per_sec", mutex128},
      {"queue.pushpop_page2048_tuples_per_sec", mutex2048},
      // Per-tuple transfer (queue assembles the pages).
      {"queue.tuple_transfer_mutex_page128_tuples_per_sec",
       tuple_mutex128},
      {"queue.tuple_transfer_spsc_page128_tuples_per_sec",
       tuple_spsc128},
      {"queue.spsc_tuple_speedup_page128",
       tuple_spsc128 / tuple_mutex128},
      // Whole-page transfer (the engine's page-granular flow) — the
      // undiluted transport comparison.
      {"queue.mutex_pushpop_page128_tuples_per_sec", page_mutex128},
      {"queue.spsc_pushpop_page128_tuples_per_sec", page_spsc128},
      {"queue.spsc_speedup_page128", page_spsc128 / page_mutex128},
      {"queue.pushpop_2thread_page128_tuples_per_sec", mutex_2t},
      {"queue.spsc_pushpop_2thread_page128_tuples_per_sec", spsc_2t},
      {"queue.spsc_2thread_speedup_page128", spsc_2t / mutex_2t},
      {"queue.purge_16k_tuples_per_sec", purge},
      // Growable SPSC chain (SyncExecutor's unbounded edges).
      {"queue.chain_pushpop_page128_tuples_per_sec", page_chain128},
      {"queue.chain_speedup_page128", page_chain128 / page_mutex128},
      {"queue.chain_tuple_transfer_page128_tuples_per_sec",
       tuple_chain128},
      // Arena-backed tuple memory: build + transfer + consume.
      {"queue.arena_build_transfer_tuples_per_sec", arena_build},
      {"queue.noarena_build_transfer_tuples_per_sec", noarena_build},
      {"queue.arena_build_speedup", arena_build / noarena_build},
      {"queue.online_cpus",
       static_cast<double>(std::thread::hardware_concurrency())},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
