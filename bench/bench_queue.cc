// Ablation: inter-operator queue batching (§5). NiagaraST pages tuples
// to limit synchronization and context switches; this bench sweeps the
// page size and shows why punctuation must flush pages (a punctuation
// stuck behind an unfilled page stalls downstream progress).

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "stream/data_queue.h"
#include "types/tuple.h"

namespace nstream {
namespace {

Tuple MakeTuple(int64_t i) {
  return TupleBuilder().I64(i).D(static_cast<double>(i)).Build();
}

void BM_QueuePushPop_PageSize(benchmark::State& state) {
  const int page_size = static_cast<int>(state.range(0));
  const int kBatch = 4096;
  for (auto _ : state) {
    DataQueue q(DataQueueOptions{page_size, 0});
    for (int i = 0; i < kBatch; ++i) q.PushTuple(MakeTuple(i));
    q.PushEos();
    size_t popped = 0;
    while (auto page = q.TryPopPage()) popped += page->size();
    benchmark::DoNotOptimize(popped);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueuePushPop_PageSize)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048);

void BM_QueuePunctuationFlushRate(benchmark::State& state) {
  // Punctuation every `k` tuples: more punctuation = more (smaller)
  // pages = more queue transitions. Quantifies the batching loss that
  // aggressive punctuation cadence costs.
  const int punct_every = static_cast<int>(state.range(0));
  const int kBatch = 4096;
  uint64_t pages = 0;
  for (auto _ : state) {
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBatch; ++i) {
      q.PushTuple(MakeTuple(i));
      if (i % punct_every == punct_every - 1) {
        q.PushPunctuation(Punctuation(
            PunctPattern::AllWildcard(2).With(
                0, AttrPattern::Le(Value::Int64(i)))));
      }
    }
    q.PushEos();
    while (auto page = q.TryPopPage()) ++pages;
    benchmark::DoNotOptimize(pages);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("pages/run=" +
                 std::to_string(pages / std::max<uint64_t>(
                                            1, state.iterations())));
}
BENCHMARK(BM_QueuePunctuationFlushRate)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

void BM_QueuePurgeMatching(benchmark::State& state) {
  // Cost of an exploiting purge sweep over a deep backlog (IMPUTE's
  // response to PACE feedback in Experiment 1).
  const int kBacklog = static_cast<int>(state.range(0));
  PunctPattern old_half = PunctPattern::AllWildcard(2).With(
      0, AttrPattern::Le(Value::Int64(kBacklog / 2)));
  for (auto _ : state) {
    state.PauseTiming();
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBacklog; ++i) q.PushTuple(MakeTuple(i));
    state.ResumeTiming();
    int purged = q.PurgeMatching(old_half);
    benchmark::DoNotOptimize(purged);
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
}
BENCHMARK(BM_QueuePurgeMatching)->Arg(1024)->Arg(16384);

void RecordHotpathJson() {
  using benchjson::MeasurePerSec;
  const int kBatch = 4096;
  auto pushpop = [&](int page_size) {
    return MeasurePerSec(kBatch, 150.0, [&] {
      DataQueue q(DataQueueOptions{page_size, 0});
      for (int i = 0; i < kBatch; ++i) q.PushTuple(MakeTuple(i));
      q.PushEos();
      size_t popped = 0;
      while (auto page = q.TryPopPage()) popped += page->size();
      benchmark::DoNotOptimize(popped);
    });
  };
  const int kBacklog = 16384;
  PunctPattern old_half = PunctPattern::AllWildcard(2).With(
      0, AttrPattern::Le(Value::Int64(kBacklog / 2)));
  double purge = MeasurePerSec(kBacklog, 150.0, [&] {
    DataQueue q(DataQueueOptions{128, 0});
    for (int i = 0; i < kBacklog; ++i) q.PushTuple(MakeTuple(i));
    benchmark::DoNotOptimize(q.PurgeMatching(old_half));
  });
  benchjson::RecordAll({
      {"queue.pushpop_page1_tuples_per_sec", pushpop(1)},
      {"queue.pushpop_page128_tuples_per_sec", pushpop(128)},
      {"queue.pushpop_page2048_tuples_per_sec", pushpop(2048)},
      {"queue.purge_16k_tuples_per_sec", purge},
  });
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  nstream::RecordHotpathJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
