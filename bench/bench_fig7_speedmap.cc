// Reproduces Figure 7 (Experiment 2): total execution time of the
// speed-map plan (Fig. 4b) under feedback schemes F0-F3 and viewer
// switch frequencies of 2, 4, and 6 minutes.
//
// Workload per the paper: 18 hours of traffic at 20-second resolution,
// 9 segments x 40 detectors (~1.17M tuples); AVERAGE over 1-minute
// windows grouped by segment; an interactive viewer displaying one
// segment at a time.
//
// Paper-reported shape: F1 cuts execution time ~50%, F2 ~61%, F3 ~65%,
// with no discernible overhead as feedback frequency increases.
// Absolute seconds differ (the paper ran NiagaraST/Java on a 2.8 GHz
// Pentium 4); the ordering and rough factors are the reproduction
// target. Rendering cost at the sink is calibrated in EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "exec/sync_executor.h"
#include "metrics/report.h"
#include "workload/pipelines.h"

namespace nstream {
namespace {

struct CaseResult {
  double seconds = 0;
  uint64_t results = 0;
  uint64_t agg_updates = 0;
  uint64_t filter_drops = 0;
};

CaseResult RunCase(FeedbackPolicy scheme, TimeMs switch_minutes,
                   TimeMs duration_ms) {
  SpeedmapPlanConfig config;
  config.traffic.num_segments = 9;
  config.traffic.detectors_per_segment = 40;
  config.traffic.tick_ms = 20'000;
  config.traffic.duration_ms = duration_ms;
  config.traffic.punct_every_ms = 60'000;
  config.scheme = scheme;
  config.switch_every_ms = switch_minutes * 60'000;
  config.record_sink_tuples = false;
  // Per-result "map rendering" work; see EXPERIMENTS.md calibration.
  config.sink_work_iters = 120'000;
  config.agg_work_iters = 250;

  SpeedmapPlan built = BuildSpeedmapPlan(config);
  auto start = std::chrono::steady_clock::now();
  SyncExecutor exec;
  Status st = exec.Run(built.plan.get());
  auto end = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  CaseResult out;
  out.seconds = std::chrono::duration<double>(end - start).count();
  out.results = built.sink->consumed();
  out.agg_updates = built.average->updates_applied();
  out.filter_drops = built.quality_filter->stats().input_guard_drops;
  return out;
}

}  // namespace
}  // namespace nstream

int main(int argc, char** argv) {
  using namespace nstream;

  // --quick runs 3 simulated hours instead of 18 (same shape, ~6x
  // faster); the default matches the paper.
  TimeMs duration_ms = 18LL * 3'600'000;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      duration_ms = 6LL * 3'600'000;
    }
  }

  std::printf("%s", ExperimentBanner(
                        "E2 (Figure 7)",
                        "Speed-map plan execution time, schemes F0-F3 x "
                        "feedback frequency")
                        .c_str());
  std::printf(
      "plan: sigma_Q -> AVERAGE(segment, 1 min) -> viewer sink "
      "(Fig. 4b)\nworkload: %.0f h @ 20 s, 9 segments x 40 detectors "
      "(~%.2fM tuples)\n\n",
      static_cast<double>(duration_ms) / 3'600'000,
      static_cast<double>(duration_ms) / 20'000 * 360 / 1e6);

  const FeedbackPolicy kSchemes[] = {
      FeedbackPolicy::kIgnore, FeedbackPolicy::kOutputGuardOnly,
      FeedbackPolicy::kExploit, FeedbackPolicy::kExploitAndPropagate};
  const char* kNames[] = {"F0", "F1", "F2", "F3"};
  const TimeMs kFrequencies[] = {2, 4, 6};

  double f0_avg = 0;
  double seconds[4][3];
  CaseResult cases[4][3];
  for (int s = 0; s < 4; ++s) {
    for (int f = 0; f < 3; ++f) {
      // Best of two runs: the ordering, not the noise, is the result.
      cases[s][f] = RunCase(kSchemes[s], kFrequencies[f], duration_ms);
      CaseResult second =
          RunCase(kSchemes[s], kFrequencies[f], duration_ms);
      if (second.seconds < cases[s][f].seconds) cases[s][f] = second;
      seconds[s][f] = cases[s][f].seconds;
      std::printf("  %s @ %lld min: %.2fs (%llu results, %llu agg "
                  "updates, %llu filtered)\n",
                  kNames[s],
                  static_cast<long long>(kFrequencies[f]),
                  seconds[s][f],
                  static_cast<unsigned long long>(cases[s][f].results),
                  static_cast<unsigned long long>(
                      cases[s][f].agg_updates),
                  static_cast<unsigned long long>(
                      cases[s][f].filter_drops));
      std::fflush(stdout);
    }
  }
  f0_avg = (seconds[0][0] + seconds[0][1] + seconds[0][2]) / 3.0;

  std::printf("\n");
  TextTable table({"scheme", "2 min", "4 min", "6 min",
                   "avg reduction vs F0", "paper"});
  const char* kPaper[] = {"baseline", "-50%", "-61%", "-65%"};
  for (int s = 0; s < 4; ++s) {
    double avg = (seconds[s][0] + seconds[s][1] + seconds[s][2]) / 3.0;
    table.AddRow({kNames[s], FormatDouble(seconds[s][0], 2) + "s",
                  FormatDouble(seconds[s][1], 2) + "s",
                  FormatDouble(seconds[s][2], 2) + "s",
                  s == 0 ? std::string("-")
                         : StringPrintf("-%.0f%%",
                                        100 * (1 - avg / f0_avg)),
                  kPaper[s]});
  }
  std::printf("%s\n", table.Render().c_str());

  // Shape checks: monotone improvement, and flat across frequencies.
  // F0>F1>F2 gaps are large and must hold per frequency; the F2-vs-F3
  // gap is genuinely small (the paper reports 61% vs 65%), so F3 is
  // compared on the average to stay robust to single-cell noise.
  bool monotone = true;
  for (int f = 0; f < 3; ++f) {
    if (!(seconds[0][f] > seconds[1][f] &&
          seconds[1][f] > seconds[2][f])) {
      monotone = false;
    }
  }
  double f2_avg = (seconds[2][0] + seconds[2][1] + seconds[2][2]) / 3.0;
  double f3_avg = (seconds[3][0] + seconds[3][1] + seconds[3][2]) / 3.0;
  if (f3_avg > f2_avg * 1.02) monotone = false;
  double f3_spread =
      (*std::max_element(&seconds[3][0], &seconds[3][3]) -
       *std::min_element(&seconds[3][0], &seconds[3][3])) /
      f0_avg;
  std::printf("shape check (%s): F0 > F1 > F2 per frequency, F3 <= F2 "
              "on average; F3 spread across frequencies %.1f%% of "
              "baseline (paper: no discernible overhead)\n",
              monotone ? "PASS" : "FAIL", 100 * f3_spread);
  return monotone ? 0 : 1;
}
