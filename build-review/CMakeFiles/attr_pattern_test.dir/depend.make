# Empty dependencies file for attr_pattern_test.
# This may be replaced when dependencies are built.
