file(REMOVE_RECURSE
  "CMakeFiles/attr_pattern_test.dir/tests/punct/attr_pattern_test.cc.o"
  "CMakeFiles/attr_pattern_test.dir/tests/punct/attr_pattern_test.cc.o.d"
  "attr_pattern_test"
  "attr_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
