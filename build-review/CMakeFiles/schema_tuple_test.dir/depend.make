# Empty dependencies file for schema_tuple_test.
# This may be replaced when dependencies are built.
