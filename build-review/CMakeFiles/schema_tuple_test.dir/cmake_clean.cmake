file(REMOVE_RECURSE
  "CMakeFiles/schema_tuple_test.dir/tests/types/schema_tuple_test.cc.o"
  "CMakeFiles/schema_tuple_test.dir/tests/types/schema_tuple_test.cc.o.d"
  "schema_tuple_test"
  "schema_tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
