file(REMOVE_RECURSE
  "CMakeFiles/parser_scheme_test.dir/tests/punct/parser_scheme_test.cc.o"
  "CMakeFiles/parser_scheme_test.dir/tests/punct/parser_scheme_test.cc.o.d"
  "parser_scheme_test"
  "parser_scheme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
