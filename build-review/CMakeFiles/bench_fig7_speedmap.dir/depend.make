# Empty dependencies file for bench_fig7_speedmap.
# This may be replaced when dependencies are built.
