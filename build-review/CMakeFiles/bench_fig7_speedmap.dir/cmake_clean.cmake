file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_speedmap.dir/bench/bench_fig7_speedmap.cc.o"
  "CMakeFiles/bench_fig7_speedmap.dir/bench/bench_fig7_speedmap.cc.o.d"
  "bench_fig7_speedmap"
  "bench_fig7_speedmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_speedmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
