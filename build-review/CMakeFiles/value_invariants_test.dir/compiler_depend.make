# Empty compiler generated dependencies file for value_invariants_test.
# This may be replaced when dependencies are built.
