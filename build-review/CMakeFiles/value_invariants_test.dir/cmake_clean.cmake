file(REMOVE_RECURSE
  "CMakeFiles/value_invariants_test.dir/tests/types/value_invariants_test.cc.o"
  "CMakeFiles/value_invariants_test.dir/tests/types/value_invariants_test.cc.o.d"
  "value_invariants_test"
  "value_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
