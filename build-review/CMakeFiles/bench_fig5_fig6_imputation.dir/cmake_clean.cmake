file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig6_imputation.dir/bench/bench_fig5_fig6_imputation.cc.o"
  "CMakeFiles/bench_fig5_fig6_imputation.dir/bench/bench_fig5_fig6_imputation.cc.o.d"
  "bench_fig5_fig6_imputation"
  "bench_fig5_fig6_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
