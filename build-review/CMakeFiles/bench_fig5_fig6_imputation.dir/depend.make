# Empty dependencies file for bench_fig5_fig6_imputation.
# This may be replaced when dependencies are built.
