# Empty dependencies file for bench_table1_count.
# This may be replaced when dependencies are built.
