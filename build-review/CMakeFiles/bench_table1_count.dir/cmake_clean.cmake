file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_count.dir/bench/bench_table1_count.cc.o"
  "CMakeFiles/bench_table1_count.dir/bench/bench_table1_count.cc.o.d"
  "bench_table1_count"
  "bench_table1_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
