file(REMOVE_RECURSE
  "CMakeFiles/bench_feedback_ablation.dir/bench/bench_feedback_ablation.cc.o"
  "CMakeFiles/bench_feedback_ablation.dir/bench/bench_feedback_ablation.cc.o.d"
  "bench_feedback_ablation"
  "bench_feedback_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedback_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
