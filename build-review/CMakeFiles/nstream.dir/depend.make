# Empty dependencies file for nstream.
# This may be replaced when dependencies are built.
