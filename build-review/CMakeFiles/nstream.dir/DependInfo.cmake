
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "CMakeFiles/nstream.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/nstream.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/nstream.dir/src/common/status.cc.o" "gcc" "CMakeFiles/nstream.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/nstream.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/nstream.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/core/aggregate_feedback.cc" "CMakeFiles/nstream.dir/src/core/aggregate_feedback.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/aggregate_feedback.cc.o.d"
  "/root/repo/src/core/characterization.cc" "CMakeFiles/nstream.dir/src/core/characterization.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/characterization.cc.o.d"
  "/root/repo/src/core/correctness.cc" "CMakeFiles/nstream.dir/src/core/correctness.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/correctness.cc.o.d"
  "/root/repo/src/core/guards.cc" "CMakeFiles/nstream.dir/src/core/guards.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/guards.cc.o.d"
  "/root/repo/src/core/propagation.cc" "CMakeFiles/nstream.dir/src/core/propagation.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/propagation.cc.o.d"
  "/root/repo/src/core/schema_map.cc" "CMakeFiles/nstream.dir/src/core/schema_map.cc.o" "gcc" "CMakeFiles/nstream.dir/src/core/schema_map.cc.o.d"
  "/root/repo/src/exec/operator.cc" "CMakeFiles/nstream.dir/src/exec/operator.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/operator.cc.o.d"
  "/root/repo/src/exec/query_plan.cc" "CMakeFiles/nstream.dir/src/exec/query_plan.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/query_plan.cc.o.d"
  "/root/repo/src/exec/runtime.cc" "CMakeFiles/nstream.dir/src/exec/runtime.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/runtime.cc.o.d"
  "/root/repo/src/exec/sim_executor.cc" "CMakeFiles/nstream.dir/src/exec/sim_executor.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/sim_executor.cc.o.d"
  "/root/repo/src/exec/sync_executor.cc" "CMakeFiles/nstream.dir/src/exec/sync_executor.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/sync_executor.cc.o.d"
  "/root/repo/src/exec/threaded_executor.cc" "CMakeFiles/nstream.dir/src/exec/threaded_executor.cc.o" "gcc" "CMakeFiles/nstream.dir/src/exec/threaded_executor.cc.o.d"
  "/root/repo/src/metrics/report.cc" "CMakeFiles/nstream.dir/src/metrics/report.cc.o" "gcc" "CMakeFiles/nstream.dir/src/metrics/report.cc.o.d"
  "/root/repo/src/metrics/timeliness.cc" "CMakeFiles/nstream.dir/src/metrics/timeliness.cc.o" "gcc" "CMakeFiles/nstream.dir/src/metrics/timeliness.cc.o.d"
  "/root/repo/src/ops/symmetric_hash_join.cc" "CMakeFiles/nstream.dir/src/ops/symmetric_hash_join.cc.o" "gcc" "CMakeFiles/nstream.dir/src/ops/symmetric_hash_join.cc.o.d"
  "/root/repo/src/ops/window.cc" "CMakeFiles/nstream.dir/src/ops/window.cc.o" "gcc" "CMakeFiles/nstream.dir/src/ops/window.cc.o.d"
  "/root/repo/src/ops/window_aggregate.cc" "CMakeFiles/nstream.dir/src/ops/window_aggregate.cc.o" "gcc" "CMakeFiles/nstream.dir/src/ops/window_aggregate.cc.o.d"
  "/root/repo/src/punct/attr_pattern.cc" "CMakeFiles/nstream.dir/src/punct/attr_pattern.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/attr_pattern.cc.o.d"
  "/root/repo/src/punct/compiled_pattern.cc" "CMakeFiles/nstream.dir/src/punct/compiled_pattern.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/compiled_pattern.cc.o.d"
  "/root/repo/src/punct/feedback.cc" "CMakeFiles/nstream.dir/src/punct/feedback.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/feedback.cc.o.d"
  "/root/repo/src/punct/pattern_parser.cc" "CMakeFiles/nstream.dir/src/punct/pattern_parser.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/pattern_parser.cc.o.d"
  "/root/repo/src/punct/punct_pattern.cc" "CMakeFiles/nstream.dir/src/punct/punct_pattern.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/punct_pattern.cc.o.d"
  "/root/repo/src/punct/scheme.cc" "CMakeFiles/nstream.dir/src/punct/scheme.cc.o" "gcc" "CMakeFiles/nstream.dir/src/punct/scheme.cc.o.d"
  "/root/repo/src/stream/control_channel.cc" "CMakeFiles/nstream.dir/src/stream/control_channel.cc.o" "gcc" "CMakeFiles/nstream.dir/src/stream/control_channel.cc.o.d"
  "/root/repo/src/stream/data_queue.cc" "CMakeFiles/nstream.dir/src/stream/data_queue.cc.o" "gcc" "CMakeFiles/nstream.dir/src/stream/data_queue.cc.o.d"
  "/root/repo/src/types/schema.cc" "CMakeFiles/nstream.dir/src/types/schema.cc.o" "gcc" "CMakeFiles/nstream.dir/src/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "CMakeFiles/nstream.dir/src/types/tuple.cc.o" "gcc" "CMakeFiles/nstream.dir/src/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "CMakeFiles/nstream.dir/src/types/value.cc.o" "gcc" "CMakeFiles/nstream.dir/src/types/value.cc.o.d"
  "/root/repo/src/workload/archive.cc" "CMakeFiles/nstream.dir/src/workload/archive.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/archive.cc.o.d"
  "/root/repo/src/workload/auction.cc" "CMakeFiles/nstream.dir/src/workload/auction.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/auction.cc.o.d"
  "/root/repo/src/workload/imputation.cc" "CMakeFiles/nstream.dir/src/workload/imputation.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/imputation.cc.o.d"
  "/root/repo/src/workload/pipelines.cc" "CMakeFiles/nstream.dir/src/workload/pipelines.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/pipelines.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "CMakeFiles/nstream.dir/src/workload/traffic.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/traffic.cc.o.d"
  "/root/repo/src/workload/viewer.cc" "CMakeFiles/nstream.dir/src/workload/viewer.cc.o" "gcc" "CMakeFiles/nstream.dir/src/workload/viewer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
