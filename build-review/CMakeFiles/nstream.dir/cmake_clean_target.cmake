file(REMOVE_RECURSE
  "libnstream.a"
)
