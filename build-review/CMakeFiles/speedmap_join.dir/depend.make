# Empty dependencies file for speedmap_join.
# This may be replaced when dependencies are built.
