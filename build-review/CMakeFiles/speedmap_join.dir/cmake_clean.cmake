file(REMOVE_RECURSE
  "CMakeFiles/speedmap_join.dir/examples/speedmap_join.cpp.o"
  "CMakeFiles/speedmap_join.dir/examples/speedmap_join.cpp.o.d"
  "speedmap_join"
  "speedmap_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedmap_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
