file(REMOVE_RECURSE
  "CMakeFiles/thrifty_join_demo.dir/examples/thrifty_join_demo.cpp.o"
  "CMakeFiles/thrifty_join_demo.dir/examples/thrifty_join_demo.cpp.o.d"
  "thrifty_join_demo"
  "thrifty_join_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thrifty_join_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
