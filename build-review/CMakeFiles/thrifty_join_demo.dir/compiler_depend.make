# Empty compiler generated dependencies file for thrifty_join_demo.
# This may be replaced when dependencies are built.
