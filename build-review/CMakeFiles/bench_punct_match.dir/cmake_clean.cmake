file(REMOVE_RECURSE
  "CMakeFiles/bench_punct_match.dir/bench/bench_punct_match.cc.o"
  "CMakeFiles/bench_punct_match.dir/bench/bench_punct_match.cc.o.d"
  "bench_punct_match"
  "bench_punct_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_punct_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
