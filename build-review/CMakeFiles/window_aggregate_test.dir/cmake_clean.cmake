file(REMOVE_RECURSE
  "CMakeFiles/window_aggregate_test.dir/tests/ops/window_aggregate_test.cc.o"
  "CMakeFiles/window_aggregate_test.dir/tests/ops/window_aggregate_test.cc.o.d"
  "window_aggregate_test"
  "window_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
