# Empty dependencies file for window_aggregate_test.
# This may be replaced when dependencies are built.
