# Empty compiler generated dependencies file for imputation_pipeline.
# This may be replaced when dependencies are built.
