file(REMOVE_RECURSE
  "CMakeFiles/imputation_pipeline.dir/examples/imputation_pipeline.cpp.o"
  "CMakeFiles/imputation_pipeline.dir/examples/imputation_pipeline.cpp.o.d"
  "imputation_pipeline"
  "imputation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imputation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
