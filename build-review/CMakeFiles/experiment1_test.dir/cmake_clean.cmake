file(REMOVE_RECURSE
  "CMakeFiles/experiment1_test.dir/tests/integration/experiment1_test.cc.o"
  "CMakeFiles/experiment1_test.dir/tests/integration/experiment1_test.cc.o.d"
  "experiment1_test"
  "experiment1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
