# Empty compiler generated dependencies file for experiment1_test.
# This may be replaced when dependencies are built.
