# Empty compiler generated dependencies file for financial_demand.
# This may be replaced when dependencies are built.
