file(REMOVE_RECURSE
  "CMakeFiles/financial_demand.dir/examples/financial_demand.cpp.o"
  "CMakeFiles/financial_demand.dir/examples/financial_demand.cpp.o.d"
  "financial_demand"
  "financial_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
