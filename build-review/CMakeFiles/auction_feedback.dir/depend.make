# Empty dependencies file for auction_feedback.
# This may be replaced when dependencies are built.
