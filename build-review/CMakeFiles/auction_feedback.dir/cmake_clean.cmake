file(REMOVE_RECURSE
  "CMakeFiles/auction_feedback.dir/examples/auction_feedback.cpp.o"
  "CMakeFiles/auction_feedback.dir/examples/auction_feedback.cpp.o.d"
  "auction_feedback"
  "auction_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
