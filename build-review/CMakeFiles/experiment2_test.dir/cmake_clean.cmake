file(REMOVE_RECURSE
  "CMakeFiles/experiment2_test.dir/tests/integration/experiment2_test.cc.o"
  "CMakeFiles/experiment2_test.dir/tests/integration/experiment2_test.cc.o.d"
  "experiment2_test"
  "experiment2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
