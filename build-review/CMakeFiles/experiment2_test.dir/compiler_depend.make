# Empty compiler generated dependencies file for experiment2_test.
# This may be replaced when dependencies are built.
