file(REMOVE_RECURSE
  "CMakeFiles/data_queue_invariants_test.dir/tests/stream/data_queue_invariants_test.cc.o"
  "CMakeFiles/data_queue_invariants_test.dir/tests/stream/data_queue_invariants_test.cc.o.d"
  "data_queue_invariants_test"
  "data_queue_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_queue_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
