# Empty compiler generated dependencies file for data_queue_invariants_test.
# This may be replaced when dependencies are built.
