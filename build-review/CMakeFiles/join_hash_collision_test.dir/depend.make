# Empty dependencies file for join_hash_collision_test.
# This may be replaced when dependencies are built.
