file(REMOVE_RECURSE
  "CMakeFiles/join_hash_collision_test.dir/tests/ops/join_hash_collision_test.cc.o"
  "CMakeFiles/join_hash_collision_test.dir/tests/ops/join_hash_collision_test.cc.o.d"
  "join_hash_collision_test"
  "join_hash_collision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_hash_collision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
