# Empty compiler generated dependencies file for compiled_pattern_test.
# This may be replaced when dependencies are built.
