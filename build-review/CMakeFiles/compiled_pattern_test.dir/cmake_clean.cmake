file(REMOVE_RECURSE
  "CMakeFiles/compiled_pattern_test.dir/tests/punct/compiled_pattern_test.cc.o"
  "CMakeFiles/compiled_pattern_test.dir/tests/punct/compiled_pattern_test.cc.o.d"
  "compiled_pattern_test"
  "compiled_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
