# Empty dependencies file for executor_consistency_test.
# This may be replaced when dependencies are built.
