file(REMOVE_RECURSE
  "CMakeFiles/executor_consistency_test.dir/tests/integration/executor_consistency_test.cc.o"
  "CMakeFiles/executor_consistency_test.dir/tests/integration/executor_consistency_test.cc.o.d"
  "executor_consistency_test"
  "executor_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
