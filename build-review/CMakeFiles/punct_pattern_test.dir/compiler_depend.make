# Empty compiler generated dependencies file for punct_pattern_test.
# This may be replaced when dependencies are built.
