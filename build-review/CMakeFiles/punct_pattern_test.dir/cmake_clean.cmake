file(REMOVE_RECURSE
  "CMakeFiles/punct_pattern_test.dir/tests/punct/punct_pattern_test.cc.o"
  "CMakeFiles/punct_pattern_test.dir/tests/punct/punct_pattern_test.cc.o.d"
  "punct_pattern_test"
  "punct_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punct_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
