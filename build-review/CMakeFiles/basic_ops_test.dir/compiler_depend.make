# Empty compiler generated dependencies file for basic_ops_test.
# This may be replaced when dependencies are built.
