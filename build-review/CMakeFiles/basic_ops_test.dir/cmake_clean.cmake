file(REMOVE_RECURSE
  "CMakeFiles/basic_ops_test.dir/tests/ops/basic_ops_test.cc.o"
  "CMakeFiles/basic_ops_test.dir/tests/ops/basic_ops_test.cc.o.d"
  "basic_ops_test"
  "basic_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
