file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_join.dir/bench/bench_table2_join.cc.o"
  "CMakeFiles/bench_table2_join.dir/bench/bench_table2_join.cc.o.d"
  "bench_table2_join"
  "bench_table2_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
