# Empty dependencies file for bench_table2_join.
# This may be replaced when dependencies are built.
