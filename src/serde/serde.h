// The engine's ONE binary encoding of its scalar vocabulary (Value,
// Tuple, AttrPattern, PunctPattern, Punctuation, GuardSet), shared by
// the snapshot format (recovery/snapshot.h) and the wire frame format
// (ingest/wire_format.h). Factored out of the snapshot codec so the
// two surfaces cannot drift: a tuple serialized into a checkpoint and
// a tuple serialized into a network frame are byte-for-byte the same
// encoding.
//
// ByteWriter is an append-only little-endian sink that never fails;
// sizing errors surface on the read side. ByteReader is bounds-checked:
// every read returns a Status, so truncated or malformed input fails
// cleanly — the property both torn snapshot files and corrupted wire
// frames lean on.
//
// Two read flavors for payload-bearing types:
//
//   ReadValue / ReadTuple      self-contained results (inline or
//                              heap-owned strings) — snapshots, whose
//                              results outlive the input buffer;
//   ReadValueIn / ReadTupleIn  arena-targeted results: string bytes go
//                              straight from the input buffer into the
//                              destination arena (inline when ≤15 B),
//                              no intermediate std::string — the
//                              ingest zero-copy parse path. With a
//                              null arena they degrade to owned
//                              storage, so arena-off runs share the
//                              code path.

#ifndef NSTREAM_SERDE_SERDE_H_
#define NSTREAM_SERDE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/guards.h"
#include "punct/punct_pattern.h"
#include "types/tuple.h"
#include "types/value.h"

namespace nstream {

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
uint32_t SerdeCrc32(std::string_view data);

/// Append-only little-endian byte sink. Writers never fail; sizing
/// errors surface on the read side.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  // Engine vocabulary. Strings inside values are written as raw bytes
  // and restored self-contained (inline/heap-owned) or into the
  // reader's target arena, so serialized bytes never reference arena
  // memory.
  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteAttrPattern(const AttrPattern& p);
  void WritePattern(const PunctPattern& p);
  void WritePunctuation(const Punctuation& p);
  void WriteGuardSet(const GuardSet& g);

  /// Length-prefixed nested blob: readers can skip a section they do
  /// not understand (or do not want — e.g. an operators-only restore
  /// skipping queue sections), and a buggy section codec cannot
  /// overrun into its neighbours.
  void WriteSection(std::string_view bytes) { WriteString(bytes); }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void AppendRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked reader over a serialized payload. Every read returns
/// a Status; truncated or malformed input fails cleanly.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadBool(bool* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  /// Zero-copy string read: a view into the underlying buffer, valid
  /// only while the buffer outlives the view. The ingest parse path
  /// forwards these views straight into page arenas.
  Status ReadStringView(std::string_view* out);

  Status ReadValue(Value* out);
  Status ReadTuple(Tuple* out);
  /// Arena-targeted flavors: string payloads land inline or in
  /// `arena` (owned when arena is null) with no intermediate
  /// materialization. ReadTupleIn appends `nvals` values to `t`,
  /// which the caller constructs against the same arena.
  Status ReadValueIn(TupleArena* arena, Value* out);
  Status ReadTupleValuesIn(TupleArena* arena, uint32_t nvals, Tuple* t);
  Status ReadAttrPattern(AttrPattern* out);
  Status ReadPattern(PunctPattern* out);
  Status ReadPunctuation(Punctuation* out);
  /// Clears `g` and re-installs the stored patterns (recompiling via
  /// the global CompiledPatternCache).
  Status ReadGuardSet(GuardSet* g);

  /// View of the next length-prefixed section (see WriteSection);
  /// advances past it.
  Status ReadSection(std::string_view* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status ReadRaw(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_SERDE_SERDE_H_
