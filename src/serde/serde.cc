#include "serde/serde.h"

#include <cstring>
#include <vector>

namespace nstream {

uint32_t SerdeCrc32(std::string_view data) {
  // Table-driven CRC32 (IEEE 802.3, reflected 0xEDB88320). Built once;
  // both users (snapshot envelope, corrupted-trace detection) are
  // cold-path I/O, so a 1 KiB table beats hand-tuning.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char b : data) {
    crc = kTable[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- ByteWriter: engine vocabulary ----

void ByteWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      WriteBool(v.bool_value());
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      WriteI64(v.int64_value());
      break;
    case ValueType::kDouble:
      WriteDouble(v.double_value());
      break;
    case ValueType::kString:
      WriteString(v.string_view());
      break;
  }
}

void ByteWriter::WriteTuple(const Tuple& t) {
  WriteU32(static_cast<uint32_t>(t.size()));
  for (int i = 0; i < t.size(); ++i) {
    WriteValue(t.value(i));
  }
  WriteI64(t.id());
  WriteI64(t.arrival_ms());
}

void ByteWriter::WriteAttrPattern(const AttrPattern& p) {
  WriteU8(static_cast<uint8_t>(p.op()));
  switch (p.op()) {
    case PatternOp::kAny:
    case PatternOp::kIsNull:
    case PatternOp::kNotNull:
      break;  // no operand
    case PatternOp::kRange:
      WriteValue(p.operand());
      WriteValue(p.hi());
      break;
    default:
      WriteValue(p.operand());
      break;
  }
}

void ByteWriter::WritePattern(const PunctPattern& p) {
  WriteU32(static_cast<uint32_t>(p.attrs().size()));
  for (const AttrPattern& a : p.attrs()) {
    WriteAttrPattern(a);
  }
}

void ByteWriter::WritePunctuation(const Punctuation& p) {
  WritePattern(p.pattern());
  WriteI64(p.barrier_id());
}

void ByteWriter::WriteGuardSet(const GuardSet& g) {
  WriteU32(static_cast<uint32_t>(g.patterns().size()));
  for (const PunctPattern& p : g.patterns()) {
    WritePattern(p);
  }
}

// ---- ByteReader ----

Status ByteReader::ReadRaw(void* out, size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("serde: truncated: need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(data_.size() - pos_));
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* out) { return ReadRaw(out, 1); }

Status ByteReader::ReadBool(bool* out) {
  uint8_t b = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&b));
  *out = b != 0;
  return Status::OK();
}

Status ByteReader::ReadU32(uint32_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status ByteReader::ReadU64(uint64_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status ByteReader::ReadI64(int64_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status ByteReader::ReadDouble(double* out) {
  return ReadRaw(out, sizeof(*out));
}

Status ByteReader::ReadString(std::string* out) {
  std::string_view sv;
  NSTREAM_RETURN_NOT_OK(ReadStringView(&sv));
  out->assign(sv.data(), sv.size());
  return Status::OK();
}

Status ByteReader::ReadStringView(std::string_view* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("serde: truncated inside string");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadSection(std::string_view* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("serde: truncated inside section");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadValue(Value* out) { return ReadValueIn(nullptr, out); }

Status ByteReader::ReadValueIn(TupleArena* arena, Value* out) {
  uint8_t raw = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&raw));
  switch (static_cast<ValueType>(raw)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kBool: {
      bool b = false;
      NSTREAM_RETURN_NOT_OK(ReadBool(&b));
      *out = Value::Bool(b);
      return Status::OK();
    }
    case ValueType::kInt64: {
      int64_t i = 0;
      NSTREAM_RETURN_NOT_OK(ReadI64(&i));
      *out = Value::Int64(i);
      return Status::OK();
    }
    case ValueType::kTimestamp: {
      int64_t i = 0;
      NSTREAM_RETURN_NOT_OK(ReadI64(&i));
      *out = Value::Timestamp(i);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d = 0;
      NSTREAM_RETURN_NOT_OK(ReadDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueType::kString: {
      // Bytes go straight from the input buffer into the arena (inline
      // when short, owned when arena is null) — no std::string stop.
      std::string_view sv;
      NSTREAM_RETURN_NOT_OK(ReadStringView(&sv));
      *out = Value::StringIn(arena, sv);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("serde: unknown value type tag " +
                                 std::to_string(raw));
}

Status ByteReader::ReadTupleValuesIn(TupleArena* arena, uint32_t nvals,
                                     Tuple* t) {
  for (uint32_t i = 0; i < nvals; ++i) {
    Value v;
    NSTREAM_RETURN_NOT_OK(ReadValueIn(arena, &v));
    t->Append(std::move(v));
  }
  int64_t id = 0;
  int64_t arrival = 0;
  NSTREAM_RETURN_NOT_OK(ReadI64(&id));
  NSTREAM_RETURN_NOT_OK(ReadI64(&arrival));
  t->set_id(id);
  t->set_arrival_ms(arrival);
  return Status::OK();
}

Status ByteReader::ReadTuple(Tuple* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  // Each serialized value is at least its 1-byte type tag, so a count
  // beyond the remaining bytes is forged — reject it before reserving
  // (counts can arrive from a hostile wire peer, not just snapshots).
  if (n > remaining()) {
    return Status::InvalidArgument(
        "serde: tuple value count " + std::to_string(n) +
        " impossible for " + std::to_string(remaining()) +
        " remaining bytes");
  }
  Tuple t(nullptr, n);  // owned mode: results outlive the input buffer
  NSTREAM_RETURN_NOT_OK(ReadTupleValuesIn(nullptr, n, &t));
  *out = std::move(t);
  return Status::OK();
}

Status ByteReader::ReadAttrPattern(AttrPattern* out) {
  uint8_t raw = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&raw));
  PatternOp op = static_cast<PatternOp>(raw);
  switch (op) {
    case PatternOp::kAny:
      *out = AttrPattern::Any();
      return Status::OK();
    case PatternOp::kIsNull:
      *out = AttrPattern::IsNull();
      return Status::OK();
    case PatternOp::kNotNull:
      *out = AttrPattern::NotNull();
      return Status::OK();
    case PatternOp::kRange: {
      Value lo, hi;
      NSTREAM_RETURN_NOT_OK(ReadValue(&lo));
      NSTREAM_RETURN_NOT_OK(ReadValue(&hi));
      *out = AttrPattern::Range(std::move(lo), std::move(hi));
      return Status::OK();
    }
    case PatternOp::kEq:
    case PatternOp::kNe:
    case PatternOp::kLt:
    case PatternOp::kLe:
    case PatternOp::kGt:
    case PatternOp::kGe: {
      Value v;
      NSTREAM_RETURN_NOT_OK(ReadValue(&v));
      switch (op) {
        case PatternOp::kEq: *out = AttrPattern::Eq(std::move(v)); break;
        case PatternOp::kNe: *out = AttrPattern::Ne(std::move(v)); break;
        case PatternOp::kLt: *out = AttrPattern::Lt(std::move(v)); break;
        case PatternOp::kLe: *out = AttrPattern::Le(std::move(v)); break;
        case PatternOp::kGt: *out = AttrPattern::Gt(std::move(v)); break;
        default: *out = AttrPattern::Ge(std::move(v)); break;
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("serde: unknown pattern op " +
                                 std::to_string(raw));
}

Status ByteReader::ReadPattern(PunctPattern* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  // Each serialized AttrPattern is at least its 1-byte op tag, so a
  // count beyond the remaining bytes is forged — reject it before the
  // vector allocation. Punctuation frames cross the wire, and a
  // hostile peer must not be able to drive a multi-GB allocation out
  // of a few payload bytes.
  if (n > remaining()) {
    return Status::InvalidArgument(
        "serde: pattern attr count " + std::to_string(n) +
        " impossible for " + std::to_string(remaining()) +
        " remaining bytes");
  }
  std::vector<AttrPattern> attrs(n);
  for (uint32_t i = 0; i < n; ++i) {
    NSTREAM_RETURN_NOT_OK(ReadAttrPattern(&attrs[i]));
  }
  *out = PunctPattern(std::move(attrs));
  return Status::OK();
}

Status ByteReader::ReadPunctuation(Punctuation* out) {
  PunctPattern pat;
  NSTREAM_RETURN_NOT_OK(ReadPattern(&pat));
  int64_t barrier = 0;
  NSTREAM_RETURN_NOT_OK(ReadI64(&barrier));
  if (barrier != 0) {
    *out = Punctuation::Barrier(barrier);
  } else {
    *out = Punctuation(std::move(pat));
  }
  return Status::OK();
}

Status ByteReader::ReadGuardSet(GuardSet* g) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  g->Clear();
  for (uint32_t i = 0; i < n; ++i) {
    PunctPattern p;
    NSTREAM_RETURN_NOT_OK(ReadPattern(&p));
    g->Add(p);
  }
  return Status::OK();
}

}  // namespace nstream
