// Page: a batch of stream elements. NiagaraST's inter-operator queues
// consist of pages of tuples; batching amortizes queue synchronization
// and context switches. A page is flushed to the queue when it fills OR
// when a punctuation is written to it (so slow streams don't strand
// punctuation behind a partially-filled page) — §5, "Inter-Operator
// Communication".
//
// A page is also the unit of tuple-memory ownership: it lazily owns a
// TupleArena from which result tuples bump-allocate their value spans
// and string bytes. The arena travels with the page through every
// queue hop (Page is move-only) and is freed wholesale when the page
// is destroyed — zero per-tuple frees on the consumption side.
// Invariant: every arena-backed tuple stored in a page references
// that page's own arena (AddTuple re-homes foreign-arena tuples);
// owned-mode tuples may live in any page.
//
// A page has one of two layouts:
//   * ROW (default) — a vector of StreamElements (tuples, punctuation,
//     EOS markers) in arrival order.
//   * COLUMNAR — a ColumnarBlock of per-attribute Value arrays in the
//     page arena, tuples only (punctuation flushes its page, so it
//     could only ever trail the rows; emitters send it on the next,
//     row, page). Consumers that need row tuples call
//     EnsureRowLayout() first; layout-aware consumers branch on
//     is_columnar() and read the block in place.

#ifndef NSTREAM_STREAM_PAGE_H_
#define NSTREAM_STREAM_PAGE_H_

#include <cassert>
#include <memory>
#include <vector>

#include "stream/columnar.h"
#include "stream/element.h"
#include "types/tuple_arena.h"

namespace nstream {

/// Why a page left the producer and entered the queue.
enum class FlushReason : uint8_t {
  kPageFull = 0,
  kPunctuation,   // punctuation written — flushed immediately
  kEndOfStream,
  kExplicit,      // producer-forced flush (e.g. operator Close)
};

class Page {
 public:
  Page() = default;

  // Move-only: a page's elements travel producer → queue → consumer by
  // transfer of ownership, never by copy. Keeps the per-tuple cost of
  // the data path at one move per hop, and gives the arena exactly one
  // owner at all times.
  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  void Add(StreamElement e) {
    assert(block_ == nullptr && "columnar pages take rows via the block");
    assert(ElementArenaInvariantHolds(e));
    elems_.push_back(std::move(e));
  }
  /// Add a tuple, re-homing it into this page's arena if it is backed
  /// by a different one (promoting to owned storage when arenas are
  /// disabled). Owned tuples are moved in untouched. This is the one
  /// safe way to migrate a tuple between pages without a deep copy.
  void AddTuple(Tuple t) {
    if (t.arena_backed() && t.arena() != arena_.get()) {
      t.Rehome(arena());
    }
    elems_.push_back(StreamElement::OfTuple(std::move(t)));
  }
  /// Pre-size the element vector (producers reserve page_size up
  /// front so filling a page never reallocates mid-stream).
  void Reserve(size_t n) { elems_.reserve(n); }

  /// This page's tuple arena, lazily created — or null when page
  /// arenas are globally disabled (TupleArenas), in which case every
  /// arena-taking API falls back to owned allocation. Result tuples
  /// built for this page should pass this to Tuple's arena
  /// constructor / Value::StringIn.
  TupleArena* arena() {
    if (arena_ == nullptr) {
      if (!TupleArenas::enabled()) return nullptr;
      arena_ = std::make_unique<TupleArena>();
    }
    return arena_.get();
  }
  /// The arena if one was ever created (no lazy creation); may be
  /// null. Consumers use this for introspection/asserts only.
  const TupleArena* arena_if_created() const { return arena_.get(); }

  bool empty() const {
    return block_ != nullptr ? block_->size() == 0 : elems_.empty();
  }
  size_t size() const {
    return block_ != nullptr ? block_->size() : elems_.size();
  }
  const std::vector<StreamElement>& elements() const {
    assert(block_ == nullptr && "call EnsureRowLayout() first");
    return elems_;
  }
  std::vector<StreamElement>& mutable_elements() {
    assert(block_ == nullptr && "call EnsureRowLayout() first");
    return elems_;
  }

  /// Switch this (empty) page to the columnar layout, allocating a
  /// block of `cols` columns × `capacity` rows from the page arena.
  /// Returns null when arenas are unavailable (columnar requires a
  /// page arena) — callers fall back to row staging.
  ColumnarBlock* BeginColumnar(uint32_t cols, uint32_t capacity) {
    assert(elems_.empty() && block_ == nullptr);
    TupleArena* a = arena();
    if (a == nullptr) return nullptr;
    block_ = std::make_unique<ColumnarBlock>();
    block_->Init(a, cols, capacity);
    return block_.get();
  }
  bool is_columnar() const { return block_ != nullptr; }
  ColumnarBlock* columnar() { return block_.get(); }
  const ColumnarBlock* columnar() const { return block_.get(); }

  /// Columnar → row materialization at boundaries that require row
  /// tuples (per-element walks, sinks, non-columnar operators). Each
  /// selected row gathers into an arena tuple of Value aliases — one
  /// flat 16-byte copy per attribute, no string clones, same arena,
  /// so the page invariant holds by construction. No-op on row pages.
  void EnsureRowLayout() {
    if (block_ == nullptr) return;
    std::unique_ptr<ColumnarBlock> b = std::move(block_);
    const uint32_t n = b->size();
    elems_.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      elems_.push_back(
          StreamElement::OfTuple(b->GatherRowAliased(b->row_at(i))));
    }
    // The block's arrays stay behind in the arena (freed with the
    // page); the block header itself dies here.
  }

  FlushReason flush_reason() const { return flush_reason_; }
  void set_flush_reason(FlushReason r) { flush_reason_ = r; }

  /// Debug check of the page/arena ownership invariant for one
  /// element (tuples only; punctuation carries no tuple memory).
  bool ElementArenaInvariantHolds(const StreamElement& e) const {
    return !e.is_tuple() || e.tuple().ArenaInvariantHolds(arena_.get());
  }

 private:
  // Declared before elems_/block_ so elements (whose tuples reference
  // the arena) and the block (whose arrays live in the arena) are
  // destroyed first; arena-mode tuple destructors are no-ops, but the
  // order keeps even pathological cases sound.
  std::unique_ptr<TupleArena> arena_;
  std::vector<StreamElement> elems_;
  std::unique_ptr<ColumnarBlock> block_;
  FlushReason flush_reason_ = FlushReason::kExplicit;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_PAGE_H_
