// Page: a batch of stream elements. NiagaraST's inter-operator queues
// consist of pages of tuples; batching amortizes queue synchronization
// and context switches. A page is flushed to the queue when it fills OR
// when a punctuation is written to it (so slow streams don't strand
// punctuation behind a partially-filled page) — §5, "Inter-Operator
// Communication".

#ifndef NSTREAM_STREAM_PAGE_H_
#define NSTREAM_STREAM_PAGE_H_

#include <vector>

#include "stream/element.h"

namespace nstream {

/// Why a page left the producer and entered the queue.
enum class FlushReason : uint8_t {
  kPageFull = 0,
  kPunctuation,   // punctuation written — flushed immediately
  kEndOfStream,
  kExplicit,      // producer-forced flush (e.g. operator Close)
};

class Page {
 public:
  Page() = default;

  // Move-only: a page's elements travel producer → queue → consumer by
  // transfer of ownership, never by copy. Keeps the per-tuple cost of
  // the data path at one move per hop.
  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  void Add(StreamElement e) { elems_.push_back(std::move(e)); }
  /// Pre-size the element vector (producers reserve page_size up
  /// front so filling a page never reallocates mid-stream).
  void Reserve(size_t n) { elems_.reserve(n); }

  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }
  const std::vector<StreamElement>& elements() const { return elems_; }
  std::vector<StreamElement>& mutable_elements() { return elems_; }

  FlushReason flush_reason() const { return flush_reason_; }
  void set_flush_reason(FlushReason r) { flush_reason_ = r; }

 private:
  std::vector<StreamElement> elems_;
  FlushReason flush_reason_ = FlushReason::kExplicit;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_PAGE_H_
