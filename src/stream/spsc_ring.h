// SpscRing: a bounded lock-free single-producer/single-consumer ring.
//
// Under the thread-per-operator executor every plan edge is
// single-producer/single-consumer (the producer operator pushes from
// its own thread, the consumer pops from its own), which is exactly
// the shape a lock-free ring exploits: one release-store per push, one
// release-store per pop, no mutex, no condition variable, no per-page
// system call. DataQueue uses a ring of Pages as its fast transport on
// edges the plan tags SPSC (see DataQueueTransport); the mutex deque
// remains for everything whose threading the engine cannot prove.
//
// Design notes:
//   * Capacity is rounded up to a power of two so the index wrap is a
//     single mask (no division on the hot path).
//   * head_ (consumer cursor) and tail_ (producer cursor) live on
//     separate cache lines so pushes and pops never false-share.
//   * Each side keeps a *cached* copy of the other side's cursor and
//     refreshes it only when the ring looks full/empty — the common
//     case does one relaxed load + one release store, touching no
//     cache line owned by the other thread.
//   * The ring itself never blocks. Waiting (consumer wake-up on push,
//     producer backpressure on full) belongs to the caller — DataQueue
//     layers it on via its consumer-notifier hook and timed waits, so
//     the ring stays obstruction-free and trivially testable.
//
// Thread contract: TryPush from exactly one producer thread, TryPop
// from exactly one consumer thread. ApproxEmpty/ApproxSize are safe
// from any thread but only approximate while the ring is in motion.

#ifndef NSTREAM_STREAM_SPSC_RING_H_
#define NSTREAM_STREAM_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace nstream {

inline size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(size_t min_capacity)
      : slots_(RoundUpPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Moves from `item` ONLY on success; on a full ring
  /// returns false and leaves `item` untouched so the caller can wait
  /// and retry.
  bool TryPush(T&& item) {
    const size_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == slots_.size()) return false;  // full
    }
    slots_[t & mask_] = std::move(item);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. nullopt when the ring is empty.
  std::optional<T> TryPop() {
    const size_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return std::nullopt;  // empty
    }
    std::optional<T> out(std::move(slots_[h & mask_]));
    head_.store(h + 1, std::memory_order_release);
    return out;
  }

  /// Any thread; exact only when both sides are quiescent.
  bool ApproxEmpty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  size_t ApproxSize() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kCacheLine = 64;

  std::vector<T> slots_;
  const size_t mask_;
  // Consumer-owned line: pop cursor + the consumer's cache of tail_.
  alignas(kCacheLine) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  // Producer-owned line: push cursor + the producer's cache of head_.
  alignas(kCacheLine) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
  // Trailing pad so tail_'s line is not shared with whatever the
  // enclosing object places after the ring.
  char pad_[kCacheLine - sizeof(std::atomic<size_t>) - sizeof(size_t)];
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_SPSC_RING_H_
