// Connection: one producer→consumer edge of the runtime query plan,
// bundling the downstream data queue with the upstream control channel
// exactly as in NiagaraST's inter-operator connection schematic
// (Fig. 3).

#ifndef NSTREAM_STREAM_CONNECTION_H_
#define NSTREAM_STREAM_CONNECTION_H_

#include <memory>

#include "stream/control_channel.h"
#include "stream/data_queue.h"

namespace nstream {

struct Connection {
  explicit Connection(DataQueueOptions opts = {})
      : data(std::make_unique<DataQueue>(opts)),
        control(std::make_unique<ControlChannel>()) {}

  // Tuples + embedded punctuation, producer → consumer.
  std::unique_ptr<DataQueue> data;
  // Feedback + shutdown, consumer → producer.
  std::unique_ptr<ControlChannel> control;

  // Endpoints (operator ids and port indices), filled by the plan.
  int64_t producer_op = -1;
  int producer_port = 0;
  int64_t consumer_op = -1;
  int consumer_port = 0;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_CONNECTION_H_
