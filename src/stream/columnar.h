// ColumnarBlock: the SoA (structure-of-arrays) page layout. A row page
// stores a vector of StreamElements, each a variant holding a Tuple
// whose values live in a per-tuple span; a columnar page stores one
// contiguous Value array PER ATTRIBUTE plus parallel id/arrival
// arrays, all bump-allocated from the owning Page's TupleArena. Result
// construction becomes one slot store per attribute — no per-tuple
// span setup, no StreamElement variant — and filtering becomes a
// SELECTION VECTOR edit instead of an element compaction.
//
// Rules (see docs/ARCHITECTURE.md "Page layouts"):
//   * Columnar pages hold tuples only. Punctuation/EOS keep their
//     dedicated paths — a punctuation flushes its page, so it could
//     only ever trail the rows anyway.
//   * Columnar layout REQUIRES the page arena (the column spans live
//     there); Page::BeginColumnar returns null when arenas are off
//     and callers fall back to row staging.
//   * Every value stored in a block is trivially destructible (string
//     bytes are inlined or borrowed from the block's arena — Set()
//     enforces the same re-homing rules as Tuple::Append), so the
//     page's wholesale arena free stays sound.
//   * Consumers that need rows (join table inserts, sinks, per-element
//     walks) materialize via Page::EnsureRowLayout or gather single
//     rows; gathering within the page is a Value::Alias field copy
//     per attribute, never a byte clone.

#ifndef NSTREAM_STREAM_COLUMNAR_H_
#define NSTREAM_STREAM_COLUMNAR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "types/tuple.h"
#include "types/tuple_arena.h"
#include "types/value.h"

namespace nstream {

/// Per-column value-class summary, maintained on every store. Lets
/// consumers hoist type dispatch out of row loops: one class check
/// per column, then a tight unchecked_int64/unchecked_double loop the
/// compiler can vectorize (compiled-pattern purges, join key hashing).
enum class ColumnClass : uint8_t {
  kEmpty = 0,  // no values stored yet
  kInt64,      // every value is int64-imaged (kInt64/kTimestamp)
  kDouble,     // every value is kDouble
  kMixed,      // anything else (strings, bools, nulls, or a mix)
};

class ColumnarBlock {
 public:
  ColumnarBlock() = default;
  ColumnarBlock(const ColumnarBlock&) = delete;
  ColumnarBlock& operator=(const ColumnarBlock&) = delete;

  /// Allocate the column/id/arrival arrays from `arena` (which must
  /// outlive the block — it is the owning page's arena).
  void Init(TupleArena* arena, uint32_t cols, uint32_t capacity) {
    assert(arena != nullptr && cols > 0 && capacity > 0);
    arena_ = arena;
    cols_ = cols;
    capacity_ = capacity;
    rows_ = 0;
    sel_ = nullptr;
    sel_count_ = 0;
    col_data_ = arena->AllocateSpan<Value*>(cols);
    col_class_ = arena->AllocateSpan<ColumnClass>(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      col_data_[c] = arena->AllocateSpan<Value>(capacity);
      col_class_[c] = ColumnClass::kEmpty;
    }
    ids_ = arena->AllocateSpan<int64_t>(capacity);
    arrivals_ = arena->AllocateSpan<TimeMs>(capacity);
  }

  uint32_t cols() const { return cols_; }
  uint32_t capacity() const { return capacity_; }
  /// Rows physically appended (ignores the selection vector).
  uint32_t rows() const { return rows_; }
  bool full() const { return rows_ == capacity_; }
  /// Rows currently SELECTED — what consumers see as the page size.
  uint32_t size() const { return sel_ != nullptr ? sel_count_ : rows_; }
  /// Physical row index of the i-th selected row.
  uint32_t row_at(uint32_t i) const {
    return sel_ != nullptr ? sel_[i] : i;
  }

  /// Open a new row; every column must then be stored via Set(). The
  /// caller checks full() (or flushes) before calling.
  uint32_t AddRow(int64_t id, TimeMs arrival) {
    assert(rows_ < capacity_);
    const uint32_t r = rows_++;
    ids_[r] = id;
    arrivals_[r] = arrival;
#ifndef NDEBUG
    // Debug builds pre-null the slots so a column a buggy emitter
    // skipped reads as NULL instead of uninitialized bytes.
    for (uint32_t c = 0; c < cols_; ++c) new (col_data_[c] + r) Value();
#endif
    return r;
  }

  /// Store one attribute of a row — the same re-homing rules as
  /// Tuple::Append(const Value&): string bytes go into (or stay
  /// borrowed from) the block's arena, scalars and inline strings are
  /// flat field copies. This is the entire per-value cost of columnar
  /// result construction.
  void Set(uint32_t col, uint32_t row, const Value& v) {
    assert(col < cols_ && row < rows_);
    Value* slot = col_data_[col] + row;
    if (v.type() == ValueType::kString && !v.is_inline_string()) {
      std::string_view sv = v.string_view();
      if (v.is_borrowed_string() && arena_->Owns(sv.data())) {
        new (slot) Value(Value::BorrowedString(sv));
      } else {
        new (slot) Value(Value::StringIn(arena_, sv));
      }
    } else {
      new (slot) Value(Value::Alias(v));
    }
    MergeClass(col, *slot);
  }

  /// Contiguous column access (read side of the hoisted-dispatch
  /// loops). Index by PHYSICAL row (row_at).
  const Value* column(uint32_t c) const {
    assert(c < cols_);
    return col_data_[c];
  }
  ColumnClass column_class(uint32_t c) const {
    assert(c < cols_);
    return col_class_[c];
  }
  const int64_t* ids() const { return ids_; }
  const TimeMs* arrivals() const { return arrivals_; }
  /// Mutable engine-metadata arrays (executors stamp arrival times on
  /// emission, exactly as they stamp row tuples; the ingest decoder
  /// stamps ids after a row's values, matching the wire field order).
  TimeMs* mutable_arrivals() { return arrivals_; }
  int64_t* mutable_ids() { return ids_; }
  TupleArena* arena() const { return arena_; }

  /// Selection-vector filter: keep exactly the selected rows for
  /// which `keep_row(physical_row)` returns true. This is an index
  /// edit — surviving rows are never moved or copied, which is the
  /// whole point versus row-page compaction.
  template <typename Fn>
  void KeepIf(Fn&& keep_row) {
    const uint32_t n = size();
    uint32_t* out = sel_;
    if (out == nullptr) out = arena_->AllocateSpan<uint32_t>(rows_);
    uint32_t kept = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t r = sel_ != nullptr ? sel_[i] : i;
      if (keep_row(r)) out[kept++] = r;
    }
    sel_ = out;
    sel_count_ = kept;
  }

  /// Stable-partition the selection: matching rows ahead of
  /// non-matching ones, relative order preserved on both sides (the
  /// queue's PromoteMatching over columnar pages). Returns the number
  /// of rows that jumped ahead of a non-matching row.
  template <typename Fn>
  int PartitionSelection(Fn&& match) {
    EnsureSelection();
    const uint32_t n = sel_count_;
    uint32_t* tmp = arena_->AllocateSpan<uint32_t>(n);
    uint32_t m = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (match(sel_[i])) tmp[m++] = sel_[i];
    }
    if (m == 0 || m == n) return 0;
    uint32_t k = m;
    for (uint32_t i = 0; i < n; ++i) {
      if (!match(sel_[i])) tmp[k++] = sel_[i];
    }
    sel_ = tmp;
    return static_cast<int>(m);
  }

  /// In-place projection: re-point the column array at the kept
  /// attribute positions (O(output arity); rows, ids, arrivals and
  /// the selection carry over untouched). `keep` lists input columns
  /// in output order; duplicates are fine (columns are shared).
  void ProjectColumns(const std::vector<int>& keep) {
    Value** nd = arena_->AllocateSpan<Value*>(keep.size());
    ColumnClass* nc = arena_->AllocateSpan<ColumnClass>(keep.size());
    for (size_t j = 0; j < keep.size(); ++j) {
      assert(keep[j] >= 0 && static_cast<uint32_t>(keep[j]) < cols_);
      nd[j] = col_data_[keep[j]];
      nc[j] = col_class_[keep[j]];
    }
    col_data_ = nd;
    col_class_ = nc;
    cols_ = static_cast<uint32_t>(keep.size());
  }

  /// Reusable row view for per-row predicates (FilterPageInPlace):
  /// one arena tuple whose slots FillRow overwrites with Value
  /// aliases — per row the cost is cols field copies, no clones.
  Tuple MakeRowScratch() const {
    Tuple t(arena_, cols_);
    for (uint32_t c = 0; c < cols_; ++c) t.Append(Value::Null());
    return t;
  }
  void FillRow(uint32_t row, Tuple* scratch) const {
    assert(row < rows_ && scratch->size() == static_cast<int>(cols_));
    for (uint32_t c = 0; c < cols_; ++c) {
      scratch->mutable_value(static_cast<int>(c)) =
          Value::Alias(col_data_[c][row]);
    }
    scratch->set_id(ids_[row]);
    scratch->set_arrival_ms(arrivals_[row]);
  }

  /// Gather a row into an arena tuple backed by the block's own arena
  /// (value aliases — free). Page-lifetime, like any arena tuple.
  Tuple GatherRowAliased(uint32_t row) const {
    assert(row < rows_);
    Tuple t(arena_, cols_);
    for (uint32_t c = 0; c < cols_; ++c) {
      t.AppendAlias(col_data_[c][row]);
    }
    t.set_id(ids_[row]);
    t.set_arrival_ms(arrivals_[row]);
    return t;
  }

  /// Gather a row into a self-contained OWNED tuple (borrowed strings
  /// promote). For state that outlives the page: join table inserts.
  Tuple GatherRowOwned(uint32_t row) const {
    assert(row < rows_);
    Tuple t(nullptr, cols_);
    for (uint32_t c = 0; c < cols_; ++c) {
      t.Append(col_data_[c][row]);
    }
    t.set_id(ids_[row]);
    t.set_arrival_ms(arrivals_[row]);
    return t;
  }

  /// Debug check behind the wholesale page free: the block must be
  /// backed by the page's own arena and hold no owning values.
  bool ArenaInvariantHolds(const TupleArena* page_arena) const {
    if (arena_ != page_arena) return false;
    for (uint32_t c = 0; c < cols_; ++c) {
      for (uint32_t r = 0; r < rows_; ++r) {
        if (!col_data_[c][r].is_trivially_destructible_rep()) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  void EnsureSelection() {
    if (sel_ != nullptr) return;
    sel_ = arena_->AllocateSpan<uint32_t>(rows_);
    for (uint32_t i = 0; i < rows_; ++i) sel_[i] = i;
    sel_count_ = rows_;
  }

  void MergeClass(uint32_t col, const Value& v) {
    const ColumnClass cls = v.is_int64_rep() ? ColumnClass::kInt64
                            : v.type() == ValueType::kDouble
                                ? ColumnClass::kDouble
                                : ColumnClass::kMixed;
    if (col_class_[col] == ColumnClass::kEmpty) {
      col_class_[col] = cls;
    } else if (col_class_[col] != cls) {
      col_class_[col] = ColumnClass::kMixed;
    }
  }

  TupleArena* arena_ = nullptr;
  Value** col_data_ = nullptr;       // [cols_] column base pointers
  ColumnClass* col_class_ = nullptr; // [cols_] per-column summaries
  int64_t* ids_ = nullptr;           // [capacity_] engine tuple ids
  TimeMs* arrivals_ = nullptr;       // [capacity_] arrival stamps
  uint32_t* sel_ = nullptr;          // selection vector; null = all
  uint32_t sel_count_ = 0;
  uint32_t cols_ = 0;
  uint32_t rows_ = 0;
  uint32_t capacity_ = 0;
};

/// Global toggle for columnar result staging, consulted by the emit
/// paths (join/project/window-aggregate) next to
/// ExecContext::PagedEmissionPreferred. Mirrors TupleArenas: default
/// on, flipped by tests/benches to A/B the layouts on identical
/// plans. Columnar pages additionally require arenas — with
/// TupleArenas off, Page::BeginColumnar declines and operators stage
/// row pages regardless of this switch.
class PageColumnar {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<bool> enabled_{true};
};

/// RAII toggle for tests: columnar staging off (or on) within a scope.
class ScopedPageColumnarEnabled {
 public:
  explicit ScopedPageColumnarEnabled(bool on)
      : prev_(PageColumnar::enabled()) {
    PageColumnar::SetEnabled(on);
  }
  ~ScopedPageColumnarEnabled() { PageColumnar::SetEnabled(prev_); }
  ScopedPageColumnarEnabled(const ScopedPageColumnarEnabled&) = delete;
  ScopedPageColumnarEnabled& operator=(const ScopedPageColumnarEnabled&) =
      delete;

 private:
  bool prev_;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_COLUMNAR_H_
