#include "stream/control_channel.h"

namespace nstream {

const char* ControlTypeName(ControlType t) {
  switch (t) {
    case ControlType::kFeedback:
      return "feedback";
    case ControlType::kShutdown:
      return "shutdown";
    case ControlType::kRequestResult:
      return "request_result";
  }
  return "?";
}

std::string ControlMessage::ToString() const {
  if (type == ControlType::kFeedback) {
    return std::string("ctrl{feedback ") + feedback.ToString() + "}";
  }
  return std::string("ctrl{") + ControlTypeName(type) + "}";
}

void ControlChannel::Push(ControlMessage msg) {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(std::move(msg));
    ++stats_.messages_pushed;
    fn = notifier_;
  }
  if (fn) fn();
}

std::optional<ControlMessage> ControlChannel::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (messages_.empty()) return std::nullopt;
  ControlMessage m = std::move(messages_.front());
  messages_.pop_front();
  ++stats_.messages_popped;
  return m;
}

bool ControlChannel::HasMessage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !messages_.empty();
}

void ControlChannel::SetNotifier(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  notifier_ = std::move(fn);
}

ControlChannelStats ControlChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nstream
