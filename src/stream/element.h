// StreamElement: what flows through a data queue — a tuple, an embedded
// punctuation, or the end-of-stream marker. Mirrors NiagaraST's data
// path where punctuations are represented similarly to tuples and flow
// in-band (§3.1, §5).

#ifndef NSTREAM_STREAM_ELEMENT_H_
#define NSTREAM_STREAM_ELEMENT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

#include "punct/punct_pattern.h"
#include "types/tuple.h"

namespace nstream {

enum class ElementKind : uint8_t {
  kTuple = 0,
  kPunctuation,
  kEndOfStream,
};

/// One in-band stream element.
class StreamElement {
 public:
  static StreamElement OfTuple(Tuple t) {
    StreamElement e;
    e.rep_ = std::move(t);
    return e;
  }
  static StreamElement OfPunct(Punctuation p) {
    StreamElement e;
    e.rep_ = std::move(p);
    return e;
  }
  static StreamElement Eos() { return StreamElement(); }

  ElementKind kind() const {
    if (std::holds_alternative<Tuple>(rep_)) return ElementKind::kTuple;
    if (std::holds_alternative<Punctuation>(rep_)) {
      return ElementKind::kPunctuation;
    }
    return ElementKind::kEndOfStream;
  }
  bool is_tuple() const { return kind() == ElementKind::kTuple; }
  bool is_punct() const { return kind() == ElementKind::kPunctuation; }
  bool is_eos() const { return kind() == ElementKind::kEndOfStream; }

  const Tuple& tuple() const {
    assert(is_tuple());
    return std::get<Tuple>(rep_);
  }
  Tuple& mutable_tuple() {
    assert(is_tuple());
    return std::get<Tuple>(rep_);
  }
  const Punctuation& punct() const {
    assert(is_punct());
    return std::get<Punctuation>(rep_);
  }

  std::string ToString() const {
    switch (kind()) {
      case ElementKind::kTuple:
        return tuple().ToString();
      case ElementKind::kPunctuation:
        return "punct" + punct().ToString();
      case ElementKind::kEndOfStream:
        return "<EOS>";
    }
    return "?";
  }

 private:
  std::variant<std::monostate, Tuple, Punctuation> rep_;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_ELEMENT_H_
