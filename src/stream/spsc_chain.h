// SpscChain: an UNBOUNDED single-producer/single-consumer queue built
// as a linked chain of bounded lock-free SpscRing segments.
//
// The bounded SpscRing gave threaded-executor edges a contention-free
// transport, but the single-threaded executors (SyncExecutor) kept the
// mutex deque because they require unbounded queues — a deterministic
// round-robin scheduler cannot block on backpressure. The chain closes
// that gap: pushes never fail (a full segment links a fresh one), pops
// retire drained segments, and both sides keep the ring's
// one-release-store cost in the common case.
//
// Design notes:
//   * The producer owns `tail_` (the segment it pushes into); the
//     consumer owns `head_` (the segment it pops from). They only
//     communicate through each segment's ring cursors and the `next`
//     pointer, both release/acquire.
//   * A producer links a new segment ONLY after its current segment's
//     ring is full, so when the consumer sees (ring empty, next set)
//     the old segment is fully drained and can be deleted — the
//     producer never touches a segment again after linking past it.
//   * approximate size/emptiness come from monotonic single-writer
//     push/pop counters, so any thread may ask without touching the
//     segment pointers.
//
// Thread contract: Push from exactly one producer thread, TryPop from
// exactly one consumer thread (the same thread may do both — the
// single-threaded executors' shape). ApproxEmpty/ApproxSize from any
// thread.

#ifndef NSTREAM_STREAM_SPSC_CHAIN_H_
#define NSTREAM_STREAM_SPSC_CHAIN_H_

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "stream/spsc_ring.h"

namespace nstream {

template <typename T>
class SpscChain {
 public:
  /// `segment_capacity` is rounded up to a power of two (minimum 2);
  /// it bounds segment churn, not queue length.
  explicit SpscChain(size_t segment_capacity = 64)
      : segment_capacity_(segment_capacity < 2 ? 2 : segment_capacity) {
    head_ = tail_ = new Segment(segment_capacity_);
  }

  SpscChain(const SpscChain&) = delete;
  SpscChain& operator=(const SpscChain&) = delete;

  ~SpscChain() {
    Segment* s = head_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  /// Producer side. Never fails; a full segment links a fresh one.
  void Push(T&& item) {
    if (!tail_->ring.TryPush(std::move(item))) {
      Segment* fresh = new Segment(segment_capacity_);
      bool ok = fresh->ring.TryPush(std::move(item));
      (void)ok;  // a fresh ring of capacity >= 2 cannot be full
      // Publish the segment only after its first item is inside, so a
      // consumer that observes `next` observes a non-racy ring.
      tail_->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
    }
    pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }

  /// Consumer side. nullopt when every published item was consumed.
  std::optional<T> TryPop() {
    while (true) {
      std::optional<T> out = head_->ring.TryPop();
      if (!out.has_value()) {
        // Ring looked empty. If the producer has linked a successor,
        // it will never push here again — but the emptiness read may
        // predate the pushes that `next`'s release-store publishes,
        // so re-check the ring AFTER acquiring `next`; only a
        // genuinely drained segment is retired. (Skipping this
        // re-check loses a full segment of items under exactly the
        // right interleaving — the two-thread stress test caught it.)
        Segment* next = head_->next.load(std::memory_order_acquire);
        if (next == nullptr) return std::nullopt;
        out = head_->ring.TryPop();
        if (!out.has_value()) {
          delete head_;
          head_ = next;
          continue;
        }
      }
      popped_.store(popped_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
      return out;
    }
  }

  /// Any thread; exact only when both sides are quiescent.
  size_t ApproxSize() const {
    uint64_t pushed = pushed_.load(std::memory_order_acquire);
    uint64_t popped = popped_.load(std::memory_order_acquire);
    return pushed >= popped ? static_cast<size_t>(pushed - popped) : 0;
  }
  bool ApproxEmpty() const { return ApproxSize() == 0; }

  size_t segment_capacity() const { return segment_capacity_; }

 private:
  struct Segment {
    explicit Segment(size_t cap) : ring(cap) {}
    SpscRing<T> ring;
    std::atomic<Segment*> next{nullptr};
  };

  const size_t segment_capacity_;
  // Consumer-owned line.
  alignas(64) Segment* head_ = nullptr;
  std::atomic<uint64_t> popped_{0};
  // Producer-owned line.
  alignas(64) Segment* tail_ = nullptr;
  std::atomic<uint64_t> pushed_{0};
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_SPSC_CHAIN_H_
