// DataQueue: the downstream (with-the-data) half of an inter-operator
// connection (Fig. 3). Producer-side page assembly with
// punctuation-triggered flush; consumer-side page pops.
//
// The queue is a façade over three interchangeable transports:
//
//   * kMutexDeque — the original mutex + condvar deque. Safe for any
//     number of pushing/popping threads and for unbounded queues; any
//     DataQueue constructed outside a finalized plan uses it.
//   * kSpscRing — a bounded lock-free single-producer/single-consumer
//     ring of pages (stream/spsc_ring.h). Plan edges are tagged SPSC
//     at wiring time (PlanRuntime::Create) when they have exactly one
//     producer port and one consumer port, which under the
//     thread-per-operator executor means exactly one pushing and one
//     popping thread. Pushes and pops then cost one atomic
//     release-store each; the mutex survives only on slow paths
//     (backpressure waits, purge/promote surgery, notifier install).
//   * kSpscChain — an UNBOUNDED lock-free SPSC chain of ring segments
//     (stream/spsc_chain.h). Same thread contract as the ring but
//     pushes never block, which is what the deterministic
//     single-threaded executors need (their round-robin scheduler
//     must not park on backpressure). SyncExecutor tags every edge
//     with it (one thread trivially satisfies SPSC) and additionally
//     sets assume_single_thread so feedback surgery may reach into
//     the producer-side open page exactly as the deque did.
//
// SPSC thread contract: all producer-side calls (PushTuple/
// PushPunctuation/PushEos/PushPage/Flush) from one thread; all
// consumer-side calls (TryPopPage/PopPageBlocking/PurgeMatching/
// PromoteMatching) from one thread. Drained/HasPage/stats are safe
// from any thread. Feedback-exploit surgery is consumer-side because
// exploiters purge/promote their own *input* queues, so the executors
// satisfy the contract by construction.
//
// Punctuation/EOS ordering is transport-independent: pages enter the
// queue in push order and leave in pop order on both transports, and a
// punctuation still flushes its page immediately, so a punctuation is
// only ever a page's last element either way.

#ifndef NSTREAM_STREAM_DATA_QUEUE_H_
#define NSTREAM_STREAM_DATA_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "stream/page.h"
#include "stream/spsc_chain.h"
#include "stream/spsc_ring.h"

namespace nstream {

class SnapshotReader;
class SnapshotWriter;

/// Which structure moves pages from producer to consumer.
enum class DataQueueTransport : uint8_t {
  kMutexDeque = 0,  // lock-based, any threading, unbounded allowed
  kSpscRing,        // lock-free, exactly 1 producer + 1 consumer thread
  kSpscChain,       // lock-free, SPSC threads, unbounded (ring chain)
};

/// Tuning knobs for one queue.
struct DataQueueOptions {
  // Elements per page before an automatic flush. NiagaraST batches
  // tuples into pages to limit context switching; bench_queue measures
  // the effect of this knob.
  int page_size = 128;
  // Maximum queued pages before the producer blocks (threaded executor
  // backpressure). <= 0 means unbounded (single-threaded executors).
  // The SPSC ring rounds this bound up to a power of two.
  int max_pages = 0;
  DataQueueTransport transport = DataQueueTransport::kMutexDeque;
  // Ring capacity (pages) used when transport is kSpscRing and
  // max_pages <= 0 — a ring is inherently bounded.
  int spsc_default_capacity = 64;
  // Segment capacity (pages) for the kSpscChain transport, which
  // ignores max_pages (the chain is unbounded by design).
  int chain_segment_pages = 16;
  // Producer and consumer are the same thread (single-threaded
  // executors). Lets OpenPageArena hand out the open page's arena on
  // any transport and lets purge/promote surgery reach the open page
  // on the chain transport, deque-style.
  bool assume_single_thread = false;
};

/// Monotonic counters exposed for tests and benches.
struct DataQueueStats {
  uint64_t tuples_pushed = 0;
  uint64_t puncts_pushed = 0;
  uint64_t pages_flushed_full = 0;
  uint64_t pages_flushed_punct = 0;
  uint64_t pages_flushed_eos = 0;
  uint64_t pages_flushed_explicit = 0;
  uint64_t pages_pushed_whole = 0;  // pre-assembled pages via PushPage
  uint64_t pages_popped = 0;

  uint64_t pages_flushed_total() const {
    return pages_flushed_full + pages_flushed_punct + pages_flushed_eos +
           pages_flushed_explicit + pages_pushed_whole;
  }
};

class DataQueue {
 public:
  explicit DataQueue(DataQueueOptions options = {});

  DataQueueTransport transport() const { return options_.transport; }

  // ---- Producer side ----
  void PushTuple(Tuple t);
  /// Punctuation is appended and the page is flushed immediately.
  void PushPunctuation(Punctuation p);
  /// End-of-stream marker; flushes and marks the queue finished.
  void PushEos();
  /// Enqueue a pre-assembled page of TUPLES — the page-granular fast
  /// path used by Exchange / ShardMerge / the join's result stream,
  /// which re-batch or forward whole pages instead of paying one queue
  /// transition per tuple. The open per-tuple page (if any) is flushed
  /// first so element order is preserved. The page must not contain
  /// punctuation or EOS (those must go through PushPunctuation /
  /// PushEos so their flush-and-notify semantics hold); empty pages are
  /// dropped.
  void PushPage(Page&& page);
  /// Force the open page (if any) into the queue.
  void Flush();
  /// Arena of the producer-side open page, for building emitted tuples
  /// in place (zero per-tuple heap traffic) — or null when the
  /// transport cannot expose it safely (mutex deque under real
  /// threads: consumer-side surgery may touch the open page under the
  /// lock) or page arenas are globally disabled. Producer-side call;
  /// the returned arena is valid until this side's next flush, so
  /// tuples built from it must be pushed before any other queue call.
  TupleArena* OpenPageArena();

  // ---- Consumer side ----
  /// Non-blocking pop; nullopt when no complete page is queued.
  std::optional<Page> TryPopPage();
  /// Blocking pop; returns nullopt only when the queue is finished
  /// (EOS seen) and drained, or `cancel` flips.
  std::optional<Page> PopPageBlocking(const std::function<bool()>& cancel);

  /// Remove queued (not yet popped) tuples matching `pattern`.
  /// Punctuations and element order are untouched, so punctuation
  /// semantics are preserved. Returns the number of tuples removed.
  /// Used by assumed-feedback exploiters purging pending input.
  ///
  /// On an SPSC edge this is the consumer-side slow path: published
  /// pages are drained out of the ring into a consumer-side staging
  /// deque (served before the ring by subsequent pops, preserving
  /// order) and purged there. The producer's open page cannot be
  /// touched from the consumer thread, so tuples not yet published
  /// are not purged — they arrive and are handled by the exploiter's
  /// guards instead, which keeps feedback-exploit semantics sound
  /// (purging is an optimization, never required for correctness).
  int PurgeMatching(const PunctPattern& pattern);

  /// Within each queued page, stably move tuples matching `pattern`
  /// ahead of non-matching tuples. Because punctuation flushes pages, a
  /// punctuation can only be a page's last element, so reordering
  /// within a page never moves a tuple across a punctuation. Used by
  /// desired-feedback exploiters. Returns the number of tuples moved.
  /// Same consumer-side slow path as PurgeMatching on SPSC edges.
  int PromoteMatching(const PunctPattern& pattern);

  /// True once EOS has been pushed and every page consumed.
  bool Drained() const;
  /// True if a complete page is waiting.
  bool HasPage() const;

  /// Called (outside the lock) whenever a page becomes available;
  /// the threaded executor uses it to wake the consumer thread. Pages
  /// pushed before the notifier is installed are simply waiting in the
  /// queue — install-then-poll sees them without any notification.
  void SetConsumerNotifier(std::function<void()> fn);

  // ---- Consumer-affinity tripwire ----
  // The SPSC transports are only sound when one logical consumer
  // drains the queue. Under the pooled scheduler that consumer is a
  // *task* that migrates between workers, so thread identity cannot
  // police the contract; instead the scheduler pins each queue to its
  // consumer task's token and sets a thread-local token around every
  // slice. A consumer-side call (pop / purge / promote) from any
  // other task trips the wire: always counted, and a debug assert
  // unless tests disable fatality. Token 0 (the default everywhere
  // else) disarms the check — one relaxed load on the pop path.
  /// Expected consumer token; 0 disarms the tripwire.
  void set_consumer_affinity_token(uint64_t token) {
    expected_consumer_.store(token, std::memory_order_relaxed);
  }
  uint64_t consumer_affinity_token() const {
    return expected_consumer_.load(std::memory_order_relaxed);
  }
  /// Consumer-side calls observed with a mismatched thread token.
  uint64_t affinity_violations() const {
    return affinity_violations_.load(std::memory_order_relaxed);
  }
  /// Token of the task currently running on this thread (0 = none).
  static void SetThreadConsumerToken(uint64_t token);
  static uint64_t ThreadConsumerToken();
  /// When false, violations only count (tests exercising the wire).
  static void SetAffinityViolationsFatal(bool fatal);

  // ---- Checkpointing (consumer-side, quiesced only) ----
  /// Serialize every in-flight element without consuming it. Caller
  /// contract: the edge is QUIESCED — producer and consumer are both
  /// parked at a checkpoint barrier — so the producer-local open page
  /// is stable and safe to read from the (consumer-side) caller.
  /// Non-destructive: on lock-free transports published pages are
  /// drained into the consumer staging deque (served before the ring
  /// by later pops, order preserved) and serialized in place; the
  /// deque transport serializes pages_ + open_page_ directly.
  Status SnapshotContents(SnapshotWriter* w);
  /// Rebuild queued pages from a snapshot, ahead of any pop. The
  /// restored pages land in the consumer staging deque (lock-free
  /// transports) or pages_ (deque transport). eos_pushed_ is not part
  /// of the snapshot: an unconsumed EOS is impossible at barrier
  /// alignment (EOS ports are exempt from alignment and stay so).
  Status RestoreContents(SnapshotReader* r);

  DataQueueStats stats() const;

 private:
  // Internal counters. Each is written either under mu_ (deque
  // transport) or by exactly one thread (SPSC transport), so a relaxed
  // load+store increment — a plain add, no lock prefix — is exact;
  // atomics make the cross-thread stats() snapshot race-free.
  struct AtomicStats {
    std::atomic<uint64_t> tuples_pushed{0};
    std::atomic<uint64_t> puncts_pushed{0};
    std::atomic<uint64_t> pages_flushed_full{0};
    std::atomic<uint64_t> pages_flushed_punct{0};
    std::atomic<uint64_t> pages_flushed_eos{0};
    std::atomic<uint64_t> pages_flushed_explicit{0};
    std::atomic<uint64_t> pages_pushed_whole{0};
    std::atomic<uint64_t> pages_popped{0};
  };
  static void Inc(std::atomic<uint64_t>& c, uint64_t by = 1) {
    c.store(c.load(std::memory_order_relaxed) + by,
            std::memory_order_relaxed);
  }

  bool spsc() const {
    return options_.transport == DataQueueTransport::kSpscRing;
  }
  bool chain() const {
    return options_.transport == DataQueueTransport::kSpscChain;
  }
  /// Transports with a producer-local open page and lock-free hops.
  bool lockfree() const { return spsc() || chain(); }
  void FlushLocked(FlushReason reason);  // deque transport; mu_ held
  void CountFlush(FlushReason reason);
  // Lock-free producer side: seal the open page / push a ready page
  // into the ring or chain; the bounded ring blocks (timed re-check)
  // while full, the chain never blocks.
  void FlushToRing(FlushReason reason);
  void PushRing(Page&& page);
  // Lock-free consumer side: move every published page into
  // side_pages_ so purge/promote can operate under mu_. Requires mu_
  // held; must be called from the consumer thread.
  void DrainRingToSideLocked();
  std::optional<Page> TryPopSpsc();
  void NotifyConsumer();
  void CheckConsumerAffinity() const;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  DataQueueOptions options_;
  // Producer-side page under assembly. Deque transport: guarded by
  // mu_. SPSC transport: producer-thread-local, never locked.
  Page open_page_;
  // Deque transport storage.
  std::deque<Page> pages_;
  // Lock-free transport storage (exactly one of ring_/chain_ per the
  // transport tag), plus the consumer-side staging deque (guarded by
  // mu_) that purge/promote surgery drains published pages into.
  // side_count_ lets pops skip the lock when no surgery has happened
  // (the overwhelmingly common case).
  std::unique_ptr<SpscRing<Page>> ring_;
  std::unique_ptr<SpscChain<Page>> chain_;
  std::deque<Page> side_pages_;
  std::atomic<size_t> side_count_{0};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> eos_pushed_{false};
  std::atomic<uint64_t> expected_consumer_{0};
  mutable std::atomic<uint64_t> affinity_violations_{0};
  AtomicStats stats_;
  // SPSC single-writer mirrors of the hottest counters: each side
  // keeps the running value in a plain field it alone owns and
  // publishes with one relaxed store, instead of paying an atomic
  // load+store per element/page. Unused by the deque transport
  // (multi-writer, so it increments the atomics under mu_).
  uint64_t spsc_tuples_pushed_ = 0;   // producer-owned
  uint64_t spsc_pages_whole_ = 0;     // producer-owned
  uint64_t spsc_pages_popped_ = 0;    // consumer-owned
  // The notifier is installed (rarely — once per run by the threaded
  // executor) under mu_ but read lock-free on every push: the current
  // function lives behind an atomic pointer, and superseded functions
  // are parked in notifier_storage_ until destruction so a concurrent
  // caller can never see a freed function.
  std::atomic<const std::function<void()>*> consumer_notifier_{nullptr};
  std::vector<std::unique_ptr<std::function<void()>>> notifier_storage_;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_DATA_QUEUE_H_
