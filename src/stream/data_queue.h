// DataQueue: the downstream (with-the-data) half of an inter-operator
// connection (Fig. 3). Producer-side page assembly with
// punctuation-triggered flush; consumer-side page pops. Thread-safe so
// the same queue serves the single-threaded executors and the
// thread-per-operator executor.

#ifndef NSTREAM_STREAM_DATA_QUEUE_H_
#define NSTREAM_STREAM_DATA_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "stream/page.h"

namespace nstream {

/// Tuning knobs for one queue.
struct DataQueueOptions {
  // Elements per page before an automatic flush. NiagaraST batches
  // tuples into pages to limit context switching; bench_queue measures
  // the effect of this knob.
  int page_size = 128;
  // Maximum queued pages before the producer blocks (threaded executor
  // backpressure). <= 0 means unbounded (single-threaded executors).
  int max_pages = 0;
};

/// Monotonic counters exposed for tests and benches.
struct DataQueueStats {
  uint64_t tuples_pushed = 0;
  uint64_t puncts_pushed = 0;
  uint64_t pages_flushed_full = 0;
  uint64_t pages_flushed_punct = 0;
  uint64_t pages_flushed_eos = 0;
  uint64_t pages_flushed_explicit = 0;
  uint64_t pages_pushed_whole = 0;  // pre-assembled pages via PushPage
  uint64_t pages_popped = 0;

  uint64_t pages_flushed_total() const {
    return pages_flushed_full + pages_flushed_punct + pages_flushed_eos +
           pages_flushed_explicit + pages_pushed_whole;
  }
};

class DataQueue {
 public:
  explicit DataQueue(DataQueueOptions options = {});

  // ---- Producer side ----
  void PushTuple(Tuple t);
  /// Punctuation is appended and the page is flushed immediately.
  void PushPunctuation(Punctuation p);
  /// End-of-stream marker; flushes and marks the queue finished.
  void PushEos();
  /// Enqueue a pre-assembled page of TUPLES under a single lock — the
  /// page-granular fast path used by Exchange / ShardMerge, which
  /// re-batch or forward whole pages instead of paying one lock per
  /// tuple. The open per-tuple page (if any) is flushed first so
  /// element order is preserved. The page must not contain punctuation
  /// or EOS (those must go through PushPunctuation / PushEos so their
  /// flush-and-notify semantics hold); empty pages are dropped.
  void PushPage(Page&& page);
  /// Force the open page (if any) into the queue.
  void Flush();

  // ---- Consumer side ----
  /// Non-blocking pop; nullopt when no complete page is queued.
  std::optional<Page> TryPopPage();
  /// Blocking pop for the threaded executor; returns nullopt only when
  /// the queue is finished (EOS seen) and drained, or `cancel` flips.
  std::optional<Page> PopPageBlocking(const std::function<bool()>& cancel);

  /// Remove queued (not yet popped) tuples matching `pattern`.
  /// Punctuations and element order are untouched, so punctuation
  /// semantics are preserved. Returns the number of tuples removed.
  /// Used by assumed-feedback exploiters purging pending input.
  int PurgeMatching(const PunctPattern& pattern);

  /// Within each queued page, stably move tuples matching `pattern`
  /// ahead of non-matching tuples. Because punctuation flushes pages, a
  /// punctuation can only be a page's last element, so reordering
  /// within a page never moves a tuple across a punctuation. Used by
  /// desired-feedback exploiters. Returns the number of tuples moved.
  int PromoteMatching(const PunctPattern& pattern);

  /// True once EOS has been pushed and every page consumed.
  bool Drained() const;
  /// True if a complete page is waiting.
  bool HasPage() const;

  /// Called (outside the lock) whenever a page becomes available;
  /// the threaded executor uses it to wake the consumer thread.
  void SetConsumerNotifier(std::function<void()> fn);

  DataQueueStats stats() const;

 private:
  void FlushLocked(FlushReason reason);  // requires mu_ held
  void NotifyConsumer();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  DataQueueOptions options_;
  Page open_page_;
  std::deque<Page> pages_;
  bool eos_pushed_ = false;
  DataQueueStats stats_;
  std::function<void()> consumer_notifier_;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_DATA_QUEUE_H_
