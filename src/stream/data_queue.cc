#include "stream/data_queue.h"

#include <algorithm>
#include <chrono>

#include "punct/compiled_pattern.h"

namespace nstream {

DataQueue::DataQueue(DataQueueOptions options) : options_(options) {
  if (options_.page_size <= 0) options_.page_size = 1;
}

void DataQueue::PushTuple(Tuple t) {
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    open_page_.Add(StreamElement::OfTuple(std::move(t)));
    ++stats_.tuples_pushed;
    if (static_cast<int>(open_page_.size()) >= options_.page_size) {
      FlushLocked(FlushReason::kPageFull);
      notify = true;
    }
  }
  if (notify) NotifyConsumer();
}

void DataQueue::PushPunctuation(Punctuation p) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    open_page_.Add(StreamElement::OfPunct(std::move(p)));
    ++stats_.puncts_pushed;
    // Punctuation flushes the page: a slow stream must not strand
    // progress information behind an unfilled page (§5).
    FlushLocked(FlushReason::kPunctuation);
  }
  NotifyConsumer();
}

void DataQueue::PushEos() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    open_page_.Add(StreamElement::Eos());
    FlushLocked(FlushReason::kEndOfStream);
    eos_pushed_ = true;
  }
  NotifyConsumer();
}

void DataQueue::PushPage(Page&& page) {
  if (page.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
#ifndef NDEBUG
    for (const StreamElement& e : page.elements()) assert(e.is_tuple());
#endif
    // Preserve order: anything staged tuple-at-a-time goes first. Two
    // separate capacity waits keep the max_pages bound exact even when
    // the open page must be flushed ahead of us.
    if (!open_page_.empty()) {
      if (options_.max_pages > 0) {
        not_full_.wait(lock, [&] {
          return static_cast<int>(pages_.size()) < options_.max_pages;
        });
      }
      FlushLocked(FlushReason::kExplicit);
    }
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    stats_.tuples_pushed += page.size();
    ++stats_.pages_pushed_whole;
    page.set_flush_reason(FlushReason::kExplicit);
    pages_.push_back(std::move(page));
    not_empty_.notify_one();
  }
  NotifyConsumer();
}

void DataQueue::Flush() {
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!open_page_.empty()) {
      FlushLocked(FlushReason::kExplicit);
      notify = true;
    }
  }
  if (notify) NotifyConsumer();
}

void DataQueue::FlushLocked(FlushReason reason) {
  if (open_page_.empty()) return;
  open_page_.set_flush_reason(reason);
  switch (reason) {
    case FlushReason::kPageFull:
      ++stats_.pages_flushed_full;
      break;
    case FlushReason::kPunctuation:
      ++stats_.pages_flushed_punct;
      break;
    case FlushReason::kEndOfStream:
      ++stats_.pages_flushed_eos;
      break;
    case FlushReason::kExplicit:
      ++stats_.pages_flushed_explicit;
      break;
  }
  pages_.push_back(std::move(open_page_));
  open_page_ = Page();
  not_empty_.notify_one();
}

std::optional<Page> DataQueue::TryPopPage() {
  std::optional<Page> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pages_.empty()) return std::nullopt;
    out = std::move(pages_.front());
    pages_.pop_front();
    ++stats_.pages_popped;
    not_full_.notify_one();
  }
  return out;
}

std::optional<Page> DataQueue::PopPageBlocking(
    const std::function<bool()>& cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!pages_.empty()) {
      Page out = std::move(pages_.front());
      pages_.pop_front();
      ++stats_.pages_popped;
      not_full_.notify_one();
      return out;
    }
    if (eos_pushed_ || (cancel && cancel())) return std::nullopt;
    not_empty_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

int DataQueue::PurgeMatching(const PunctPattern& pattern) {
  // Compile once, then a single in-place erase-remove pass per page —
  // no per-element re-interpretation, no rebuilt element vectors.
  CompiledPattern compiled(pattern);
  std::lock_guard<std::mutex> lock(mu_);
  int removed = 0;
  auto purge_page = [&](Page* page) {
    std::vector<StreamElement>& elems = page->mutable_elements();
    auto it = std::remove_if(
        elems.begin(), elems.end(), [&](const StreamElement& e) {
          return e.is_tuple() && compiled.Matches(e.tuple());
        });
    removed += static_cast<int>(elems.end() - it);
    elems.erase(it, elems.end());
  };
  for (Page& p : pages_) purge_page(&p);
  purge_page(&open_page_);
  // Drop pages emptied by the purge so consumers don't spin on them.
  pages_.erase(std::remove_if(pages_.begin(), pages_.end(),
                              [](const Page& p) { return p.empty(); }),
               pages_.end());
  return removed;
}

int DataQueue::PromoteMatching(const PunctPattern& pattern) {
  CompiledPattern compiled(pattern);
  std::lock_guard<std::mutex> lock(mu_);
  int moved = 0;
  // A punctuation flushes its page, so it can only be a page's last
  // element; partitioning within a page therefore never moves a tuple
  // across a punctuation. std::stable_partition keeps relative order
  // on both sides and works in place.
  auto promote_page = [&](Page* page) {
    std::vector<StreamElement>& elems = page->mutable_elements();
    auto mid = std::stable_partition(
        elems.begin(), elems.end(), [&](const StreamElement& e) {
          return e.is_tuple() && compiled.Matches(e.tuple());
        });
    // Count tuples that actually jumped ahead of a non-matching one.
    if (mid != elems.begin() && mid != elems.end()) {
      moved += static_cast<int>(mid - elems.begin());
    }
  };
  for (Page& p : pages_) promote_page(&p);
  return moved;
}

bool DataQueue::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return eos_pushed_ && pages_.empty() && open_page_.empty();
}

bool DataQueue::HasPage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pages_.empty();
}

DataQueueStats DataQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DataQueue::SetConsumerNotifier(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  consumer_notifier_ = std::move(fn);
}

void DataQueue::NotifyConsumer() {
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn = consumer_notifier_;
  }
  if (fn) fn();
}

}  // namespace nstream
