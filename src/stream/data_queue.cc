#include "stream/data_queue.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "punct/compiled_pattern.h"
#include "recovery/snapshot.h"

namespace nstream {

namespace {
// Thread-local task token + process-wide fatality switch for the
// consumer-affinity tripwire (see header).
thread_local uint64_t t_consumer_token = 0;
std::atomic<bool> g_affinity_violations_fatal{true};
}  // namespace

void DataQueue::SetThreadConsumerToken(uint64_t token) {
  t_consumer_token = token;
}

uint64_t DataQueue::ThreadConsumerToken() { return t_consumer_token; }

void DataQueue::SetAffinityViolationsFatal(bool fatal) {
  g_affinity_violations_fatal.store(fatal, std::memory_order_relaxed);
}

void DataQueue::CheckConsumerAffinity() const {
  uint64_t expected = expected_consumer_.load(std::memory_order_relaxed);
  if (expected == 0 || expected == t_consumer_token) return;
  affinity_violations_.fetch_add(1, std::memory_order_relaxed);
  if (g_affinity_violations_fatal.load(std::memory_order_relaxed)) {
    assert(false &&
           "DataQueue consumer-affinity violated: consumer-side call "
           "from a task other than the pinned consumer");
  }
}

DataQueue::DataQueue(DataQueueOptions options) : options_(options) {
  if (options_.page_size <= 0) options_.page_size = 1;
  open_page_.Reserve(static_cast<size_t>(options_.page_size) + 1);
  if (spsc()) {
    int cap = options_.max_pages > 0 ? options_.max_pages
                                     : options_.spsc_default_capacity;
    if (cap <= 0) cap = 2;
    ring_ = std::make_unique<SpscRing<Page>>(static_cast<size_t>(cap));
  } else if (chain()) {
    int seg = options_.chain_segment_pages;
    if (seg <= 0) seg = 2;
    chain_ = std::make_unique<SpscChain<Page>>(static_cast<size_t>(seg));
  }
}

TupleArena* DataQueue::OpenPageArena() {
  // Lock-free transports keep the open page producer-local, so its
  // arena is safe to hand to the (producer-side) caller. On the mutex
  // deque the open page is shared under mu_ with consumer-side
  // surgery, so only a single-threaded queue may expose it.
  if (!lockfree() && !options_.assume_single_thread) return nullptr;
  return open_page_.arena();
}

void DataQueue::CountFlush(FlushReason reason) {
  switch (reason) {
    case FlushReason::kPageFull:
      Inc(stats_.pages_flushed_full);
      break;
    case FlushReason::kPunctuation:
      Inc(stats_.pages_flushed_punct);
      break;
    case FlushReason::kEndOfStream:
      Inc(stats_.pages_flushed_eos);
      break;
    case FlushReason::kExplicit:
      Inc(stats_.pages_flushed_explicit);
      break;
  }
}

// ---- Lock-free (ring/chain) producer side ----

void DataQueue::PushRing(Page&& page) {
  if (chain_ != nullptr) {
    // The chain is unbounded: no backpressure, no wait.
    chain_->Push(std::move(page));
    NotifyConsumer();
    if (consumer_waiting_.load(std::memory_order_relaxed)) {
      not_empty_.notify_one();
    }
    return;
  }
  while (!ring_->TryPush(std::move(page))) {
    // Ring full: backpressure. The consumer pops lock-free and only
    // signals when it knows a producer is parked, so park with a short
    // timed re-check — the same timed-wait idiom as the executors'
    // wake objects; a missed notify costs bounded latency, never
    // correctness.
    std::unique_lock<std::mutex> lock(mu_);
    producer_waiting_.store(true, std::memory_order_relaxed);
    not_full_.wait_for(lock, std::chrono::milliseconds(1));
    producer_waiting_.store(false, std::memory_order_relaxed);
  }
  NotifyConsumer();
  if (consumer_waiting_.load(std::memory_order_relaxed)) {
    not_empty_.notify_one();
  }
}

void DataQueue::FlushToRing(FlushReason reason) {
  if (open_page_.empty()) return;
  open_page_.set_flush_reason(reason);
  CountFlush(reason);
  PushRing(std::move(open_page_));
  open_page_ = Page();
  open_page_.Reserve(static_cast<size_t>(options_.page_size) + 1);
}

// ---- Producer API ----

void DataQueue::PushTuple(Tuple t) {
  if (lockfree()) {
    // Producer-thread-local: no lock, no atomic RMW. The ring hop (and
    // its notify) is paid once per page, not per tuple. AddTuple
    // re-homes a tuple still backed by another page's arena (a filter
    // forwarding upstream-arena tuples element-wise) into this open
    // page's arena — a bump-copy, never a heap allocation.
    open_page_.AddTuple(std::move(t));
    stats_.tuples_pushed.store(++spsc_tuples_pushed_,
                               std::memory_order_relaxed);
    if (static_cast<int>(open_page_.size()) >= options_.page_size) {
      FlushToRing(FlushReason::kPageFull);
    }
    return;
  }
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    open_page_.AddTuple(std::move(t));
    Inc(stats_.tuples_pushed);
    if (static_cast<int>(open_page_.size()) >= options_.page_size) {
      FlushLocked(FlushReason::kPageFull);
      notify = true;
    }
  }
  if (notify) NotifyConsumer();
}

void DataQueue::PushPunctuation(Punctuation p) {
  if (lockfree()) {
    open_page_.Add(StreamElement::OfPunct(std::move(p)));
    Inc(stats_.puncts_pushed);  // rare: one per punctuation, not per tuple
    // Punctuation flushes the page: a slow stream must not strand
    // progress information behind an unfilled page (§5).
    FlushToRing(FlushReason::kPunctuation);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    open_page_.Add(StreamElement::OfPunct(std::move(p)));
    Inc(stats_.puncts_pushed);
    FlushLocked(FlushReason::kPunctuation);
  }
  NotifyConsumer();
}

void DataQueue::PushEos() {
  if (lockfree()) {
    open_page_.Add(StreamElement::Eos());
    FlushToRing(FlushReason::kEndOfStream);
    // Set after the final page is published: a consumer that observes
    // eos_pushed_ (acquire) therefore also observes that page.
    eos_pushed_.store(true, std::memory_order_release);
    NotifyConsumer();
    if (consumer_waiting_.load(std::memory_order_relaxed)) {
      not_empty_.notify_one();
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    open_page_.Add(StreamElement::Eos());
    FlushLocked(FlushReason::kEndOfStream);
    eos_pushed_.store(true, std::memory_order_release);
  }
  NotifyConsumer();
}

void DataQueue::PushPage(Page&& page) {
  if (page.empty()) return;
#ifndef NDEBUG
  if (page.is_columnar()) {
    // Columnar pages are tuples-only by construction; the block-level
    // check covers the arena side: block arrays in the page's own
    // arena, no owning values behind the wholesale free.
    assert(page.columnar()->ArenaInvariantHolds(page.arena_if_created()));
  } else {
    for (const StreamElement& e : page.elements()) {
      assert(e.is_tuple());
      // Arena ownership invariant: every arena-backed tuple in the
      // page references the page's own arena (and holds nothing the
      // wholesale arena free would leak). A violation means some
      // operator moved a tuple between pages without Rehome/Promote.
      assert(page.ElementArenaInvariantHolds(e));
    }
  }
#endif
  if (lockfree()) {
    // Preserve order: anything staged tuple-at-a-time goes first (the
    // empty check stays inline — page-granular producers rarely have
    // an open per-tuple page).
    if (!open_page_.empty()) FlushToRing(FlushReason::kExplicit);
    spsc_tuples_pushed_ += page.size();
    stats_.tuples_pushed.store(spsc_tuples_pushed_,
                               std::memory_order_relaxed);
    stats_.pages_pushed_whole.store(++spsc_pages_whole_,
                                    std::memory_order_relaxed);
    page.set_flush_reason(FlushReason::kExplicit);
    PushRing(std::move(page));
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Preserve order: anything staged tuple-at-a-time goes first. Two
    // separate capacity waits keep the max_pages bound exact even when
    // the open page must be flushed ahead of us.
    if (!open_page_.empty()) {
      if (options_.max_pages > 0) {
        not_full_.wait(lock, [&] {
          return static_cast<int>(pages_.size()) < options_.max_pages;
        });
      }
      FlushLocked(FlushReason::kExplicit);
    }
    if (options_.max_pages > 0) {
      not_full_.wait(lock, [&] {
        return static_cast<int>(pages_.size()) < options_.max_pages;
      });
    }
    Inc(stats_.tuples_pushed, page.size());
    Inc(stats_.pages_pushed_whole);
    page.set_flush_reason(FlushReason::kExplicit);
    pages_.push_back(std::move(page));
    not_empty_.notify_one();
  }
  NotifyConsumer();
}

void DataQueue::Flush() {
  if (lockfree()) {
    FlushToRing(FlushReason::kExplicit);
    return;
  }
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!open_page_.empty()) {
      FlushLocked(FlushReason::kExplicit);
      notify = true;
    }
  }
  if (notify) NotifyConsumer();
}

void DataQueue::FlushLocked(FlushReason reason) {
  if (open_page_.empty()) return;
  open_page_.set_flush_reason(reason);
  CountFlush(reason);
  pages_.push_back(std::move(open_page_));
  open_page_ = Page();
  open_page_.Reserve(static_cast<size_t>(options_.page_size) + 1);
  not_empty_.notify_one();
}

// ---- Consumer API ----

std::optional<Page> DataQueue::TryPopSpsc() {
  // Pages parked by purge/promote surgery are older than anything in
  // the ring and must leave first. side_count_ keeps the no-surgery
  // fast path lock-free.
  if (side_count_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!side_pages_.empty()) {
      Page out = std::move(side_pages_.front());
      side_pages_.pop_front();
      side_count_.store(side_pages_.size(), std::memory_order_release);
      stats_.pages_popped.store(++spsc_pages_popped_,
                                std::memory_order_relaxed);
      return out;
    }
  }
  std::optional<Page> out =
      chain_ != nullptr ? chain_->TryPop() : ring_->TryPop();
  if (out.has_value()) {
    stats_.pages_popped.store(++spsc_pages_popped_,
                              std::memory_order_relaxed);
    if (producer_waiting_.load(std::memory_order_relaxed)) {
      not_full_.notify_one();
    }
  }
  return out;
}

std::optional<Page> DataQueue::TryPopPage() {
  CheckConsumerAffinity();
  if (lockfree()) return TryPopSpsc();
  std::optional<Page> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pages_.empty()) return std::nullopt;
    out = std::move(pages_.front());
    pages_.pop_front();
    Inc(stats_.pages_popped);
    not_full_.notify_one();
  }
  return out;
}

std::optional<Page> DataQueue::PopPageBlocking(
    const std::function<bool()>& cancel) {
  CheckConsumerAffinity();
  if (lockfree()) {
    while (true) {
      if (std::optional<Page> out = TryPopSpsc()) return out;
      if (cancel && cancel()) return std::nullopt;
      if (eos_pushed_.load(std::memory_order_acquire)) {
        // The EOS flag is set after the final page's push, so one more
        // poll is guaranteed to see everything ever published.
        if (std::optional<Page> out = TryPopSpsc()) return out;
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(mu_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      not_empty_.wait_for(lock, std::chrono::milliseconds(5));
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!pages_.empty()) {
      Page out = std::move(pages_.front());
      pages_.pop_front();
      Inc(stats_.pages_popped);
      not_full_.notify_one();
      return out;
    }
    if (eos_pushed_.load(std::memory_order_relaxed) ||
        (cancel && cancel())) {
      return std::nullopt;
    }
    not_empty_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

// ---- Feedback-exploit surgery ----

void DataQueue::DrainRingToSideLocked() {
  if (chain_ != nullptr) {
    while (std::optional<Page> p = chain_->TryPop()) {
      side_pages_.push_back(std::move(*p));
    }
    return;
  }
  while (std::optional<Page> p = ring_->TryPop()) {
    side_pages_.push_back(std::move(*p));
  }
  if (producer_waiting_.load(std::memory_order_relaxed)) {
    not_full_.notify_one();
  }
}

int DataQueue::PurgeMatching(const PunctPattern& pattern) {
  CheckConsumerAffinity();
  // Compile once (shared across relay hops exploiting the same
  // pattern), then a single in-place erase-remove pass per page — no
  // per-element re-interpretation, no rebuilt element vectors.
  std::shared_ptr<const CompiledPattern> compiled_ptr =
      CompiledPatternCache::Global().Get(pattern);
  const CompiledPattern& compiled = *compiled_ptr;
  int removed = 0;
  auto purge_page = [&](Page* page) {
    if (page->is_columnar()) {
      // Selection-vector edit, hoisted type dispatch — no compaction.
      removed += compiled.FilterColumnarPurge(page->columnar());
      return;
    }
    std::vector<StreamElement>& elems = page->mutable_elements();
    auto it = std::remove_if(
        elems.begin(), elems.end(), [&](const StreamElement& e) {
          return e.is_tuple() && compiled.Matches(e.tuple());
        });
    removed += static_cast<int>(elems.end() - it);
    elems.erase(it, elems.end());
  };
  auto drop_empty = [](std::deque<Page>* pages) {
    pages->erase(std::remove_if(pages->begin(), pages->end(),
                                [](const Page& p) { return p.empty(); }),
                 pages->end());
  };
  if (lockfree()) {
    // Consumer-side slow path: pull every published page out of the
    // ring/chain into the staging deque (order preserved; pops serve
    // the deque first) and purge there. The producer's open page stays
    // untouched — see the header contract — unless the queue is
    // single-threaded, where touching it is safe and keeps the purge
    // semantics identical to the deque's.
    std::lock_guard<std::mutex> lock(mu_);
    DrainRingToSideLocked();
    for (Page& p : side_pages_) purge_page(&p);
    drop_empty(&side_pages_);
    if (options_.assume_single_thread) purge_page(&open_page_);
    side_count_.store(side_pages_.size(), std::memory_order_release);
    return removed;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Page& p : pages_) purge_page(&p);
  purge_page(&open_page_);
  // Drop pages emptied by the purge so consumers don't spin on them.
  drop_empty(&pages_);
  return removed;
}

int DataQueue::PromoteMatching(const PunctPattern& pattern) {
  CheckConsumerAffinity();
  std::shared_ptr<const CompiledPattern> compiled_ptr =
      CompiledPatternCache::Global().Get(pattern);
  const CompiledPattern& compiled = *compiled_ptr;
  int moved = 0;
  // A punctuation flushes its page, so it can only be a page's last
  // element; partitioning within a page therefore never moves a tuple
  // across a punctuation. std::stable_partition keeps relative order
  // on both sides and works in place.
  auto promote_page = [&](Page* page) {
    if (page->is_columnar()) {
      // Stable-partition the selection vector; rows never move.
      ColumnarBlock* b = page->columnar();
      moved += b->PartitionSelection(
          [&](uint32_t r) { return compiled.MatchesRow(*b, r); });
      return;
    }
    std::vector<StreamElement>& elems = page->mutable_elements();
    auto mid = std::stable_partition(
        elems.begin(), elems.end(), [&](const StreamElement& e) {
          return e.is_tuple() && compiled.Matches(e.tuple());
        });
    // Count tuples that actually jumped ahead of a non-matching one.
    if (mid != elems.begin() && mid != elems.end()) {
      moved += static_cast<int>(mid - elems.begin());
    }
  };
  if (lockfree()) {
    std::lock_guard<std::mutex> lock(mu_);
    DrainRingToSideLocked();
    for (Page& p : side_pages_) promote_page(&p);
    if (options_.assume_single_thread) promote_page(&open_page_);
    side_count_.store(side_pages_.size(), std::memory_order_release);
    return moved;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Page& p : pages_) promote_page(&p);
  return moved;
}

// ---- Checkpointing ----

Status DataQueue::SnapshotContents(SnapshotWriter* w) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lockfree()) {
    // Move everything published into the staging deque so it can be
    // walked under mu_; later pops serve the deque first, so nothing
    // is lost or reordered.
    DrainRingToSideLocked();
    side_count_.store(side_pages_.size(), std::memory_order_release);
  }
  std::deque<Page>& queued = lockfree() ? side_pages_ : pages_;
  uint32_t count = static_cast<uint32_t>(queued.size());
  if (!open_page_.empty()) ++count;
  w->WriteU32(count);
  for (Page& p : queued) WritePageElements(w, p);
  // The open page is producer-local, but the quiesced contract (both
  // endpoints parked at the barrier) makes reading it race-free. At
  // full alignment it is empty anyway — the barrier punctuation
  // flushed it — so this only fires for deque edges checkpointed by
  // single-threaded harness drivers mid-page.
  if (!open_page_.empty()) WritePageElements(w, open_page_);
  return Status::OK();
}

Status DataQueue::RestoreContents(SnapshotReader* r) {
  uint32_t count = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&count));
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < count; ++i) {
    Page p;
    NSTREAM_RETURN_NOT_OK(ReadPageInto(r, &p));
    if (p.empty()) continue;
    p.set_flush_reason(FlushReason::kExplicit);
    if (lockfree()) {
      side_pages_.push_back(std::move(p));
    } else {
      pages_.push_back(std::move(p));
    }
  }
  if (lockfree()) {
    side_count_.store(side_pages_.size(), std::memory_order_release);
  }
  return Status::OK();
}

// ---- Introspection ----

bool DataQueue::Drained() const {
  if (lockfree()) {
    // eos_pushed_ is set after the final flush, so observing it means
    // the open page is empty and everything is in the ring/chain or
    // the side deque.
    return eos_pushed_.load(std::memory_order_acquire) &&
           side_count_.load(std::memory_order_acquire) == 0 &&
           (chain_ != nullptr ? chain_->ApproxEmpty()
                              : ring_->ApproxEmpty());
  }
  std::lock_guard<std::mutex> lock(mu_);
  return eos_pushed_.load(std::memory_order_relaxed) && pages_.empty() &&
         open_page_.empty();
}

bool DataQueue::HasPage() const {
  if (lockfree()) {
    return side_count_.load(std::memory_order_acquire) > 0 ||
           !(chain_ != nullptr ? chain_->ApproxEmpty()
                               : ring_->ApproxEmpty());
  }
  std::lock_guard<std::mutex> lock(mu_);
  return !pages_.empty();
}

DataQueueStats DataQueue::stats() const {
  DataQueueStats out;
  out.tuples_pushed = stats_.tuples_pushed.load(std::memory_order_relaxed);
  out.puncts_pushed = stats_.puncts_pushed.load(std::memory_order_relaxed);
  out.pages_flushed_full =
      stats_.pages_flushed_full.load(std::memory_order_relaxed);
  out.pages_flushed_punct =
      stats_.pages_flushed_punct.load(std::memory_order_relaxed);
  out.pages_flushed_eos =
      stats_.pages_flushed_eos.load(std::memory_order_relaxed);
  out.pages_flushed_explicit =
      stats_.pages_flushed_explicit.load(std::memory_order_relaxed);
  out.pages_pushed_whole =
      stats_.pages_pushed_whole.load(std::memory_order_relaxed);
  out.pages_popped = stats_.pages_popped.load(std::memory_order_relaxed);
  return out;
}

void DataQueue::SetConsumerNotifier(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  notifier_storage_.push_back(
      std::make_unique<std::function<void()>>(std::move(fn)));
  consumer_notifier_.store(notifier_storage_.back().get(),
                           std::memory_order_release);
}

void DataQueue::NotifyConsumer() {
  const std::function<void()>* fn =
      consumer_notifier_.load(std::memory_order_acquire);
  if (fn != nullptr && *fn) (*fn)();
}

}  // namespace nstream
