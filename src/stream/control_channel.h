// ControlChannel: the upstream (against-the-data) half of an
// inter-operator connection (Fig. 3). Carries out-of-band control
// messages — feedback punctuation and shutdown — which are
// high-priority: a consumer drains its control channel before touching
// pending data pages (§5, "Inter-Operator Communication").

#ifndef NSTREAM_STREAM_CONTROL_CHANNEL_H_
#define NSTREAM_STREAM_CONTROL_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "punct/feedback.h"

namespace nstream {

enum class ControlType : uint8_t {
  kFeedback = 0,  // feedback punctuation (the paper's new message type)
  kShutdown,      // stop producing; tear down
  kRequestResult, // poll-based on-demand result production (Example 4)
};

const char* ControlTypeName(ControlType t);

/// One out-of-band message flowing upstream.
struct ControlMessage {
  ControlType type = ControlType::kFeedback;
  FeedbackPunctuation feedback;  // valid when type == kFeedback

  static ControlMessage Feedback(FeedbackPunctuation fb) {
    ControlMessage m;
    m.type = ControlType::kFeedback;
    m.feedback = std::move(fb);
    return m;
  }
  static ControlMessage Shutdown() {
    ControlMessage m;
    m.type = ControlType::kShutdown;
    return m;
  }
  static ControlMessage RequestResult() {
    ControlMessage m;
    m.type = ControlType::kRequestResult;
    return m;
  }

  std::string ToString() const;
};

/// Counters for tests/benches.
struct ControlChannelStats {
  uint64_t messages_pushed = 0;
  uint64_t messages_popped = 0;
};

class ControlChannel {
 public:
  ControlChannel() = default;

  /// Enqueue a message (called by the downstream operator).
  void Push(ControlMessage msg);

  /// Non-blocking pop (called by the upstream operator, before data).
  std::optional<ControlMessage> TryPop();

  bool HasMessage() const;

  /// Called whenever a message arrives; wakes the producer-side
  /// operator thread in the threaded executor.
  void SetNotifier(std::function<void()> fn);

  ControlChannelStats stats() const;

 private:
  mutable std::mutex mu_;
  std::deque<ControlMessage> messages_;
  ControlChannelStats stats_;
  std::function<void()> notifier_;
};

}  // namespace nstream

#endif  // NSTREAM_STREAM_CONTROL_CHANNEL_H_
