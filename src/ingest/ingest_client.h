// Producer-side helpers. ConduitClient is the convenience wrapper
// tests and benches speak the wire protocol through: it encodes
// frames onto a FrameConduit and decodes feedback frames coming back.
// NOT the engine's API surface — a real producer owns a socket and
// writes the same bytes (see fd_listener.h and tcp_acceptor.h for the
// engine's end of that). ReconnectBackoff is the retry policy such a
// producer paces its reconnect attempts with.

#ifndef NSTREAM_INGEST_INGEST_CLIENT_H_
#define NSTREAM_INGEST_INGEST_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ingest/frame_conduit.h"
#include "ingest/wire_format.h"

namespace nstream {

struct ReconnectBackoffOptions {
  int64_t base_delay_ms = 10;
  int64_t max_delay_ms = 1000;
  double multiplier = 2.0;
  /// Each delay is perturbed by ±jitter (fraction), so a herd of
  /// producers kicked off the same dead server does not retry in
  /// lockstep. Seeded: the schedule is reproducible per producer.
  double jitter = 0.2;
  uint64_t seed = 1;
};

/// Bounded exponential backoff with deterministic jitter. Pure policy
/// — no sleeping, no clock: the caller asks NextDelayMs() and decides
/// how to wait, which keeps tests instant and schedules replayable.
class ReconnectBackoff {
 public:
  using Options = ReconnectBackoffOptions;

  explicit ReconnectBackoff(Options opts = {})
      : opts_(opts), rng_(opts.seed) {}

  /// Delay to wait before the next attempt, advancing the schedule:
  /// base · multiplier^attempt, capped at max, then jittered.
  int64_t NextDelayMs() {
    double d = static_cast<double>(opts_.base_delay_ms);
    for (int i = 0; i < attempts_ && d < static_cast<double>(opts_.max_delay_ms);
         ++i) {
      d *= opts_.multiplier;
    }
    d = std::min(d, static_cast<double>(opts_.max_delay_ms));
    if (opts_.jitter > 0.0) {
      d *= rng_.NextDouble(1.0 - opts_.jitter, 1.0 + opts_.jitter);
    }
    ++attempts_;
    return std::max<int64_t>(0, static_cast<int64_t>(d));
  }

  /// Call on a successful (re)connect: the next failure starts the
  /// schedule over from the base delay.
  void Reset() { attempts_ = 0; }

  int attempts() const { return attempts_; }

 private:
  Options opts_;
  Rng rng_;
  int attempts_ = 0;
};

class ConduitClient {
 public:
  explicit ConduitClient(FrameConduit* conduit) : conduit_(conduit) {}

  Status Hello(uint32_t tuple_arity) {
    std::string f;
    AppendHelloFrame(&f, tuple_arity);
    return Send(f);
  }
  Status SendBatch(const std::vector<Tuple>& tuples) {
    std::string f;
    AppendTupleBatchFrame(&f, tuples);
    return Send(f);
  }
  Status SendPunctuation(const Punctuation& p) {
    std::string f;
    AppendPunctuationFrame(&f, p);
    return Send(f);
  }
  Status SendEos() {
    std::string f;
    AppendEosFrame(&f);
    return Send(f);
  }
  /// Raw escape hatch (corruption tests inject damaged bytes here).
  Status SendRaw(std::string_view bytes) { return Send(bytes); }

  void CloseWrite() { conduit_->CloseWrite(); }

  /// Decode the next engine → producer feedback punctuation, if any.
  /// A malformed feedback frame is an engine bug, surfaced as a Status.
  Result<std::optional<FeedbackPunctuation>> PollFeedback() {
    std::optional<std::string> bytes = conduit_->TryPopFeedbackFrame();
    if (!bytes.has_value()) return std::optional<FeedbackPunctuation>();
    FrameView f;
    size_t consumed = 0;
    NSTREAM_RETURN_NOT_OK(ScanFrame(*bytes, &f, &consumed));
    if (consumed != bytes->size() || f.type != FrameType::kFeedback) {
      return Status::Internal("client: malformed feedback frame");
    }
    FeedbackPunctuation fb;
    NSTREAM_RETURN_NOT_OK(DecodeFeedback(f.payload, &fb));
    return std::optional<FeedbackPunctuation>(std::move(fb));
  }

 private:
  Status Send(std::string_view frame) {
    if (!conduit_->WriteAll(frame)) {
      return Status::ResourceExhausted(
          "client: conduit admission pool dry (backpressure)");
    }
    return Status::OK();
  }

  FrameConduit* conduit_;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_INGEST_CLIENT_H_
