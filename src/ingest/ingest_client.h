// ConduitClient: the producer-side convenience wrapper tests and
// benches speak the wire protocol through. Encodes frames onto a
// FrameConduit and decodes feedback frames coming back. NOT the
// engine's API surface — a real producer owns a socket and writes the
// same bytes (see fd_listener.h for the engine's end of that).

#ifndef NSTREAM_INGEST_INGEST_CLIENT_H_
#define NSTREAM_INGEST_INGEST_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "ingest/frame_conduit.h"
#include "ingest/wire_format.h"

namespace nstream {

class ConduitClient {
 public:
  explicit ConduitClient(FrameConduit* conduit) : conduit_(conduit) {}

  Status Hello(uint32_t tuple_arity) {
    std::string f;
    AppendHelloFrame(&f, tuple_arity);
    return Send(f);
  }
  Status SendBatch(const std::vector<Tuple>& tuples) {
    std::string f;
    AppendTupleBatchFrame(&f, tuples);
    return Send(f);
  }
  Status SendPunctuation(const Punctuation& p) {
    std::string f;
    AppendPunctuationFrame(&f, p);
    return Send(f);
  }
  Status SendEos() {
    std::string f;
    AppendEosFrame(&f);
    return Send(f);
  }
  /// Raw escape hatch (corruption tests inject damaged bytes here).
  Status SendRaw(std::string_view bytes) { return Send(bytes); }

  void CloseWrite() { conduit_->CloseWrite(); }

  /// Decode the next engine → producer feedback punctuation, if any.
  /// A malformed feedback frame is an engine bug, surfaced as a Status.
  Result<std::optional<FeedbackPunctuation>> PollFeedback() {
    std::optional<std::string> bytes = conduit_->TryPopFeedbackFrame();
    if (!bytes.has_value()) return std::optional<FeedbackPunctuation>();
    FrameView f;
    size_t consumed = 0;
    NSTREAM_RETURN_NOT_OK(ScanFrame(*bytes, &f, &consumed));
    if (consumed != bytes->size() || f.type != FrameType::kFeedback) {
      return Status::Internal("client: malformed feedback frame");
    }
    FeedbackPunctuation fb;
    NSTREAM_RETURN_NOT_OK(DecodeFeedback(f.payload, &fb));
    return std::optional<FeedbackPunctuation>(std::move(fb));
  }

 private:
  Status Send(std::string_view frame) {
    if (!conduit_->WriteAll(frame)) {
      return Status::ResourceExhausted(
          "client: conduit admission pool dry (backpressure)");
    }
    return Status::OK();
  }

  FrameConduit* conduit_;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_INGEST_CLIENT_H_
