#include "ingest/wire_format.h"

#include <cstring>

#include "stream/columnar.h"

namespace nstream {

namespace {

inline void AppendHeader(std::string* out, FrameType type,
                         std::string_view payload) {
  const uint32_t magic = kFrameMagic;
  const uint32_t size = static_cast<uint32_t>(payload.size());
  out->append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out->append(reinterpret_cast<const char*>(&size), sizeof(size));
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
}

inline bool KnownFrameType(uint8_t t) {
  return t <= static_cast<uint8_t>(FrameType::kShed);
}

// A serialized tuple is at least nvals(4) + id(8) + arrival(8) bytes,
// so a batch of `count` tuples needs ≥ 20·count payload bytes. Checked
// before any Reserve, so a forged count cannot drive an allocation.
constexpr size_t kMinTupleBytes = 20;

}  // namespace

Status ScanFrame(std::string_view buf, FrameView* out, size_t* consumed) {
  *consumed = 0;
  if (buf.size() < kFrameHeaderBytes) return Status::OK();  // need more
  uint32_t magic = 0;
  uint32_t size = 0;
  std::memcpy(&magic, buf.data(), sizeof(magic));
  std::memcpy(&size, buf.data() + 4, sizeof(size));
  const uint8_t type = static_cast<uint8_t>(buf[8]);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("ingest: bad frame magic");
  }
  if (size > kMaxFramePayload) {
    return Status::InvalidArgument("ingest: frame payload size " +
                                   std::to_string(size) +
                                   " exceeds limit");
  }
  if (!KnownFrameType(type)) {
    return Status::InvalidArgument("ingest: unknown frame type " +
                                   std::to_string(type));
  }
  if (buf.size() - kFrameHeaderBytes < size) return Status::OK();
  out->type = static_cast<FrameType>(type);
  out->payload = buf.substr(kFrameHeaderBytes, size);
  *consumed = kFrameHeaderBytes + size;
  return Status::OK();
}

// ---- Encoders ----

void AppendHelloFrame(std::string* out, uint32_t tuple_arity,
                      uint64_t producer_id, uint64_t resume_offset) {
  ByteWriter w;
  w.WriteU32(kWireVersion);
  w.WriteU32(tuple_arity);
  w.WriteU64(producer_id);
  w.WriteU64(resume_offset);
  AppendHeader(out, FrameType::kHello, w.buffer());
}

void AppendTupleBatchFrame(std::string* out, const Tuple* tuples,
                           size_t count) {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    w.WriteTuple(tuples[i]);
  }
  AppendHeader(out, FrameType::kTupleBatch, w.buffer());
}

void AppendPunctuationFrame(std::string* out, const Punctuation& p) {
  ByteWriter w;
  w.WritePunctuation(p);
  AppendHeader(out, FrameType::kPunctuation, w.buffer());
}

void AppendEosFrame(std::string* out) {
  AppendHeader(out, FrameType::kEos, std::string_view());
}

void AppendFeedbackFrame(std::string* out, const FeedbackPunctuation& fb) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(fb.intent()));
  w.WritePattern(fb.pattern());
  w.WriteI64(fb.origin_op());
  w.WriteU32(static_cast<uint32_t>(fb.hop_count()));
  w.WriteI64(fb.issued_at_ms());
  w.WriteI64(fb.deadline_ms());
  AppendHeader(out, FrameType::kFeedback, w.buffer());
}

void AppendHelloAckFrame(std::string* out, uint64_t acknowledged_offset) {
  ByteWriter w;
  w.WriteU64(acknowledged_offset);
  AppendHeader(out, FrameType::kHelloAck, w.buffer());
}

void AppendErrorFrame(std::string* out, std::string_view message) {
  ByteWriter w;
  w.WriteString(message);
  AppendHeader(out, FrameType::kError, w.buffer());
}

void AppendHeartbeatFrame(std::string* out) {
  AppendHeader(out, FrameType::kHeartbeat, std::string_view());
}

void AppendShedFrame(std::string* out, ShedIntent intent, uint32_t level) {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(intent));
  w.WriteU32(level);
  AppendHeader(out, FrameType::kShed, w.buffer());
}

// ---- Decoders ----

Status DecodeHello(std::string_view payload, uint32_t* version,
                   uint32_t* arity, uint64_t* producer_id,
                   uint64_t* resume_offset) {
  ByteReader r(payload);
  NSTREAM_RETURN_NOT_OK(r.ReadU32(version));
  NSTREAM_RETURN_NOT_OK(r.ReadU32(arity));
  NSTREAM_RETURN_NOT_OK(r.ReadU64(producer_id));
  NSTREAM_RETURN_NOT_OK(r.ReadU64(resume_offset));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("ingest: trailing bytes in hello");
  }
  return Status::OK();
}

Status DecodeHelloAck(std::string_view payload,
                      uint64_t* acknowledged_offset) {
  ByteReader r(payload);
  NSTREAM_RETURN_NOT_OK(r.ReadU64(acknowledged_offset));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("ingest: trailing bytes in hello-ack");
  }
  return Status::OK();
}

Status DecodeError(std::string_view payload, std::string* message) {
  ByteReader r(payload);
  NSTREAM_RETURN_NOT_OK(r.ReadString(message));
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "ingest: trailing bytes in error frame");
  }
  return Status::OK();
}

Status DecodeShed(std::string_view payload, ShedIntent* intent,
                  uint32_t* level) {
  ByteReader r(payload);
  uint8_t raw = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU8(&raw));
  if (raw > static_cast<uint8_t>(ShedIntent::kDropSubset)) {
    return Status::InvalidArgument("ingest: unknown shed intent " +
                                   std::to_string(raw));
  }
  NSTREAM_RETURN_NOT_OK(r.ReadU32(level));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("ingest: trailing bytes in shed frame");
  }
  *intent = static_cast<ShedIntent>(raw);
  return Status::OK();
}

Status DecodePunctuation(std::string_view payload, Punctuation* out) {
  ByteReader r(payload);
  NSTREAM_RETURN_NOT_OK(r.ReadPunctuation(out));
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "ingest: trailing bytes in punctuation frame");
  }
  return Status::OK();
}

Status DecodeFeedback(std::string_view payload, FeedbackPunctuation* out) {
  ByteReader r(payload);
  uint8_t intent = 0;
  PunctPattern pattern;
  int64_t origin = 0, issued = -1, deadline = -1;
  uint32_t hops = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU8(&intent));
  if (intent > static_cast<uint8_t>(FeedbackIntent::kDemanded)) {
    return Status::InvalidArgument("ingest: unknown feedback intent " +
                                   std::to_string(intent));
  }
  NSTREAM_RETURN_NOT_OK(r.ReadPattern(&pattern));
  NSTREAM_RETURN_NOT_OK(r.ReadI64(&origin));
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&hops));
  NSTREAM_RETURN_NOT_OK(r.ReadI64(&issued));
  NSTREAM_RETURN_NOT_OK(r.ReadI64(&deadline));
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "ingest: trailing bytes in feedback frame");
  }
  *out = FeedbackPunctuation(static_cast<FeedbackIntent>(intent),
                             std::move(pattern));
  out->set_origin_op(origin);
  out->set_hop_count(static_cast<int>(hops));
  out->set_issued_at_ms(issued);
  out->set_deadline_ms(deadline);
  return Status::OK();
}

namespace {

/// Shared batch-prefix validation: read + sanity-check the count.
Status ReadBatchCount(ByteReader* r, size_t payload_size, uint32_t* count) {
  NSTREAM_RETURN_NOT_OK(r->ReadU32(count));
  if (*count > payload_size / kMinTupleBytes) {
    return Status::InvalidArgument(
        "ingest: batch count " + std::to_string(*count) +
        " impossible for payload of " + std::to_string(payload_size) +
        " bytes");
  }
  return Status::OK();
}

}  // namespace

Status DecodeTupleBatchInto(std::string_view payload,
                            uint32_t expected_arity, Page* page,
                            bool allow_columnar, int64_t* next_id) {
  ByteReader r(payload);
  uint32_t count = 0;
  NSTREAM_RETURN_NOT_OK(ReadBatchCount(&r, payload.size(), &count));
  if (count == 0) {
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          "ingest: trailing bytes in empty batch");
    }
    return Status::OK();
  }

  // Columnar staging: straight into per-attribute arrays in the page
  // arena. Falls back to row staging when the global toggle is off or
  // arenas are disabled (BeginColumnar returns null).
  ColumnarBlock* block = nullptr;
  if (allow_columnar && expected_arity > 0 && PageColumnar::enabled()) {
    block = page->BeginColumnar(expected_arity, count);
  }
  if (block != nullptr) {
    int64_t* ids = block->mutable_ids();
    TimeMs* arrivals = block->mutable_arrivals();
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t nvals = 0;
      NSTREAM_RETURN_NOT_OK(r.ReadU32(&nvals));
      if (nvals != expected_arity) {
        return Status::InvalidArgument(
            "ingest: tuple arity " + std::to_string(nvals) +
            " does not match schema arity " +
            std::to_string(expected_arity));
      }
      const uint32_t row = block->AddRow(0, -1);
      for (uint32_t c = 0; c < nvals; ++c) {
        Value v;
        NSTREAM_RETURN_NOT_OK(r.ReadValueIn(block->arena(), &v));
        block->Set(c, row, v);
      }
      int64_t id = 0;
      int64_t arrival = 0;
      NSTREAM_RETURN_NOT_OK(r.ReadI64(&id));
      NSTREAM_RETURN_NOT_OK(r.ReadI64(&arrival));
      ids[row] = id != 0 ? id : (*next_id)++;
      arrivals[row] = arrival;
    }
  } else {
    page->Reserve(count);
    TupleArena* arena = page->arena();  // null when arenas are off
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t nvals = 0;
      NSTREAM_RETURN_NOT_OK(r.ReadU32(&nvals));
      if (nvals != expected_arity) {
        return Status::InvalidArgument(
            "ingest: tuple arity " + std::to_string(nvals) +
            " does not match schema arity " +
            std::to_string(expected_arity));
      }
      Tuple t(arena, nvals);
      NSTREAM_RETURN_NOT_OK(r.ReadTupleValuesIn(arena, nvals, &t));
      if (t.id() == 0) t.set_id((*next_id)++);
      page->AddTuple(std::move(t));  // same arena: moved in untouched
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "ingest: trailing bytes in tuple batch");
  }
  return Status::OK();
}

Status DecodeTupleBatchOwned(std::string_view payload,
                             uint32_t expected_arity,
                             std::vector<Tuple>* out) {
  ByteReader r(payload);
  uint32_t count = 0;
  NSTREAM_RETURN_NOT_OK(ReadBatchCount(&r, payload.size(), &count));
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    Tuple t;
    NSTREAM_RETURN_NOT_OK(r.ReadTuple(&t));
    if (static_cast<uint32_t>(t.size()) != expected_arity) {
      return Status::InvalidArgument(
          "ingest: tuple arity " + std::to_string(t.size()) +
          " does not match schema arity " +
          std::to_string(expected_arity));
    }
    out->push_back(std::move(t));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "ingest: trailing bytes in tuple batch");
  }
  return Status::OK();
}

}  // namespace nstream
