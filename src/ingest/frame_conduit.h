// FrameConduit: the channel between the transport edge and one
// IngestSource. Two producer→engine shapes share it:
//
//   * byte-stream chunks (single connection, FdListener / in-memory
//     client): bytes flow as filled pool buffers (ConduitChunk) and
//     the source assembles frames;
//   * whole tagged frames (multi-producer fan-in, TcpAcceptor): the
//     acceptor assembles frames per connection and enqueues MuxFrames,
//     so N producers interleave at frame granularity, never mid-frame.
//
// Feedback frames flow engine → producer as encoded byte strings with
// a routing target (one producer, or broadcast). Thread-safe on both
// sides: the producer may be a client thread or a transport pump, the
// consumer is whichever worker runs the IngestSource task.
//
// The conduit owns the admission pool (frame_pool.h). OfferBytes
// copies producer bytes into pooled buffers and accepts only what the
// pool can hold — the in-memory equivalent of TCP backpressure. The
// FdListener bypasses the copy entirely with the acquire/commit API:
// read(2) lands socket bytes directly in a pool buffer.
//
// The data notifier makes an idle IngestSource schedulable again: the
// pooled scheduler wires it to Wake(task) (via SetWakeNotifier), so a
// byte arriving on a drained conduit re-enqueues the parked source.

#ifndef NSTREAM_INGEST_FRAME_CONDUIT_H_
#define NSTREAM_INGEST_FRAME_CONDUIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "ingest/frame_pool.h"

namespace nstream {

/// A filled admission buffer in flight. `data` stays owned by the
/// pool; the consumer must Recycle() the chunk when done with it.
struct ConduitChunk {
  char* data = nullptr;
  size_t len = 0;
};

/// One whole wire frame from one producer — the multi-producer fan-in
/// unit. The acceptor assembles frames per connection (so producers'
/// bytes never interleave mid-frame) and tags each with the
/// connection's producer id.
struct MuxFrame {
  uint64_t producer = 0;
  std::string bytes;
};

/// An engine → producer feedback frame with routing: target 0 means
/// broadcast to every producer, otherwise exactly one.
struct RoutedFeedback {
  uint64_t target = 0;
  std::string bytes;
};

struct FrameConduitOptions {
  size_t buffer_bytes = 4096;
  size_t num_buffers = 256;
  /// Bound on queued engine → producer feedback frames. With no
  /// drainer (no listener attached, or the peer died) the queue must
  /// not grow for the life of the query; past the cap the OLDEST
  /// frame is dropped — feedback is advisory and newer intent
  /// supersedes older.
  size_t max_feedback_frames = 256;
};

class FrameConduit {
 public:
  using Options = FrameConduitOptions;

  explicit FrameConduit(Options opts = {})
      : pool_(opts.buffer_bytes, opts.num_buffers),
        max_feedback_(opts.max_feedback_frames > 0
                          ? opts.max_feedback_frames
                          : 1) {}

  FrameConduit(const FrameConduit&) = delete;
  FrameConduit& operator=(const FrameConduit&) = delete;

  // ---- Producer side (client thread / FdListener) ----

  /// Copy up to `n` bytes into pooled buffers and publish them.
  /// Returns the number accepted — less than `n` exactly when the
  /// pool ran dry (admission backpressure; retry after the consumer
  /// recycles).
  size_t OfferBytes(const char* p, size_t n);

  /// OfferBytes until everything is accepted, or give up the moment
  /// the pool is dry. True = all bytes published.
  bool WriteAll(std::string_view bytes) {
    return OfferBytes(bytes.data(), bytes.size()) == bytes.size();
  }

  /// Zero-copy fill: acquire a raw pool buffer, read into it, then
  /// Commit (publishes as a chunk) or Release (abandon). Null when
  /// the pool is dry.
  char* TryAcquireBuffer() { return pool_.TryAcquire(); }
  void CommitBuffer(char* buf, size_t len);
  void ReleaseBuffer(char* buf) { pool_.Release(buf); }

  /// Producer is done; once the queued chunks drain the stream ends.
  void CloseWrite();

  /// Next engine → producer feedback frame (encoded bytes), if any.
  /// Single-connection transports (FdListener, ConduitClient) use
  /// this; it pops regardless of routing target.
  std::optional<std::string> TryPopFeedbackFrame();

  /// Routed flavor for the multi-connection acceptor: the entry keeps
  /// its target so the acceptor can deliver to one connection or all.
  std::optional<RoutedFeedback> TryPopRoutedFeedback();

  // ---- Multi-producer fan-in (TcpAcceptor → IngestSource) ----

  /// Enqueue one whole wire frame from `producer`. False when the mux
  /// queue is at its byte budget (= pool bytes): the acceptor keeps
  /// the frame pending and pauses reads on that connection — the
  /// per-connection equivalent of the dry-pool backpressure.
  bool OfferMuxFrame(uint64_t producer, std::string_view frame_bytes);

  /// Budget-exempt enqueue for small control frames the source MUST
  /// see (e.g. the acceptor's quarantine notice) and for trusted local
  /// trace replay. Never fails.
  void ForceMuxFrame(uint64_t producer, std::string frame_bytes);

  std::optional<MuxFrame> TryPopMuxFrame();
  bool HasMuxFrames() const;
  size_t mux_queued_bytes() const;
  size_t mux_budget_bytes() const { return mux_budget_; }

  // ---- Consumer side (IngestSource) ----

  std::optional<ConduitChunk> TryPopChunk();
  void Recycle(const ConduitChunk& c) { pool_.Release(c.data); }
  bool HasChunks() const;
  bool write_closed() const;

  /// Fired (outside the lock) when a chunk is published or the write
  /// side closes — the IngestSource wake hook.
  void SetDataNotifier(std::function<void()> fn);

  /// Engine side: send an encoded feedback frame back to the producer.
  /// Bounded (max_feedback_frames): when full, drops the oldest.
  void PushFeedbackFrame(std::string frame_bytes) {
    PushFeedbackFrameTo(0, std::move(frame_bytes));
  }
  /// Routed flavor: target one producer (`producer` != 0) or all (0).
  void PushFeedbackFrameTo(uint64_t producer, std::string frame_bytes);
  /// Fired when a feedback frame is queued (FdListener write pump).
  void SetFeedbackNotifier(std::function<void()> fn);
  /// Feedback frames dropped to honor max_feedback_frames.
  uint64_t feedback_dropped() const;

  size_t buffer_bytes() const { return pool_.buffer_bytes(); }
  const FrameBufferPool& pool() const { return pool_; }

 private:
  FrameBufferPool pool_;
  const size_t max_feedback_;
  const size_t mux_budget_ =
      pool_.buffer_bytes() * pool_.capacity() > 0
          ? pool_.buffer_bytes() * pool_.capacity()
          : 1;
  mutable std::mutex mu_;
  std::deque<ConduitChunk> chunks_;
  std::deque<MuxFrame> mux_;
  size_t mux_bytes_ = 0;
  std::deque<RoutedFeedback> feedback_;
  uint64_t feedback_dropped_ = 0;
  bool write_closed_ = false;
  std::function<void()> data_notifier_;
  std::function<void()> feedback_notifier_;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_FRAME_CONDUIT_H_
