// IngestSource: the engine's front door. A SourceOperator that runs as
// a normal scheduler task, assembles wire frames from a FrameConduit's
// pooled admission buffers, and zero-copy-parses tuple batches straight
// into arena-backed pages (columnar when the global toggle is on) —
// one page per batch frame, emitted through the regular page path.
//
// Three things make it more than a deserializer:
//
//   Readiness — Poll() reports kIdle while the connection is open but
//   drained, so the pooled scheduler parks the task instead of
//   spinning or (worse) declaring EOS; the conduit's data notifier
//   re-enqueues it when bytes arrive.
//
//   Feedback to the producer (§3.2's twist at the edge) — feedback
//   punctuation arriving on the output's control channel is (a)
//   EXPLOITED locally: assumed patterns become admission guards that
//   drop matching tuples at parse time, before they cost the plan
//   anything; and (b) RELAYED to the producer as a feedback frame on
//   the conduit's return channel, so an overloaded plan throttles or
//   prunes the client itself.
//
//   Durability — SnapshotState records the acknowledged frame offset
//   (frames fully parsed AND emitted; a checkpoint barrier is injected
//   between slices, so there is never a half-emitted frame). Recovery
//   replays the same byte stream — a recorded trace or a reconnecting
//   producer — and RestoreState makes the source skip exactly that
//   many frames: the PR 8 at-least-once contract with a real ingest
//   edge instead of a rewound vector. Skipped frames are re-appended
//   to the trace (recovery may record to the SAME path the replay was
//   read from — the file is truncated on Open, so the prefix must be
//   regained), and a replay that ends before covering the
//   checkpointed offset is a hard error, never a silent clean close.
//
// Framing errors (bad magic, oversized size field, arity mismatch,
// bytes after EOS, a connection that dies mid-frame) surface as
// Status errors from ProduceNext — the scheduler fails this query and
// kills its tasks; nothing is emitted from a frame that did not parse
// completely.

#ifndef NSTREAM_INGEST_INGEST_SOURCE_H_
#define NSTREAM_INGEST_INGEST_SOURCE_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/guards.h"
#include "exec/operator.h"
#include "ingest/frame_conduit.h"
#include "ingest/trace.h"
#include "ingest/wire_format.h"

namespace nstream {

struct IngestSourceOptions {
  /// Frames fully processed per ProduceNext call (the scheduler's
  /// source_batch_per_slice multiplies on top).
  int max_frames_per_produce = 8;
  /// Stage tuple batches as ColumnarBlocks when PageColumnar is on.
  bool allow_columnar = true;
  /// When non-empty, append every admitted frame to this trace file
  /// (truncated on Open; during recovery replay, skipped frames are
  /// re-appended so the file regains the checkpointed prefix — safe to
  /// reuse the path the replay was read from, since
  /// ReplayTraceIntoConduit reads the whole file before the plan
  /// opens). In multi-producer mode the trace uses tagged records
  /// (AppendTagged) and replays via ReplayMuxTraceIntoConduit.
  std::string trace_path;
  /// Multi-producer fan-in: consume whole tagged frames (MuxFrame)
  /// from the conduit instead of assembling a single byte stream.
  /// Per-producer protocol state, session resume, and error
  /// QUARANTINE (a sick producer is cut off and counted; the query
  /// survives) replace the single-stream fail-the-query semantics.
  bool multi_producer = false;
  /// Multi-producer only: the stream ends once this many distinct
  /// producers have completed (clean EOS or quarantine). 0 = end only
  /// when the conduit's write side closes and drains (acceptor Stop).
  int expected_eos_producers = 0;
};

class IngestSource final : public SourceOperator {
 public:
  /// `conduit` must outlive the plan (it is the transport, owned by
  /// the listener/test/bench harness).
  IngestSource(std::string name, SchemaPtr schema, FrameConduit* conduit,
               IngestSourceOptions opts = {});

  Status InferSchemas() override { return Status::OK(); }
  Status Open(ExecContext* ctx) override;
  Status Close() override;

  SourcePoll Poll() override;
  std::optional<TimeMs> NextArrivalMs() override;
  Status ProduceNext() override;
  void SetWakeNotifier(std::function<void()> fn) override {
    conduit_->SetDataNotifier(std::move(fn));
  }

  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& feedback) override;

  Status SnapshotState(SnapshotWriter* w) override;
  Status RestoreState(SnapshotReader* r) override;

  /// Frames fully parsed and emitted (including hello/punct/EOS
  /// frames) — the acknowledged offset a checkpoint captures.
  uint64_t admitted_frames() const { return admitted_frames_; }
  /// Frames this incarnation skipped during replay (recovery).
  uint64_t replayed_skips() const { return replayed_skips_; }
  /// Multi-producer: duplicate frames skipped on live reconnect
  /// resume (the at-least-once dedup at the engine side).
  uint64_t resume_skips() const { return resume_skips_; }
  /// Multi-producer: frames dropped because their producer is
  /// quarantined, plus producers quarantined so far.
  uint64_t quarantined_frames() const { return quarantined_frames_; }
  uint64_t quarantined_producers() const { return quarantined_producers_; }
  /// Multi-producer: the engine's acknowledged per-producer offset
  /// (frames after the hello admitted from `producer`); 0 if unknown.
  uint64_t acknowledged_offset(uint64_t producer) const;
  const GuardSet& admission_guards() const { return admission_guards_; }

 private:
  // Per-producer session state (multi-producer mode). `admitted`
  // counts frames AFTER the hello (data/punct/EOS) — the acknowledged
  // offset the resume handshake speaks in.
  struct ProducerState {
    uint64_t admitted = 0;
    uint64_t skip_remaining = 0;  // resume duplicates still to drop
    // Admitted count restored from a checkpoint: frames below this
    // index were admitted by a PREVIOUS incarnation, so when a replay
    // skips them they must be re-appended to this incarnation's
    // (truncated-on-open) trace. reappended_high tracks how far that
    // re-append has progressed so a later live reconnect covering the
    // same range cannot duplicate trace records.
    uint64_t restored_admitted = 0;
    uint64_t reappended_high = 0;
    bool hello_seen = false;
    bool eos_seen = false;
    bool quarantined = false;
  };

  // Assemble the next complete frame into pending_* (views stay valid
  // until ConsumePending — nothing touches carry_/cur_ in between).
  // Sets pending_error_ on corruption, clean_close_ on a drained
  // closed conduit at a frame boundary.
  void EnsureFrame();
  void ConsumePending();
  // Move every buffered byte (current chunk remainder + further
  // queued chunks, up to one) into carry_. True if bytes were added.
  bool TopUpCarry();
  Status ProcessFrame(const FrameView& f, std::string_view raw);
  Status EmitBatch(std::string_view payload);
  void ApplyAdmissionGuards(Page* page);

  // Multi-producer path.
  SourcePoll CheckMuxExhausted();
  Status ProduceNextMux();
  Status ProcessMuxFrame(const MuxFrame& mux);
  Status ProcessMuxHello(uint64_t producer, const FrameView& f);
  // Cut one producer off: mark it quarantined (it counts as done so
  // the query cannot hang on its EOS), send a kError feedback frame
  // so the acceptor closes the connection, and count it. The query
  // itself keeps running — this is the error-isolation point.
  void QuarantineProducer(uint64_t producer, const std::string& reason);
  bool AllProducersDone() const;

  FrameConduit* conduit_;
  IngestSourceOptions opts_;

  // Frame assembly state.
  std::string carry_;      // partial-frame tail copied across chunks
  ConduitChunk cur_{};     // chunk being parsed in place (fast path)
  size_t cur_pos_ = 0;
  bool pending_ready_ = false;
  bool pending_from_carry_ = false;
  size_t pending_consumed_ = 0;
  FrameView pending_frame_{};
  Status pending_error_ = Status::OK();
  bool clean_close_ = false;

  // Protocol state.
  bool hello_seen_ = false;
  bool eos_frame_seen_ = false;

  // Durability / identity.
  uint64_t admitted_frames_ = 0;
  uint64_t skip_remaining_ = 0;
  uint64_t replayed_skips_ = 0;
  int64_t next_id_ = 1;

  // Multi-producer session state, keyed by producer id (ordered so
  // snapshots are deterministic).
  std::map<uint64_t, ProducerState> producers_;
  int done_producers_ = 0;  // EOS'd or quarantined
  uint64_t resume_skips_ = 0;
  uint64_t quarantined_frames_ = 0;
  uint64_t quarantined_producers_ = 0;

  // Feedback exploitation at the edge.
  GuardSet admission_guards_;

  FrameTraceWriter trace_;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_INGEST_SOURCE_H_
