#include "ingest/frame_conduit.h"

#include <algorithm>
#include <cstring>

namespace nstream {

size_t FrameConduit::OfferBytes(const char* p, size_t n) {
  size_t accepted = 0;
  const size_t cap = pool_.buffer_bytes();
  while (accepted < n) {
    char* buf = pool_.TryAcquire();
    if (buf == nullptr) break;  // pool dry: backpressure
    const size_t take = std::min(cap, n - accepted);
    std::memcpy(buf, p + accepted, take);
    accepted += take;
    CommitBuffer(buf, take);
  }
  return accepted;
}

void FrameConduit::CommitBuffer(char* buf, size_t len) {
  if (len == 0) {
    pool_.Release(buf);
    return;
  }
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.push_back(ConduitChunk{buf, len});
    notify = data_notifier_;
  }
  if (notify) notify();
}

void FrameConduit::CloseWrite() {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    write_closed_ = true;
    notify = data_notifier_;
  }
  // The close itself is a wake-worthy event: a parked source must run
  // once more to emit EOS (or report a truncated frame).
  if (notify) notify();
}

std::optional<std::string> FrameConduit::TryPopFeedbackFrame() {
  std::lock_guard<std::mutex> lock(mu_);
  if (feedback_.empty()) return std::nullopt;
  std::string f = std::move(feedback_.front().bytes);
  feedback_.pop_front();
  return f;
}

std::optional<RoutedFeedback> FrameConduit::TryPopRoutedFeedback() {
  std::lock_guard<std::mutex> lock(mu_);
  if (feedback_.empty()) return std::nullopt;
  RoutedFeedback f = std::move(feedback_.front());
  feedback_.pop_front();
  return f;
}

bool FrameConduit::OfferMuxFrame(uint64_t producer,
                                 std::string_view frame_bytes) {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (mux_bytes_ + frame_bytes.size() > mux_budget_ && !mux_.empty()) {
      return false;  // over budget: per-connection backpressure
    }
    mux_bytes_ += frame_bytes.size();
    mux_.push_back(MuxFrame{producer, std::string(frame_bytes)});
    notify = data_notifier_;
  }
  if (notify) notify();
  return true;
}

void FrameConduit::ForceMuxFrame(uint64_t producer,
                                 std::string frame_bytes) {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mux_bytes_ += frame_bytes.size();
    mux_.push_back(MuxFrame{producer, std::move(frame_bytes)});
    notify = data_notifier_;
  }
  if (notify) notify();
}

std::optional<MuxFrame> FrameConduit::TryPopMuxFrame() {
  std::lock_guard<std::mutex> lock(mu_);
  if (mux_.empty()) return std::nullopt;
  MuxFrame f = std::move(mux_.front());
  mux_.pop_front();
  mux_bytes_ -= f.bytes.size();
  return f;
}

bool FrameConduit::HasMuxFrames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !mux_.empty();
}

size_t FrameConduit::mux_queued_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mux_bytes_;
}

std::optional<ConduitChunk> FrameConduit::TryPopChunk() {
  std::lock_guard<std::mutex> lock(mu_);
  if (chunks_.empty()) return std::nullopt;
  ConduitChunk c = chunks_.front();
  chunks_.pop_front();
  return c;
}

bool FrameConduit::HasChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !chunks_.empty();
}

bool FrameConduit::write_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_closed_;
}

void FrameConduit::SetDataNotifier(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  data_notifier_ = std::move(fn);
}

void FrameConduit::PushFeedbackFrameTo(uint64_t producer,
                                       std::string frame_bytes) {
  std::function<void()> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (feedback_.size() >= max_feedback_) {
      feedback_.pop_front();  // oldest first: newer intent supersedes
      ++feedback_dropped_;
    }
    feedback_.push_back(RoutedFeedback{producer, std::move(frame_bytes)});
    notify = feedback_notifier_;
  }
  if (notify) notify();
}

uint64_t FrameConduit::feedback_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return feedback_dropped_;
}

void FrameConduit::SetFeedbackNotifier(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  feedback_notifier_ = std::move(fn);
}

}  // namespace nstream
