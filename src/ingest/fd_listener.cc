#include "ingest/fd_listener.h"

#include <cerrno>
#include <chrono>
#include <csignal>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace nstream {

namespace {
// Poll/backoff quantum: short enough that feedback latency and Stop()
// responsiveness stay in the low milliseconds, long enough not to spin.
constexpr int kPollMs = 2;

// A peer that died between frames must surface as a write error, not
// a process-killing SIGPIPE. Sockets are covered by MSG_NOSIGNAL in
// SendSome; plain pipes still need the signal ignored, but a library
// must not stomp an embedding application's handler — ignore only
// when the process still has the default disposition, once.
void IgnoreSigpipeIfDefault() {
  static const bool once = [] {
    struct sigaction cur {};
    if (::sigaction(SIGPIPE, nullptr, &cur) == 0 &&
        cur.sa_handler == SIG_DFL) {
      struct sigaction ign {};
      ign.sa_handler = SIG_IGN;
      ::sigemptyset(&ign.sa_mask);
      ::sigaction(SIGPIPE, &ign, nullptr);
    }
    return true;
  }();
  (void)once;
}

// send(MSG_NOSIGNAL | MSG_DONTWAIT) for sockets — per-call
// non-blocking, so even a frame bigger than the free socket-buffer
// space cannot wedge the pump (POLLOUT only promises SOME space);
// write(2) fallback for pipes (which rely on the once-only
// default-preserving SIGPIPE ignore above, and where POLLOUT promises
// PIPE_BUF writable bytes).
ssize_t SendSome(int fd, const char* p, size_t n) {
  ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
  if (r < 0 && errno == ENOTSOCK) r = ::write(fd, p, n);
  return r;
}
}  // namespace

FdListener::FdListener(int fd, FrameConduit* conduit)
    : fd_(fd), conduit_(conduit) {
  IgnoreSigpipeIfDefault();
  thread_ = std::thread([this] { Run(); });
}

FdListener::~FdListener() { Stop(); }

void FdListener::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdListener::FlushFeedback() {
  // A peer that stops reading the feedback direction fills the socket
  // buffer; this pump must never block in write(2) with stop_
  // unchecked, or Stop()/~FdListener would hang in join(). Writes are
  // gated on a short POLLOUT poll, and unsent bytes of a frame carry
  // across calls in fb_frame_/fb_off_.
  for (;;) {
    if (fb_off_ >= fb_frame_.size()) {
      std::optional<std::string> f = conduit_->TryPopFeedbackFrame();
      if (!f.has_value()) return true;  // drained
      fb_frame_ = std::move(*f);
      fb_off_ = 0;
    }
    while (fb_off_ < fb_frame_.size()) {
      if (stop_.load(std::memory_order_acquire)) return true;
      struct pollfd pfd = {fd_, POLLOUT, 0};
      int pr = ::poll(&pfd, 1, kPollMs);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) return true;  // not writable now: retry next pass
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        return false;  // peer gone: drop remaining feedback
      }
      ssize_t n = SendSome(fd_, fb_frame_.data() + fb_off_,
                           fb_frame_.size() - fb_off_);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return false;  // peer gone (EPIPE etc.): drop remaining feedback
      }
      fb_off_ += static_cast<size_t>(n);
    }
    fb_frame_.clear();
    fb_off_ = 0;
  }
}

void FdListener::Run() {
  bool peer_writable = true;
  while (!stop_.load(std::memory_order_acquire)) {
    if (peer_writable) {
      peer_writable = FlushFeedback();
      if (!peer_writable) {
        fb_frame_.clear();
        fb_off_ = 0;
      }
    } else {
      // Dead write side: nobody can receive feedback anymore — keep
      // draining the queue so a long-running plan's relayed frames do
      // not pin memory for nothing.
      while (conduit_->TryPopFeedbackFrame()) {
      }
    }

    if (eof_.load(std::memory_order_acquire)) {
      // Nothing left to read; keep draining feedback until stopped so
      // late plan output (e.g. final assumed guards) still reaches a
      // half-open peer.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
      continue;
    }

    struct pollfd pfd = {fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      conduit_->CloseWrite();
      eof_.store(true, std::memory_order_release);
      continue;
    }
    if (pr == 0 || (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }

    char* buf = conduit_->TryAcquireBuffer();
    if (buf == nullptr) {
      // Admission pool dry: stop reading. The socket buffer fills and
      // the producer's send() blocks — backpressure, not drop.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
      continue;
    }
    ssize_t n = ::read(fd_, buf, conduit_->buffer_bytes());
    if (n > 0) {
      conduit_->CommitBuffer(buf, static_cast<size_t>(n));
    } else if (n == 0 || (n < 0 && errno != EINTR)) {
      conduit_->ReleaseBuffer(buf);
      conduit_->CloseWrite();
      eof_.store(true, std::memory_order_release);
    } else {
      conduit_->ReleaseBuffer(buf);  // EINTR: retry
    }
  }
}

}  // namespace nstream
