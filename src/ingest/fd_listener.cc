#include "ingest/fd_listener.h"

#include <cerrno>
#include <chrono>
#include <csignal>

#include <poll.h>
#include <unistd.h>

namespace nstream {

namespace {
// Poll/backoff quantum: short enough that feedback latency and Stop()
// responsiveness stay in the low milliseconds, long enough not to spin.
constexpr int kPollMs = 2;
}  // namespace

FdListener::FdListener(int fd, FrameConduit* conduit)
    : fd_(fd), conduit_(conduit) {
  // A peer that died between frames must surface as EOF on read, not
  // as a process-killing SIGPIPE on our feedback write.
  ::signal(SIGPIPE, SIG_IGN);
  thread_ = std::thread([this] { Run(); });
}

FdListener::~FdListener() { Stop(); }

void FdListener::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdListener::FlushFeedback() {
  while (std::optional<std::string> f = conduit_->TryPopFeedbackFrame()) {
    size_t off = 0;
    while (off < f->size()) {
      ssize_t n = ::write(fd_, f->data() + off, f->size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (EPIPE etc.): drop remaining feedback
      }
      off += static_cast<size_t>(n);
    }
  }
  return true;
}

void FdListener::Run() {
  bool peer_writable = true;
  while (!stop_.load(std::memory_order_acquire)) {
    if (peer_writable) peer_writable = FlushFeedback();

    if (eof_.load(std::memory_order_acquire)) {
      // Nothing left to read; keep draining feedback until stopped so
      // late plan output (e.g. final assumed guards) still reaches a
      // half-open peer.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
      continue;
    }

    struct pollfd pfd = {fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      conduit_->CloseWrite();
      eof_.store(true, std::memory_order_release);
      continue;
    }
    if (pr == 0 || (pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }

    char* buf = conduit_->TryAcquireBuffer();
    if (buf == nullptr) {
      // Admission pool dry: stop reading. The socket buffer fills and
      // the producer's send() blocks — backpressure, not drop.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
      continue;
    }
    ssize_t n = ::read(fd_, buf, conduit_->buffer_bytes());
    if (n > 0) {
      conduit_->CommitBuffer(buf, static_cast<size_t>(n));
    } else if (n == 0 || (n < 0 && errno != EINTR)) {
      conduit_->ReleaseBuffer(buf);
      conduit_->CloseWrite();
      eof_.store(true, std::memory_order_release);
    } else {
      conduit_->ReleaseBuffer(buf);  // EINTR: retry
    }
  }
}

}  // namespace nstream
