#include "ingest/tcp_acceptor.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ingest/wire_format.h"

namespace nstream {

namespace {
// Per connection per round: read at most this many chunks so one
// firehose producer cannot starve its neighbors' service.
constexpr int kMaxReadsPerRound = 16;
constexpr size_t kReadChunk = 16 * 1024;
// Closed-connection stats kept for StatsReport.
constexpr size_t kMaxClosedHistory = 64;

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}
}  // namespace

ssize_t NetIo::Read(int fd, char* buf, size_t n) {
  return ::read(fd, buf, n);
}

ssize_t NetIo::Send(int fd, const char* p, size_t n) {
  // MSG_DONTWAIT keeps even a blocking fd from wedging the serving
  // thread (POLLOUT only promises SOME space, not `n` bytes of it).
  ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
  if (r < 0 && errno == ENOTSOCK) r = ::write(fd, p, n);
  return r;
}

std::string AcceptorStats::ToString() const {
  std::string s = "accepted=" + std::to_string(accepted) +
                  " closed=" + std::to_string(closed) +
                  " quarantined=" + std::to_string(quarantined) +
                  " reconnects=" + std::to_string(reconnects) +
                  " idle_closes=" + std::to_string(idle_closes) +
                  " frames=" + std::to_string(frames_forwarded) +
                  " bytes=" + std::to_string(bytes_received) +
                  " heartbeats=" + std::to_string(heartbeats_sent) +
                  " sheds=" + std::to_string(sheds_sent) +
                  " pauses=" + std::to_string(backpressure_pauses);
  for (const AcceptorConnStats& c : connections) {
    s += "\n  producer=" + std::to_string(c.producer) +
         (c.open ? " open" : " closed") +
         (c.quarantined ? " QUARANTINED" : "") +
         " frames_in=" + std::to_string(c.frames_in) +
         " bytes_in=" + std::to_string(c.bytes_in) +
         " feedback_out=" + std::to_string(c.feedback_out) +
         " heartbeats_out=" + std::to_string(c.heartbeats_out);
  }
  return s;
}

TcpAcceptor::TcpAcceptor(FrameConduit* conduit, TcpAcceptorOptions opts)
    : conduit_(conduit), opts_(opts) {
  if (opts_.io == nullptr) {
    default_io_ = std::make_unique<NetIo>();
    io_ = default_io_.get();
  } else {
    io_ = opts_.io;
  }
  if (opts_.clock == nullptr) {
    default_clock_ = std::make_unique<WallClock>();
    clock_ = default_clock_.get();
  } else {
    clock_ = opts_.clock;
  }
}

TcpAcceptor::~TcpAcceptor() { Stop(); }

Status TcpAcceptor::Listen() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("acceptor: already listening");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("acceptor: socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal("acceptor: bind() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
          0 ||
      ::listen(fd, 64) != 0 || !SetNonBlocking(fd)) {
    ::close(fd);
    return Status::Internal("acceptor: listen() failed");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TcpAcceptor::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

AcceptorStats TcpAcceptor::StatsReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  AcceptorStats out = stats_;
  out.connections.clear();
  for (const auto& c : conns_) {
    AcceptorConnStats cs;
    cs.producer = c->producer;
    cs.frames_in = c->frames_in;
    cs.bytes_in = c->bytes_in;
    cs.feedback_out = c->feedback_out;
    cs.heartbeats_out = c->heartbeats_out;
    cs.open = true;
    cs.quarantined = c->quarantined;
    out.connections.push_back(cs);
  }
  out.connections.insert(out.connections.end(), closed_history_.begin(),
                         closed_history_.end());
  return out;
}

void TcpAcceptor::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<struct pollfd> pfds;
    size_t polled_conns = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pfds.push_back({listen_fd_, POLLIN, 0});
      polled_conns = conns_.size();
      for (const auto& c : conns_) {
        short ev = 0;
        // A parked frame (mux budget) or a pending close pauses reads:
        // the kernel buffer fills and THAT producer's send() blocks —
        // per-connection backpressure, nobody else slows down.
        if (!c->has_pending && !c->close_after_flush) ev |= POLLIN;
        if (c->out_off < c->outbuf.size()) ev |= POLLOUT;
        pfds.push_back({c->fd, ev, 0});
      }
    }
    int pr = ::poll(pfds.data(), pfds.size(), opts_.poll_interval_ms);
    if (pr < 0 && errno != EINTR) break;  // poll itself broken: give up

    std::lock_guard<std::mutex> lock(mu_);
    const TimeMs now = clock_->NowMs();
    if ((pfds[0].revents & POLLIN) != 0) AcceptNew();

    // Un-park frames the conduit now has budget for, then resume
    // assembling whatever piled up in that connection's inbuf.
    for (auto& c : conns_) {
      if (!c->has_pending) continue;
      if (conduit_->OfferMuxFrame(c->producer, c->pending_frame)) {
        ++stats_.frames_forwarded;
        if (c->pending_is_hello) ++hellos_forwarded_[c->producer];
        c->pending_frame.clear();
        c->has_pending = false;
        c->pending_is_hello = false;
        AssembleAndForward(c.get());
      }
    }

    std::vector<size_t> doomed;
    for (size_t i = 0; i < polled_conns && i < conns_.size(); ++i) {
      Conn* c = conns_[i].get();
      const short re = pfds[i + 1].revents;
      if ((re & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !c->close_after_flush) {
        if (!ServiceRead(c)) doomed.push_back(i);
      }
    }

    DeliverFeedback();
    MaybeHeartbeatAndIdle(now);
    MaybeShed(now);

    for (size_t i = 0; i < conns_.size(); ++i) {
      Conn* c = conns_[i].get();
      if (!FlushOut(c)) doomed.push_back(i);
      else if (c->close_after_flush && c->out_off >= c->outbuf.size()) {
        doomed.push_back(i);
      }
    }
    std::sort(doomed.begin(), doomed.end());
    doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
    for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
      CloseConn(*it);
    }
  }
  // Serving is over: close everything and end the stream — the source
  // drains what was already forwarded, then reports exhaustion.
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!conns_.empty()) CloseConn(conns_.size() - 1);
  }
  conduit_->CloseWrite();
}

void TcpAcceptor::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: next round
    }
    if (static_cast<int>(conns_.size()) >= opts_.max_connections ||
        !SetNonBlocking(fd)) {
      ::close(fd);
      ++stats_.rejected;
      continue;
    }
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->last_recv_ms = clock_->NowMs();
    c->last_heartbeat_ms = c->last_recv_ms;
    conns_.push_back(std::move(c));
    ++stats_.accepted;
  }
}

bool TcpAcceptor::ServiceRead(Conn* c) {
  char buf[kReadChunk];
  for (int i = 0; i < kMaxReadsPerRound; ++i) {
    ssize_t n = io_->Read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      c->inbuf.append(buf, static_cast<size_t>(n));
      c->bytes_in += static_cast<uint64_t>(n);
      stats_.bytes_received += static_cast<uint64_t>(n);
      c->last_recv_ms = clock_->NowMs();
      AssembleAndForward(c);
      if (c->has_pending || c->close_after_flush) break;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // peer closed (maybe mid-frame): drop conn
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // ECONNRESET and friends: the producer may reconnect
  }
  return true;
}

bool TcpAcceptor::AssembleAndForward(Conn* c) {
  size_t off = 0;
  while (!c->has_pending && !c->close_after_flush) {
    FrameView f;
    size_t consumed = 0;
    Status s = ScanFrame(std::string_view(c->inbuf).substr(off), &f,
                         &consumed);
    if (!s.ok()) {
      // Framing violation: this connection is done, its neighbors are
      // not. Everything already forwarded stands (whole valid frames).
      Quarantine(c, s.message());
      break;
    }
    if (consumed == 0) break;  // partial frame: wait for more bytes
    ++c->frames_in;
    if (f.type == FrameType::kHeartbeat) {
      off += consumed;  // liveness ping: consumed here, never forwarded
      continue;
    }
    if (!c->hello_done) {
      if (f.type != FrameType::kHello) {
        Quarantine(c, "first frame must be hello");
        break;
      }
      if (!HandleHello(c, f.payload)) break;
    }
    std::string frame = c->inbuf.substr(off, consumed);
    off += consumed;
    ForwardFrame(c, std::move(frame), f.type == FrameType::kHello);
  }
  c->inbuf.erase(0, off);
  return true;
}

bool TcpAcceptor::HandleHello(Conn* c, std::string_view payload) {
  uint32_t version = 0;
  uint32_t arity = 0;
  uint64_t producer = 0;
  uint64_t resume = 0;
  Status s = DecodeHello(payload, &version, &arity, &producer, &resume);
  if (!s.ok()) {
    Quarantine(c, s.message());
    return false;
  }
  if (producer == 0) {
    // 0 is the broadcast routing target; an anonymous producer cannot
    // participate in per-connection feedback or session resume.
    Quarantine(c, "producer id 0 is reserved");
    return false;
  }
  // Version/arity are the IngestSource's call (it knows the schema and
  // quarantines the session itself); the acceptor only needs identity.
  for (auto& other : conns_) {
    if (other.get() != c && other->producer == producer) {
      // Newest wins: the old socket for this producer is stale (the
      // producer crashed or gave up on it) — flush and close it.
      other->close_after_flush = true;
    }
  }
  if (!seen_producers_.insert(producer).second) ++stats_.reconnects;
  c->producer = producer;
  c->hello_done = true;
  return true;
}

bool TcpAcceptor::ForwardFrame(Conn* c, std::string frame, bool is_hello) {
  if (conduit_->OfferMuxFrame(c->producer, frame)) {
    ++stats_.frames_forwarded;
    if (is_hello) ++hellos_forwarded_[c->producer];
    return true;
  }
  c->pending_frame = std::move(frame);
  c->has_pending = true;
  c->pending_is_hello = is_hello;
  ++stats_.backpressure_pauses;
  return false;
}

void TcpAcceptor::Quarantine(Conn* c, const std::string& reason) {
  if (c->quarantined) return;
  c->quarantined = true;
  c->close_after_flush = true;
  c->has_pending = false;
  c->pending_frame.clear();
  ++stats_.quarantined;
  std::string err;
  AppendErrorFrame(&err, "acceptor: " + reason);
  c->outbuf += err;  // the peer learns why before the close
  if (c->hello_done) {
    // The source must learn the session died at the transport, or an
    // expected-EOS count would wait forever on this producer. Budget-
    // exempt: a control frame, and the session is over regardless.
    conduit_->ForceMuxFrame(c->producer, std::move(err));
  }
}

void TcpAcceptor::DeliverFeedback() {
  while (std::optional<RoutedFeedback> fb =
             conduit_->TryPopRoutedFeedback()) {
    FrameView f;
    size_t consumed = 0;
    const bool framed = ScanFrame(fb->bytes, &f, &consumed).ok() &&
                        consumed == fb->bytes.size();
    const bool is_error = framed && f.type == FrameType::kError;
    if (framed && f.type == FrameType::kHelloAck && fb->target != 0) {
      // The Nth ack answers the Nth forwarded hello. An earlier one is
      // addressed to a session that died before its ack came back —
      // delivering it to the CURRENT session would hand the producer a
      // stale (lower) offset and provoke pointless resends.
      const uint64_t ordinal = ++acks_routed_[fb->target];
      if (ordinal < hellos_forwarded_[fb->target]) continue;
    }
    for (auto& c : conns_) {
      if (!c->hello_done) continue;
      if (fb->target != 0 && c->producer != fb->target) continue;
      if (c->close_after_flush && !is_error) continue;
      if (c->has_pending && c->pending_is_hello) continue;
      c->outbuf += fb->bytes;
      ++c->feedback_out;
      if (is_error) {
        // Engine-side quarantine (bad payload, protocol violation):
        // the error frame flushes, then the connection closes.
        c->close_after_flush = true;
        if (!c->quarantined) {
          c->quarantined = true;
          ++stats_.quarantined;
        }
      }
    }
  }
}

void TcpAcceptor::MaybeHeartbeatAndIdle(TimeMs now) {
  for (size_t i = 0; i < conns_.size(); ++i) {
    Conn* c = conns_[i].get();
    if (c->close_after_flush) continue;
    if (opts_.heartbeat_interval_ms > 0 &&
        now - c->last_heartbeat_ms >= opts_.heartbeat_interval_ms) {
      std::string hb;
      AppendHeartbeatFrame(&hb);
      c->outbuf += hb;
      c->last_heartbeat_ms = now;
      ++c->heartbeats_out;
      ++stats_.heartbeats_sent;
    }
    if (opts_.idle_timeout_ms > 0 &&
        now - c->last_recv_ms > opts_.idle_timeout_ms) {
      // Silent too long: reclaim the slot. Not a quarantine — the
      // producer is welcome to reconnect and resume its session.
      ++stats_.idle_closes;
      c->close_after_flush = true;
    }
  }
}

void TcpAcceptor::MaybeShed(TimeMs now) {
  bool pressure =
      conduit_->mux_queued_bytes() * 4 >= conduit_->mux_budget_bytes() * 3;
  if (!pressure) {
    for (const auto& c : conns_) {
      if (c->has_pending) {
        pressure = true;
        break;
      }
    }
  }
  if (!pressure) {
    shed_rounds_ = 0;
    return;
  }
  if (last_shed_ms_ >= 0 && now - last_shed_ms_ < opts_.shed_cooldown_ms) {
    return;
  }
  last_shed_ms_ = now;
  ++shed_rounds_;
  // Escalation: ask producers to pace themselves first; if pressure
  // survives several rounds of that, ask them to thin the stream.
  const bool escalate = shed_rounds_ > opts_.shed_escalate_after;
  std::string shed;
  AppendShedFrame(&shed,
                  escalate ? ShedIntent::kDropSubset : ShedIntent::kSlowDown,
                  escalate ? 250u
                           : static_cast<uint32_t>(
                                 std::max(1, opts_.poll_interval_ms * 4)));
  for (auto& c : conns_) {
    if (!c->hello_done || c->close_after_flush) continue;
    c->outbuf += shed;
  }
  ++stats_.sheds_sent;
}

bool TcpAcceptor::FlushOut(Conn* c) {
  while (c->out_off < c->outbuf.size()) {
    ssize_t n = io_->Send(c->fd, c->outbuf.data() + c->out_off,
                          c->outbuf.size() - c->out_off);
    if (n > 0) {
      c->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone: drop the rest
  }
  c->outbuf.clear();
  c->out_off = 0;
  return true;
}

void TcpAcceptor::CloseConn(size_t idx) {
  Conn* c = conns_[idx].get();
  AcceptorConnStats cs;
  cs.producer = c->producer;
  cs.frames_in = c->frames_in;
  cs.bytes_in = c->bytes_in;
  cs.feedback_out = c->feedback_out;
  cs.heartbeats_out = c->heartbeats_out;
  cs.open = false;
  cs.quarantined = c->quarantined;
  closed_history_.push_back(cs);
  if (closed_history_.size() > kMaxClosedHistory) {
    closed_history_.erase(closed_history_.begin());
  }
  ::close(c->fd);
  conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(idx));
  ++stats_.closed;
}

Result<int> TcpConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("connect: socket() failed");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return Status::Internal("connect: cannot reach 127.0.0.1:" +
                            std::to_string(port));
  }
  return fd;
}

}  // namespace nstream
