// FdListener: pumps a byte-stream file descriptor (socketpair, pipe,
// or an accepted TCP connection — anything read(2)/write(2) works on)
// into a FrameConduit, and pumps feedback frames back out. One thread
// per connection, blocking I/O with a short poll timeout.
//
// The read side is zero-copy into the admission pool: read(2) lands
// bytes directly in a pooled buffer (TryAcquireBuffer → CommitBuffer).
// A dry pool pauses reading — the kernel socket buffer fills, the
// peer's send(2) blocks, and backpressure reaches the producer with no
// engine-side queue growth: admission control by pool sizing.
//
// The write side drains the conduit's feedback queue to the fd, so the
// paper's feedback punctuations physically reach the producer process.

#ifndef NSTREAM_INGEST_FD_LISTENER_H_
#define NSTREAM_INGEST_FD_LISTENER_H_

#include <atomic>
#include <thread>

#include "ingest/frame_conduit.h"

namespace nstream {

class FdListener {
 public:
  /// Takes ownership of `fd` (closed on Stop/destruction) and starts
  /// the pump thread immediately.
  FdListener(int fd, FrameConduit* conduit);
  ~FdListener();

  FdListener(const FdListener&) = delete;
  FdListener& operator=(const FdListener&) = delete;

  /// Join the pump thread and close the fd. Idempotent. Called by the
  /// destructor if not called explicitly.
  void Stop();

  /// True once the peer closed its write side (conduit CloseWrite has
  /// fired).
  bool eof() const { return eof_.load(std::memory_order_acquire); }

 private:
  void Run();
  /// Drain queued feedback frames to the fd without ever blocking in
  /// write (POLLOUT-gated, stop_-aware; a partially written frame
  /// carries over in fb_frame_/fb_off_). False on a dead peer.
  bool FlushFeedback();

  int fd_;
  FrameConduit* conduit_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> eof_{false};
  // Feedback frame in flight: bytes [fb_off_, size) are still unsent.
  std::string fb_frame_;
  size_t fb_off_ = 0;
  std::thread thread_;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_FD_LISTENER_H_
