// The ingest wire format: how external producers speak to the engine
// (and how the engine speaks BACK — the paper's feedback punctuations
// travel the same byte stream in the opposite direction, so an
// overloaded plan can throttle or prune its producer).
//
// Every frame is:
//
//   [ magic u32 | size u32 | type u8 | payload (size bytes) ]
//
// little-endian, magic 0xDEADBEEF. The header is validated before a
// single payload byte is touched: wrong magic, an unknown type, or a
// size above kMaxFramePayload reject the stream immediately — a
// desynchronized or hostile peer cannot make the parser allocate or
// wander. A stream opens with a Hello frame carrying the format
// version and the tuple arity, so version skew is an explicit error
// instead of garbage decode.
//
// Payloads reuse the engine's ONE binary encoding (serde/serde.h):
// a tuple on the wire is byte-for-byte a tuple in a checkpoint.
//
//   kHello       u32 version, u32 tuple arity, u64 producer id,
//                u64 resume offset (the per-producer frame index the
//                producer will resume sending from — 0 on a fresh
//                stream; on reconnect the engine skips duplicates up
//                to its acknowledged offset)
//   kTupleBatch  u32 count, count × Tuple
//   kPunctuation Punctuation
//   kEos         (empty)
//   kFeedback    u8 intent, PunctPattern, i64 origin_op, u32 hops,
//                i64 issued_at_ms, i64 deadline_ms   [engine → producer]
//   kHelloAck    u64 acknowledged offset              [engine → producer]
//   kError       string message — the connection is being quarantined
//                and will be closed                   [engine → producer]
//   kHeartbeat   (empty) — liveness, either direction; consumed by the
//                transport, never forwarded into the plan
//   kShed        u8 intent (slow-down / drop-subset), u32 level —
//                overload shedding advice             [engine → producer]
//
// Decode is zero-copy where it matters: DecodeTupleBatchInto parses
// tuple batches STRAIGHT into an arena-backed Page — string bytes go
// frame-buffer → page arena (inline when ≤15 B), rows stage into a
// ColumnarBlock when the columnar layout is on, and no intermediate
// Tuple/std::string is ever materialized. DecodeTupleBatchOwned is
// the materialize-then-copy reference path bench_ingest races it
// against.

#ifndef NSTREAM_INGEST_WIRE_FORMAT_H_
#define NSTREAM_INGEST_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "punct/feedback.h"
#include "punct/punct_pattern.h"
#include "serde/serde.h"
#include "stream/page.h"
#include "types/tuple.h"

namespace nstream {

inline constexpr uint32_t kFrameMagic = 0xDEADBEEFu;
/// v2 grew the hello handshake (producer id + resume offset) and the
/// connection-lifecycle frames (hello-ack, error, heartbeat, shed).
inline constexpr uint32_t kWireVersion = 2;
/// magic(4) + size(4) + type(1).
inline constexpr size_t kFrameHeaderBytes = 9;
/// Upper bound on a frame payload; a size field above this is treated
/// as corruption (or hostility), not as an allocation request.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : uint8_t {
  kHello = 0,        // stream opener: version + arity + session
  kTupleBatch = 1,   // producer → engine data
  kPunctuation = 2,  // producer → engine embedded punctuation
  kEos = 3,          // producer → engine end of stream
  kFeedback = 4,     // engine → producer feedback punctuation
  kHelloAck = 5,     // engine → producer acknowledged resume offset
  kError = 6,        // engine → producer quarantine notice (then close)
  kHeartbeat = 7,    // either direction liveness; transport-consumed
  kShed = 8,         // engine → producer overload shedding advice
};

/// What an overloaded serving edge asks of its producers, in
/// escalation order: first pace yourself, then thin the stream.
enum class ShedIntent : uint8_t {
  kSlowDown = 0,    // level = suggested pause between sends, ms
  kDropSubset = 1,  // level = suggested drop rate, permille
};

/// A decoded frame header + a view of its payload bytes (borrowed
/// from the scan buffer — valid only while that buffer is).
struct FrameView {
  FrameType type = FrameType::kEos;
  std::string_view payload;
};

/// Scan one frame off the front of `buf`. Three outcomes:
///   OK, *consumed > 0   — `*out` holds the frame; consume the bytes.
///   OK, *consumed == 0  — incomplete: need more bytes.
///   !OK                 — corrupt (bad magic / unknown type /
///                         oversized size field); the stream is dead.
Status ScanFrame(std::string_view buf, FrameView* out, size_t* consumed);

// ---- Frame encoders (producer side + engine feedback) ----

/// `producer_id` names the session for multi-producer fan-in and
/// reconnect resume; 0 = anonymous single-producer stream.
/// `resume_offset` is the per-producer frame index (frames after the
/// hello) the producer will resume sending from.
void AppendHelloFrame(std::string* out, uint32_t tuple_arity,
                      uint64_t producer_id = 0,
                      uint64_t resume_offset = 0);
void AppendTupleBatchFrame(std::string* out, const Tuple* tuples,
                           size_t count);
inline void AppendTupleBatchFrame(std::string* out,
                                  const std::vector<Tuple>& tuples) {
  AppendTupleBatchFrame(out, tuples.data(), tuples.size());
}
void AppendPunctuationFrame(std::string* out, const Punctuation& p);
void AppendEosFrame(std::string* out);
void AppendFeedbackFrame(std::string* out, const FeedbackPunctuation& fb);
void AppendHelloAckFrame(std::string* out, uint64_t acknowledged_offset);
void AppendErrorFrame(std::string* out, std::string_view message);
void AppendHeartbeatFrame(std::string* out);
void AppendShedFrame(std::string* out, ShedIntent intent, uint32_t level);

// ---- Payload decoders ----

Status DecodeHello(std::string_view payload, uint32_t* version,
                   uint32_t* arity, uint64_t* producer_id,
                   uint64_t* resume_offset);
inline Status DecodeHello(std::string_view payload, uint32_t* version,
                          uint32_t* arity) {
  uint64_t producer = 0, resume = 0;
  return DecodeHello(payload, version, arity, &producer, &resume);
}
Status DecodeHelloAck(std::string_view payload,
                      uint64_t* acknowledged_offset);
Status DecodeError(std::string_view payload, std::string* message);
Status DecodeShed(std::string_view payload, ShedIntent* intent,
                  uint32_t* level);
Status DecodePunctuation(std::string_view payload, Punctuation* out);
Status DecodeFeedback(std::string_view payload, FeedbackPunctuation* out);

/// Zero-copy batch decode: parse `payload` straight into `page`.
/// String bytes land in the page's arena (or inline); when
/// `allow_columnar` and the global PageColumnar toggle is on (and the
/// page can open an arena), rows stage into a ColumnarBlock. Tuples
/// whose wire id is 0 are assigned from `*next_id` (advanced), the
/// same stable-identity rule VectorSource applies. Every tuple must
/// have exactly `expected_arity` values — a mismatch is corruption.
Status DecodeTupleBatchInto(std::string_view payload,
                            uint32_t expected_arity, Page* page,
                            bool allow_columnar, int64_t* next_id);

/// Reference decode path: materialize owned tuples (heap strings, no
/// arena) into `out` — what ingest would cost WITHOUT the arena
/// handoff. Kept for the bench A/B and as a debugging oracle.
Status DecodeTupleBatchOwned(std::string_view payload,
                             uint32_t expected_arity,
                             std::vector<Tuple>* out);

}  // namespace nstream

#endif  // NSTREAM_INGEST_WIRE_FORMAT_H_
