#include "ingest/ingest_source.h"

#include <utility>

#include "recovery/snapshot.h"

namespace nstream {

IngestSource::IngestSource(std::string name, SchemaPtr schema,
                           FrameConduit* conduit, IngestSourceOptions opts)
    : SourceOperator(std::move(name)),
      conduit_(conduit),
      opts_(std::move(opts)) {
  SetOutputSchema(0, std::move(schema));
}

Status IngestSource::Open(ExecContext* ctx) {
  NSTREAM_RETURN_NOT_OK(Operator::Open(ctx));
  if (!opts_.trace_path.empty()) {
    NSTREAM_RETURN_NOT_OK(trace_.Open(opts_.trace_path));
  }
  return Status::OK();
}

Status IngestSource::Close() {
  if (cur_.data != nullptr) {
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
  }
  Status trace_status = trace_.Close();
  NSTREAM_RETURN_NOT_OK(Operator::Close());
  return trace_status;
}

bool IngestSource::TopUpCarry() {
  if (cur_.data != nullptr) {
    if (cur_pos_ < cur_.len) {
      carry_.append(cur_.data + cur_pos_, cur_.len - cur_pos_);
      conduit_->Recycle(cur_);
      cur_ = ConduitChunk{};
      cur_pos_ = 0;
      return true;
    }
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
    cur_pos_ = 0;
  }
  std::optional<ConduitChunk> c = conduit_->TryPopChunk();
  if (!c.has_value()) return false;
  carry_.append(c->data, c->len);
  conduit_->Recycle(*c);
  return true;
}

void IngestSource::EnsureFrame() {
  if (pending_ready_ || !pending_error_.ok() || clean_close_) return;
  for (;;) {
    if (!carry_.empty()) {
      // Slow path: a frame straddled a chunk boundary; it is assembled
      // contiguously in carry_ (copied once) before parsing.
      FrameView f;
      size_t consumed = 0;
      Status s = ScanFrame(carry_, &f, &consumed);
      if (!s.ok()) {
        pending_error_ = std::move(s);
        return;
      }
      if (consumed > 0) {
        pending_frame_ = f;
        pending_consumed_ = consumed;
        pending_from_carry_ = true;
        pending_ready_ = true;
        return;
      }
      if (TopUpCarry()) continue;
      if (conduit_->write_closed() && !conduit_->HasChunks()) {
        pending_error_ = Status::InvalidArgument(
            name() + ": stream closed mid-frame (" +
            std::to_string(carry_.size()) + " dangling bytes)");
      }
      return;  // open but drained: idle
    }
    // Fast path: parse frames in place out of the pooled chunk — the
    // payload view handed to the decoder aliases the admission buffer.
    if (cur_.data == nullptr || cur_pos_ >= cur_.len) {
      if (cur_.data != nullptr) {
        conduit_->Recycle(cur_);
        cur_ = ConduitChunk{};
      }
      cur_pos_ = 0;
      std::optional<ConduitChunk> c = conduit_->TryPopChunk();
      if (!c.has_value()) {
        if (conduit_->write_closed() && !conduit_->HasChunks()) {
          if (skip_remaining_ > 0) {
            // A recovered source whose replay ends before covering the
            // checkpointed prefix has LOST admitted frames. Treating
            // this as clean exhaustion would silently drop them, so it
            // is a hard error — at-least-once fails loudly, never
            // quietly.
            pending_error_ = Status::FailedPrecondition(
                name() + ": replayed stream ended " +
                std::to_string(skip_remaining_) +
                " frame(s) short of the checkpointed offset");
          } else {
            clean_close_ = true;  // drained at a frame boundary
          }
        }
        return;
      }
      cur_ = *c;
    }
    FrameView f;
    size_t consumed = 0;
    Status s = ScanFrame(
        std::string_view(cur_.data + cur_pos_, cur_.len - cur_pos_), &f,
        &consumed);
    if (!s.ok()) {
      pending_error_ = std::move(s);
      return;
    }
    if (consumed > 0) {
      pending_frame_ = f;
      pending_consumed_ = consumed;
      pending_from_carry_ = false;
      pending_ready_ = true;
      return;
    }
    // Partial tail in this chunk: spill it to carry_ and recycle the
    // buffer; the next iteration assembles across chunks.
    carry_.assign(cur_.data + cur_pos_, cur_.len - cur_pos_);
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
    cur_pos_ = 0;
  }
}

void IngestSource::ConsumePending() {
  if (pending_from_carry_) {
    carry_.erase(0, pending_consumed_);
  } else {
    cur_pos_ += pending_consumed_;
  }
  pending_ready_ = false;
  pending_consumed_ = 0;
  pending_frame_ = FrameView{};
}

SourcePoll IngestSource::Poll() {
  EnsureFrame();
  if (!pending_error_.ok()) return SourcePoll::kReady;  // surface it
  if (pending_ready_) return SourcePoll::kReady;
  if (eos_frame_seen_ || clean_close_) return SourcePoll::kExhausted;
  return SourcePoll::kIdle;
}

std::optional<TimeMs> IngestSource::NextArrivalMs() {
  // Network arrivals are "now or unknown": ready frames are due
  // immediately, and an idle conduit has no predictable next-arrival
  // instant (the SimExecutor therefore only drives pre-filled,
  // write-closed conduits).
  if (Poll() == SourcePoll::kReady) return 0;
  return std::nullopt;
}

Status IngestSource::ProduceNext() {
  // INVARIANT (no-busy-spin): Poll() only reported kReady if a whole
  // frame is assembled or an error is pending, so every call below
  // makes progress — consumes a frame or fails the query.
  for (int i = 0; i < opts_.max_frames_per_produce; ++i) {
    EnsureFrame();
    if (!pending_error_.ok()) return pending_error_;
    if (!pending_ready_) break;
    if (skip_remaining_ > 0) {
      // Recovery replay: this frame was admitted (and emitted) before
      // the checkpoint — drop it without emitting or re-counting. It
      // still goes to the trace: Open() truncated trace_path, so when
      // recovery records to the SAME path the re-recorded file must
      // regain the checkpointed prefix, or a second crash would
      // replay a too-short stream.
      if (trace_.is_open()) {
        const char* base =
            pending_from_carry_ ? carry_.data() : cur_.data + cur_pos_;
        NSTREAM_RETURN_NOT_OK(
            trace_.Append(std::string_view(base, pending_consumed_)));
      }
      --skip_remaining_;
      ++replayed_skips_;
    } else {
      const char* base =
          pending_from_carry_ ? carry_.data() : cur_.data + cur_pos_;
      Status s = ProcessFrame(pending_frame_,
                              std::string_view(base, pending_consumed_));
      if (!s.ok()) {
        pending_error_ = s;  // stay kReady so the failure is sticky
        return s;
      }
    }
    ConsumePending();
    if (eos_frame_seen_) break;  // Poll turns kExhausted; executor EOSes
  }
  return Status::OK();
}

Status IngestSource::ProcessFrame(const FrameView& f, std::string_view raw) {
  if (eos_frame_seen_) {
    return Status::InvalidArgument(name() + ": frame after EOS");
  }
  if (!hello_seen_ && f.type != FrameType::kHello) {
    return Status::InvalidArgument(
        name() + ": stream must open with a hello frame");
  }
  switch (f.type) {
    case FrameType::kHello: {
      if (hello_seen_) {
        return Status::InvalidArgument(name() + ": duplicate hello frame");
      }
      uint32_t version = 0;
      uint32_t arity = 0;
      NSTREAM_RETURN_NOT_OK(DecodeHello(f.payload, &version, &arity));
      if (version != kWireVersion) {
        return Status::InvalidArgument(
            name() + ": wire version " + std::to_string(version) +
            " != supported " + std::to_string(kWireVersion));
      }
      const uint32_t want =
          static_cast<uint32_t>(output_schema(0)->num_fields());
      if (arity != want) {
        return Status::InvalidArgument(
            name() + ": producer arity " + std::to_string(arity) +
            " != schema arity " + std::to_string(want));
      }
      hello_seen_ = true;
      break;
    }
    case FrameType::kTupleBatch:
      NSTREAM_RETURN_NOT_OK(EmitBatch(f.payload));
      break;
    case FrameType::kPunctuation: {
      Punctuation p;
      NSTREAM_RETURN_NOT_OK(DecodePunctuation(f.payload, &p));
      // §4.4: embedded punctuation covering an admission guard proves
      // the guard can never block again — expire it at the edge too.
      admission_guards_.ExpireCovered(p);
      EmitPunct(0, std::move(p));
      break;
    }
    case FrameType::kEos:
      if (!f.payload.empty()) {
        return Status::InvalidArgument(name() + ": EOS frame with payload");
      }
      eos_frame_seen_ = true;
      break;
    case FrameType::kFeedback:
      return Status::InvalidArgument(
          name() + ": feedback frame on the producer→engine direction");
  }
  ++admitted_frames_;
  if (trace_.is_open()) {
    NSTREAM_RETURN_NOT_OK(trace_.Append(raw));
  }
  return Status::OK();
}

Status IngestSource::EmitBatch(std::string_view payload) {
  Page page;
  const uint32_t arity =
      static_cast<uint32_t>(output_schema(0)->num_fields());
  NSTREAM_RETURN_NOT_OK(DecodeTupleBatchInto(
      payload, arity, &page, opts_.allow_columnar, &next_id_));
  ApplyAdmissionGuards(&page);
  if (!page.empty()) {
    page.set_flush_reason(FlushReason::kPageFull);
    EmitPage(0, std::move(page));
  }
  return Status::OK();
}

void IngestSource::ApplyAdmissionGuards(Page* page) {
  if (admission_guards_.empty() || page->empty()) return;
  if (page->is_columnar()) {
    ColumnarBlock* b = page->columnar();
    Tuple scratch = b->MakeRowScratch();
    b->KeepIf([&](uint32_t r) {
      b->FillRow(r, &scratch);
      if (admission_guards_.Blocks(scratch)) {
        ++stats_.input_guard_drops;
        return false;
      }
      return true;
    });
    return;
  }
  std::vector<StreamElement>& elems = page->mutable_elements();
  size_t kept = 0;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (admission_guards_.Blocks(elems[i].tuple())) {
      ++stats_.input_guard_drops;
      continue;
    }
    if (kept != i) elems[kept] = std::move(elems[i]);
    ++kept;
  }
  elems.resize(kept);
}

Status IngestSource::ProcessFeedback(int out_port,
                                     const FeedbackPunctuation& feedback) {
  (void)out_port;
  // Exploit: assumed subsets are dropped at admission, before they cost
  // the plan a single queue hop.
  if (feedback.is_assumed()) {
    admission_guards_.Add(feedback.pattern());
  }
  // Relay: every intent crosses the wire to the producer — assumed
  // prunes its send set, desired/demanded reorder it.
  std::string frame;
  AppendFeedbackFrame(&frame, feedback);
  conduit_->PushFeedbackFrame(std::move(frame));
  ++stats_.feedback_propagated;
  return Status::OK();
}

Status IngestSource::SnapshotState(SnapshotWriter* w) {
  NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));
  // The barrier runs between produce slices and frames are processed
  // atomically within a slice, so admitted_frames_ is exact: every
  // admitted frame's effects are fully emitted (and thus captured
  // downstream or in queue sections), none half so.
  w->WriteU64(admitted_frames_);
  w->WriteI64(next_id_);
  w->WriteBool(hello_seen_);
  w->WriteBool(eos_frame_seen_);
  w->WriteGuardSet(admission_guards_);
  return Status::OK();
}

Status IngestSource::RestoreState(SnapshotReader* r) {
  NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&admitted_frames_));
  NSTREAM_RETURN_NOT_OK(r->ReadI64(&next_id_));
  NSTREAM_RETURN_NOT_OK(r->ReadBool(&hello_seen_));
  NSTREAM_RETURN_NOT_OK(r->ReadBool(&eos_frame_seen_));
  NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&admission_guards_));
  // Replay contract: the producer (or a recorded trace) re-sends the
  // stream from the beginning; the first admitted_frames_ frames were
  // already emitted pre-checkpoint and are skipped.
  skip_remaining_ = admitted_frames_;
  replayed_skips_ = 0;
  return Status::OK();
}

}  // namespace nstream
