#include "ingest/ingest_source.h"

#include <algorithm>
#include <utility>

#include "recovery/snapshot.h"

namespace nstream {

IngestSource::IngestSource(std::string name, SchemaPtr schema,
                           FrameConduit* conduit, IngestSourceOptions opts)
    : SourceOperator(std::move(name)),
      conduit_(conduit),
      opts_(std::move(opts)) {
  SetOutputSchema(0, std::move(schema));
}

Status IngestSource::Open(ExecContext* ctx) {
  NSTREAM_RETURN_NOT_OK(Operator::Open(ctx));
  if (!opts_.trace_path.empty()) {
    NSTREAM_RETURN_NOT_OK(trace_.Open(opts_.trace_path));
  }
  return Status::OK();
}

Status IngestSource::Close() {
  if (cur_.data != nullptr) {
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
  }
  Status trace_status = trace_.Close();
  NSTREAM_RETURN_NOT_OK(Operator::Close());
  return trace_status;
}

bool IngestSource::TopUpCarry() {
  if (cur_.data != nullptr) {
    if (cur_pos_ < cur_.len) {
      carry_.append(cur_.data + cur_pos_, cur_.len - cur_pos_);
      conduit_->Recycle(cur_);
      cur_ = ConduitChunk{};
      cur_pos_ = 0;
      return true;
    }
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
    cur_pos_ = 0;
  }
  std::optional<ConduitChunk> c = conduit_->TryPopChunk();
  if (!c.has_value()) return false;
  carry_.append(c->data, c->len);
  conduit_->Recycle(*c);
  return true;
}

void IngestSource::EnsureFrame() {
  if (pending_ready_ || !pending_error_.ok() || clean_close_) return;
  for (;;) {
    if (!carry_.empty()) {
      // Slow path: a frame straddled a chunk boundary; it is assembled
      // contiguously in carry_ (copied once) before parsing.
      FrameView f;
      size_t consumed = 0;
      Status s = ScanFrame(carry_, &f, &consumed);
      if (!s.ok()) {
        pending_error_ = std::move(s);
        return;
      }
      if (consumed > 0) {
        pending_frame_ = f;
        pending_consumed_ = consumed;
        pending_from_carry_ = true;
        pending_ready_ = true;
        return;
      }
      if (TopUpCarry()) continue;
      if (conduit_->write_closed() && !conduit_->HasChunks()) {
        pending_error_ = Status::InvalidArgument(
            name() + ": stream closed mid-frame (" +
            std::to_string(carry_.size()) + " dangling bytes)");
      }
      return;  // open but drained: idle
    }
    // Fast path: parse frames in place out of the pooled chunk — the
    // payload view handed to the decoder aliases the admission buffer.
    if (cur_.data == nullptr || cur_pos_ >= cur_.len) {
      if (cur_.data != nullptr) {
        conduit_->Recycle(cur_);
        cur_ = ConduitChunk{};
      }
      cur_pos_ = 0;
      std::optional<ConduitChunk> c = conduit_->TryPopChunk();
      if (!c.has_value()) {
        if (conduit_->write_closed() && !conduit_->HasChunks()) {
          if (skip_remaining_ > 0) {
            // A recovered source whose replay ends before covering the
            // checkpointed prefix has LOST admitted frames. Treating
            // this as clean exhaustion would silently drop them, so it
            // is a hard error — at-least-once fails loudly, never
            // quietly.
            pending_error_ = Status::FailedPrecondition(
                name() + ": replayed stream ended " +
                std::to_string(skip_remaining_) +
                " frame(s) short of the checkpointed offset");
          } else {
            clean_close_ = true;  // drained at a frame boundary
          }
        }
        return;
      }
      cur_ = *c;
    }
    FrameView f;
    size_t consumed = 0;
    Status s = ScanFrame(
        std::string_view(cur_.data + cur_pos_, cur_.len - cur_pos_), &f,
        &consumed);
    if (!s.ok()) {
      pending_error_ = std::move(s);
      return;
    }
    if (consumed > 0) {
      pending_frame_ = f;
      pending_consumed_ = consumed;
      pending_from_carry_ = false;
      pending_ready_ = true;
      return;
    }
    // Partial tail in this chunk: spill it to carry_ and recycle the
    // buffer; the next iteration assembles across chunks.
    carry_.assign(cur_.data + cur_pos_, cur_.len - cur_pos_);
    conduit_->Recycle(cur_);
    cur_ = ConduitChunk{};
    cur_pos_ = 0;
  }
}

void IngestSource::ConsumePending() {
  if (pending_from_carry_) {
    carry_.erase(0, pending_consumed_);
  } else {
    cur_pos_ += pending_consumed_;
  }
  pending_ready_ = false;
  pending_consumed_ = 0;
  pending_frame_ = FrameView{};
}

SourcePoll IngestSource::Poll() {
  if (opts_.multi_producer) {
    if (!pending_error_.ok()) return SourcePoll::kReady;  // surface it
    // Drain before declaring the end: a confirm-hello can trail the
    // final EOS in the queue, and its ack is the producer's only proof
    // its stream landed.
    if (conduit_->HasMuxFrames()) return SourcePoll::kReady;
    if (AllProducersDone()) return CheckMuxExhausted();
    if (conduit_->write_closed()) return CheckMuxExhausted();
    return SourcePoll::kIdle;
  }
  EnsureFrame();
  if (!pending_error_.ok()) return SourcePoll::kReady;  // surface it
  if (pending_ready_) return SourcePoll::kReady;
  if (eos_frame_seen_ || clean_close_) return SourcePoll::kExhausted;
  return SourcePoll::kIdle;
}

SourcePoll IngestSource::CheckMuxExhausted() {
  // A multi-producer stream may only end if every non-quarantined
  // producer's replay covered its checkpointed prefix — otherwise the
  // truncated-on-open trace is missing frames a SECOND crash would
  // need, and at-least-once must fail loudly (mirrors the
  // single-stream short-replay check in EnsureFrame). Only the
  // restored prefix is load-bearing: a dangling live-resume skip (a
  // producer declared a rewind, confirmed via the ack, and left
  // without resending) uncovers nothing the engine has not already
  // admitted and recorded.
  for (const auto& [id, st] : producers_) {
    if (st.quarantined) continue;
    const uint64_t covered_to = st.admitted - st.skip_remaining;
    const bool short_replay = covered_to < st.restored_admitted;
    const bool hello_never_replayed =
        st.restored_admitted > 0 && !st.hello_seen;
    if (short_replay || hello_never_replayed) {
      pending_error_ = Status::FailedPrecondition(
          name() + ": producer " + std::to_string(id) +
          " replay ended short of the checkpointed offset (" +
          std::to_string(hello_never_replayed
                             ? st.restored_admitted
                             : st.restored_admitted - covered_to) +
          " frame(s) uncovered)");
      return SourcePoll::kReady;
    }
  }
  return SourcePoll::kExhausted;
}

std::optional<TimeMs> IngestSource::NextArrivalMs() {
  // Network arrivals are "now or unknown": ready frames are due
  // immediately, and an idle conduit has no predictable next-arrival
  // instant (the SimExecutor therefore only drives pre-filled,
  // write-closed conduits).
  if (Poll() == SourcePoll::kReady) return 0;
  return std::nullopt;
}

Status IngestSource::ProduceNext() {
  if (opts_.multi_producer) return ProduceNextMux();
  // INVARIANT (no-busy-spin): Poll() only reported kReady if a whole
  // frame is assembled or an error is pending, so every call below
  // makes progress — consumes a frame or fails the query.
  for (int i = 0; i < opts_.max_frames_per_produce; ++i) {
    EnsureFrame();
    if (!pending_error_.ok()) return pending_error_;
    if (!pending_ready_) break;
    if (skip_remaining_ > 0) {
      // Recovery replay: this frame was admitted (and emitted) before
      // the checkpoint — drop it without emitting or re-counting. It
      // still goes to the trace: Open() truncated trace_path, so when
      // recovery records to the SAME path the re-recorded file must
      // regain the checkpointed prefix, or a second crash would
      // replay a too-short stream.
      if (trace_.is_open()) {
        const char* base =
            pending_from_carry_ ? carry_.data() : cur_.data + cur_pos_;
        NSTREAM_RETURN_NOT_OK(
            trace_.Append(std::string_view(base, pending_consumed_)));
      }
      --skip_remaining_;
      ++replayed_skips_;
    } else {
      const char* base =
          pending_from_carry_ ? carry_.data() : cur_.data + cur_pos_;
      Status s = ProcessFrame(pending_frame_,
                              std::string_view(base, pending_consumed_));
      if (!s.ok()) {
        pending_error_ = s;  // stay kReady so the failure is sticky
        return s;
      }
    }
    ConsumePending();
    if (eos_frame_seen_) break;  // Poll turns kExhausted; executor EOSes
  }
  return Status::OK();
}

Status IngestSource::ProcessFrame(const FrameView& f, std::string_view raw) {
  if (eos_frame_seen_) {
    return Status::InvalidArgument(name() + ": frame after EOS");
  }
  if (!hello_seen_ && f.type != FrameType::kHello) {
    return Status::InvalidArgument(
        name() + ": stream must open with a hello frame");
  }
  switch (f.type) {
    case FrameType::kHello: {
      if (hello_seen_) {
        return Status::InvalidArgument(name() + ": duplicate hello frame");
      }
      uint32_t version = 0;
      uint32_t arity = 0;
      NSTREAM_RETURN_NOT_OK(DecodeHello(f.payload, &version, &arity));
      if (version != kWireVersion) {
        return Status::InvalidArgument(
            name() + ": wire version " + std::to_string(version) +
            " != supported " + std::to_string(kWireVersion));
      }
      const uint32_t want =
          static_cast<uint32_t>(output_schema(0)->num_fields());
      if (arity != want) {
        return Status::InvalidArgument(
            name() + ": producer arity " + std::to_string(arity) +
            " != schema arity " + std::to_string(want));
      }
      hello_seen_ = true;
      break;
    }
    case FrameType::kTupleBatch:
      NSTREAM_RETURN_NOT_OK(EmitBatch(f.payload));
      break;
    case FrameType::kPunctuation: {
      Punctuation p;
      NSTREAM_RETURN_NOT_OK(DecodePunctuation(f.payload, &p));
      // §4.4: embedded punctuation covering an admission guard proves
      // the guard can never block again — expire it at the edge too.
      admission_guards_.ExpireCovered(p);
      EmitPunct(0, std::move(p));
      break;
    }
    case FrameType::kEos:
      if (!f.payload.empty()) {
        return Status::InvalidArgument(name() + ": EOS frame with payload");
      }
      eos_frame_seen_ = true;
      break;
    case FrameType::kHeartbeat:
      return Status::OK();  // transport liveness: never admitted
    case FrameType::kFeedback:
    case FrameType::kHelloAck:
    case FrameType::kError:
    case FrameType::kShed:
      return Status::InvalidArgument(
          name() + ": engine-direction frame on the producer→engine "
                   "direction");
  }
  ++admitted_frames_;
  if (trace_.is_open()) {
    NSTREAM_RETURN_NOT_OK(trace_.Append(raw));
  }
  return Status::OK();
}

Status IngestSource::ProduceNextMux() {
  for (int i = 0; i < opts_.max_frames_per_produce; ++i) {
    if (!pending_error_.ok()) return pending_error_;
    std::optional<MuxFrame> mux = conduit_->TryPopMuxFrame();
    if (!mux.has_value()) break;
    Status s = ProcessMuxFrame(*mux);
    if (!s.ok()) {
      pending_error_ = s;  // stay kReady so the failure is sticky
      return s;
    }
  }
  return Status::OK();
}

Status IngestSource::ProcessMuxFrame(const MuxFrame& mux) {
  if (mux.producer == 0) {
    // The acceptor rejects anonymous hellos and trace records carry
    // real ids, so a 0-tagged frame is a harness bug, not a sick
    // producer — fail the query rather than quarantine "broadcast".
    return Status::InvalidArgument(
        name() + ": mux frame with reserved producer id 0");
  }
  // Re-validate defensively even though the acceptor (or trace
  // replayer) already framed these bytes: the conduit is a boundary.
  FrameView f;
  size_t consumed = 0;
  Status scan = ScanFrame(mux.bytes, &f, &consumed);
  if (!scan.ok() || consumed != mux.bytes.size() || consumed == 0) {
    QuarantineProducer(mux.producer, scan.ok() ? "malformed mux frame"
                                               : scan.message());
    return Status::OK();
  }
  if (f.type == FrameType::kHeartbeat) return Status::OK();  // liveness only
  ProducerState& st = producers_[mux.producer];
  if (st.quarantined) {
    ++quarantined_frames_;  // late frames from a cut-off producer
    return Status::OK();
  }
  if (f.type == FrameType::kError) {
    // The acceptor already quarantined this connection at the framing
    // layer and forwards its notice so the session is counted done
    // here too (otherwise expected_eos_producers could hang on it).
    std::string msg;
    (void)DecodeError(f.payload, &msg);
    QuarantineProducer(mux.producer,
                       msg.empty() ? "quarantined by acceptor" : msg);
    return Status::OK();
  }
  if (f.type == FrameType::kHello) {
    return ProcessMuxHello(mux.producer, f);
  }
  if (!st.hello_seen) {
    QuarantineProducer(mux.producer, "frame before hello");
    return Status::OK();
  }
  if (st.skip_remaining > 0) {
    // A duplicate the producer re-sent (live reconnect resume) or a
    // recovery replay re-delivered. Frames below the restored offset
    // were recorded by a PREVIOUS incarnation, so they must be
    // re-appended to this incarnation's truncated-on-open trace;
    // live-resume duplicates are already in it.
    const uint64_t idx = st.admitted - st.skip_remaining;
    if (idx < st.restored_admitted) {
      if (trace_.is_open() && idx >= st.reappended_high) {
        NSTREAM_RETURN_NOT_OK(trace_.AppendTagged(mux.producer, mux.bytes));
        st.reappended_high = idx + 1;
      }
      ++replayed_skips_;
    } else {
      ++resume_skips_;
    }
    --st.skip_remaining;
    return Status::OK();
  }
  if (st.eos_seen) {
    QuarantineProducer(mux.producer, "frame after EOS");
    return Status::OK();
  }
  switch (f.type) {
    case FrameType::kTupleBatch: {
      Status s = EmitBatch(f.payload);
      if (!s.ok()) {
        QuarantineProducer(mux.producer, s.message());
        return Status::OK();
      }
      break;
    }
    case FrameType::kPunctuation: {
      Punctuation p;
      Status s = DecodePunctuation(f.payload, &p);
      if (!s.ok()) {
        QuarantineProducer(mux.producer, s.message());
        return Status::OK();
      }
      admission_guards_.ExpireCovered(p);
      EmitPunct(0, std::move(p));
      break;
    }
    case FrameType::kEos:
      if (!f.payload.empty()) {
        QuarantineProducer(mux.producer, "EOS frame with payload");
        return Status::OK();
      }
      st.eos_seen = true;
      ++done_producers_;
      break;
    default:
      // kFeedback / kHelloAck / kShed flow engine → producer only.
      QuarantineProducer(mux.producer,
                         "engine-direction frame from producer");
      return Status::OK();
  }
  ++st.admitted;
  ++admitted_frames_;
  if (trace_.is_open()) {
    NSTREAM_RETURN_NOT_OK(trace_.AppendTagged(mux.producer, mux.bytes));
  }
  return Status::OK();
}

Status IngestSource::ProcessMuxHello(uint64_t producer, const FrameView& f) {
  ProducerState& st = producers_[producer];
  uint32_t version = 0;
  uint32_t arity = 0;
  uint64_t wire_producer = 0;
  uint64_t resume = 0;
  Status s = DecodeHello(f.payload, &version, &arity, &wire_producer,
                         &resume);
  if (!s.ok()) {
    QuarantineProducer(producer, s.message());
    return Status::OK();
  }
  if (version != kWireVersion) {
    QuarantineProducer(producer, "wire version " + std::to_string(version) +
                                     " != supported " +
                                     std::to_string(kWireVersion));
    return Status::OK();
  }
  const uint32_t want =
      static_cast<uint32_t>(output_schema(0)->num_fields());
  if (arity != want) {
    QuarantineProducer(producer,
                       "producer arity " + std::to_string(arity) +
                           " != schema arity " + std::to_string(want));
    return Status::OK();
  }
  if (wire_producer != producer) {
    QuarantineProducer(producer, "hello producer id " +
                                     std::to_string(wire_producer) +
                                     " does not match connection");
    return Status::OK();
  }
  if (resume > st.admitted) {
    // The producer wants to resume PAST what the engine admitted: the
    // gap would silently drop frames, violating at-least-once.
    QuarantineProducer(producer,
                       "resume offset " + std::to_string(resume) +
                           " beyond acknowledged " +
                           std::to_string(st.admitted));
    return Status::OK();
  }
  st.hello_seen = true;
  st.skip_remaining = st.admitted - resume;
  ++admitted_frames_;
  if (trace_.is_open()) {
    // Record the hello with its resume offset CANONICALIZED to the
    // index of the next frame this trace will actually append after
    // it: re-appended replay duplicates start at the resume point, but
    // live-resume duplicates are skipped without re-recording, so a
    // verbatim hello would make a later replay miscount its skips.
    uint64_t canonical = st.admitted;
    const uint64_t lo = std::max(resume, st.reappended_high);
    const uint64_t hi = std::min(st.admitted, st.restored_admitted);
    if (lo < hi) canonical = lo;
    std::string rec;
    AppendHelloFrame(&rec, arity, producer, canonical);
    NSTREAM_RETURN_NOT_OK(trace_.AppendTagged(producer, rec));
  }
  // Ack with the engine's acknowledged offset so a producer that lost
  // its own send cursor (fresh process, stale counter) rewinds or
  // fast-forwards to exactly where the engine stands.
  std::string ack;
  AppendHelloAckFrame(&ack, st.admitted);
  conduit_->PushFeedbackFrameTo(producer, std::move(ack));
  return Status::OK();
}

void IngestSource::QuarantineProducer(uint64_t producer,
                                      const std::string& reason) {
  ProducerState& st = producers_[producer];
  if (st.quarantined) return;
  st.quarantined = true;
  ++quarantined_producers_;
  if (!st.eos_seen) ++done_producers_;  // counts as done: cannot hang
  std::string err;
  AppendErrorFrame(&err, name() + ": producer " + std::to_string(producer) +
                             " quarantined: " + reason);
  conduit_->PushFeedbackFrameTo(producer, std::move(err));
}

bool IngestSource::AllProducersDone() const {
  return opts_.expected_eos_producers > 0 &&
         done_producers_ >= opts_.expected_eos_producers;
}

uint64_t IngestSource::acknowledged_offset(uint64_t producer) const {
  auto it = producers_.find(producer);
  return it == producers_.end() ? 0 : it->second.admitted;
}

Status IngestSource::EmitBatch(std::string_view payload) {
  Page page;
  const uint32_t arity =
      static_cast<uint32_t>(output_schema(0)->num_fields());
  NSTREAM_RETURN_NOT_OK(DecodeTupleBatchInto(
      payload, arity, &page, opts_.allow_columnar, &next_id_));
  ApplyAdmissionGuards(&page);
  if (!page.empty()) {
    page.set_flush_reason(FlushReason::kPageFull);
    EmitPage(0, std::move(page));
  }
  return Status::OK();
}

void IngestSource::ApplyAdmissionGuards(Page* page) {
  if (admission_guards_.empty() || page->empty()) return;
  if (page->is_columnar()) {
    ColumnarBlock* b = page->columnar();
    Tuple scratch = b->MakeRowScratch();
    b->KeepIf([&](uint32_t r) {
      b->FillRow(r, &scratch);
      if (admission_guards_.Blocks(scratch)) {
        ++stats_.input_guard_drops;
        return false;
      }
      return true;
    });
    return;
  }
  std::vector<StreamElement>& elems = page->mutable_elements();
  size_t kept = 0;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (admission_guards_.Blocks(elems[i].tuple())) {
      ++stats_.input_guard_drops;
      continue;
    }
    if (kept != i) elems[kept] = std::move(elems[i]);
    ++kept;
  }
  elems.resize(kept);
}

Status IngestSource::ProcessFeedback(int out_port,
                                     const FeedbackPunctuation& feedback) {
  (void)out_port;
  // Exploit: assumed subsets are dropped at admission, before they cost
  // the plan a single queue hop.
  if (feedback.is_assumed()) {
    admission_guards_.Add(feedback.pattern());
  }
  // Relay: every intent crosses the wire to the producer — assumed
  // prunes its send set, desired/demanded reorder it.
  std::string frame;
  AppendFeedbackFrame(&frame, feedback);
  conduit_->PushFeedbackFrame(std::move(frame));
  ++stats_.feedback_propagated;
  return Status::OK();
}

Status IngestSource::SnapshotState(SnapshotWriter* w) {
  NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));
  // The barrier runs between produce slices and frames are processed
  // atomically within a slice, so admitted counts are exact: every
  // admitted frame's effects are fully emitted (and thus captured
  // downstream or in queue sections), none half so.
  w->WriteBool(opts_.multi_producer);
  if (!opts_.multi_producer) {
    w->WriteU64(admitted_frames_);
    w->WriteI64(next_id_);
    w->WriteBool(hello_seen_);
    w->WriteBool(eos_frame_seen_);
    w->WriteGuardSet(admission_guards_);
    return Status::OK();
  }
  w->WriteU64(admitted_frames_);
  w->WriteI64(next_id_);
  w->WriteGuardSet(admission_guards_);
  w->WriteU64(producers_.size());
  for (const auto& [id, st] : producers_) {
    w->WriteU64(id);
    w->WriteU64(st.admitted);  // the per-producer acknowledged offset
    w->WriteBool(st.eos_seen);
    w->WriteBool(st.quarantined);
  }
  return Status::OK();
}

Status IngestSource::RestoreState(SnapshotReader* r) {
  NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));
  bool multi = false;
  NSTREAM_RETURN_NOT_OK(r->ReadBool(&multi));
  if (multi != opts_.multi_producer) {
    return Status::InvalidArgument(
        name() + ": checkpoint producer mode does not match the "
                 "recovered plan's (single vs multi)");
  }
  if (!opts_.multi_producer) {
    NSTREAM_RETURN_NOT_OK(r->ReadU64(&admitted_frames_));
    NSTREAM_RETURN_NOT_OK(r->ReadI64(&next_id_));
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&hello_seen_));
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&eos_frame_seen_));
    NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&admission_guards_));
    // Replay contract: the producer (or a recorded trace) re-sends the
    // stream from the beginning; the first admitted_frames_ frames
    // were already emitted pre-checkpoint and are skipped.
    skip_remaining_ = admitted_frames_;
    replayed_skips_ = 0;
    return Status::OK();
  }
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&admitted_frames_));
  NSTREAM_RETURN_NOT_OK(r->ReadI64(&next_id_));
  NSTREAM_RETURN_NOT_OK(r->ReadGuardSet(&admission_guards_));
  uint64_t count = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU64(&count));
  producers_.clear();
  done_producers_ = 0;
  quarantined_producers_ = 0;
  quarantined_frames_ = 0;
  replayed_skips_ = 0;
  resume_skips_ = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU64(&id));
    ProducerState st;
    NSTREAM_RETURN_NOT_OK(r->ReadU64(&st.admitted));
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&st.eos_seen));
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&st.quarantined));
    // Per-producer replay contract: the replayed trace (or a
    // reconnecting producer's hello) re-announces each session; skips
    // start when that hello arrives. Everything below the restored
    // offset must be re-appended to the truncated trace.
    st.restored_admitted = st.admitted;
    st.reappended_high = 0;
    st.skip_remaining = 0;
    st.hello_seen = false;
    if (st.eos_seen || st.quarantined) ++done_producers_;
    if (st.quarantined) ++quarantined_producers_;
    producers_.emplace(id, st);
  }
  return Status::OK();
}

}  // namespace nstream
