// TcpAcceptor: the fault-tolerant serving edge. One poll(2)-driven
// thread accepts N producer connections on a loopback listening
// socket and fans them into ONE FrameConduit as whole tagged frames
// (MuxFrame) — frames interleave across producers, bytes never do,
// because each connection assembles its own frames before forwarding.
//
// Robustness properties, each exercised by the seeded fault-injection
// harness (tests/testing/net_fault.h):
//
//   Quarantine — a connection that violates framing (bad magic,
//   oversized size field, unknown type, pre-hello data) is cut off
//   ALONE: it gets a kError frame, its socket closes once that frame
//   flushes, and the acceptor forwards the same kError into the
//   conduit so the IngestSource counts the session done. Healthy
//   producers on the same acceptor keep flowing — errors isolate per
//   connection, never per query.
//
//   Session resume — a producer reconnects with its id and the frame
//   offset it intends to resume from; the engine replies kHelloAck
//   with its acknowledged offset, duplicates are skipped engine-side,
//   and a resume PAST the acknowledged offset (a gap) is quarantined.
//   The acceptor's part is bookkeeping: re-binding the producer id to
//   the new socket (newest wins) and counting reconnects.
//
//   Liveness — the acceptor sends kHeartbeat frames on idle
//   connections and closes connections that have been silent past the
//   idle timeout (the producer may reconnect and resume).
//
//   Backpressure + shedding — a frame the conduit's mux budget
//   rejects parks on its connection and pauses POLLIN there (the
//   kernel socket buffer then pushes back on that producer alone);
//   sustained pressure broadcasts kShed advice, escalating from
//   slow-down to drop-subset, with a cooldown so producers are not
//   spammed.
//
// All socket I/O goes through the NetIo seam so tests inject partial
// reads/writes, EINTR, ECONNRESET, and delays deterministically.

#ifndef NSTREAM_INGEST_TCP_ACCEPTOR_H_
#define NSTREAM_INGEST_TCP_ACCEPTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "ingest/frame_conduit.h"

namespace nstream {

/// Syscall seam: every byte the acceptor moves crosses Read/Send, so
/// the fault harness can subclass and misbehave deterministically.
/// The default implementation is the real thing (send with
/// MSG_NOSIGNAL | MSG_DONTWAIT, write(2) fallback for non-sockets).
class NetIo {
 public:
  virtual ~NetIo() = default;
  virtual ssize_t Read(int fd, char* buf, size_t n);
  virtual ssize_t Send(int fd, const char* p, size_t n);
};

struct TcpAcceptorOptions {
  /// Connections past this are accepted and immediately closed.
  int max_connections = 16;
  /// poll(2) timeout — bounds feedback latency and Stop() response.
  int poll_interval_ms = 2;
  /// Send a kHeartbeat on each connection this often (0 = never).
  int64_t heartbeat_interval_ms = 0;
  /// Close a connection silent for longer than this (0 = never). The
  /// producer may reconnect and resume.
  int64_t idle_timeout_ms = 0;
  /// Minimum gap between kShed broadcasts under sustained pressure.
  int64_t shed_cooldown_ms = 50;
  /// Consecutive shed rounds before escalating slow-down → drop-subset.
  int shed_escalate_after = 3;
  /// Injection points; null = real syscalls / wall clock.
  NetIo* io = nullptr;
  Clock* clock = nullptr;
};

struct AcceptorConnStats {
  uint64_t producer = 0;  // 0 until the hello names the session
  uint64_t frames_in = 0;
  uint64_t bytes_in = 0;
  uint64_t feedback_out = 0;
  uint64_t heartbeats_out = 0;
  bool open = false;
  bool quarantined = false;
};

struct AcceptorStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;  // over max_connections
  uint64_t closed = 0;
  uint64_t quarantined = 0;
  uint64_t reconnects = 0;
  uint64_t idle_closes = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t sheds_sent = 0;
  uint64_t frames_forwarded = 0;
  uint64_t bytes_received = 0;
  uint64_t backpressure_pauses = 0;
  /// Live connections first, then closed ones (bounded history).
  std::vector<AcceptorConnStats> connections;

  std::string ToString() const;
};

class TcpAcceptor {
 public:
  /// `conduit` and everything in `opts` must outlive the acceptor.
  explicit TcpAcceptor(FrameConduit* conduit, TcpAcceptorOptions opts = {});
  ~TcpAcceptor();

  TcpAcceptor(const TcpAcceptor&) = delete;
  TcpAcceptor& operator=(const TcpAcceptor&) = delete;

  /// Bind 127.0.0.1 on an ephemeral port, listen, start the serving
  /// thread. port() is valid afterwards.
  Status Listen();
  int port() const { return port_; }

  /// Close every connection and the listener, join the thread, and
  /// close the conduit's write side (the source drains what was
  /// forwarded, then ends). Idempotent; the destructor calls it.
  void Stop();

  /// Thread-safe snapshot of counters + per-connection breakdown.
  AcceptorStats StatsReport() const;

 private:
  struct Conn {
    int fd = -1;
    uint64_t producer = 0;
    bool hello_done = false;
    std::string inbuf;        // bytes read, frames not yet assembled
    std::string outbuf;       // engine → producer bytes not yet sent
    size_t out_off = 0;
    bool close_after_flush = false;  // quarantine: error frame first
    bool quarantined = false;
    // A complete frame the conduit's mux budget rejected: POLLIN is
    // paused on this connection until the conduit accepts it.
    std::string pending_frame;
    bool has_pending = false;
    bool pending_is_hello = false;
    TimeMs last_recv_ms = 0;
    TimeMs last_heartbeat_ms = 0;
    uint64_t frames_in = 0;
    uint64_t bytes_in = 0;
    uint64_t feedback_out = 0;
    uint64_t heartbeats_out = 0;
  };

  void Run();
  void AcceptNew();
  /// Read available bytes, assemble + forward complete frames. False
  /// if the connection should close (peer gone or quarantined).
  bool ServiceRead(Conn* c);
  bool AssembleAndForward(Conn* c);
  /// Hello bookkeeping: producer id mapping, reconnect counting.
  bool HandleHello(Conn* c, std::string_view payload);
  /// Forward one whole frame; parks it in pending on budget rejection.
  bool ForwardFrame(Conn* c, std::string frame, bool is_hello);
  /// kError to the peer + notice into the conduit + close after flush.
  void Quarantine(Conn* c, const std::string& reason);
  void DeliverFeedback();
  void MaybeHeartbeatAndIdle(TimeMs now);
  void MaybeShed(TimeMs now);
  /// Flush outbuf; false if the peer is gone.
  bool FlushOut(Conn* c);
  void CloseConn(size_t idx);

  FrameConduit* conduit_;
  TcpAcceptorOptions opts_;
  NetIo* io_;  // opts_.io or &default_io_
  Clock* clock_;
  std::unique_ptr<NetIo> default_io_;
  std::unique_ptr<Clock> default_clock_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;

  mutable std::mutex mu_;  // guards conns_ + stats_ (loop vs StatsReport)
  std::vector<std::unique_ptr<Conn>> conns_;
  AcceptorStats stats_;
  std::vector<AcceptorConnStats> closed_history_;  // bounded
  std::set<uint64_t> seen_producers_;  // a repeat hello = a reconnect
  // Hello-acks pop out of the conduit in per-producer hello order, so
  // matching the ack ordinal against the count of forwarded hellos
  // tells stale acks (addressed to a session that died before its ack
  // came back) from the one the CURRENT session is waiting for.
  std::map<uint64_t, uint64_t> hellos_forwarded_;
  std::map<uint64_t, uint64_t> acks_routed_;
  TimeMs last_shed_ms_ = -1;
  int shed_rounds_ = 0;
};

/// Test/bench helper: blocking connect to 127.0.0.1:`port`. The fd is
/// the caller's to close.
Result<int> TcpConnectLoopback(int port);

}  // namespace nstream

#endif  // NSTREAM_INGEST_TCP_ACCEPTOR_H_
