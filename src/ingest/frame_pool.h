// Fixed-size reusable admission buffers (the event-pool idiom from
// SNIPPETS.md's ingest exemplar): every byte entering the engine lands
// in one of `num_buffers` pre-allocated buffers of `buffer_bytes`
// each. The pool IS the admission policy — when it runs dry the
// listener stops reading its socket (kernel buffers fill, TCP pushes
// back on the producer) and an in-memory producer sees a short accept.
// No per-read allocation, bounded ingest memory, natural backpressure.

#ifndef NSTREAM_INGEST_FRAME_POOL_H_
#define NSTREAM_INGEST_FRAME_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace nstream {

class FrameBufferPool {
 public:
  FrameBufferPool(size_t buffer_bytes, size_t num_buffers)
      : buffer_bytes_(buffer_bytes) {
    storage_.reserve(num_buffers);
    free_.reserve(num_buffers);
    for (size_t i = 0; i < num_buffers; ++i) {
      storage_.push_back(std::make_unique<char[]>(buffer_bytes));
      free_.push_back(storage_.back().get());
    }
  }

  FrameBufferPool(const FrameBufferPool&) = delete;
  FrameBufferPool& operator=(const FrameBufferPool&) = delete;

  /// A free buffer of buffer_bytes(), or null when the pool is dry
  /// (admission backpressure — the caller backs off, never allocates).
  char* TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      ++dry_acquires_;
      return nullptr;
    }
    ++acquires_;
    char* p = free_.back();
    free_.pop_back();
    return p;
  }

  void Release(char* p) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(p);
  }

  size_t buffer_bytes() const { return buffer_bytes_; }
  size_t capacity() const { return storage_.size(); }
  size_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  uint64_t acquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acquires_;
  }
  /// Times a caller wanted a buffer and the pool had none — the
  /// backpressure counter.
  uint64_t dry_acquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dry_acquires_;
  }

 private:
  const size_t buffer_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> storage_;
  std::vector<char*> free_;
  uint64_t acquires_ = 0;
  uint64_t dry_acquires_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_INGEST_FRAME_POOL_H_
