// Frame trace record/replay. A trace file is nothing but the admitted
// frames, byte-for-byte, concatenated — frames are self-delimiting
// (magic/size/type headers), so the file needs no envelope of its own.
// Recording every admitted frame gives (a) reproducible ingest
// benchmarks, and (b) the replay substrate recovery needs: a crashed
// plan restores its acknowledged frame offset from the checkpoint and
// re-ingests the SAME byte stream, skipping what it already admitted.

#ifndef NSTREAM_INGEST_TRACE_H_
#define NSTREAM_INGEST_TRACE_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "ingest/frame_conduit.h"

namespace nstream {

/// Appends admitted frames to a file as they are parsed. Opened by
/// IngestSource when its options name a trace path.
class FrameTraceWriter {
 public:
  FrameTraceWriter() = default;
  ~FrameTraceWriter() { (void)Close(); }

  FrameTraceWriter(const FrameTraceWriter&) = delete;
  FrameTraceWriter& operator=(const FrameTraceWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(std::string_view frame_bytes);
  /// Multi-producer record: `u64 producer | u32 size | frame bytes`.
  /// Records are written in admission order, so a replay preserves
  /// both the global interleaving and per-producer frame order.
  Status AppendTagged(uint64_t producer, std::string_view frame_bytes);
  Status Close();
  bool is_open() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
  std::string path_;
};

/// Whole-file read (trace replay, test fixtures).
Result<std::string> ReadTraceFile(const std::string& path);

/// Feed a recorded trace through `conduit` byte-identically and close
/// the write side. The conduit's pool must hold the whole trace (size
/// it accordingly, or replay from a thread while the plan drains);
/// a dry pool is reported, never spun on.
Status ReplayTraceIntoConduit(const std::string& path,
                              FrameConduit* conduit);

/// Replay a tagged multi-producer trace: each record re-enters the
/// conduit as a MuxFrame in recorded (admission) order, then the write
/// side closes. Trusted local input — records bypass the mux budget.
Status ReplayMuxTraceIntoConduit(const std::string& path,
                                 FrameConduit* conduit);

}  // namespace nstream

#endif  // NSTREAM_INGEST_TRACE_H_
