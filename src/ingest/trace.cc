#include "ingest/trace.h"

#include <cstring>

namespace nstream {

Status FrameTraceWriter::Open(const std::string& path) {
  (void)Close();
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    return Status::Internal("trace: cannot open " + path + " for writing");
  }
  path_ = path;
  return Status::OK();
}

Status FrameTraceWriter::Append(std::string_view frame_bytes) {
  if (f_ == nullptr) {
    return Status::FailedPrecondition("trace: writer not open");
  }
  if (!frame_bytes.empty() &&
      std::fwrite(frame_bytes.data(), 1, frame_bytes.size(), f_) !=
          frame_bytes.size()) {
    return Status::Internal("trace: short write to " + path_);
  }
  return Status::OK();
}

Status FrameTraceWriter::AppendTagged(uint64_t producer,
                                      std::string_view frame_bytes) {
  if (f_ == nullptr) {
    return Status::FailedPrecondition("trace: writer not open");
  }
  char header[12];
  std::memcpy(header, &producer, 8);
  const uint32_t size = static_cast<uint32_t>(frame_bytes.size());
  std::memcpy(header + 8, &size, 4);
  if (std::fwrite(header, 1, sizeof(header), f_) != sizeof(header) ||
      (size != 0 &&
       std::fwrite(frame_bytes.data(), 1, frame_bytes.size(), f_) !=
           frame_bytes.size())) {
    return Status::Internal("trace: short write to " + path_);
  }
  return Status::OK();
}

Status FrameTraceWriter::Close() {
  if (f_ == nullptr) return Status::OK();
  int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0) {
    return Status::Internal("trace: close failed for " + path_);
  }
  return Status::OK();
}

Result<std::string> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("trace: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

Status ReplayTraceIntoConduit(const std::string& path,
                              FrameConduit* conduit) {
  NSTREAM_ASSIGN_OR_RETURN(std::string bytes, ReadTraceFile(path));
  if (!conduit->WriteAll(bytes)) {
    return Status::ResourceExhausted(
        "trace: conduit pool too small to hold " + path +
        " (grow num_buffers or replay concurrently)");
  }
  conduit->CloseWrite();
  return Status::OK();
}

Status ReplayMuxTraceIntoConduit(const std::string& path,
                                 FrameConduit* conduit) {
  NSTREAM_ASSIGN_OR_RETURN(std::string bytes, ReadTraceFile(path));
  size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < 12) {
      return Status::InvalidArgument("trace: truncated mux record in " +
                                     path);
    }
    uint64_t producer = 0;
    uint32_t size = 0;
    std::memcpy(&producer, bytes.data() + off, 8);
    std::memcpy(&size, bytes.data() + off + 8, 4);
    off += 12;
    if (bytes.size() - off < size) {
      return Status::InvalidArgument("trace: truncated mux record in " +
                                     path);
    }
    conduit->ForceMuxFrame(producer, bytes.substr(off, size));
    off += size;
  }
  conduit->CloseWrite();
  return Status::OK();
}

}  // namespace nstream
