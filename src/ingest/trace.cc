#include "ingest/trace.h"

namespace nstream {

Status FrameTraceWriter::Open(const std::string& path) {
  (void)Close();
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    return Status::Internal("trace: cannot open " + path + " for writing");
  }
  path_ = path;
  return Status::OK();
}

Status FrameTraceWriter::Append(std::string_view frame_bytes) {
  if (f_ == nullptr) {
    return Status::FailedPrecondition("trace: writer not open");
  }
  if (!frame_bytes.empty() &&
      std::fwrite(frame_bytes.data(), 1, frame_bytes.size(), f_) !=
          frame_bytes.size()) {
    return Status::Internal("trace: short write to " + path_);
  }
  return Status::OK();
}

Status FrameTraceWriter::Close() {
  if (f_ == nullptr) return Status::OK();
  int rc = std::fclose(f_);
  f_ = nullptr;
  if (rc != 0) {
    return Status::Internal("trace: close failed for " + path_);
  }
  return Status::OK();
}

Result<std::string> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("trace: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

Status ReplayTraceIntoConduit(const std::string& path,
                              FrameConduit* conduit) {
  NSTREAM_ASSIGN_OR_RETURN(std::string bytes, ReadTraceFile(path));
  if (!conduit->WriteAll(bytes)) {
    return Status::ResourceExhausted(
        "trace: conduit pool too small to hold " + path +
        " (grow num_buffers or replay concurrently)");
  }
  conduit->CloseWrite();
  return Status::OK();
}

}  // namespace nstream
