#include "recovery/snapshot.h"

#include <cstdio>
#include <cstring>

namespace nstream {

namespace {

// Element kind tags inside serialized pages. Kept distinct from
// ElementKind so the wire format cannot drift silently if the enum is
// ever reordered.
constexpr uint8_t kWireTuple = 0;
constexpr uint8_t kWirePunct = 1;
constexpr uint8_t kWireEos = 2;

}  // namespace

// ---- Page contents ----

void WritePageElements(SnapshotWriter* w, Page& page) {
  page.EnsureRowLayout();
  w->WriteU32(static_cast<uint32_t>(page.elements().size()));
  for (const StreamElement& e : page.elements()) {
    switch (e.kind()) {
      case ElementKind::kTuple:
        w->WriteU8(kWireTuple);
        w->WriteTuple(e.tuple());
        break;
      case ElementKind::kPunctuation:
        w->WriteU8(kWirePunct);
        w->WritePunctuation(e.punct());
        break;
      case ElementKind::kEndOfStream:
        w->WriteU8(kWireEos);
        break;
    }
  }
}

Status ReadPageInto(SnapshotReader* r, Page* page) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&n));
  page->Reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU8(&kind));
    switch (kind) {
      case kWireTuple: {
        Tuple t;
        NSTREAM_RETURN_NOT_OK(r->ReadTuple(&t));
        page->AddTuple(std::move(t));
        break;
      }
      case kWirePunct: {
        Punctuation p;
        NSTREAM_RETURN_NOT_OK(r->ReadPunctuation(&p));
        page->Add(StreamElement::OfPunct(std::move(p)));
        break;
      }
      case kWireEos:
        page->Add(StreamElement::Eos());
        break;
      default:
        return Status::InvalidArgument(
            "snapshot: unknown page element tag " + std::to_string(kind));
    }
  }
  return Status::OK();
}

// ---- File envelope ----

namespace {

std::string Envelope(std::string_view payload) {
  SnapshotWriter w;
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU64(payload.size());
  std::string bytes = w.Release();
  bytes.append(payload.data(), payload.size());
  uint32_t crc = SnapshotCrc32(payload);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

Status WriteWholeFile(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("snapshot: cannot open " + path +
                            " for writing");
  }
  size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    std::remove(path.c_str());
    return Status::Internal("snapshot: short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         std::string_view payload) {
  const std::string tmp = path + ".tmp";
  NSTREAM_RETURN_NOT_OK(WriteWholeFile(tmp, Envelope(payload)));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: rename " + tmp + " -> " + path +
                            " failed");
  }
  return Status::OK();
}

Status WriteSnapshotFileCrash(const std::string& path,
                              std::string_view payload,
                              bool truncate_mid_write) {
  const std::string tmp = path + ".tmp";
  std::string bytes = Envelope(payload);
  if (truncate_mid_write) {
    bytes.resize(bytes.size() / 2);  // torn file: header + partial payload
  }
  // Deliberately no rename: the "process" died before publishing, so
  // `path` still names the previous complete snapshot (if any).
  return WriteWholeFile(tmp, bytes);
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("snapshot: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);

  SnapshotReader r(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t len = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic in " + path);
  }
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kSnapshotVersion) {
    return Status::Unsupported("snapshot: version " +
                               std::to_string(version) +
                               " not supported (want " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  NSTREAM_RETURN_NOT_OK(r.ReadU64(&len));
  if (r.remaining() < len + sizeof(uint32_t)) {
    return Status::InvalidArgument("snapshot: " + path +
                                   " truncated (torn write?)");
  }
  const size_t header = bytes.size() - r.remaining();
  std::string_view payload(bytes.data() + header, len);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + header + len, sizeof(stored_crc));
  if (SnapshotCrc32(payload) != stored_crc) {
    return Status::InvalidArgument("snapshot: CRC mismatch in " + path +
                                   " (corrupted)");
  }
  return std::string(payload);
}

}  // namespace nstream
