#include "recovery/snapshot.h"

#include <cstdio>
#include <cstring>

namespace nstream {

namespace {

// Element kind tags inside serialized pages. Kept distinct from
// ElementKind so the wire format cannot drift silently if the enum is
// ever reordered.
constexpr uint8_t kWireTuple = 0;
constexpr uint8_t kWirePunct = 1;
constexpr uint8_t kWireEos = 2;

}  // namespace

uint32_t SnapshotCrc32(std::string_view data) {
  // Table-driven CRC32 (IEEE 802.3, reflected 0xEDB88320). Built once;
  // snapshots are cold-path I/O, so a 1 KiB table beats hand-tuning.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char b : data) {
    crc = kTable[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- SnapshotWriter: engine vocabulary ----

void SnapshotWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      WriteBool(v.bool_value());
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      WriteI64(v.int64_value());
      break;
    case ValueType::kDouble:
      WriteDouble(v.double_value());
      break;
    case ValueType::kString:
      WriteString(v.string_view());
      break;
  }
}

void SnapshotWriter::WriteTuple(const Tuple& t) {
  WriteU32(static_cast<uint32_t>(t.size()));
  for (int i = 0; i < t.size(); ++i) {
    WriteValue(t.value(i));
  }
  WriteI64(t.id());
  WriteI64(t.arrival_ms());
}

void SnapshotWriter::WriteAttrPattern(const AttrPattern& p) {
  WriteU8(static_cast<uint8_t>(p.op()));
  switch (p.op()) {
    case PatternOp::kAny:
    case PatternOp::kIsNull:
    case PatternOp::kNotNull:
      break;  // no operand
    case PatternOp::kRange:
      WriteValue(p.operand());
      WriteValue(p.hi());
      break;
    default:
      WriteValue(p.operand());
      break;
  }
}

void SnapshotWriter::WritePattern(const PunctPattern& p) {
  WriteU32(static_cast<uint32_t>(p.attrs().size()));
  for (const AttrPattern& a : p.attrs()) {
    WriteAttrPattern(a);
  }
}

void SnapshotWriter::WritePunctuation(const Punctuation& p) {
  WritePattern(p.pattern());
  WriteI64(p.barrier_id());
}

void SnapshotWriter::WriteGuardSet(const GuardSet& g) {
  WriteU32(static_cast<uint32_t>(g.patterns().size()));
  for (const PunctPattern& p : g.patterns()) {
    WritePattern(p);
  }
}

// ---- SnapshotReader ----

Status SnapshotReader::ReadRaw(void* out, size_t n) {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("snapshot truncated: need " +
                                   std::to_string(n) + " bytes, have " +
                                   std::to_string(data_.size() - pos_));
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status SnapshotReader::ReadU8(uint8_t* out) { return ReadRaw(out, 1); }

Status SnapshotReader::ReadBool(bool* out) {
  uint8_t b = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&b));
  *out = b != 0;
  return Status::OK();
}

Status SnapshotReader::ReadU32(uint32_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status SnapshotReader::ReadU64(uint64_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status SnapshotReader::ReadI64(int64_t* out) {
  return ReadRaw(out, sizeof(*out));
}

Status SnapshotReader::ReadDouble(double* out) {
  return ReadRaw(out, sizeof(*out));
}

Status SnapshotReader::ReadString(std::string* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("snapshot truncated inside string");
  }
  out->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status SnapshotReader::ReadSection(std::string_view* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument("snapshot truncated inside section");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status SnapshotReader::ReadValue(Value* out) {
  uint8_t raw = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&raw));
  switch (static_cast<ValueType>(raw)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kBool: {
      bool b = false;
      NSTREAM_RETURN_NOT_OK(ReadBool(&b));
      *out = Value::Bool(b);
      return Status::OK();
    }
    case ValueType::kInt64: {
      int64_t i = 0;
      NSTREAM_RETURN_NOT_OK(ReadI64(&i));
      *out = Value::Int64(i);
      return Status::OK();
    }
    case ValueType::kTimestamp: {
      int64_t i = 0;
      NSTREAM_RETURN_NOT_OK(ReadI64(&i));
      *out = Value::Timestamp(i);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d = 0;
      NSTREAM_RETURN_NOT_OK(ReadDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      NSTREAM_RETURN_NOT_OK(ReadString(&s));
      *out = Value::String(s);  // self-contained: inline or heap-owned
      return Status::OK();
    }
  }
  return Status::InvalidArgument("snapshot: unknown value type tag " +
                                 std::to_string(raw));
}

Status SnapshotReader::ReadTuple(Tuple* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  Tuple t(nullptr, n);  // owned mode: snapshots outlive any page arena
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    NSTREAM_RETURN_NOT_OK(ReadValue(&v));
    t.Append(std::move(v));
  }
  int64_t id = 0;
  int64_t arrival = 0;
  NSTREAM_RETURN_NOT_OK(ReadI64(&id));
  NSTREAM_RETURN_NOT_OK(ReadI64(&arrival));
  t.set_id(id);
  t.set_arrival_ms(arrival);
  *out = std::move(t);
  return Status::OK();
}

Status SnapshotReader::ReadAttrPattern(AttrPattern* out) {
  uint8_t raw = 0;
  NSTREAM_RETURN_NOT_OK(ReadU8(&raw));
  PatternOp op = static_cast<PatternOp>(raw);
  switch (op) {
    case PatternOp::kAny:
      *out = AttrPattern::Any();
      return Status::OK();
    case PatternOp::kIsNull:
      *out = AttrPattern::IsNull();
      return Status::OK();
    case PatternOp::kNotNull:
      *out = AttrPattern::NotNull();
      return Status::OK();
    case PatternOp::kRange: {
      Value lo, hi;
      NSTREAM_RETURN_NOT_OK(ReadValue(&lo));
      NSTREAM_RETURN_NOT_OK(ReadValue(&hi));
      *out = AttrPattern::Range(std::move(lo), std::move(hi));
      return Status::OK();
    }
    case PatternOp::kEq:
    case PatternOp::kNe:
    case PatternOp::kLt:
    case PatternOp::kLe:
    case PatternOp::kGt:
    case PatternOp::kGe: {
      Value v;
      NSTREAM_RETURN_NOT_OK(ReadValue(&v));
      switch (op) {
        case PatternOp::kEq: *out = AttrPattern::Eq(std::move(v)); break;
        case PatternOp::kNe: *out = AttrPattern::Ne(std::move(v)); break;
        case PatternOp::kLt: *out = AttrPattern::Lt(std::move(v)); break;
        case PatternOp::kLe: *out = AttrPattern::Le(std::move(v)); break;
        case PatternOp::kGt: *out = AttrPattern::Gt(std::move(v)); break;
        default: *out = AttrPattern::Ge(std::move(v)); break;
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("snapshot: unknown pattern op " +
                                 std::to_string(raw));
}

Status SnapshotReader::ReadPattern(PunctPattern* out) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  std::vector<AttrPattern> attrs(n);
  for (uint32_t i = 0; i < n; ++i) {
    NSTREAM_RETURN_NOT_OK(ReadAttrPattern(&attrs[i]));
  }
  *out = PunctPattern(std::move(attrs));
  return Status::OK();
}

Status SnapshotReader::ReadPunctuation(Punctuation* out) {
  PunctPattern pat;
  NSTREAM_RETURN_NOT_OK(ReadPattern(&pat));
  int64_t barrier = 0;
  NSTREAM_RETURN_NOT_OK(ReadI64(&barrier));
  if (barrier != 0) {
    *out = Punctuation::Barrier(barrier);
  } else {
    *out = Punctuation(std::move(pat));
  }
  return Status::OK();
}

Status SnapshotReader::ReadGuardSet(GuardSet* g) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(ReadU32(&n));
  g->Clear();
  for (uint32_t i = 0; i < n; ++i) {
    PunctPattern p;
    NSTREAM_RETURN_NOT_OK(ReadPattern(&p));
    g->Add(p);
  }
  return Status::OK();
}

// ---- Page contents ----

void WritePageElements(SnapshotWriter* w, Page& page) {
  page.EnsureRowLayout();
  w->WriteU32(static_cast<uint32_t>(page.elements().size()));
  for (const StreamElement& e : page.elements()) {
    switch (e.kind()) {
      case ElementKind::kTuple:
        w->WriteU8(kWireTuple);
        w->WriteTuple(e.tuple());
        break;
      case ElementKind::kPunctuation:
        w->WriteU8(kWirePunct);
        w->WritePunctuation(e.punct());
        break;
      case ElementKind::kEndOfStream:
        w->WriteU8(kWireEos);
        break;
    }
  }
}

Status ReadPageInto(SnapshotReader* r, Page* page) {
  uint32_t n = 0;
  NSTREAM_RETURN_NOT_OK(r->ReadU32(&n));
  page->Reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t kind = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU8(&kind));
    switch (kind) {
      case kWireTuple: {
        Tuple t;
        NSTREAM_RETURN_NOT_OK(r->ReadTuple(&t));
        page->AddTuple(std::move(t));
        break;
      }
      case kWirePunct: {
        Punctuation p;
        NSTREAM_RETURN_NOT_OK(r->ReadPunctuation(&p));
        page->Add(StreamElement::OfPunct(std::move(p)));
        break;
      }
      case kWireEos:
        page->Add(StreamElement::Eos());
        break;
      default:
        return Status::InvalidArgument(
            "snapshot: unknown page element tag " + std::to_string(kind));
    }
  }
  return Status::OK();
}

// ---- File envelope ----

namespace {

std::string Envelope(std::string_view payload) {
  SnapshotWriter w;
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kSnapshotVersion);
  w.WriteU64(payload.size());
  std::string bytes = w.Release();
  bytes.append(payload.data(), payload.size());
  uint32_t crc = SnapshotCrc32(payload);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

Status WriteWholeFile(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("snapshot: cannot open " + path +
                            " for writing");
  }
  size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    std::remove(path.c_str());
    return Status::Internal("snapshot: short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         std::string_view payload) {
  const std::string tmp = path + ".tmp";
  NSTREAM_RETURN_NOT_OK(WriteWholeFile(tmp, Envelope(payload)));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: rename " + tmp + " -> " + path +
                            " failed");
  }
  return Status::OK();
}

Status WriteSnapshotFileCrash(const std::string& path,
                              std::string_view payload,
                              bool truncate_mid_write) {
  const std::string tmp = path + ".tmp";
  std::string bytes = Envelope(payload);
  if (truncate_mid_write) {
    bytes.resize(bytes.size() / 2);  // torn file: header + partial payload
  }
  // Deliberately no rename: the "process" died before publishing, so
  // `path` still names the previous complete snapshot (if any).
  return WriteWholeFile(tmp, bytes);
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("snapshot: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);

  SnapshotReader r(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t len = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic in " + path);
  }
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kSnapshotVersion) {
    return Status::Unsupported("snapshot: version " +
                               std::to_string(version) +
                               " not supported (want " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  NSTREAM_RETURN_NOT_OK(r.ReadU64(&len));
  if (r.remaining() < len + sizeof(uint32_t)) {
    return Status::InvalidArgument("snapshot: " + path +
                                   " truncated (torn write?)");
  }
  const size_t header = bytes.size() - r.remaining();
  std::string_view payload(bytes.data() + header, len);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + header + len, sizeof(stored_crc));
  if (SnapshotCrc32(payload) != stored_crc) {
    return Status::InvalidArgument("snapshot: CRC mismatch in " + path +
                                   " (corrupted)");
  }
  return std::string(payload);
}

}  // namespace nstream
