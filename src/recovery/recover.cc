#include "recovery/recover.h"

#include "recovery/checkpoint.h"
#include "recovery/snapshot.h"

namespace nstream {

Status RestorePlanFromSnapshot(const std::string& path, QueryPlan* plan) {
  NSTREAM_ASSIGN_OR_RETURN(std::string payload, ReadSnapshotFile(path));
  return CheckpointCoordinator::RestorePayload(payload, plan, nullptr);
}

Status RestorePlanAndQueues(const std::string& path, QueryPlan* plan,
                            PlanRuntime* rt) {
  NSTREAM_ASSIGN_OR_RETURN(std::string payload, ReadSnapshotFile(path));
  return CheckpointCoordinator::RestorePayload(payload, plan, rt);
}

}  // namespace nstream
