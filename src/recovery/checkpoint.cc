#include "recovery/checkpoint.h"

#include "recovery/snapshot.h"

namespace nstream {

namespace {

Status BuildPayload(QueryPlan* plan, PlanRuntime* rt, std::string* out) {
  SnapshotWriter w;
  const int n = plan->num_operators();
  w.WriteU32(static_cast<uint32_t>(n));
  for (int64_t id = 0; id < n; ++id) {
    const Operator* op = plan->op(id);
    w.WriteString(op->name());
    w.WriteU32(static_cast<uint32_t>(op->num_inputs()));
    w.WriteU32(static_cast<uint32_t>(op->num_outputs()));
  }
  for (int64_t id = 0; id < n; ++id) {
    SnapshotWriter ow;
    NSTREAM_RETURN_NOT_OK(plan->op(id)->SnapshotState(&ow));
    w.WriteSection(ow.buffer());
  }
  if (rt == nullptr) {
    w.WriteU32(0);
  } else {
    const auto& conns = rt->connections();
    w.WriteU32(static_cast<uint32_t>(conns.size()));
    for (const auto& conn : conns) {
      SnapshotWriter qw;
      NSTREAM_RETURN_NOT_OK(conn->data->SnapshotContents(&qw));
      w.WriteSection(qw.buffer());
    }
  }
  *out = w.Release();
  return Status::OK();
}

}  // namespace

Status CheckpointCoordinator::WriteSnapshot(QueryPlan* plan,
                                            PlanRuntime* rt,
                                            const CheckpointOptions& opts) {
  if (opts.path.empty()) {
    return Status::InvalidArgument("checkpoint path is empty");
  }
  std::string payload;
  NSTREAM_RETURN_NOT_OK(BuildPayload(plan, rt, &payload));
  switch (opts.crash_mode) {
    case CheckpointCrashMode::kNone:
      return WriteSnapshotFile(opts.path, payload);
    case CheckpointCrashMode::kMidWrite:
      NSTREAM_RETURN_NOT_OK(WriteSnapshotFileCrash(
          opts.path, payload, /*truncate_mid_write=*/true));
      return Status::Cancelled(
          "checkpoint crash injected mid-write (truncated tmp, not "
          "published)");
    case CheckpointCrashMode::kBeforeRename:
      NSTREAM_RETURN_NOT_OK(WriteSnapshotFileCrash(
          opts.path, payload, /*truncate_mid_write=*/false));
      return Status::Cancelled(
          "checkpoint crash injected before rename (tmp complete, not "
          "published)");
  }
  return Status::Internal("unreachable crash mode");
}

Status CheckpointCoordinator::RestorePayload(std::string_view payload,
                                             QueryPlan* plan,
                                             PlanRuntime* rt) {
  SnapshotReader r(payload);
  uint32_t num_ops = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&num_ops));
  if (static_cast<int>(num_ops) != plan->num_operators()) {
    return Status::InvalidArgument(
        "snapshot/plan mismatch: snapshot has " + std::to_string(num_ops) +
        " operators, plan has " + std::to_string(plan->num_operators()));
  }
  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    const Operator* op = plan->op(id);
    std::string name;
    uint32_t ins = 0, outs = 0;
    NSTREAM_RETURN_NOT_OK(r.ReadString(&name));
    NSTREAM_RETURN_NOT_OK(r.ReadU32(&ins));
    NSTREAM_RETURN_NOT_OK(r.ReadU32(&outs));
    if (name != op->name() ||
        static_cast<int>(ins) != op->num_inputs() ||
        static_cast<int>(outs) != op->num_outputs()) {
      return Status::InvalidArgument(
          "snapshot/plan mismatch at operator " + std::to_string(id) +
          ": snapshot has '" + name + "' (" + std::to_string(ins) + " in/" +
          std::to_string(outs) + " out), plan has '" + op->name() + "'");
    }
  }
  for (int64_t id = 0; id < plan->num_operators(); ++id) {
    std::string_view section;
    NSTREAM_RETURN_NOT_OK(r.ReadSection(&section));
    SnapshotReader sr(section);
    NSTREAM_RETURN_NOT_OK(plan->op(id)->RestoreState(&sr));
    if (!sr.AtEnd()) {
      return Status::InvalidArgument(
          plan->op(id)->name() + ": " + std::to_string(sr.remaining()) +
          " trailing bytes in operator section (codec mismatch)");
    }
  }
  uint32_t num_edges = 0;
  NSTREAM_RETURN_NOT_OK(r.ReadU32(&num_edges));
  if (num_edges == 0) return Status::OK();
  if (rt != nullptr &&
      static_cast<size_t>(num_edges) != rt->connections().size()) {
    return Status::InvalidArgument(
        "snapshot/plan mismatch: snapshot has " + std::to_string(num_edges) +
        " edges, plan has " + std::to_string(rt->connections().size()));
  }
  for (uint32_t i = 0; i < num_edges; ++i) {
    std::string_view section;
    NSTREAM_RETURN_NOT_OK(r.ReadSection(&section));
    if (rt == nullptr) continue;  // operators-only restore
    SnapshotReader sr(section);
    NSTREAM_RETURN_NOT_OK(rt->connections()[i]->data->RestoreContents(&sr));
    if (!sr.AtEnd()) {
      return Status::InvalidArgument(
          "trailing bytes in queue section for edge " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace nstream
