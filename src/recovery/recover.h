// Recovery entry points: load a snapshot file written by the
// CheckpointCoordinator into a freshly rebuilt plan. The caller
// reconstructs the plan with the SAME deterministic construction code
// that built the crashed one (same operators, same source element
// vectors / generators); restore then rewinds operator state to the
// checkpoint's punctuation-aligned cut and sources replay from their
// recorded offsets — at-least-once delivery, with duplicates only for
// output that left the plan between the checkpoint and the crash.

#ifndef NSTREAM_RECOVERY_RECOVER_H_
#define NSTREAM_RECOVERY_RECOVER_H_

#include <string>

#include "common/status.h"
#include "exec/query_plan.h"
#include "exec/runtime.h"

namespace nstream {

/// Operators-only restore: read + verify the snapshot file and restore
/// every operator's state. The plan must be finalized and Open()ed.
/// Queue sections in the payload are skipped; use the scheduler's
/// SubmitRecovered (or RestorePlanAndQueues) to also refill edges.
Status RestorePlanFromSnapshot(const std::string& path, QueryPlan* plan);

/// Full restore: operators plus each edge queue's in-flight pages.
Status RestorePlanAndQueues(const std::string& path, QueryPlan* plan,
                            PlanRuntime* rt);

}  // namespace nstream

#endif  // NSTREAM_RECOVERY_RECOVER_H_
