// Versioned binary snapshot format for punctuation-aligned
// checkpoint/recovery (ROADMAP item 5). A snapshot captures operator
// state (join tables, window partials, guard sets, source offsets)
// and in-flight queue pages at a punctuation-aligned cut, so a plan
// can resume after a crash with at-least-once delivery.
//
// Layering: SnapshotWriter/SnapshotReader are dumb length-checked
// byte codecs over the engine's scalar vocabulary (Value, Tuple,
// AttrPattern, PunctPattern, GuardSet, page elements). WHAT an
// operator writes is the operator's business (Operator::SnapshotState
// overrides); the file envelope below adds versioning, atomicity, and
// corruption detection on top.
//
// File envelope:
//
//   u32 magic  u32 version  u64 payload_len  payload...  u32 crc32
//
// written to `path + ".tmp"` and published with rename(2), so `path`
// only ever names a COMPLETE snapshot — a crash mid-write leaves the
// previous snapshot intact. ReadSnapshotFile verifies magic, version,
// length, and CRC, turning torn or corrupted files into clean errors
// instead of garbage state.

#ifndef NSTREAM_RECOVERY_SNAPSHOT_H_
#define NSTREAM_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/guards.h"
#include "punct/punct_pattern.h"
#include "stream/page.h"
#include "types/tuple.h"
#include "types/value.h"

namespace nstream {

inline constexpr uint32_t kSnapshotMagic = 0x4E535031;  // "NSP1"
inline constexpr uint32_t kSnapshotVersion = 1;

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
uint32_t SnapshotCrc32(std::string_view data);

/// Append-only little-endian byte sink. Writers never fail; sizing
/// errors surface on the read side.
class SnapshotWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { AppendRaw(&v, sizeof(v)); }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  // Engine vocabulary. Strings inside values are written as raw bytes
  // and restored self-contained (inline/heap-owned), so snapshots
  // never reference arena memory.
  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteAttrPattern(const AttrPattern& p);
  void WritePattern(const PunctPattern& p);
  void WritePunctuation(const Punctuation& p);
  void WriteGuardSet(const GuardSet& g);

  /// Length-prefixed nested blob: readers can skip a section they do
  /// not understand (or do not want — e.g. an operators-only restore
  /// skipping queue sections), and a buggy section codec cannot
  /// overrun into its neighbours.
  void WriteSection(std::string_view bytes) { WriteString(bytes); }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void AppendRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked reader over a snapshot payload. Every read returns
/// a Status; a truncated or malformed payload fails cleanly.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadBool(bool* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);

  Status ReadValue(Value* out);
  Status ReadTuple(Tuple* out);
  Status ReadAttrPattern(AttrPattern* out);
  Status ReadPattern(PunctPattern* out);
  Status ReadPunctuation(Punctuation* out);
  /// Clears `g` and re-installs the stored patterns (recompiling via
  /// the global CompiledPatternCache).
  Status ReadGuardSet(GuardSet* g);

  /// View of the next length-prefixed section (see WriteSection);
  /// advances past it.
  Status ReadSection(std::string_view* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status ReadRaw(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

/// Serialize a page's elements (tuples / punctuation / EOS markers) in
/// order. Materializes the row layout first — columnar pages hold
/// arena-resident value arrays that must be walked row-wise — hence
/// the mutable reference. Content-only: arenas and flush reasons are
/// reconstructed on read.
void WritePageElements(SnapshotWriter* w, Page& page);
/// Rebuild a page from WritePageElements bytes. Tuples are appended
/// via AddTuple, so they land in `page`'s own ownership domain.
Status ReadPageInto(SnapshotReader* r, Page* page);

/// Atomically publish `payload` (wrapped in the file envelope) at
/// `path` via tmp-file + rename.
Status WriteSnapshotFile(const std::string& path, std::string_view payload);

/// Crash-injection twin of WriteSnapshotFile: writes the tmp file —
/// truncated mid-payload when `truncate_mid_write`, complete otherwise
/// — but never renames, simulating a crash before the snapshot is
/// published. `path` keeps naming the previous complete snapshot.
Status WriteSnapshotFileCrash(const std::string& path,
                              std::string_view payload,
                              bool truncate_mid_write);

/// Read + verify (magic, version, length, CRC) a snapshot file;
/// returns the payload bytes.
Result<std::string> ReadSnapshotFile(const std::string& path);

}  // namespace nstream

#endif  // NSTREAM_RECOVERY_SNAPSHOT_H_
