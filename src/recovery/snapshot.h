// Versioned binary snapshot format for punctuation-aligned
// checkpoint/recovery (ROADMAP item 5). A snapshot captures operator
// state (join tables, window partials, guard sets, source offsets)
// and in-flight queue pages at a punctuation-aligned cut, so a plan
// can resume after a crash with at-least-once delivery.
//
// Layering: the byte codec lives in serde/serde.h (ByteWriter /
// ByteReader) and is SHARED with the ingest wire format — the engine
// has exactly one binary encoding of Value/Tuple/patterns.
// SnapshotWriter/SnapshotReader below are those codecs under their
// recovery-facing names. WHAT an operator writes is the operator's
// business (Operator::SnapshotState overrides); the file envelope
// below adds versioning, atomicity, and corruption detection on top.
//
// File envelope:
//
//   u32 magic  u32 version  u64 payload_len  payload...  u32 crc32
//
// written to `path + ".tmp"` and published with rename(2), so `path`
// only ever names a COMPLETE snapshot — a crash mid-write leaves the
// previous snapshot intact. ReadSnapshotFile verifies magic, version,
// length, and CRC, turning torn or corrupted files into clean errors
// instead of garbage state.

#ifndef NSTREAM_RECOVERY_SNAPSHOT_H_
#define NSTREAM_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serde/serde.h"
#include "stream/page.h"

namespace nstream {

inline constexpr uint32_t kSnapshotMagic = 0x4E535031;  // "NSP1"
inline constexpr uint32_t kSnapshotVersion = 1;

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`.
inline uint32_t SnapshotCrc32(std::string_view data) {
  return SerdeCrc32(data);
}

/// The shared byte codec under its recovery-facing name. Concrete
/// classes (not aliases) so `class SnapshotWriter;` forward
/// declarations — e.g. in exec/operator.h — keep resolving.
class SnapshotWriter : public ByteWriter {};

class SnapshotReader : public ByteReader {
 public:
  using ByteReader::ByteReader;
};

/// Serialize a page's elements (tuples / punctuation / EOS markers) in
/// order. Materializes the row layout first — columnar pages hold
/// arena-resident value arrays that must be walked row-wise — hence
/// the mutable reference. Content-only: arenas and flush reasons are
/// reconstructed on read.
void WritePageElements(SnapshotWriter* w, Page& page);
/// Rebuild a page from WritePageElements bytes. Tuples are appended
/// via AddTuple, so they land in `page`'s own ownership domain.
Status ReadPageInto(SnapshotReader* r, Page* page);

/// Atomically publish `payload` (wrapped in the file envelope) at
/// `path` via tmp-file + rename.
Status WriteSnapshotFile(const std::string& path, std::string_view payload);

/// Crash-injection twin of WriteSnapshotFile: writes the tmp file —
/// truncated mid-payload when `truncate_mid_write`, complete otherwise
/// — but never renames, simulating a crash before the snapshot is
/// published. `path` keeps naming the previous complete snapshot.
Status WriteSnapshotFileCrash(const std::string& path,
                              std::string_view payload,
                              bool truncate_mid_write);

/// Read + verify (magic, version, length, CRC) a snapshot file;
/// returns the payload bytes.
Result<std::string> ReadSnapshotFile(const std::string& path);

}  // namespace nstream

#endif  // NSTREAM_RECOVERY_SNAPSHOT_H_
