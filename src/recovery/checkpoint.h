// CheckpointCoordinator: builds and restores whole-plan snapshot
// payloads for punctuation-aligned checkpointing (ROADMAP item 5).
//
// Payload layout (inside the snapshot.h file envelope):
//
//   u32 num_ops
//   per op:   string name, u32 num_inputs, u32 num_outputs   (fingerprint)
//   per op:   section(operator state)            -- Operator::SnapshotState
//   u32 num_edges                                -- 0 = no queue capture
//   per edge: section(queue contents)            -- plan->edges() order
//
// The fingerprint pins a snapshot to a structurally identical plan:
// recovery rebuilds the plan from the same (deterministic) construction
// code, and restore refuses a payload whose operator names/arities do
// not match — catching "recovered into the wrong query" at load time
// instead of as garbage state. Length-prefixed sections let an
// operators-only restore skip the queue half entirely.
//
// Quiescence contract: WriteSnapshot must only run while the plan is
// fully parked at a checkpoint barrier (the scheduler guarantees this
// before calling) — it walks operator state and queue internals with
// no synchronization of its own.

#ifndef NSTREAM_RECOVERY_CHECKPOINT_H_
#define NSTREAM_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/query_plan.h"
#include "exec/runtime.h"

namespace nstream {

/// Crash-injection seam for the recovery tests: where the checkpoint
/// write "dies". Both crash modes leave `path` naming the previous
/// complete snapshot (tmp written, never renamed), so recovery always
/// loads a consistent — possibly older — cut.
enum class CheckpointCrashMode : uint8_t {
  kNone = 0,      // normal atomic publish (tmp + rename)
  kMidWrite,      // crash mid-payload: truncated tmp, no rename
  kBeforeRename,  // crash between write and publish: full tmp, no rename
};

struct CheckpointOptions {
  std::string path;
  CheckpointCrashMode crash_mode = CheckpointCrashMode::kNone;
};

class CheckpointCoordinator {
 public:
  /// Serialize every operator's state (and, when `rt` is non-null,
  /// every edge queue's in-flight pages) and publish atomically at
  /// `opts.path`. Crash modes return Cancelled after writing the tmp
  /// file, mimicking a process death at that point.
  static Status WriteSnapshot(QueryPlan* plan, PlanRuntime* rt,
                              const CheckpointOptions& opts);

  /// Restore a payload produced by WriteSnapshot into `plan` (which
  /// must be finalized, Open()ed, and structurally identical to the
  /// snapshotted plan). Queue sections are restored into `rt`'s edges
  /// when non-null, skipped otherwise.
  static Status RestorePayload(std::string_view payload, QueryPlan* plan,
                               PlanRuntime* rt);
};

}  // namespace nstream

#endif  // NSTREAM_RECOVERY_CHECKPOINT_H_
