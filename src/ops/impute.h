// Impute: replaces missing values with estimates via an expensive
// per-tuple archival lookup (Example 3 / Experiment 1: one database
// query per dirty tuple). The estimator is injected so the operator
// stays decoupled from the archive implementation; `cost_ms` charges
// the lookup's latency to the virtual clock under the SimExecutor (or
// sleeps/spins under the threaded executor's charge policy).
//
// As a feedback *exploiter*, IMPUTE reacts to assumed punctuation by
// (1) purging matching tuples buffered on its input — work not yet
// done that never needs doing — and (2) guarding its input so late
// arrivals are skipped. Both are counted as work_avoided. Desired
// punctuation reorders its backlog instead.

#ifndef NSTREAM_OPS_IMPUTE_H_
#define NSTREAM_OPS_IMPUTE_H_

#include <functional>
#include <string>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"

namespace nstream {

struct ImputeOptions {
  // Attribute whose NULLs are replaced.
  int value_attr = 0;
  // Attribute set to 1 when a tuple was imputed (-1 = none). Lets the
  // experiment harness separate clean from imputed tuples (Fig. 5/6).
  int flag_attr = -1;
  // Cost charged per imputation (the archival DB query).
  double cost_ms = 25.0;
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class Impute final : public Operator {
 public:
  /// Estimator: produce a replacement value for the dirty tuple.
  using Estimator = std::function<double(const Tuple&)>;

  Impute(std::string name, Estimator estimator, ImputeOptions options)
      : Operator(std::move(name), 1, 1),
        estimator_(std::move(estimator)),
        options_(options) {}

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      ++stats_.work_avoided;  // an archival query we did not issue
      return Status::OK();
    }
    Tuple out = tuple;
    if (out.value(options_.value_attr).is_null()) {
      ctx()->ChargeMs(options_.cost_ms);  // the archival lookup
      ++imputations_;
      out.mutable_value(options_.value_attr) =
          Value::Double(estimator_(tuple));
      if (options_.flag_attr >= 0) {
        out.mutable_value(options_.flag_attr) = Value::Int64(1);
      }
    }
    Emit(0, std::move(out));
    return Status::OK();
  }

  Status ProcessPunctuation(int port, const Punctuation& punct) override {
    guards_.ExpireCovered(punct);
    return Operator::ProcessPunctuation(port, punct);
  }

  Status ProcessFeedback(int, const FeedbackPunctuation& fb) override {
    if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
        fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    switch (fb.intent()) {
      case FeedbackIntent::kAssumed:
        if (PolicyAtLeast(options_.feedback_policy,
                          FeedbackPolicy::kExploit)) {
          guards_.Add(fb.pattern());
          int purged = ctx()->PurgeInput(0, fb.pattern());
          stats_.state_purged += static_cast<uint64_t>(purged);
          stats_.work_avoided += static_cast<uint64_t>(purged);
        }
        break;
      case FeedbackIntent::kDesired:
      case FeedbackIntent::kDemanded:
        ctx()->PrioritizeInput(0, fb.pattern());
        break;
    }
    // The flag attribute is computed here, but identity holds for all
    // others; patterns constraining only carried attributes relay
    // safely. (A constraint on flag_attr would not, so skip those.)
    if (PolicyAtLeast(options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      bool touches_flag = false;
      if (options_.flag_attr >= 0) {
        for (int i : fb.pattern().ConstrainedIndices()) {
          if (i == options_.flag_attr) touches_flag = true;
        }
      }
      if (!touches_flag) RelayFeedback(0, fb);
    }
    return Status::OK();
  }

  uint64_t imputations() const { return imputations_; }
  const GuardSet& guards() const { return guards_; }

 private:
  Estimator estimator_;
  ImputeOptions options_;
  GuardSet guards_;
  uint64_t imputations_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_IMPUTE_H_
