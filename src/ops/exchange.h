// Exchange & ShardMerge: the partitioned-parallelism pair. Exchange
// splits one stream into N hash-partitioned substreams (shards);
// ShardMerge reassembles N shard outputs into one stream. Between them
// sit N independent instances of a stateful operator — in this engine,
// SymmetricHashJoin shards each owning its slice of both hash tables
// with no shared locks (see MakePartitionedJoin below).
//
// Punctuation and feedback semantics across the partition boundary:
//
//   * Data tuples route to exactly one shard by a prefix of the 64-bit
//     key-subset hash (all windows of a key colocate, so equi-join
//     partners always meet).
//   * Embedded punctuation BROADCASTS to every shard: a completeness
//     claim over the whole stream holds a fortiori over each
//     partition. Staged tuple pages are flushed first so no tuple ever
//     overtakes a punctuation.
//   * At the merge, per-shard punctuations COALESCE: a claim holds on
//     the merged output only once *every* shard has made it
//     (watermarks take the min across inputs; identical patterns wait
//     for all shards; patterns that pin every partition key to a
//     constant are owned by a single shard and pass through from that
//     shard alone).
//   * Feedback punctuation arriving at the merge relays to EVERY shard
//     (each holds part of the addressed state). Feedback a shard sends
//     upstream reaches the Exchange, which exploits it as a guard on
//     that shard's output port — a shard's claim covers only its slice
//     — and relays upstream only once all N shards have made an
//     equivalent claim (at which point the subset is dead everywhere
//     and upstream operators may purge/guard it wholesale).

#ifndef NSTREAM_OPS_EXCHANGE_H_
#define NSTREAM_OPS_EXCHANGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"
#include "exec/query_plan.h"
#include "ops/shard_routing.h"
#include "ops/symmetric_hash_join.h"
#include "ops/union_op.h"

namespace nstream {

struct ExchangeOptions {
  // Attribute positions whose values determine the target shard.
  std::vector<int> partition_keys;
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
  // Elements staged per output before a page is pushed (page-granular
  // fast path; one queue lock per page instead of per tuple).
  int stage_page_size = 256;
};

class Exchange final : public Operator {
 public:
  Exchange(std::string name, int num_partitions, ExchangeOptions options);

  // Routing delegates to ops/shard_routing.h (shared with ShardMerge
  // and the join's debug tripwire); kept as statics here because the
  // Exchange is the routing authority callers think of first.
  static uint64_t RoutingHash(const Tuple& t,
                              const std::vector<int>& keys) {
    return ShardRoutingHash(t, keys);
  }
  static int ShardOfHash(uint64_t h, int num_partitions) {
    return ShardOfRoutingHash(h, num_partitions);
  }
  int ShardOf(const Tuple& t) const {
    return ShardOfHash(RoutingHash(t, options_.partition_keys),
                       num_outputs());
  }

  Status InferSchemas() override;
  Status ProcessTuple(int port, const Tuple& tuple) override;
  /// Batch path: partitions the page into per-shard staging pages and
  /// pushes each with one EmitPage. Punctuation flushes all staging
  /// (order preservation) and then broadcasts.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override;
  Status ProcessPunctuation(int port, const Punctuation& punct) override;
  Status OnAllInputsEos() override;
  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& fb) override;

  // Introspection (tests / benches).
  uint64_t routed(int port) const {
    return routed_[static_cast<size_t>(port)];
  }
  const GuardSet& port_guards(int port) const {
    return port_guards_[static_cast<size_t>(port)];
  }
  const GuardSet& input_guards() const { return input_guards_; }
  uint64_t coalesced_relays() const { return coalesced_relays_; }
  uint64_t owner_relays() const { return owner_relays_; }
  uint64_t pending_feedback() const {
    return static_cast<uint64_t>(pending_.size());
  }

 private:
  struct Pending {
    std::vector<bool> ports;
    int count = 0;
    PunctPattern pattern;  // for punctuation-coverage expiry
  };

  void StageTuple(int shard, Tuple t);
  void FlushStaged();
  Status HandleAssumed(int out_port, const FeedbackPunctuation& fb);

  ExchangeOptions options_;
  // Per-output staging pages for the batch path.
  std::vector<Page> staged_;
  std::vector<uint64_t> routed_;
  // Guards installed from per-shard assumed feedback: tuples routed to
  // a guarded port are dropped before the queue hop.
  std::vector<GuardSet> port_guards_;
  // Guard over the whole input, installed once feedback has coalesced
  // across every shard (cheaper than routing then dropping).
  GuardSet input_guards_;
  // (intent glyph + pattern) → which ports have claimed it. Entries
  // are reclaimed when the claim coalesces, when embedded punctuation
  // covers the pattern, or — as a backstop on unpunctuated streams —
  // wholesale once the map exceeds kMaxPendingFeedback (dropping a
  // pending claim only forgoes an optimization; the per-port guards
  // already installed stay correct).
  static constexpr size_t kMaxPendingFeedback = 4096;
  std::map<std::string, Pending> pending_;
  uint64_t coalesced_relays_ = 0;
  uint64_t owner_relays_ = 0;
};

struct ShardMergeOptions {
  UnionOptions union_options;
  // Partition-key attribute positions in the MERGED (output) schema,
  // plus the partition fan-in, enabling the single-owner punctuation
  // fast path: a pattern that pins every partition key with '=' is
  // routable — only its owner shard can ever produce matching tuples,
  // so that shard's punctuation alone settles the claim stream-wide.
  std::vector<int> partition_keys;
};

class ShardMerge final : public UnionOp {
 public:
  ShardMerge(std::string name, int num_inputs,
             ShardMergeOptions options = {});

  /// Coalesces per-shard punctuation:
  ///   * watermark-style patterns merge by min across inputs (UnionOp);
  ///   * patterns pinning all partition keys pass through iff they
  ///     arrive from their owner shard (vacuous from any other);
  ///   * other patterns are held until EVERY input has asserted an
  ///     identical pattern, then emitted exactly once.
  Status ProcessPunctuation(int port, const Punctuation& punct) override;
  /// All-tuple pages forward wholesale (one EmitPage) when no guards
  /// are installed; otherwise falls back to the element-wise path.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override;

  uint64_t coalesced_puncts() const { return coalesced_puncts_; }
  uint64_t owner_routed_puncts() const { return owner_routed_puncts_; }
  uint64_t dropped_vacuous_puncts() const {
    return dropped_vacuous_puncts_;
  }

 private:
  struct Pending {
    std::vector<bool> ports;
    int count = 0;
    PunctPattern pattern;  // for punctuation-coverage expiry
  };
  /// Shard owning `pattern` if it pins every partition key with '=',
  /// else -1.
  int OwnerShard(const PunctPattern& pattern) const;

  // Same reclamation story as Exchange::pending_: coalesce, coverage
  // by a later (wider) punctuation, or the wholesale backstop.
  static constexpr size_t kMaxPendingPuncts = 4096;
  ShardMergeOptions merge_options_;
  std::map<std::string, Pending> pending_;
  uint64_t coalesced_puncts_ = 0;
  uint64_t owner_routed_puncts_ = 0;
  uint64_t dropped_vacuous_puncts_ = 0;
};

/// The wired fan-out/fan-in subplan MakePartitionedJoin returns.
struct PartitionedJoinPlan {
  Exchange* left_exchange = nullptr;   // connect left producer here
  Exchange* right_exchange = nullptr;  // connect right producer here
  std::vector<SymmetricHashJoin*> shards;
  ShardMerge* merge = nullptr;  // connect consumers to merge output 0
};

/// Builds `Partitioned(join, N)`: two Exchanges (one per join input,
/// partitioning by the respective key subset with the SAME routing
/// hash, so matching tuples meet in the same shard), N join shard
/// instances, and a ShardMerge configured with the join's output-side
/// partition keys. The caller connects producers to the exchanges'
/// input port 0 and consumers to merge output 0.
///
///            ┌→ join.shard0 ┐
///   L →  xchgL  ⋮            ShardMerge → downstream
///   R →  xchgR ─→ join.shardN-1 ┘
Result<PartitionedJoinPlan> MakePartitionedJoin(QueryPlan* plan,
                                                const std::string& name,
                                                JoinOptions options,
                                                int num_shards);

}  // namespace nstream

#endif  // NSTREAM_OPS_EXCHANGE_H_
