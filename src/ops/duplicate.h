// Duplicate: copies its input to N identical outputs (the fan-out at
// the bottom of the Experiment 1 plan, Fig. 4a). Its feedback
// semantics are the paper's §4.1 example: because the outputs must be
// identical, an assumed-feedback opportunity can be exploited only
// when *every* consumer has asked for it — "exploiting an opportunity
// would either affect both outputs or none".

#ifndef NSTREAM_OPS_DUPLICATE_H_
#define NSTREAM_OPS_DUPLICATE_H_

#include <string>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"

namespace nstream {

struct DuplicateOptions {
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class Duplicate final : public Operator {
 public:
  Duplicate(std::string name, int num_outputs,
            DuplicateOptions options = {})
      : Operator(std::move(name), 1, num_outputs),
        options_(options),
        per_output_guards_(static_cast<size_t>(num_outputs)) {}

  Status ProcessTuple(int, const Tuple& tuple) override {
    // Drop only when every output's consumers have disclaimed it.
    if (BlockedByAll(tuple)) {
      ++stats_.input_guard_drops;
      return Status::OK();
    }
    for (int o = 0; o < num_outputs(); ++o) Emit(o, tuple);
    return Status::OK();
  }

  Status ProcessPunctuation(int, const Punctuation& punct) override {
    ++stats_.puncts_in;
    for (auto& g : per_output_guards_) g.ExpireCovered(punct);
    for (int o = 0; o < num_outputs(); ++o) EmitPunct(o, punct);
    return Status::OK();
  }

  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& fb) override {
    if (options_.feedback_policy == FeedbackPolicy::kIgnore ||
        fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    if (fb.intent() != FeedbackIntent::kAssumed) {
      // Prioritization affects delivery order, not content, so it is
      // safe to honor from a single consumer.
      ctx()->PrioritizeInput(0, fb.pattern());
      if (PolicyAtLeast(options_.feedback_policy,
                        FeedbackPolicy::kExploitAndPropagate)) {
        RelayFeedback(0, fb);
      }
      return Status::OK();
    }
    per_output_guards_[static_cast<size_t>(out_port)].Add(fb.pattern());
    // The subset is dead only if every other output already disclaims
    // it; only then may we drop tuples and tell upstream.
    bool unanimous = true;
    for (int o = 0; o < num_outputs(); ++o) {
      if (o == out_port) continue;
      bool covered = false;
      for (const PunctPattern& g :
           per_output_guards_[static_cast<size_t>(o)].patterns()) {
        if (g.Subsumes(fb.pattern())) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        unanimous = false;
        break;
      }
    }
    if (unanimous) {
      if (PolicyAtLeast(options_.feedback_policy,
                        FeedbackPolicy::kExploit)) {
        ctx()->PurgeInput(0, fb.pattern());
      }
      if (PolicyAtLeast(options_.feedback_policy,
                        FeedbackPolicy::kExploitAndPropagate)) {
        RelayFeedback(0, fb);
      }
    } else {
      ++stats_.feedback_ignored;  // held until the other side agrees
    }
    return Status::OK();
  }

  const GuardSet& output_guards(int o) const {
    return per_output_guards_[static_cast<size_t>(o)];
  }

 private:
  bool BlockedByAll(const Tuple& t) const {
    for (const auto& g : per_output_guards_) {
      if (!g.Blocks(t)) return false;
    }
    return !per_output_guards_.empty();
  }

  DuplicateOptions options_;
  std::vector<GuardSet> per_output_guards_;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_DUPLICATE_H_
