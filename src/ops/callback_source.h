// CallbackSource: streams elements from a pull generator without
// materializing the whole workload (Experiment 2 pushes ~1.17M tuples;
// keeping them all in memory per run would dwarf the engine itself).

#ifndef NSTREAM_OPS_CALLBACK_SOURCE_H_
#define NSTREAM_OPS_CALLBACK_SOURCE_H_

#include <functional>
#include <string>

#include "exec/operator.h"
#include "ops/vector_source.h"

namespace nstream {

class CallbackSource final : public SourceOperator {
 public:
  /// Generator returns the next timed element, or nullopt at the end.
  /// Arrival times must be non-decreasing.
  using Generator = std::function<std::optional<TimedElement>()>;

  CallbackSource(std::string name, SchemaPtr schema, Generator gen)
      : SourceOperator(std::move(name)), gen_(std::move(gen)) {
    SetOutputSchema(0, std::move(schema));
  }

  Status InferSchemas() override { return Status::OK(); }

  std::optional<TimeMs> NextArrivalMs() override {
    Fill();
    if (!pending_.has_value()) return std::nullopt;
    return pending_->arrival_ms;
  }

  Status ProduceNext() override {
    Fill();
    if (!pending_.has_value()) {
      return Status::FailedPrecondition("source exhausted");
    }
    TimedElement te = std::move(*pending_);
    pending_.reset();
    switch (te.element.kind()) {
      case ElementKind::kTuple: {
        Tuple t = std::move(te.element.mutable_tuple());
        if (t.id() == 0) t.set_id(++next_id_);
        t.set_arrival_ms(te.arrival_ms);
        Emit(0, std::move(t));
        break;
      }
      case ElementKind::kPunctuation:
        EmitPunct(0, te.element.punct());
        break;
      case ElementKind::kEndOfStream:
        break;
    }
    ++produced_;
    return Status::OK();
  }

  uint64_t produced() const { return produced_; }

  /// Replay-from-offset recovery: generators are deterministic, so the
  /// checkpoint records only how many elements were emitted. Restore
  /// fast-forwards a FRESH generator that many pulls (discarding the
  /// output) and resumes from there. A pull that was staged in
  /// `pending_` but not yet emitted is deliberately not counted — the
  /// fast-forwarded generator re-produces it on the next Fill().
  Status SnapshotState(SnapshotWriter* w) override {
    NSTREAM_RETURN_NOT_OK(Operator::SnapshotState(w));
    w->WriteU64(produced_);
    w->WriteI64(next_id_);
    w->WriteBool(done_);
    return Status::OK();
  }
  Status RestoreState(SnapshotReader* r) override {
    NSTREAM_RETURN_NOT_OK(Operator::RestoreState(r));
    uint64_t produced = 0;
    NSTREAM_RETURN_NOT_OK(r->ReadU64(&produced));
    NSTREAM_RETURN_NOT_OK(r->ReadI64(&next_id_));
    NSTREAM_RETURN_NOT_OK(r->ReadBool(&done_));
    pending_.reset();
    for (uint64_t i = 0; i < produced; ++i) {
      if (!gen_().has_value()) {
        return Status::InvalidArgument(
            name() + ": generator exhausted after " + std::to_string(i) +
            " pulls while fast-forwarding to offset " +
            std::to_string(produced));
      }
    }
    produced_ = produced;
    return Status::OK();
  }

 private:
  void Fill() {
    if (!pending_.has_value() && !done_) {
      pending_ = gen_();
      if (!pending_.has_value()) done_ = true;
    }
  }

  Generator gen_;
  std::optional<TimedElement> pending_;
  bool done_ = false;
  int64_t next_id_ = 0;
  uint64_t produced_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_CALLBACK_SOURCE_H_
