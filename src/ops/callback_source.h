// CallbackSource: streams elements from a pull generator without
// materializing the whole workload (Experiment 2 pushes ~1.17M tuples;
// keeping them all in memory per run would dwarf the engine itself).

#ifndef NSTREAM_OPS_CALLBACK_SOURCE_H_
#define NSTREAM_OPS_CALLBACK_SOURCE_H_

#include <functional>
#include <string>

#include "exec/operator.h"
#include "ops/vector_source.h"

namespace nstream {

class CallbackSource final : public SourceOperator {
 public:
  /// Generator returns the next timed element, or nullopt at the end.
  /// Arrival times must be non-decreasing.
  using Generator = std::function<std::optional<TimedElement>()>;

  CallbackSource(std::string name, SchemaPtr schema, Generator gen)
      : SourceOperator(std::move(name)), gen_(std::move(gen)) {
    SetOutputSchema(0, std::move(schema));
  }

  Status InferSchemas() override { return Status::OK(); }

  std::optional<TimeMs> NextArrivalMs() override {
    Fill();
    if (!pending_.has_value()) return std::nullopt;
    return pending_->arrival_ms;
  }

  Status ProduceNext() override {
    Fill();
    if (!pending_.has_value()) {
      return Status::FailedPrecondition("source exhausted");
    }
    TimedElement te = std::move(*pending_);
    pending_.reset();
    switch (te.element.kind()) {
      case ElementKind::kTuple: {
        Tuple t = std::move(te.element.mutable_tuple());
        if (t.id() == 0) t.set_id(++next_id_);
        t.set_arrival_ms(te.arrival_ms);
        Emit(0, std::move(t));
        break;
      }
      case ElementKind::kPunctuation:
        EmitPunct(0, te.element.punct());
        break;
      case ElementKind::kEndOfStream:
        break;
    }
    return Status::OK();
  }

 private:
  void Fill() {
    if (!pending_.has_value() && !done_) {
      pending_ = gen_();
      if (!pending_.has_value()) done_ = true;
    }
  }

  Generator gen_;
  std::optional<TimedElement> pending_;
  bool done_ = false;
  int64_t next_id_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_CALLBACK_SOURCE_H_
