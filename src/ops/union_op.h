// Union: merges N same-schema inputs into one output. Punctuation
// union semantics: a completeness claim holds on the output only once
// *every* input has made it, so watermark-style punctuations (a single
// ≤/< bound on one attribute) are merged by taking the minimum across
// inputs. Feedback over the output schema applies verbatim to every
// input (identity maps), so relaying is always safe.

#ifndef NSTREAM_OPS_UNION_OP_H_
#define NSTREAM_OPS_UNION_OP_H_

#include <optional>
#include <string>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "exec/operator.h"

namespace nstream {

struct UnionOptions {
  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
};

class UnionOp : public Operator {
 public:
  UnionOp(std::string name, int num_inputs, UnionOptions options = {})
      : Operator(std::move(name), num_inputs, 1),
        union_options_(options),
        watermarks_(static_cast<size_t>(num_inputs)) {}

  /// Watermark-shaped pattern: exactly one constrained attribute with a
  /// numeric ≤/< bound. The one predicate shared by MergeWatermark and
  /// ShardMerge's punctuation router — they must agree, or watermarks
  /// would fall into the hold-until-identical path and stall the merge.
  static bool IsWatermarkPattern(const PunctPattern& p) {
    std::vector<int> constrained = p.ConstrainedIndices();
    if (constrained.size() != 1) return false;
    const AttrPattern& ap = p.attr(constrained[0]);
    return (ap.op() == PatternOp::kLe || ap.op() == PatternOp::kLt) &&
           ap.operand().AsDouble().ok();
  }

  Status InferSchemas() override {
    for (int i = 1; i < num_inputs(); ++i) {
      if (!input_schema(0)->Equals(*input_schema(i))) {
        return Status::SchemaMismatch(name() +
                                      ": union inputs must agree");
      }
    }
    SetOutputSchema(0, input_schema(0));
    return Status::OK();
  }

  Status ProcessTuple(int, const Tuple& tuple) override {
    if (guards_.Blocks(tuple)) {
      ++stats_.input_guard_drops;
      return Status::OK();
    }
    Emit(0, tuple);
    return Status::OK();
  }

  Status ProcessPunctuation(int port, const Punctuation& punct) override {
    ++stats_.puncts_in;
    guards_.ExpireCovered(punct);
    MergeWatermark(port, punct);
    return Status::OK();
  }

  Status ProcessFeedback(int, const FeedbackPunctuation& fb) override {
    if (union_options_.feedback_policy == FeedbackPolicy::kIgnore ||
        fb.pattern().arity() != output_schema(0)->num_fields()) {
      ++stats_.feedback_ignored;
      return Status::OK();
    }
    if (fb.intent() == FeedbackIntent::kAssumed &&
        PolicyAtLeast(union_options_.feedback_policy,
                      FeedbackPolicy::kExploit)) {
      guards_.Add(fb.pattern());
      for (int i = 0; i < num_inputs(); ++i) {
        ctx()->PurgeInput(i, fb.pattern());
      }
    }
    if (fb.intent() != FeedbackIntent::kAssumed) {
      for (int i = 0; i < num_inputs(); ++i) {
        ctx()->PrioritizeInput(i, fb.pattern());
      }
    }
    if (PolicyAtLeast(union_options_.feedback_policy,
                      FeedbackPolicy::kExploitAndPropagate)) {
      for (int i = 0; i < num_inputs(); ++i) RelayFeedback(i, fb);
    }
    return Status::OK();
  }

  const GuardSet& guards() const { return guards_; }

 protected:
  /// Merge watermark-style punctuation (exactly one constrained
  /// attribute with a ≤ or < bound). Emits the per-attribute minimum
  /// across inputs whenever it advances. Non-watermark punctuation is
  /// dropped (a sound, conservative choice: dropping punctuation never
  /// breaks correctness, only delays unblocking).
  void MergeWatermark(int port, const Punctuation& punct) {
    const PunctPattern& p = punct.pattern();
    if (!IsWatermarkPattern(p)) return;
    int attr = p.ConstrainedIndices()[0];
    const AttrPattern& ap = p.attr(attr);
    Result<double> bound = ap.operand().AsDouble();
    if (!bound.ok()) return;

    auto& wm = watermarks_[static_cast<size_t>(port)];
    if (wm.has_value() && wm->attr != attr) return;  // mixed schemes
    if (!wm.has_value() || bound.value() > wm->bound) {
      wm = Watermark{attr, bound.value(), ap};
    }
    // Output watermark = min over inputs (all must agree the subset is
    // complete).
    double min_bound = 0;
    const AttrPattern* min_pattern = nullptr;
    for (const auto& w : watermarks_) {
      if (!w.has_value() || w->attr != attr) return;  // not all ready
      if (min_pattern == nullptr || w->bound < min_bound) {
        min_bound = w->bound;
        min_pattern = &w->pattern;
      }
    }
    if (min_bound > emitted_bound_) {
      emitted_bound_ = min_bound;
      PunctPattern out = PunctPattern::AllWildcard(p.arity());
      out = out.With(attr, *min_pattern);
      EmitPunct(0, Punctuation(std::move(out)));
    }
  }

  struct Watermark {
    int attr = -1;
    double bound = 0;
    AttrPattern pattern;
  };

  UnionOptions union_options_;
  GuardSet guards_;
  std::vector<std::optional<Watermark>> watermarks_;
  double emitted_bound_ = -1e300;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_UNION_OP_H_
