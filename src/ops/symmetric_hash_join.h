// SymmetricHashJoin: streaming equi-join with per-input hash tables,
// optional tumbling-window semantics (WID), optional left-outer
// emission at window close, and the full Table 2 feedback
// characterization driven by the SchemaMap/safe-propagation machinery:
//
//   ¬[*,j,*]  → purge both tables, guard both inputs, propagate both
//   ¬[l,*,*]  → purge/guard left, propagate to left only
//   ¬[*,*,r]  → purge/guard right, propagate to right only
//   ¬[l,*,r]  → no safe propagation: output guard only (§4.2)
//
// Two adaptive personalities from the paper are options on the same
// operator:
//   * THRIFTY JOIN (§3.3): when punctuation reveals an *empty* window
//     on the probe input, emit assumed feedback telling the other
//     input's antecedents to skip that window entirely.
//   * IMPATIENT JOIN (§3.4): when data arrives for (window, key) on one
//     input, emit desired feedback asking the other input to
//     prioritize that subset ("I have vehicle data for segment #3 and
//     time period #7").

#ifndef NSTREAM_OPS_SYMMETRIC_HASH_JOIN_H_
#define NSTREAM_OPS_SYMMETRIC_HASH_JOIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/feedback_policy.h"
#include "core/guards.h"
#include "core/schema_map.h"
#include "exec/operator.h"
#include "ops/window.h"

namespace nstream {

/// How the page-at-a-time probe groups a tuple run (see
/// JoinOptions::page_batched_probe).
enum class ProbeGrouping : uint8_t {
  // Stabilized sort by key hash: gathers scattered duplicates so each
  // distinct key touches the tables once, at the price of the sort and
  // scattered element access. Loses to the element walk on Table 2
  // once arenas removed allocation (~0.73x) — kept for high-duplicate
  // runs whose repeats are NOT adjacent, and for the A/B tests.
  kSorted = 0,
  // Sort-free adjacency grouping: a single fused walk in element
  // order that memoizes the probe/insert buckets across CONSECUTIVE
  // equal key hashes, and MOVES each tuple into the table. Bursty
  // streams (sensor readings per segment, per-key batches) skip both
  // hash-table lookups on every repeat; runs with no adjacent
  // repeats still beat the element walk, because the walk's
  // ProcessTuple copies every inserted tuple where this path moves
  // it (~1.1x on Table 2, which has zero adjacent repeats —
  // join.adjacent_probe_* vs join.element_probe_*). Output order
  // matches the element walk exactly (no cross-key reordering).
  kAdjacent,
  // kAdjacent while the observed adjacent-duplicate density says the
  // memoization pays, the plain element walk otherwise; density is
  // re-sampled periodically so a stream that turns bursty is
  // noticed. Measured strictly worse than kAdjacent as a default:
  // the fused walk dominates the element walk even at zero duplicate
  // density (the move-vs-copy insert), so falling back only forfeits
  // that. Kept as an option and for the A/B suites.
  kAdaptive,
};

struct JoinOptions {
  // Equi-join key attribute positions (parallel arrays).
  std::vector<int> left_keys;
  std::vector<int> right_keys;
  // Timestamp attributes (required when window_join).
  int left_ts = -1;
  int right_ts = -1;
  // Tumbling-window join: tuples join only within the same window.
  bool window_join = false;
  WindowSpec window;
  // Left-outer: at window close, unmatched left tuples emit with NULL
  // right attributes (the speed-map plan of Fig. 1b).
  bool left_outer = false;

  FeedbackPolicy feedback_policy = FeedbackPolicy::kExploitAndPropagate;
  // §4.4's no-retraction caveat taken conservatively: never purge on
  // feedback, only guard the output.
  bool conservative_no_retraction = false;

  // THRIFTY JOIN: watch for empty windows on `thrifty_probe_input` and
  // send assumed feedback for them to the other input.
  bool thrifty = false;
  int thrifty_probe_input = 0;
  // IMPATIENT JOIN: when `impatient_data_input` receives data for a
  // (window,key), desire that subset from the other input.
  bool impatient = false;
  int impatient_data_input = 0;

  // Shard-parallel execution (set by MakePartitionedJoin): this
  // instance owns partition `shard_index` of `shard_count`, fed by an
  // Exchange that routes tuples by key-hash prefix. The join logic is
  // unchanged — each shard's tables_[2] hold only its slice, with no
  // locks shared between shards. Thrifty/gate feedback sent by a shard
  // is a claim about its *slice* only; it stays sound because it
  // travels to the Exchange, which exploits it as a per-output-port
  // guard and only relays upstream once every shard has made an
  // equivalent claim. In debug builds, tuples are verified to actually
  // belong to this shard (a mis-routed tuple would silently miss its
  // join partner).
  int shard_index = 0;
  int shard_count = 1;

  // Joined results staged per output page under page-driven executors
  // (one queue lock per page). Same knob family as
  // DataQueueOptions::page_size and ExchangeOptions::stage_page_size.
  int output_page_size = 256;

  // Page-at-a-time probe: ProcessPage handles each run of tuples
  // (between punctuation/EOS boundaries) with a grouped walk chosen
  // by `probe_grouping`, and tuples MOVE from the page into the table
  // instead of copying. Under kSorted the output interleaving across
  // keys may differ from the element-wise walk (the result multiset
  // is identical — join_batched_probe_test enforces it); kAdjacent /
  // kAdaptive preserve element order exactly.
  //
  // History: the original sort-based grouping paid for itself while
  // every result tuple cost a malloc, lost to the element walk
  // (~0.73x) once the arena model landed, and was defaulted off. The
  // sort-free adjacency grouping won batching back — move-inserts
  // plus bucket memoization beat the element walk at every measured
  // duplicate density, including zero — so the default is ON again
  // with kAdjacent (bench_table2_join's sorted/adjacent/element and
  // bursty rows carry the A/B).
  bool page_batched_probe = true;
  ProbeGrouping probe_grouping = ProbeGrouping::kAdjacent;
  // kAdaptive: take the grouped walk while the EWMA of the adjacent-
  // duplicate fraction (admitted run items whose key hash equals the
  // previous item's) stays at or above this; below it, walk runs
  // element-wise and re-sample the density every
  // `adaptive_resample_period` runs.
  double adaptive_min_dup_fraction = 0.05;
  int adaptive_resample_period = 16;

  // Test seam: replaces the (wid, key-subset) hash used for the join
  // tables and feedback dedup sets. Forcing a constant here makes every
  // key collide, which exercises the collision-checked subset-equality
  // probe (hash equality must never be sufficient to join).
  std::function<uint64_t(const Tuple&, int port, int64_t wid)>
      key_hash_override;

  // Adaptive gate (the paper's motivating speed-map scenario, §1 and
  // §3.3 "Adaptive"): left tuples failing the gate do not join — e.g.
  // "sensor speed >= 45 MPH means vehicle data is not needed". When a
  // windowed left tuple fails the gate, the join predicts the
  // condition persists and sends assumed feedback to the RIGHT input
  // covering that key for the next `gate_feedback_horizon` windows, so
  // antecedents (cleaning, aggregation) skip the subset entirely.
  std::function<bool(const Tuple&)> left_gate;
  int gate_feedback_horizon = 0;  // windows ahead; 0 = no feedback
};

class SymmetricHashJoin final : public Operator {
 public:
  SymmetricHashJoin(std::string name, JoinOptions options);

  Status InferSchemas() override;
  Status Open(ExecContext* ctx) override;
  Status ProcessTuple(int port, const Tuple& tuple) override;
  /// Page-at-a-time path: runs of tuples (between punctuation/EOS
  /// boundaries) are probed grouped by key hash — one table lookup per
  /// distinct key per side instead of per tuple — and inserted in
  /// batches, moving each tuple out of the page. Joined results are
  /// staged into an output page (one queue lock per page, not per
  /// result) and flushed when the input page is fully processed, when
  /// punctuation is emitted (results never overtake it), and at EOS.
  /// With options_.page_batched_probe false this degrades to the
  /// default element walk plus the output flush.
  Status ProcessPage(int port, Page&& page, TimeMs* tick) override;
  Status ProcessPunctuation(int port, const Punctuation& punct) override;
  Status OnAllInputsEos() override;
  Status ProcessFeedback(int out_port,
                         const FeedbackPunctuation& fb) override;

  /// Full join state: both hash tables (entries incl. matched/gated
  /// flags for outer emission), guard sets, window bookkeeping,
  /// feedback dedup sets, counters, and any staged-but-unflushed
  /// output page. Unordered containers are written key-sorted so the
  /// byte stream is canonical.
  Status SnapshotState(SnapshotWriter* w) override;
  Status RestoreState(SnapshotReader* r) override;

  /// Mixes a window id into a key-subset hash (splitmix64 finalizer) —
  /// the production join-key scheme. Public so the hot-path bench
  /// measures exactly what the join uses.
  static uint64_t MixWidHash(uint64_t subset_hash, int64_t wid) {
    uint64_t h = subset_hash;
    h ^= static_cast<uint64_t>(wid) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return h;
  }

  // Introspection.
  size_t table_size(int input) const;
  const GuardSet& input_guards(int input) const {
    return input_guards_[static_cast<size_t>(input)];
  }
  const GuardSet& output_guards() const { return output_guards_; }
  const SchemaMap& schema_map() const { return map_; }
  uint64_t thrifty_feedbacks() const { return thrifty_feedbacks_; }
  uint64_t impatient_feedbacks() const { return impatient_feedbacks_; }
  uint64_t gate_feedbacks() const { return gate_feedbacks_; }
  uint64_t joined_count() const { return joined_count_; }
  /// kAdaptive probe introspection: the current adjacent-duplicate
  /// density estimate (tests assert it tracks the stream's shape).
  double adjacent_dup_ewma() const { return adj_dup_ewma_; }

 private:
  struct Entry {
    Tuple tuple;
    int64_t wid = 0;
    bool matched = false;
    bool gated = false;  // failed the adaptive gate; outer-emits only
  };
  // Keyed by a 64-bit hash of (window id, join-key subset) — no string
  // rendering, no per-probe allocation. Hash collisions are resolved by
  // collision-checked subset equality at probe time (each bucket entry
  // is verified with wid + EqualsSubset before it joins).
  using Table = std::unordered_map<uint64_t, std::vector<Entry>>;

  // One prepared tuple of a batched-probe run (ProcessPage).
  struct RunItem {
    uint32_t elem = 0;  // index into the page's element vector
    int64_t wid = 0;
    uint64_t key = 0;
    bool gated = false;
    bool matched = false;
  };

  uint64_t KeyHash(const Tuple& t, int port, int64_t wid) const;
  int64_t WidOf(const Tuple& t, int port) const;
  /// Batched equivalent of ProcessTuple over elems[begin, end) (all
  /// tuples); dispatches on options_.probe_grouping. Must stay
  /// semantically aligned with ProcessTuple — the randomized
  /// equivalence test compares the paths directly.
  Status ProcessTupleRun(int port, std::vector<StreamElement>& elems,
                         size_t begin, size_t end, TimeMs* tick);
  /// kSorted: stage + sort by key hash, one probe/insert lookup per
  /// distinct key in the run.
  Status ProcessSortedRun(int port, std::vector<StreamElement>& elems,
                          size_t begin, size_t end, TimeMs* tick);
  /// kAdjacent: fused single pass in element order, probe/insert
  /// buckets memoized across consecutive equal key hashes. Also the
  /// kAdaptive sampling pass (it measures density as it walks).
  Status ProcessAdjacentRun(int port, std::vector<StreamElement>& elems,
                            size_t begin, size_t end, TimeMs* tick);
  /// Element-wise walk of a run (kAdaptive's low-density path):
  /// ProcessTuple per element, with the page walk's stats/tick
  /// charges.
  Status ProcessRunElementwise(int port,
                               std::vector<StreamElement>& elems,
                               size_t begin, size_t end, TimeMs* tick);
  /// Columnar-input fast path (kAdjacent grouping only): key hashes
  /// and window ids precompute column-at-a-time over the block's
  /// contiguous columns (type dispatch hoisted per column), then the
  /// adjacency-memoized walk runs over a reused aliased row view.
  Status ProcessColumnarPage(int port, Page&& page, TimeMs* tick);
  /// Arena for result construction: the staging page's arena when
  /// results are paged, null (owned fallback) otherwise.
  TupleArena* OutArena();
  Tuple JoinTuples(const Tuple& left, const Tuple& right,
                   TupleArena* arena) const;
  Tuple OuterTuple(const Tuple& left, TupleArena* arena) const;
  /// Single result-emission seam for every probe/outer path: stages
  /// the pair column-wise (left attrs then right non-keys — or NULLs
  /// when `right` is null) straight into the staged block when the
  /// columnar layout is available and no output guard is active;
  /// otherwise assembles the row tuple and routes through
  /// EmitJoined's guarded row staging.
  void EmitJoinedPair(const Tuple& left, const Tuple* right);
  /// The staged page's columnar block: existing block, or a freshly
  /// begun one on an empty staged page; null when a row page is open,
  /// the columnar layout is off, or arenas are unavailable.
  ColumnarBlock* StagedColumnar();
  void EmitJoined(Tuple out);
  void FlushOutput();
  void PurgeWindowsThrough(int side, int64_t wid, bool emit_outer);
  void MaybeThrifty(int64_t through_wid);
  void MaybeImpatient(const Tuple& t, int port, int64_t wid,
                      uint64_t key);
  void SendGateFeedback(const Tuple& t, int64_t wid, uint64_t key);
  Status HandleAssumed(const FeedbackPunctuation& fb);

  JoinOptions options_;
  SchemaMap map_{2, 0};
  int left_arity_ = 0;
  int right_arity_ = 0;
  std::vector<int> right_nonkey_;  // right attrs appended to output

  // Cached ExecContext::PagedEmissionPreferred() — a per-context
  // constant, looked up once in Open instead of twice (OutArena +
  // EmitJoined) per emitted result.
  bool paged_emission_ = false;

  Table tables_[2];
  GuardSet input_guards_[2];
  GuardSet output_guards_;
  // Joined-result staging for page-granular emission (ProcessPage).
  Page out_staged_;
  // Scratch for the batched probe's sort-by-key pass (reused across
  // pages to keep the hot path allocation-free once warm).
  std::vector<RunItem> run_scratch_;
  // Columnar-input scratch: per-selected-row window ids and key
  // hashes, filled by contiguous column sweeps before the probe walk.
  std::vector<int64_t> wid_scratch_;
  std::vector<uint64_t> hash_scratch_;
  // kAdaptive probe state: EWMA of the adjacent-duplicate fraction
  // observed by grouped runs, and how many element-wise runs have
  // passed since the density was last sampled. Initialized so the
  // very first run samples.
  double adj_dup_ewma_ = 0.0;
  int runs_since_dup_sample_ = 1 << 20;

  // Per-input window bookkeeping (window_join only).
  std::map<int64_t, uint64_t> window_counts_[2];
  int64_t min_seen_wid_[2] = {INT64_MAX, INT64_MAX};
  int64_t watermark_[2] = {INT64_MIN, INT64_MIN};
  int64_t emitted_punct_through_ = INT64_MIN;
  int64_t thrifty_checked_through_ = INT64_MIN;
  // Feedback rate-limit sets, keyed by the same (wid, key) hash as the
  // tables. A hash collision here can only suppress a redundant
  // optimization hint (desired/assumed feedback), never affect join
  // correctness, so hash-only membership is sound.
  std::unordered_set<uint64_t> impatient_requested_;

  std::unordered_set<uint64_t> gate_requested_;
  uint64_t thrifty_feedbacks_ = 0;
  uint64_t impatient_feedbacks_ = 0;
  uint64_t gate_feedbacks_ = 0;
  uint64_t joined_count_ = 0;
};

}  // namespace nstream

#endif  // NSTREAM_OPS_SYMMETRIC_HASH_JOIN_H_
